package stage

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"fgbs/internal/fault"
)

// DiskBackend is the durable byte tier: one file per artifact under a
// shared directory, written via tmp + fsync + rename + parent-dir
// fsync so a published name never points at torn bytes. The tier
// stores whatever bytes it is handed — in a standard chain that is the
// framed form, because the Framed decorator wraps it.
type DiskBackend struct {
	dir string
}

// NewDiskBackend builds a disk tier rooted at dir.
func NewDiskBackend(dir string) *DiskBackend {
	return &DiskBackend{dir: dir}
}

// Name identifies the tier.
func (d *DiskBackend) Name() string { return TierDisk }

// Dir returns the tier's directory.
func (d *DiskBackend) Dir() string { return d.dir }

// candidates lists the filenames probed for ref, keyed name first,
// then the read-only legacy name when one applies.
func candidates(ref Ref) []string {
	names := []string{ref.Name}
	if ref.Legacy != "" && ref.Legacy != ref.Name {
		names = append(names, ref.Legacy)
	}
	return names
}

// Get reads the first candidate file that exists. A missing file is a
// clean miss (ErrNotFound); any other failure is an I/O error for the
// breaker.
func (d *DiskBackend) Get(ctx context.Context, ref Ref) ([]byte, error) {
	for _, name := range candidates(ref) {
		data, err := os.ReadFile(filepath.Join(d.dir, name))
		if err == nil {
			return data, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
	}
	return nil, ErrNotFound
}

// Put writes data under ref.Name durably: encode-before-open already
// happened upstream, so a failed write never publishes anything — the
// tmp file is removed and the error feeds the breaker.
func (d *DiskBackend) Put(ctx context.Context, ref Ref, data []byte) (bool, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return false, err
	}
	// The tmp name must be unique per writer: the documented workflows
	// share one directory between processes (fgbs -stagedir and fgbsd
	// -profiledir), and a fixed tmp path would let two concurrent
	// persists of the same filename interleave writes and rename a
	// corrupt artifact.
	f, err := os.CreateTemp(d.dir, ref.Name+".tmp*")
	if err != nil {
		return false, err
	}
	tmp := f.Name()
	fail := func(err error) (bool, error) {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	// The bytes are written in two halves around the mid-write
	// crashpoint: a crash here leaves a torn tmp file the published
	// name never points at, which is exactly what the frame (and the
	// recovery harness) must tolerate.
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		return fail(err)
	}
	fault.Crashpoint(fault.CrashMidArtifactWrite)
	if _, err := f.Write(data[half:]); err != nil {
		return fail(err)
	}
	// fsync before rename: the published name must never point at bytes
	// that exist only in the page cache.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return false, err
	}
	fault.Crashpoint(fault.CrashBeforeRename)
	if err := os.Rename(tmp, filepath.Join(d.dir, ref.Name)); err != nil {
		os.Remove(tmp)
		return false, err
	}
	// The rename is only durable once the directory entry is.
	if dir, err := os.Open(d.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
	return true, nil
}

// Delete removes ref's files. A missing file is not an error.
func (d *DiskBackend) Delete(ctx context.Context, ref Ref) error {
	for _, name := range candidates(ref) {
		if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}

// Quarantine moves the corrupt artifact aside as <path>.corrupt — kept
// for forensics, never silently deleted, and out of the load path so
// the next resolve recomputes. The file renamed is the first candidate
// that exists: the same one Get would have served.
func (d *DiskBackend) Quarantine(ctx context.Context, ref Ref) {
	for _, name := range candidates(ref) {
		path := filepath.Join(d.dir, name)
		if _, err := os.Stat(path); err == nil {
			os.Rename(path, path+".corrupt")
			return
		}
	}
}

// Len counts the published artifacts in the directory (tmp and
// quarantined files excluded). It reads the directory on every call;
// callers are stats paths, not hot paths.
func (d *DiskBackend) Len() int {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) == ".corrupt" || strings.Contains(name, ".tmp") {
			continue
		}
		n++
	}
	return n
}

// Stats reports the tier's base row; traffic counters come from the
// decorators.
func (d *DiskBackend) Stats() TierStats {
	return TierStats{State: DiskOK, Entries: d.Len()}
}

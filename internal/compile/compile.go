// Package compile lowers IR codelets to per-iteration instruction
// bundles for a specific machine, playing the role of the vectorizing
// compiler (Intel 12.1 -O3) in the paper's toolchain.
//
// For every innermost loop, lowering:
//
//   - classifies each statement's loop-carried dependence (none /
//     reduction / recurrence) to decide vectorization legality,
//   - applies the machine's SIMD width and the statement's hints to
//     decide vectorization profitability,
//   - register-allocates scalar (0-dimensional) references so that
//     reduction accumulators do not generate memory traffic,
//   - computes the compute-bound cycles per iteration through a
//     dispatch-port throughput model with serial penalties for
//     divisions, square roots, transcendentals, and loop-carried
//     dependence chains.
//
// The resulting Loop costs assume all memory accesses hit L1 — the
// same "static lower bound" MAQAO reports. internal/sim adds the
// dynamic memory behavior on top.
//
// Context sensitivity: codelets marked ContextSensitive lose
// vectorization when lowered with inApp=false, modeling the paper's
// second category of ill-behaved codelets ("codelets which are
// compiled differently inside and outside the application").
package compile

import (
	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// Approximate instruction latencies used for dependence-chain costing.
const (
	fpAddLatency = 3.0
	fpMulLatency = 5.0
	intLatency   = 1.0
	// loopOverheadInstr models induction update + compare + branch.
	loopOverheadInstr = 2.0
	// maxVectorStride is the largest affine element stride the
	// vectorizer packs with shuffles; beyond it, code stays scalar.
	maxVectorStride = 8
)

// MemRef is one memory-visible reference of a lowered statement.
type MemRef struct {
	Ref    *ir.Ref
	Stride ir.Stride
	Write  bool
}

// Stmt is one lowered assignment.
type Stmt struct {
	Assign *ir.Assign
	Dep    ir.DepClass
	// Vectorized reports the compiler's decision; Lanes is the number
	// of elements per vector operation when vectorized (else 1).
	Vectorized bool
	Lanes      int64
	// Ops counts operations per scalar iteration (vectorization does
	// not change the operation count, only the instruction count).
	Ops ir.OpCount
	// Mem lists the references that touch memory after scalar
	// register allocation, in evaluation order (loads then the store).
	Mem []MemRef
	// GatherLoads counts indirect loads per iteration.
	GatherLoads int64
	// StridedVector reports a vectorized statement with a non-unit
	// stride (costed with a packing penalty).
	StridedVector bool
}

// Loop is a lowered innermost loop with its static cost model.
type Loop struct {
	Context *ir.LoopContext
	Stmts   []Stmt

	// CyclesPerIter is the compute-bound cost of one scalar iteration
	// assuming L1 hits (vector speedups folded in).
	CyclesPerIter float64
	// InstrPerIter estimates issued instructions per scalar iteration.
	InstrPerIter float64
	// ChainCycles is the loop-carried dependence chain latency per
	// iteration (0 when no recurrence).
	ChainCycles float64
	// StallCycles is the part of CyclesPerIter attributable to
	// dependence stalls: max(0, ChainCycles - throughput bound).
	StallCycles float64
	// PortPressure estimates utilization of the add, mul, load and
	// store ports at the modeled throughput (1.0 = saturated), under
	// the L1-hit assumption.
	PortPressure PortPressure
}

// PortPressure carries per-port utilization shares.
type PortPressure struct {
	Add, Mul, Load, Store, Int float64
}

// Codelet is the lowering result for a whole codelet.
type Codelet struct {
	Source  *ir.Codelet
	Machine *arch.Machine
	// InApp records the compilation context used (see package doc).
	InApp bool
	Loops []*Loop
}

// Lower compiles codelet c of program p for machine m. inApp selects
// the in-application compilation context; standalone extraction passes
// false.
func Lower(p *ir.Program, c *ir.Codelet, m *arch.Machine, inApp bool) *Codelet {
	out := &Codelet{Source: c, Machine: m, InApp: inApp}
	for _, lc := range c.InnermostLoops() {
		out.Loops = append(out.Loops, lowerLoop(p, c, lc, m, inApp))
	}
	return out
}

func lowerLoop(p *ir.Program, c *ir.Codelet, lc *ir.LoopContext, m *arch.Machine, inApp bool) *Loop {
	loop := &Loop{Context: lc}
	inner := lc.Loop.Var
	for _, s := range lc.Loop.Body {
		a, ok := s.(*ir.Assign)
		if !ok {
			continue
		}
		st := lowerStmt(p, c, a, inner, m, inApp)
		loop.Stmts = append(loop.Stmts, st)
	}
	costLoop(loop, m)
	return loop
}

func lowerStmt(p *ir.Program, c *ir.Codelet, a *ir.Assign, inner string, m *arch.Machine, inApp bool) Stmt {
	st := Stmt{
		Assign: a,
		Dep:    p.ClassifyDep(a, inner),
		Ops:    ir.CountAssign(a),
		Lanes:  1,
	}

	// Memory-visible references: scalar (0-dim) refs are register-
	// allocated and dropped.
	indirect := false
	strided := false
	bigStrideRefs := 0
	bigStrideStore := false
	addMem := func(r *ir.Ref, write bool) {
		if len(r.Index) == 0 {
			// Register-allocated scalar: remove from the op counts'
			// memory traffic too.
			if write {
				st.Ops.Stores--
			} else {
				st.Ops.Loads--
			}
			return
		}
		sd := p.RefStride(r, inner)
		switch sd.Kind {
		case ir.StrideIndirect:
			indirect = true
			if !write {
				st.GatherLoads++
			}
		case ir.StrideAffine:
			if sd.Elems != 1 && sd.Elems != -1 {
				strided = true
			}
			if sd.Elems > maxVectorStride || sd.Elems < -maxVectorStride {
				bigStrideRefs++
				if write {
					bigStrideStore = true
				}
			}
		}
		st.Mem = append(st.Mem, MemRef{Ref: r, Stride: sd, Write: write})
	}
	ir.WalkExpr(a.RHS, func(e ir.Expr) {
		if ld, ok := e.(*ir.Load); ok {
			addMem(ld.Ref, false)
		}
	})
	addMem(a.LHS, true)

	// Vectorization decision. Large-stride (column-walk) code is left
	// scalar when the strided references dominate or the store itself
	// strides: packing costs outweigh the SIMD benefit, which is what
	// the paper's compiler does for the LDA-stride NR codelets.
	elem := a.LHS.DType()
	lanes := m.SIMDBytes / elem.Size()
	profitable := !bigStrideStore && 2*bigStrideRefs <= len(st.Mem)
	// Machines whose SIMD datapath is narrower than the register width
	// (Atom) gain nothing from packing two doubles; the profitability
	// heuristic keeps such code scalar unless an unpipelined unit
	// (divide, sqrt) amortizes across lanes.
	simdGain := float64(lanes) * m.SIMDFPEff
	if simdGain <= 1 && st.Ops.FDiv == 0 && st.Ops.FSqrt == 0 {
		profitable = false
	}
	vectorizable := lanes > 1 &&
		st.Dep != ir.DepRecurrence &&
		!indirect &&
		profitable &&
		a.Hint != ir.VecNever &&
		!(c.ContextSensitive && !inApp)
	if vectorizable {
		st.Vectorized = true
		st.Lanes = lanes
		st.StridedVector = strided
	}
	return st
}

// costLoop fills the loop-level cost fields from its statements under
// machine m's throughput model.
func costLoop(l *Loop, m *arch.Machine) {
	var addDemand, mulDemand, loadDemand, storeDemand, intDemand float64
	var serial float64 // unpipelined op cycles per iteration
	var chain float64  // loop-carried chain latency per iteration
	var instr float64

	for _, st := range l.Stmts {
		o := st.Ops
		lanes := float64(st.Lanes)
		vecEff := 1.0
		if st.Vectorized {
			vecEff = m.SIMDFPEff
			if st.StridedVector {
				// Strided vector access needs packing shuffles:
				// charge the loads at half vector efficiency.
				vecEff *= 0.5
			}
		}
		// Port demands in cycles per scalar iteration.
		addDemand += float64(o.FAdd) / lanes / (m.FPAddPerCycle * vecEff)
		mulDemand += float64(o.FMul) / lanes / (m.FPMulPerCycle * vecEff)
		intDemand += float64(o.IntOps) / lanes / m.IntPerCycle
		memLoads, memStores := 0.0, 0.0
		for _, mr := range st.Mem {
			if mr.Write {
				memStores++
			} else {
				memLoads++
			}
		}
		loadDemand += memLoads / lanes / m.LoadPorts
		storeDemand += memStores / lanes / m.StorePorts

		// Unpipelined units: divides, square roots, transcendentals.
		// A packed divide retires lanes elements in roughly
		// FPDivCycles*lanes/DivVecFactor cycles, i.e. per element the
		// scalar cost divided by DivVecFactor.
		serial += float64(o.FDiv) * m.FPDivCycles / vecBoost(st, m.DivVecFactor)
		serial += float64(o.FSqrt) * m.SqrtCycles / vecBoost(st, m.DivVecFactor)
		serial += float64(o.FSpecial) * m.SpecialCycles // libm calls stay scalar per element

		// Loop-carried chain latency for recurrences: the iteration
		// cannot start before the previous one finished its critical
		// path.
		if st.Dep == ir.DepRecurrence {
			chain += float64(o.FAdd)*fpAddLatency + float64(o.FMul)*fpMulLatency +
				float64(o.FDiv)*m.FPDivCycles + float64(o.FSqrt)*m.SqrtCycles +
				float64(o.FSpecial)*m.SpecialCycles + float64(o.IntOps)*intLatency
		}

		// Instruction estimate: arithmetic ops + memory ops, packed.
		opsTotal := float64(o.FPOps()+o.IntOps) + memLoads + memStores
		instr += opsTotal / lanes * vecInstrFactor(st)
	}
	// The induction/compare/branch overhead is paid once per loop
	// iteration; a vectorized loop retires `lanes` elements per
	// iteration, amortizing it.
	maxLanes := 1.0
	for _, st := range l.Stmts {
		if float64(st.Lanes) > maxLanes {
			maxLanes = float64(st.Lanes)
		}
	}
	instr += loopOverheadInstr / maxLanes
	issue := instr / m.IssueWidth

	bound := maxF(addDemand, mulDemand, loadDemand, storeDemand, intDemand, issue)
	cycles := bound + serial
	stall := 0.0
	if chain > cycles {
		stall = chain - cycles
		cycles = chain
	}
	l.CyclesPerIter = cycles
	l.InstrPerIter = instr
	l.ChainCycles = chain
	l.StallCycles = stall
	if cycles > 0 {
		l.PortPressure = PortPressure{
			Add:   addDemand / cycles,
			Mul:   mulDemand / cycles,
			Load:  loadDemand / cycles,
			Store: storeDemand / cycles,
			Int:   intDemand / cycles,
		}
	}
}

// vecBoost returns the divisor applied to unpipelined-unit costs when
// the statement is vectorized.
func vecBoost(st Stmt, factor float64) float64 {
	if st.Vectorized {
		return factor
	}
	return 1
}

// vecInstrFactor inflates the instruction estimate slightly for
// strided vector code (extra shuffle instructions).
func vecInstrFactor(st Stmt) float64 {
	if st.Vectorized && st.StridedVector {
		return 1.5
	}
	return 1
}

func maxF(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// VecRatios summarizes the fraction of operations vectorized per
// instruction class across the codelet, weighted by each loop's
// estimated trip count under params. These feed the MAQAO-style
// "Vectorization ratio" features and Table 3's "Vec. %" column.
type VecRatios struct {
	Mul   float64 // FP multiplications
	Add   float64 // FP additions/subtractions
	Other float64 // all remaining ops (FP+INT)
	Int   float64 // integer ops only
	All   float64 // every operation class combined
}

// VecRatios computes vectorization ratios for the lowered codelet
// using program parameters to weight multiple innermost loops.
func (c *Codelet) VecRatios(params map[string]int64) VecRatios {
	var vMul, tMul, vAdd, tAdd, vOther, tOther, vInt, tInt float64
	for _, l := range c.Loops {
		w := estTrip(l.Context, params)
		for _, st := range l.Stmts {
			v := 0.0
			if st.Vectorized {
				v = 1.0
			}
			o := st.Ops
			tMul += w * float64(o.FMul)
			vMul += w * v * float64(o.FMul)
			tAdd += w * float64(o.FAdd)
			vAdd += w * v * float64(o.FAdd)
			other := float64(o.FDiv+o.FSqrt+o.FSpecial+o.IntOps) + float64(len(st.Mem))
			tOther += w * other
			vOther += w * v * other
			tInt += w * float64(o.IntOps)
			vInt += w * v * float64(o.IntOps)
		}
	}
	return VecRatios{
		Mul:   ratio(vMul, tMul),
		Add:   ratio(vAdd, tAdd),
		Other: ratio(vOther, tOther),
		Int:   ratio(vInt, tInt),
		All:   ratio(vMul+vAdd+vOther, tMul+tAdd+tOther),
	}
}

func ratio(num, den float64) float64 {
	//fgbs:allow floatcompare exact-zero division guard, not a tolerance comparison
	if den == 0 {
		return 0
	}
	return num / den
}

// estTrip estimates an innermost loop's trip count with enclosing loop
// variables bound to the midpoint of their ranges — a static stand-in
// for triangular loops.
func estTrip(lc *ir.LoopContext, params map[string]int64) float64 {
	env := make(map[string]int64, len(params)+len(lc.Outer))
	for k, v := range params {
		env[k] = v
	}
	for _, v := range lc.Outer {
		// Midpoint of a typical range; outer vars usually appear in
		// the innermost bounds of triangular loops.
		env[v] = 0
	}
	// First pass: bind outer vars to 0, evaluate bounds to get a
	// scale, then bind them to half the innermost trip as a midpoint
	// heuristic.
	trip := lc.Loop.TripCount(env)
	if len(lc.Outer) > 0 {
		for _, v := range lc.Outer {
			env[v] = trip / 2
		}
		trip = lc.Loop.TripCount(env)
	}
	if trip < 1 {
		trip = 1
	}
	return float64(trip)
}

package stage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func testRef(i int) Ref {
	return Ref{Key: testKey(i), Name: fmt.Sprintf("art-%d.txt", i)}
}

func TestMemoryBackendLRU(t *testing.T) {
	ctx := context.Background()
	m := NewMemoryBackend(2)
	put := func(i int, data string) {
		t.Helper()
		if written, err := m.Put(ctx, testRef(i), []byte(data)); !written || err != nil {
			t.Fatalf("Put(%d): written=%v err=%v", i, written, err)
		}
	}
	put(1, "one")
	put(2, "two")
	if _, err := m.Get(ctx, testRef(1)); err != nil { // touch 1 so 2 is the victim
		t.Fatal(err)
	}
	put(3, "three")
	if _, err := m.Get(ctx, testRef(2)); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted entry Get err = %v, want ErrNotFound", err)
	}
	if data, err := m.Get(ctx, testRef(1)); err != nil || string(data) != "one" {
		t.Errorf("survivor Get = %q, %v", data, err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	// Put copies: mutating the caller's slice must not reach the tier.
	src := []byte("pristine")
	put(4, string(src))
	copy(src, "clobber!")
	if data, _ := m.Get(ctx, testRef(4)); string(data) != "pristine" {
		t.Errorf("tier shares the caller's buffer: %q", data)
	}
}

// TestTierPromotion pins the chain contract: a hit in a lower tier is
// promoted into every tier above it, and the next resolve is served
// from the fastest tier.
func TestTierPromotion(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	mem := Framed(Breakered(NewMemoryBackend(8)))
	disk := Framed(Breakered(NewDiskBackend(dir)))
	s := NewTieredStore(4, []Backend{mem, disk})

	// First resolve computes and writes through both tiers.
	if _, out, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return "artifact", nil
	}); err != nil || out.Cached {
		t.Fatalf("cold resolve: out=%+v err=%v", out, err)
	}
	if mem.Len() != 1 {
		t.Fatalf("memory tier holds %d artifacts after write-through, want 1", mem.Len())
	}

	// Drop the value and the memory tier's copy: the disk tier serves
	// the miss and promotes its bytes back into the memory tier.
	s.Delete(testKey(1))
	ref := Ref{Key: testKey(1), Name: codec.Filename()}
	if err := mem.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	v, out, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return nil, errors.New("tiers must serve this resolve")
	})
	if err != nil || v != "artifact" || !out.Disk || out.Tier != TierDisk {
		t.Fatalf("disk-tier resolve: v=%v out=%+v err=%v", v, out, err)
	}
	if mem.Len() != 1 {
		t.Errorf("disk hit not promoted into the memory tier (Len=%d)", mem.Len())
	}

	// Value evicted again: now the memory tier serves, disk untouched.
	s.Delete(testKey(1))
	v, out, err = s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return nil, errors.New("tiers must serve this resolve")
	})
	if err != nil || v != "artifact" || out.Tier != TierMemory || out.Disk {
		t.Fatalf("memory-tier resolve: v=%v out=%+v err=%v", v, out, err)
	}
	st := s.Stats()
	if st.Tiers[TierMemory].Hits != 1 || st.Tiers[TierDisk].Hits != 1 {
		t.Errorf("tier hit rows = %+v, want one hit each", st.Tiers)
	}
	if st.Tiers[TierMemory].Writes < 2 { // write-through + promotion
		t.Errorf("memory tier writes = %d, want >= 2", st.Tiers[TierMemory].Writes)
	}
}

// TestHTTPBackendFetch pins the peer tier against a stub peer: a 200
// with framed bytes serves (verified by the Framed decorator), a 404
// falls through peers and reports a clean miss, and a second peer is
// probed when the first misses.
func TestHTTPBackendFetch(t *testing.T) {
	ctx := context.Background()
	payload := []byte("peer-artifact")
	framed := Frame(payload)
	var hits atomic.Int64
	warm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, ArtifactPathPrefix) {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		w.Write(framed)
	}))
	defer warm.Close()
	cold := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer cold.Close()

	tier := Framed(Breakered(NewHTTPBackend([]string{cold.URL, warm.URL}, nil)))
	ref := testRef(1)
	got, err := tier.Get(ctx, ref)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("peer Get = %q, %v; want verified payload", got, err)
	}
	if hits.Load() != 1 {
		t.Errorf("warm peer served %d times, want 1 (cold peer must 404 first)", hits.Load())
	}

	missTier := Framed(Breakered(NewHTTPBackend([]string{cold.URL}, nil)))
	if _, err := missTier.Get(ctx, ref); !errors.Is(err, ErrNotFound) {
		t.Errorf("all-miss Get err = %v, want ErrNotFound", err)
	}
	// The tier is read-only: Put reports not-written without error.
	if written, err := missTier.Put(ctx, ref, payload); written || err != nil {
		t.Errorf("Put on peer tier: written=%v err=%v, want no-op", written, err)
	}
}

// TestHTTPBackendCorruptResponseQuarantined pins the integrity
// contract on the wire: a peer serving bytes that fail frame
// verification is a quarantine (counted), never a decodable artifact.
func TestHTTPBackendCorruptResponseQuarantined(t *testing.T) {
	ctx := context.Background()
	framed := Frame([]byte("peer-artifact"))
	torn := framed[:len(framed)-3]
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(torn)
	}))
	defer peer.Close()
	tier := Framed(Breakered(NewHTTPBackend([]string{peer.URL}, nil)))
	_, err := tier.Get(ctx, testRef(1))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Tier != TierPeer {
		t.Fatalf("torn peer response err = %v, want CorruptError from the peer tier", err)
	}
	if st := tier.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	// Corruption is a data problem, not an I/O failure: the breaker
	// must not have counted it.
	if st := tier.Stats(); st.Errors != 0 || st.State != DiskOK {
		t.Errorf("breaker saw corruption as I/O failure: %+v", st)
	}
}

// TestFetchFramed pins the peer-serving read path: resolved artifacts
// are servable as verified framed bytes, legacy unframed files gain a
// frame on the wire, and unresolved keys are clean misses.
func TestFetchFramed(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	s := NewStore(4, dir)
	if _, _, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return "served", nil
	}); err != nil {
		t.Fatal(err)
	}
	data, err := s.FetchFramed(ctx, testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	if framed, err := VerifyFrame(data); !framed || err != nil {
		t.Fatalf("fetched artifact framed=%v err=%v, want verified frame", framed, err)
	}
	payload, _, _ := unframe(data)
	if v, err := codec.Decode(bytes.NewReader(payload)); err != nil || v != "served" {
		t.Errorf("fetched payload decodes to %v, %v", v, err)
	}
	if _, err := s.FetchFramed(ctx, testKey(99)); !errors.Is(err, ErrNotFound) {
		t.Errorf("unresolved key err = %v, want ErrNotFound", err)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != testKey(1) {
		t.Errorf("Keys() = %v, want exactly the resolved key", keys)
	}

	// A legacy unframed artifact is framed on the way out, so the wire
	// always carries an integrity claim.
	legacy := legacyCodec{testCodec: testCodec{name: "art-keyed.txt", persist: true}, legacy: "legacy.txt"}
	if err := os.WriteFile(filepath.Join(dir, "legacy.txt"), []byte("old-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Resolve(ctx, "test", testKey(2), legacy, func(context.Context) (any, error) {
		return nil, errors.New("legacy artifact must be adopted")
	}); err != nil {
		t.Fatal(err)
	}
	data, err = s.FetchFramed(ctx, testKey(2))
	if err != nil {
		t.Fatal(err)
	}
	if framed, err := VerifyFrame(data); !framed || err != nil {
		t.Fatalf("legacy fetch framed=%v err=%v, want re-framed bytes", framed, err)
	}
	if payload, _, _ := unframe(data); string(payload) != "old-bytes" {
		t.Errorf("legacy payload = %q", payload)
	}
}

// TestFetchFramedSkipsRemoteTiers pins the no-loop rule: a store whose
// only tier is a peer cannot serve FetchFramed, so two daemons pointed
// at each other never bounce a fetch back and forth.
func TestFetchFramedSkipsRemoteTiers(t *testing.T) {
	ctx := context.Background()
	served := atomic.Int64{}
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write(Frame([]byte("remote")))
	}))
	defer peer.Close()
	tiers, err := NewTierChain([]string{TierPeer}, TierConfig{Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewTieredStore(4, tiers)
	codec := testCodec{name: "art.txt", persist: true}
	if _, _, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		t.Error("peer tier should have served the resolve")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchFramed(ctx, testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("FetchFramed through a remote-only chain err = %v, want ErrNotFound", err)
	}
	if served.Load() != 1 {
		t.Errorf("peer served %d requests, want 1 (resolve only, no fetch bounce)", served.Load())
	}
}

func TestNewTierChain(t *testing.T) {
	dir := t.TempDir()
	tiers, err := NewTierChain([]string{TierMemory, TierDisk, TierPeer}, TierConfig{
		Dir:   dir,
		Peers: []string{"http://127.0.0.1:1/"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 3 {
		t.Fatalf("chain length = %d, want 3", len(tiers))
	}
	for i, want := range []string{TierMemory, TierDisk, TierPeer} {
		if tiers[i].Name() != want {
			t.Errorf("tier %d = %q, want %q", i, tiers[i].Name(), want)
		}
	}
	if !isRemote(tiers[2]) || isRemote(tiers[0]) {
		t.Error("remote marker not forwarded through the decorators")
	}

	for name, names := range map[string][]string{
		"unknown tier":      {"tape"},
		"duplicate tier":    {TierMemory, TierMemory},
		"disk without dir":  {TierDisk},
		"peer without urls": {TierPeer},
	} {
		if _, err := NewTierChain(names, TierConfig{}); err == nil {
			t.Errorf("%s: NewTierChain accepted %v", name, names)
		}
	}

	if got := DefaultTierNames("", nil); got != nil {
		t.Errorf("DefaultTierNames with nothing = %v, want nil", got)
	}
	if got := DefaultTierNames(dir, []string{"http://p"}); len(got) != 2 || got[0] != TierDisk || got[1] != TierPeer {
		t.Errorf("DefaultTierNames = %v, want [disk peer]", got)
	}
}

package pipeline

import (
	"fgbs/internal/cluster"
	"fgbs/internal/features"
	"fgbs/internal/predict"
	"fgbs/internal/represent"
)

// Step C: feature normalization (§3.3) and Ward hierarchical
// clustering, with a manual K or the elbow rule. The Subset type and
// its configuration live here because a subset is requested through
// Step C's parameters; the representative-selection half of building
// one is represent.go's finishSubset.

// NormalizedPoints applies the mask and z-score normalization (§3.3)
// to the profile's feature matrix.
func (p *Profile) NormalizedPoints(mask features.Mask) [][]float64 {
	pts := mask.ApplyMatrix(p.Features)
	// Copy before normalizing: the profile's features stay raw.
	out := make([][]float64, len(pts))
	for i, row := range pts {
		out[i] = append([]float64(nil), row...)
	}
	features.NormalizeMatrix(out)
	return out
}

// Subset is the outcome of Steps C and D for one feature mask and one
// cluster count.
type Subset struct {
	Mask features.Mask
	// RequestedK is the dendrogram cut (0 means the elbow rule chose).
	RequestedK int
	Dendro     *cluster.Dendrogram
	Points     [][]float64
	Selection  *represent.Selection
	Model      *predict.Model
}

// K returns the final cluster count after ill-behaved dissolutions.
func (s *Subset) K() int { return s.Selection.K }

// RepStrategy selects how a cluster's representative is chosen
// (ablation A3; the paper uses the centroid-closest member).
type RepStrategy uint8

const (
	// RepCentroid picks the member closest to the cluster centroid.
	RepCentroid RepStrategy = iota
	// RepFirst picks the lowest-indexed eligible member (an arbitrary
	// but deterministic choice).
	RepFirst
)

// SubsetConfig tunes Steps C and D for the ablation studies. The zero
// value is the paper's configuration.
type SubsetConfig struct {
	Linkage cluster.Linkage
	// NoNormalize skips the z-score normalization of §3.3 (A2).
	NoNormalize bool
	// RepStrategy overrides the representative choice (A3).
	RepStrategy RepStrategy
	// IgnoreScreening treats every codelet as well-behaved (A5).
	IgnoreScreening bool
}

// Subset runs clustering (Ward) and representative selection. Pass
// k <= 0 to let the elbow rule choose the cut.
func (p *Profile) Subset(mask features.Mask, k int) (*Subset, error) {
	return p.SubsetWith(mask, k, SubsetConfig{})
}

// SubsetWith is Subset with explicit Step C/D configuration.
func (p *Profile) SubsetWith(mask features.Mask, k int, cfg SubsetConfig) (*Subset, error) {
	pts := p.points(mask, cfg)
	d, err := cluster.Build(pts, cfg.Linkage)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = d.Elbow(pts, p.maxElbowK(), 0)
	}
	labels := d.Cut(k)
	return p.finishSubset(mask, k, d, pts, labels, cfg)
}

// SubsetFromLabels applies Steps D and E to an externally provided
// partition (the random-clustering baseline of Figure 7).
func (p *Profile) SubsetFromLabels(mask features.Mask, labels []int) (*Subset, error) {
	cfg := SubsetConfig{}
	pts := p.points(mask, cfg)
	return p.finishSubset(mask, 0, nil, pts, labels, cfg)
}

func (p *Profile) points(mask features.Mask, cfg SubsetConfig) [][]float64 {
	if cfg.NoNormalize {
		return mask.ApplyMatrix(p.Features)
	}
	return p.NormalizedPoints(mask)
}

// maxElbowK mirrors the paper's sweep ranges: up to 24 clusters.
func (p *Profile) maxElbowK() int {
	if p.N() < 24 {
		return p.N()
	}
	return 24
}

// Elbow returns the elbow-selected cluster count for a mask.
func (p *Profile) Elbow(mask features.Mask) (int, error) {
	pts := p.NormalizedPoints(mask)
	d, err := cluster.Build(pts, cluster.Ward)
	if err != nil {
		return 0, err
	}
	return d.Elbow(pts, p.maxElbowK(), 0), nil
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
	"fgbs/internal/report"
)

// testSuite builds a small synthetic suite: two applications, each
// with a streaming and a divide-heavy codelet, so clustering has
// structure at a fraction of the real suites' profiling cost.
func testSuite() []*ir.Program {
	mk := func(appName string) *ir.Program {
		p := ir.NewProgram(appName)
		p.SetParam("n", 200000) // streams past every modeled cache, so screening passes
		p.UncoveredFraction = 0.05
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"))
		p.AddArray("c", ir.F64, ir.AV("n"))
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_copy", Invocations: 6,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_div", Invocations: 4,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Div(p.LoadE("b", ir.V("i")), ir.Add(p.LoadE("c", ir.V("i")), ir.CF(1.5)))},
			}},
		})
		return p
	}
	return []*ir.Program{mk("alpha"), mk("beta")}
}

// testPrograms resolves every known test suite name to testSuite.
func testPrograms(name string) ([]*ir.Program, error) {
	switch name {
	case "tiny", "spare":
		return testSuite(), nil
	default:
		return nil, fmt.Errorf("unknown test suite %q", name)
	}
}

// sharedProfile profiles testSuite once per test binary.
var (
	profOnce sync.Once
	profVal  *pipeline.Profile
	profErr  error
)

func sharedProfile(t *testing.T) *pipeline.Profile {
	t.Helper()
	profOnce.Do(func() {
		profVal, profErr = pipeline.NewProfile(testSuite(), pipeline.Options{Seed: 1})
	})
	if profErr != nil {
		t.Fatal(profErr)
	}
	return profVal
}

// seedSuite plants a prebuilt profile as the suite's ready registry
// entry, adopted into the stage graph so staged queries resolve it.
func seedSuite(t *testing.T, s *Server, suite string, prof *pipeline.Profile) {
	t.Helper()
	progs, err := s.registry.programs(suite)
	if err != nil {
		t.Fatal(err)
	}
	st := s.registry.engine.Adopt(progs, s.registry.stageOpts(suite), prof)
	e := &regEntry{ready: make(chan struct{}), st: st}
	close(e.ready)
	s.registry.entries[suite] = e
}

// newTestServer builds a server over the test suites with the "tiny"
// profile pre-seeded, so endpoint tests skip the build path (the build
// path has its own tests below and in registry_test.go).
func newTestServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny", "spare"},
		Programs:   testPrograms,
	})
	t.Cleanup(s.Close)
	seedSuite(t, s, "tiny", sharedProfile(t))
	return s
}

// post issues a JSON POST and decodes the response into out.
func post(t *testing.T, ts *httptest.Server, path string, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, data, err)
		}
	}
	return resp
}

func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).Handler())
	defer ts.Close()
	var body struct {
		OK            bool    `json:"ok"`
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		JobQueue      struct {
			Queued    int64 `json:"queued"`
			Depth     int   `json:"depth"`
			Saturated bool  `json:"saturated"`
		} `json:"jobQueue"`
	}
	resp := get(t, ts, "/healthz", &body)
	if resp.StatusCode != http.StatusOK || !body.OK || body.Status != "ok" {
		t.Errorf("healthz = %d, ok=%v status=%q", resp.StatusCode, body.OK, body.Status)
	}
	if body.JobQueue.Depth <= 0 || body.JobQueue.Saturated {
		t.Errorf("jobQueue = %+v, want positive depth, unsaturated", body.JobQueue)
	}
}

func TestSubsetEndpoint(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).Handler())
	defer ts.Close()
	var sj report.SubsetJSON
	resp := post(t, ts, "/v1/subset", `{"suite":"tiny","k":2}`, &sj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if sj.Suite != "tiny" || sj.K != 2 || len(sj.Clusters) != 2 {
		t.Errorf("subset = suite %q k %d clusters %d", sj.Suite, sj.K, len(sj.Clusters))
	}
	members := 0
	for _, c := range sj.Clusters {
		members += len(c.Members)
		if c.Representative == "" {
			t.Errorf("cluster %d without representative", c.ID)
		}
	}
	if members != sharedProfile(t).N() {
		t.Errorf("clusters cover %d codelets, want %d", members, sharedProfile(t).N())
	}

	// The identical query must be an LRU hit replaying the same bytes.
	var again report.SubsetJSON
	resp2 := post(t, ts, "/v1/subset", `{"suite":"tiny","k":2}`, &again)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if again.K != sj.K || len(again.Clusters) != len(sj.Clusters) {
		t.Error("cached response differs from computed one")
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).Handler())
	defer ts.Close()
	prof := sharedProfile(t)
	target := prof.Targets[0].Name

	var one struct {
		Suite string             `json:"suite"`
		K     int                `json:"k"`
		Evals []*report.EvalJSON `json:"evals"`
	}
	body := fmt.Sprintf(`{"suite":"tiny","k":2,"target":%q}`, target)
	resp := post(t, ts, "/v1/evaluate", body, &one)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(one.Evals) != 1 || one.Evals[0].Target != target {
		t.Fatalf("evals = %+v, want one for %s", one.Evals, target)
	}
	ev := one.Evals[0]
	if ev.Reduction.Total <= 0 {
		t.Errorf("reduction factor = %v, want > 0", ev.Reduction.Total)
	}
	if len(ev.Codelets) != prof.N() {
		t.Errorf("codelet rows = %d, want %d", len(ev.Codelets), prof.N())
	}
	if len(ev.Apps) != 2 {
		t.Errorf("app rows = %d, want 2", len(ev.Apps))
	}

	var all struct {
		Evals []*report.EvalJSON `json:"evals"`
	}
	post(t, ts, "/v1/evaluate", `{"suite":"tiny","k":2}`, &all)
	if len(all.Evals) != len(prof.Targets) {
		t.Errorf("all-target evals = %d, want %d", len(all.Evals), len(prof.Targets))
	}
}

func TestSelectEndpoint(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).Handler())
	defer ts.Close()
	prof := sharedProfile(t)

	var sel report.SelectJSON
	resp := post(t, ts, "/v1/select", `{"suite":"tiny","k":2}`, &sel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(sel.Ranking) != len(prof.Targets) {
		t.Fatalf("ranking has %d entries, want %d", len(sel.Ranking), len(prof.Targets))
	}
	for i := 1; i < len(sel.Ranking); i++ {
		if sel.Ranking[i].GeoMeanPredictedSpeedup > sel.Ranking[i-1].GeoMeanPredictedSpeedup {
			t.Error("ranking not sorted by predicted speedup")
		}
	}
	if sel.BestPredicted != sel.Ranking[0].Target {
		t.Errorf("bestPredicted = %q, ranking head = %q", sel.BestPredicted, sel.Ranking[0].Target)
	}
	if sel.BestMeasured == "" {
		t.Error("bestMeasured empty")
	}
	if len(sel.Apps) != 2 {
		t.Errorf("per-app winners = %d, want 2", len(sel.Apps))
	}
}

func TestSuitesEndpoint(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t).Handler())
	defer ts.Close()
	var body struct {
		Suites []struct {
			Name     string `json:"name"`
			Loaded   bool   `json:"loaded"`
			Codelets int    `json:"codelets"`
		} `json:"suites"`
	}
	get(t, ts, "/v1/suites", &body)
	if len(body.Suites) != 2 {
		t.Fatalf("suites = %d, want 2", len(body.Suites))
	}
	byName := map[string]bool{}
	for _, s := range body.Suites {
		byName[s.Name] = s.Loaded
		if s.Name == "tiny" && s.Codelets != sharedProfile(t).N() {
			t.Errorf("tiny codelets = %d", s.Codelets)
		}
	}
	if !byName["tiny"] || byName["spare"] {
		t.Errorf("loaded flags = %v, want tiny loaded, spare not", byName)
	}
}

func TestBadRequests(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"GET on subset", http.MethodGet, "/v1/subset", "", http.StatusMethodNotAllowed},
		{"POST on suites", http.MethodPost, "/v1/suites", "{}", http.StatusMethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/select", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/select", `{"suite":"tiny","bogus":1}`, http.StatusBadRequest},
		{"unknown suite", http.MethodPost, "/v1/select", `{"suite":"spec"}`, http.StatusBadRequest},
		{"negative k", http.MethodPost, "/v1/subset", `{"suite":"tiny","k":-1}`, http.StatusBadRequest},
		{"bad features", http.MethodPost, "/v1/subset", `{"suite":"tiny","features":"nope"}`, http.StatusBadRequest},
		{"bad target", http.MethodPost, "/v1/evaluate", `{"suite":"tiny","target":"PDP-11"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, c.status)
			}
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("error body missing: %v", err)
			}
		})
	}
}

// TestCoalescing is the acceptance scenario: concurrent identical
// first requests trigger exactly one profiling run, observable via
// /metricz, and a repeated request afterwards hits the LRU cache.
func TestCoalescing(t *testing.T) {
	var builds atomic.Int64
	release := make(chan struct{})
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs: func(name string) ([]*ir.Program, error) {
			builds.Add(1)
			// Hold the profiling run open until the test has seen all
			// clients pile up behind it, making coalescing
			// deterministic rather than a race against a fast build.
			<-release
			return testPrograms(name)
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 4
	var wg sync.WaitGroup
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/select", "application/json",
				bytes.NewReader([]byte(`{"suite":"tiny","k":2}`)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = string(data)
		}(i)
	}

	// Wait until every client except the build owner has joined the
	// in-flight build, then let it finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.registry.coalesced.Load() != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d after 10s, want %d", s.registry.coalesced.Load(), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Errorf("profiling runs = %d, want exactly 1 (coalescing broken)", got)
	}
	for i := 1; i < clients; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("client %d got a different response", i)
		}
	}

	// The repeated request is served from the LRU cache...
	resp, err := http.Post(ts.URL+"/v1/select", "application/json",
		bytes.NewReader([]byte(`{"suite":"tiny","k":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}

	// ...and the whole story is visible in /metricz.
	var m struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
		ResultCache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
			Size   int64 `json:"size"`
		} `json:"resultCache"`
		Registry struct {
			Builds    int64 `json:"builds"`
			Coalesced int64 `json:"coalesced"`
		} `json:"registry"`
	}
	get(t, ts, "/metricz", &m)
	if m.Registry.Builds != 1 {
		t.Errorf("metricz builds = %d, want 1", m.Registry.Builds)
	}
	if m.Registry.Coalesced != clients-1 {
		t.Errorf("metricz coalesced = %d, want %d", m.Registry.Coalesced, clients-1)
	}
	if m.ResultCache.Hits < 1 || m.ResultCache.Size != 1 {
		t.Errorf("result cache hits=%d size=%d, want >=1 hit and size 1", m.ResultCache.Hits, m.ResultCache.Size)
	}
	if ep := m.Endpoints["/v1/select"]; ep.Requests != clients+1 || ep.Errors != 0 {
		t.Errorf("select endpoint stats = %+v", ep)
	}
}

package sim

import (
	"fmt"
	"hash/fnv"

	"fgbs/internal/arch"
	"fgbs/internal/cache"
	"fgbs/internal/ir"
	"fgbs/internal/stats"
)

// Mode selects the measurement context (see the package comment).
type Mode uint8

const (
	// ModeInApp profiles the codelet inside its application.
	ModeInApp Mode = iota
	// ModeStandalone measures the extracted microbenchmark.
	ModeStandalone
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeStandalone {
		return "standalone"
	}
	return "in-app"
}

// Default measurement knobs.
const (
	// DefaultProbeCycles is the fixed instrumentation overhead charged
	// per invocation (the Likwid probe calls around the codelet). It
	// is what makes short-lived codelets relatively noisy, as §4.4
	// observes.
	DefaultProbeCycles = 12000
	// DefaultNoiseAmp is the amplitude of the deterministic
	// pseudo-noise applied to measured times (run-to-run variability).
	DefaultNoiseAmp = 0.02
	// DefaultInvocations is how many invocations are simulated per
	// measurement. Three cover both the dataset-variation period and
	// a cold-then-warm transient.
	DefaultInvocations = 3
)

// Options configures Measure.
type Options struct {
	Machine *arch.Machine
	Mode    Mode
	// Invocations overrides DefaultInvocations when > 0.
	Invocations int
	// Seed drives dataset initialization and measurement pseudo-noise.
	Seed uint64
	// ProbeCycles overrides DefaultProbeCycles when >= 0 (use a
	// negative value to request the default; 0 disables the probe).
	ProbeCycles float64
	// NoiseAmp overrides DefaultNoiseAmp when >= 0.
	NoiseAmp float64
	// Dataset reuses a prebuilt dataset (else one is built from Seed).
	Dataset *Dataset
}

func (o *Options) fill() {
	if o.Invocations <= 0 {
		o.Invocations = DefaultInvocations
	}
	if o.ProbeCycles < 0 {
		o.ProbeCycles = DefaultProbeCycles
	}
	if o.NoiseAmp < 0 {
		o.NoiseAmp = DefaultNoiseAmp
	}
}

// Counters aggregates one invocation's simulated hardware events, the
// stand-in for a Likwid counter group read.
type Counters struct {
	Cycles  float64
	Seconds float64

	Instructions float64
	// Ops tallies architectural operations (scalar-equivalent).
	Ops ir.OpCount
	// VecFPOps is the number of FP operations retired by vector
	// instructions.
	VecFPOps float64
	// MemLoads/MemStores count memory-visible references (after
	// register allocation of scalars).
	MemLoads, MemStores float64

	// LevelHits[i] / LevelMisses[i] index the machine's cache levels.
	LevelHits, LevelMisses []int64
	MemAccesses            int64
	MemWritebacks          int64

	// Cost breakdown.
	ComputeCycles    float64
	BandwidthCycles  float64
	ExposedLatCycles float64
	ProbeCycles      float64
}

// Invocation is one simulated invocation's outcome.
type Invocation struct {
	Index    int
	Seconds  float64
	Counters Counters
}

// Measurement is the result of measuring one codelet on one machine in
// one mode.
type Measurement struct {
	Codelet *ir.Codelet
	Machine *arch.Machine
	Mode    Mode

	Invocations []Invocation
	// Seconds is the median per-invocation time — the paper's
	// outlier-robust summary.
	Seconds float64
	// Counters belongs to the median invocation.
	Counters Counters
	// WorkingSetBytes is the codelet's memory-dump size.
	WorkingSetBytes int64
}

// Measure simulates codelet c of program p under opts.
func Measure(p *ir.Program, c *ir.Codelet, opts Options) (*Measurement, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("sim: no machine given")
	}
	opts.fill()

	ds := opts.Dataset
	if ds == nil {
		var err error
		ds, err = BuildDataset(p, opts.Seed)
		if err != nil {
			return nil, err
		}
	}

	inApp := opts.Mode == ModeInApp
	pr, err := prepare(p, c, opts.Machine, ds, inApp)
	if err != nil {
		return nil, err
	}

	h, err := cache.NewHierarchy(opts.Machine)
	if err != nil {
		return nil, err
	}

	meas := &Measurement{
		Codelet:         c,
		Machine:         opts.Machine,
		Mode:            opts.Mode,
		WorkingSetBytes: ds.WorkingSetBytes(c),
	}

	if opts.Mode == ModeStandalone {
		// The wrapper loads the memory dump before the first run,
		// warming the hierarchy exactly as CF's replay does. Preload
		// order decides which lines survive eviction when the dump
		// exceeds the hierarchy, so it must not follow Go's randomized
		// map iteration: dump arrays in declaration (address) order.
		refd := referencedArrays(c)
		for _, a := range p.Arrays() {
			if refd[a.Name] {
				h.Preload(ds.Base(a.Name), ds.SizeBytes(a.Name))
			}
		}
	}

	varyCell := pr.cells[c.VaryParam]
	baseVary := int64(0)
	if varyCell != nil {
		baseVary = *varyCell
	}

	for k := 0; k < opts.Invocations; k++ {
		if inApp {
			// Between two in-app invocations the rest of the
			// application has trashed the cache — unless the codelet
			// works on the application's shared arrays, which the
			// neighboring codelets keep warm.
			if !c.WarmInApp {
				h.Flush()
			}
			if varyCell != nil && c.DatasetVariation > 0 {
				scale := 1 - c.DatasetVariation*float64(k%3)
				if scale < 0.05 {
					scale = 0.05
				}
				*varyCell = int64(float64(baseVary) * scale)
			}
		}
		h.ResetCounters()

		e := &execState{h: h}
		for _, n := range pr.root {
			n.run(e)
		}

		ctr := assemble(e, pr, opts, k)
		meas.Invocations = append(meas.Invocations, Invocation{
			Index: k, Seconds: ctr.Seconds, Counters: ctr,
		})
	}
	if varyCell != nil {
		*varyCell = baseVary
	}

	times := make([]float64, len(meas.Invocations))
	for i, inv := range meas.Invocations {
		times[i] = inv.Seconds
	}
	meas.Seconds = stats.Median(times)
	// Attach the counters of the invocation closest to the median.
	bestIdx, bestDiff := 0, -1.0
	for i, inv := range meas.Invocations {
		d := inv.Seconds - meas.Seconds
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestIdx, bestDiff = i, d
		}
	}
	meas.Counters = meas.Invocations[bestIdx].Counters
	return meas, nil
}

// assemble combines the walk's raw tallies into Counters under the
// machine's cost model.
func assemble(e *execState, pr *prepared, opts Options, invocation int) Counters {
	m := pr.machine
	line := float64(e.h.LineBytes())

	var ctr Counters
	ctr.Instructions = e.instr
	ctr.Ops = e.ops
	ctr.VecFPOps = e.vecFPOps
	ctr.MemLoads = e.memLoads
	ctr.MemStores = e.memStores
	for _, l := range e.h.Levels {
		ctr.LevelHits = append(ctr.LevelHits, l.Hits)
		ctr.LevelMisses = append(ctr.LevelMisses, l.Misses)
	}
	ctr.MemAccesses = e.h.MemAccesses
	ctr.MemWritebacks = e.h.MemWritebacks

	ctr.ComputeCycles = e.computeCycles
	ctr.BandwidthCycles = float64(ctr.MemAccesses+ctr.MemWritebacks) * line / m.MemBWBytesPerCycle
	ctr.ExposedLatCycles = e.exposedLat
	ctr.ProbeCycles = opts.ProbeCycles

	core := ctr.ComputeCycles
	if ctr.BandwidthCycles > core {
		core = ctr.BandwidthCycles
	}
	cycles := core + ctr.ExposedLatCycles + ctr.ProbeCycles

	// Deterministic measurement pseudo-noise.
	noise := 1 + opts.NoiseAmp*hashUnit(pr.codelet.Name, m.Name, invocation, opts.Seed)
	cycles *= noise

	ctr.Cycles = cycles
	ctr.Seconds = m.CyclesToSeconds(cycles)
	return ctr
}

// hashUnit returns a deterministic value in [-1, 1] from the
// measurement identity.
func hashUnit(codelet, machine string, invocation int, seed uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", codelet, machine, invocation, seed)
	v := h.Sum64()
	return float64(v%20001)/10000 - 1
}

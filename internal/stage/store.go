package stage

import (
	"container/list"
	"context"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Codec serializes one stage's artifacts for the Store's disk layer.
// Stages whose artifacts are not worth persisting (cheap to recompute,
// or referencing in-memory structures) resolve with a nil Codec and
// live only in the LRU.
type Codec interface {
	// Filename is the artifact's name inside the store directory. The
	// profile stage returns the same <suite>.json the server's registry
	// historically wrote, so stores and pre-stage registries can read
	// each other's files in both directions.
	Filename() string
	// Encode writes the artifact.
	Encode(w io.Writer, v any) error
	// Decode reads it back. Any error means "rebuild", never "fail".
	Decode(r io.Reader) (any, error)
	// Persist reports whether v should be written at all — the hook
	// that keeps degraded profiles off disk (a restart should retry the
	// measurements, not resurrect the outage).
	Persist(v any) bool
}

// Counters is one hit/miss row, either a per-stage breakdown entry or
// the store-wide total.
type Counters struct {
	// Hits served from the in-memory LRU.
	Hits int64 `json:"hits"`
	// Joined resolves that coalesced onto another caller's in-flight
	// computation of the same key.
	Joined int64 `json:"joined"`
	// Misses that entered fill (disk probe, then compute).
	Misses int64 `json:"misses"`
	// DiskHits are misses satisfied by decoding the on-disk artifact.
	DiskHits int64 `json:"diskHits"`
	// DiskWrites are computed artifacts persisted to disk.
	DiskWrites int64 `json:"diskWrites"`
}

func (c *Counters) add(d Counters) {
	c.Hits += d.Hits
	c.Joined += d.Joined
	c.Misses += d.Misses
	c.DiskHits += d.DiskHits
	c.DiskWrites += d.DiskWrites
}

// Stats is a Store snapshot for /metricz.
type Stats struct {
	Entries  int                 `json:"entries"`
	Capacity int                 `json:"capacity"`
	Total    Counters            `json:"total"`
	Stages   map[string]Counters `json:"stages"`
}

// Outcome reports how one Resolve was satisfied.
type Outcome struct {
	// Cached means compute did not run: the value came from the LRU,
	// from a coalesced in-flight computation, or from disk.
	Cached bool
	// Disk means the value was decoded from the on-disk artifact.
	Disk bool
}

// Store memoizes stage artifacts: an in-memory LRU over content
// addresses, with per-key singleflight coalescing (concurrent resolves
// of the same key run compute once and share the outcome) and an
// optional disk layer for stages with a Codec. Artifacts are treated
// as immutable once stored — the same contract pipeline.Profile
// already carries — so values are shared, never copied.
type Store struct {
	dir string
	cap int

	mu       sync.Mutex
	ll       *list.List            // front = most recently used; guarded by mu
	items    map[Key]*list.Element // guarded by mu
	inflight map[Key]*flight       // guarded by mu
	stages   map[string]*Counters  // guarded by mu
}

// entry is one LRU slot.
type entry struct {
	key Key
	val any
}

// flight is one in-progress computation; done is closed when val/out/
// err are final.
type flight struct {
	done chan struct{}
	val  any
	out  Outcome
	err  error
}

// NewStore builds a store holding at most capacity artifacts in
// memory, persisting Codec-bearing stages under dir ("" disables the
// disk layer).
func NewStore(capacity int, dir string) *Store {
	if capacity <= 0 {
		capacity = 1
	}
	return &Store{
		dir:      dir,
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		stages:   make(map[string]*Counters),
	}
}

// Dir returns the store's disk directory ("" when disk is disabled).
func (s *Store) Dir() string { return s.dir }

// counterLocked returns stage's counter row, creating it on first use.
func (s *Store) counterLocked(stage string) *Counters {
	//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
	c := s.stages[stage]
	if c == nil {
		c = &Counters{}
		//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
		s.stages[stage] = c
	}
	return c
}

// Resolve returns the artifact stored under key, computing and storing
// it on a miss. Exactly one caller runs compute per key at a time;
// concurrent resolves of the same key wait for that caller's outcome.
// A failed compute is not stored — the flight is dropped so a later
// Resolve retries. ctx bounds this caller's wait and is the context
// compute runs under; a caller whose ctx expires while coalesced gives
// up alone, without aborting the computing caller.
func (s *Store) Resolve(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, Outcome{}, err
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.counterLocked(stage).Hits++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, Outcome{Cached: true}, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.counterLocked(stage).Joined++
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Outcome{}, ctx.Err()
		}
		if f.err != nil {
			return nil, Outcome{}, f.err
		}
		return f.val, Outcome{Cached: true, Disk: f.out.Disk}, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.counterLocked(stage).Misses++
	s.mu.Unlock()

	f.val, f.out, f.err = s.fill(ctx, stage, key, codec, compute)

	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		if el, ok := s.items[key]; ok {
			el.Value.(*entry).val = f.val
			s.ll.MoveToFront(el)
		} else {
			s.items[key] = s.ll.PushFront(&entry{key: key, val: f.val})
			for s.ll.Len() > s.cap {
				last := s.ll.Back()
				s.ll.Remove(last)
				delete(s.items, last.Value.(*entry).key)
			}
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, f.out, f.err
}

// fill satisfies a miss: disk first (when the stage has a Codec), then
// compute, writing the fresh artifact back to disk.
func (s *Store) fill(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	if v, ok := s.loadDisk(stage, codec); ok {
		return v, Outcome{Cached: true, Disk: true}, nil
	}
	v, err := compute(ctx)
	if err != nil {
		return nil, Outcome{}, err
	}
	s.saveDisk(stage, codec, v)
	return v, Outcome{}, nil
}

// loadDisk decodes the stage's persisted artifact. Every failure mode
// (no disk layer, missing file, stale or corrupt content) reports !ok
// so the caller recomputes — the artifact can always be regenerated.
func (s *Store) loadDisk(stage string, codec Codec) (any, bool) {
	if s.dir == "" || codec == nil {
		return nil, false
	}
	f, err := os.Open(filepath.Join(s.dir, codec.Filename()))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	v, err := codec.Decode(f)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.counterLocked(stage).DiskHits++
	s.mu.Unlock()
	return v, true
}

// saveDisk persists a computed artifact via tmp+rename; failures are
// ignored (the artifact is already in memory, the disk copy is an
// optimization).
func (s *Store) saveDisk(stage string, codec Codec, v any) {
	if s.dir == "" || codec == nil || !codec.Persist(v) {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	path := filepath.Join(s.dir, codec.Filename())
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := codec.Encode(f, v); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	s.mu.Lock()
	s.counterLocked(stage).DiskWrites++
	s.mu.Unlock()
}

// Put stores an externally produced artifact under key, replacing any
// existing value — the adoption path for artifacts loaded from legacy
// cache files, which must win over whatever a rebuild would produce.
func (s *Store) Put(key Key, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: v})
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*entry).key)
	}
}

// Delete evicts key from the memory layer; disk artifacts, when any,
// are left alone. Callers use it to serve an artifact once without
// memoizing it — a later Resolve of the same key recomputes.
func (s *Store) Delete(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
}

// Get peeks at the LRU without counting a hit or touching recency.
func (s *Store) Get(key Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).val, true
}

// Len returns the current in-memory artifact count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries:  s.ll.Len(),
		Capacity: s.cap,
		Stages:   make(map[string]Counters, len(s.stages)),
	}
	for name, c := range s.stages {
		st.Stages[name] = *c
		st.Total.add(*c)
	}
	return st
}

package fault

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

// testProgram builds one tiny stream codelet.
func testProgram() (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("chaosapp")
	p.SetParam("n", 4096)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	p.MustAddCodelet(&ir.Codelet{
		Name: "chaos_copy", Invocations: 5,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
		}},
	})
	return p, p.Codelets[0]
}

func simOpts() sim.Options {
	return sim.Options{Machine: arch.Reference(), Mode: sim.ModeStandalone, Seed: 1, ProbeCycles: -1, NoiseAmp: -1}
}

func TestEmptyProfileIsTransparent(t *testing.T) {
	p, c := testProgram()
	clean, err := sim.Measure(p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(&Profile{Seed: 7}, nil)
	got, err := inj.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != clean.Seconds {
		t.Errorf("injector with no rules changed the measurement: %g vs %g", got.Seconds, clean.Seconds)
	}
	if len(got.Invocations) != len(clean.Invocations) {
		t.Errorf("invocation count changed: %d vs %d", len(got.Invocations), len(clean.Invocations))
	}
	for i := range got.Invocations {
		if got.Invocations[i].Seconds != clean.Invocations[i].Seconds {
			t.Errorf("invocation %d changed", i)
		}
	}
}

func TestNoiseIsBoundedAndDeterministic(t *testing.T) {
	p, c := testProgram()
	clean, err := sim.Measure(p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	profile := &Profile{Seed: 42, Rules: []Rule{{NoiseAmp: 0.1}}}
	first := NewInjector(profile, nil)
	a, err := first.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, inv := range a.Invocations {
		ratio := inv.Seconds / clean.Invocations[i].Seconds
		if ratio < 0.9-1e-12 || ratio > 1.1+1e-12 {
			t.Errorf("invocation %d noise ratio %g outside [0.9, 1.1]", i, ratio)
		}
	}
	// A fresh injector with the same seed replays the same perturbation.
	second := NewInjector(&Profile{Seed: 42, Rules: []Rule{{NoiseAmp: 0.1}}}, nil)
	b, err := second.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("same seed, different outcome: %g vs %g", a.Seconds, b.Seconds)
	}
	// A different seed perturbs differently.
	third := NewInjector(&Profile{Seed: 43, Rules: []Rule{{NoiseAmp: 0.1}}}, nil)
	cMeas, err := third.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds == cMeas.Seconds {
		t.Errorf("different seeds produced identical noise (possible but wildly unlikely)")
	}
	if st := first.Stats(); st.Noisy != 1 || st.Calls != 1 {
		t.Errorf("stats = %+v, want one noisy call", st)
	}
}

func TestMachineDownEpisodeEnds(t *testing.T) {
	p, c := testProgram()
	inj := NewInjector(&Profile{Seed: 1, Rules: []Rule{{Machine: "Nehalem", DownFor: 2}}}, nil)
	for attempt := 0; attempt < 2; attempt++ {
		_, err := inj.Measure(context.Background(), p, c, simOpts())
		if !errors.Is(err, ErrMachineDown) {
			t.Fatalf("attempt %d: err = %v, want ErrMachineDown", attempt, err)
		}
		if !IsTransient(err) {
			t.Fatalf("machine-down must be transient")
		}
	}
	if _, err := inj.Measure(context.Background(), p, c, simOpts()); err != nil {
		t.Fatalf("attempt after the episode: %v, want success", err)
	}
	if st := inj.Stats(); st.Downs != 2 {
		t.Errorf("Downs = %d, want 2", st.Downs)
	}
}

func TestRuleMatchingFirstWins(t *testing.T) {
	p := &Profile{Rules: []Rule{
		{Machine: "Atom", Codelet: "chaos_copy", DownFor: 1},
		{Machine: "Atom", TransientRate: 1},
		{NoiseAmp: 0.5},
	}}
	if r := p.match("Atom", "chaos_copy"); r.DownFor != 1 {
		t.Errorf("specific rule not matched first")
	}
	if r := p.match("Atom", "other"); r.TransientRate != 1 {
		t.Errorf("machine rule not matched")
	}
	if r := p.match("Core 2", "x"); r.NoiseAmp != 0.5 {
		t.Errorf("wildcard rule not matched")
	}
}

func TestPermanentVsTransientClassification(t *testing.T) {
	p, c := testProgram()
	perm := NewInjector(&Profile{Rules: []Rule{{PermanentRate: 1}}}, nil)
	_, err := perm.Measure(context.Background(), p, c, simOpts())
	if !errors.Is(err, ErrBroken) || IsTransient(err) {
		t.Errorf("permanent failure misclassified: %v", err)
	}
	tr := NewInjector(&Profile{Rules: []Rule{{TransientRate: 1}}}, nil)
	_, err = tr.Measure(context.Background(), p, c, simOpts())
	if !errors.Is(err, ErrInjected) || !IsTransient(err) {
		t.Errorf("transient failure misclassified: %v", err)
	}
	if IsTransient(context.Canceled) {
		t.Errorf("cancellation must not be transient")
	}
	if !IsTransient(context.DeadlineExceeded) {
		t.Errorf("deadline (cut-short hang) must be transient")
	}
	if IsTransient(nil) {
		t.Errorf("nil is not transient")
	}
}

func TestHangIsVisibleThroughDeadline(t *testing.T) {
	p, c := testProgram()
	inj := NewInjector(&Profile{Rules: []Rule{{HangRate: 1}}}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := inj.Measure(ctx, p, c, simOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Errorf("hang returned before the deadline")
	}
	if !IsTransient(err) {
		t.Errorf("a cut-short hang must be retryable")
	}
}

func TestDelayRespectsContext(t *testing.T) {
	p, c := testProgram()
	inj := NewInjector(&Profile{Rules: []Rule{{Delay: "5ms"}}}, nil)
	if err := inj.profile.Validate(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := inj.Measure(context.Background(), p, c, simOpts()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Errorf("delay not imposed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inj.Measure(ctx, p, c, simOpts()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled delay err = %v", err)
	}
}

func TestOutliersArePerturbed(t *testing.T) {
	p, c := testProgram()
	clean, err := sim.Measure(p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(&Profile{Seed: 3, Rules: []Rule{{OutlierRate: 1, OutlierScale: 25}}}, nil)
	got, err := inj.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Invocations {
		ratio := got.Invocations[i].Seconds / clean.Invocations[i].Seconds
		if math.Abs(ratio-25) > 1e-9 {
			t.Errorf("invocation %d scaled by %g, want 25", i, ratio)
		}
	}
}

func TestParseRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"rules":[{"noise":0.5}]}`, "valid fields"},
		{"rate above one", `{"rules":[{"transientRate":1.5}]}`, "must be in [0,1]"},
		{"negative rate", `{"rules":[{"hangRate":-0.1}]}`, "must be in [0,1]"},
		{"negative downFor", `{"rules":[{"downFor":-3}]}`, "downFor must be >= 0"},
		{"bad delay", `{"rules":[{"delay":"fast"}]}`, "not a non-negative Go duration"},
		{"negative delay", `{"rules":[{"delay":"-5ms"}]}`, "not a non-negative Go duration"},
		{"not json", `{`, "valid fields"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := Parse([]byte(`{"seed":9,"rules":[{"machine":"Atom","noiseAmp":0.05,"delay":"1ms"}]}`)); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestLoadReferenceProfile(t *testing.T) {
	p, err := Load(filepath.Join("testdata", "reference.json"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed == 0 || len(p.Rules) == 0 {
		t.Errorf("reference profile empty: %+v", p)
	}
	if _, err := Load(filepath.Join("testdata", "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"rules":[{"transientRate":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "[0,1]") {
		t.Errorf("bad rates accepted: %v", err)
	}
}

func TestConcurrentInjectionIsDeterministicPerAttempt(t *testing.T) {
	// Outcomes depend only on (machine, codelet, mode, attempt), never
	// on goroutine interleaving: with TransientRate=1 for one codelet,
	// every attempt of it fails and no attempt of the other does,
	// regardless of ordering.
	p, c := testProgram()
	inj := NewInjector(&Profile{Seed: 5, Rules: []Rule{{Codelet: "chaos_copy", TransientRate: 1}}}, nil)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := inj.Measure(context.Background(), p, c, simOpts())
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; !IsTransient(err) {
			t.Errorf("concurrent attempt err = %v, want transient", err)
		}
	}
	if st := inj.Stats(); st.Transients != 8 || st.Calls != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSimMeasurerHonorsCancellation(t *testing.T) {
	p, c := testProgram()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Sim{}).Measure(ctx, p, c, simOpts()); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestStatsString(t *testing.T) {
	// Stats must be JSON-marshalable for /metricz.
	var s Stats
	s.Calls = 3
	if got := fmt.Sprintf("%+v", s); !strings.Contains(got, "3") {
		t.Errorf("stats unprintable: %s", got)
	}
}

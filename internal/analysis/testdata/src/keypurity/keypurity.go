// Corpus for the keypurity check: no value derived from map iteration
// order, the wall clock, math/rand, or pointer formatting may reach a
// KeyBuilder write method. The KeyBuilder here mirrors the
// stage.KeyBuilder surface — the check matches by type name so the
// corpus and the real tree exercise the same code path.
package keypurity

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// KeyBuilder is the corpus stand-in for stage.KeyBuilder.
type KeyBuilder struct {
	parts []string
}

// NewKey opens a key for the named stage at a format version.
func NewKey(stage, version string) *KeyBuilder {
	return &KeyBuilder{parts: []string{stage, version}}
}

func (b *KeyBuilder) Str(s string) *KeyBuilder {
	b.parts = append(b.parts, s)
	return b
}

func (b *KeyBuilder) Strs(ss []string) *KeyBuilder {
	b.parts = append(b.parts, ss...)
	return b
}

func (b *KeyBuilder) Int(v int) *KeyBuilder {
	return b.Str(strconv.Itoa(v))
}

func (b *KeyBuilder) Uint64(v uint64) *KeyBuilder {
	return b.Str(strconv.FormatUint(v, 10))
}

func (b *KeyBuilder) Float(v float64) *KeyBuilder {
	return b.Str(strconv.FormatFloat(v, 'g', -1, 64))
}

func (b *KeyBuilder) Key() string {
	out := ""
	for _, p := range b.parts {
		out += "/" + p
	}
	return out
}

// badMapRange is the seeded regression: keying directly off a map
// range emits parts in a different order every run.
func badMapRange(kb *KeyBuilder, opts map[string]string) {
	for k, v := range opts {
		kb.Str(k) // want "value derived from map iteration order reaches KeyBuilder.Str"
		kb.Str(v) // want "value derived from map iteration order reaches KeyBuilder.Str"
	}
}

// badDerived: taint survives assignment chains and concatenation.
func badDerived(kb *KeyBuilder, opts map[string]string) {
	for k := range opts {
		tagged := "opt-" + k
		kb.Str(tagged) // want "value derived from map iteration order reaches KeyBuilder.Str"
	}
}

// goodSorted is the sanctioned idiom: collect, sort, then key. The
// sort call launders the slice.
func goodSorted(kb *KeyBuilder, opts map[string]string) {
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kb.Strs(keys)
	for _, k := range keys {
		kb.Str(opts[k])
	}
}

// badClock: wall-clock values hash differently every run.
func badClock(kb *KeyBuilder) {
	stamp := time.Now().UnixNano()
	kb.Int(int(stamp)) // want "value derived from the wall clock \(time.UnixNano\) reaches KeyBuilder.Int"
}

// badClockDirect: the source call can sit right in the argument.
func badClockDirect(kb *KeyBuilder) {
	kb.Float(time.Since(time.Time{}).Seconds()) // want "value derived from the wall clock"
}

// badRand: random key material defeats content addressing outright.
func badRand(kb *KeyBuilder) {
	kb.Uint64(rand.Uint64()) // want "value derived from math/rand \(Uint64\) reaches KeyBuilder.Uint64"
}

// badPointer: %p renders an address, unique per process.
func badPointer(kb *KeyBuilder, cfg *KeyBuilder) {
	id := fmt.Sprintf("%p", cfg)
	kb.Str(id) // want "value derived from pointer formatting \(%p\) reaches KeyBuilder.Str"
}

// badNewKey: NewKey's own arguments are key material too.
func badNewKey(cfg *KeyBuilder) *KeyBuilder {
	return NewKey(fmt.Sprintf("stage-%p", cfg), "v1") // want "value derived from pointer formatting \(%p\) reaches NewKey"
}

// goodStable: constants, parameters, and derived-but-clean values are
// all fine.
func goodStable(kb *KeyBuilder, suite string, seed uint64, ks []int) {
	kb.Str(suite)
	kb.Uint64(seed)
	for _, k := range ks {
		kb.Int(k) // slice iteration order is deterministic
	}
	kb.Str(fmt.Sprintf("%d-%s", seed, suite)) // %d/%s formatting is stable
}

// suppressed documents a sanctioned impurity (a debug-only key).
func suppressed(kb *KeyBuilder, opts map[string]bool) {
	for k := range opts {
		//fgbs:allow keypurity corpus: debug key, never persisted
		kb.Str(k)
	}
}

// Key is the corpus stand-in for stage.Key: a content hash, so its
// String rendering is deterministic by construction.
type Key string

func (k Key) String() string { return string(k) }

// HTTPBackend is the corpus stand-in for the peer tier's backend; its
// artifactURL builds the request path a peer fetch hits, which makes
// it a keypurity sink like the KeyBuilder writes.
type HTTPBackend struct{ peers []string }

func (b *HTTPBackend) artifactURL(peer string, key Key) string {
	return peer + "/v1/artifacts/" + key.String()
}

// badPeerMapRange: a peer URL pulled out of a map range routes each
// fetch to a different mirror run to run.
func badPeerMapRange(b *HTTPBackend, mirrors map[string]bool, key Key) {
	for base := range mirrors {
		_ = b.artifactURL(base, key) // want "value derived from map iteration order reaches HTTPBackend.artifactURL"
	}
}

// goodPeerSlice mirrors the real fetch loop: peers live in a slice,
// iterated in order.
func goodPeerSlice(b *HTTPBackend, key Key) {
	for _, base := range b.peers {
		_ = b.artifactURL(base, key)
	}
}

// goodKeyString: Key.String() launders — whichever key the map range
// hands over, its rendered form is a content hash that resolves
// identically everywhere, so paths derived from it are clean.
func goodKeyString(kb *KeyBuilder, b *HTTPBackend, index map[string]Key) {
	for _, k := range index {
		path := "/v1/artifacts/" + k.String()
		kb.Str(path)
		_ = b.artifactURL("http://peer:8093", Key(k.String()))
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// goroutineleakCheck keeps goroutines cancellable: a goroutine
// launched from a function that holds a context.Context must either
// observe cancellation (receive from ctx.Done() in its body, take a
// ctx parameter of its own, or call a same-package function that
// observes Done) or be joined by a sync.WaitGroup the launcher waits
// on. Otherwise cancellation of the launcher strands the goroutine —
// the jobs pool, singleflight waiters, and pipeline fan-outs all leak
// one goroutine per canceled request under that bug.
//
// Functions without a ctx in scope are out of scope by design:
// lifetime there is the owner's responsibility (the worker pool
// started by a constructor, say), not the cancellation graph's.
var goroutineleakCheck = &Check{
	Name: "goroutineleak",
	Doc:  "goroutines launched from ctx-holding functions must observe ctx.Done() or be WaitGroup-joined",
	run:  runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	sum := p.Pkg.summary()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasCtxParam(p, fn.Type) {
					scanGoStmts(p, sum, fn.Name.Name, fn.Body)
					return false // nested literals already covered
				}
			case *ast.FuncLit:
				if hasCtxParam(p, fn.Type) {
					scanGoStmts(p, sum, "func literal", fn.Body)
					return false
				}
			}
			return true
		})
	}
}

// scanGoStmts inspects a ctx-holding body (nested closures included —
// they still see ctx) for go statements and judges each launch.
func scanGoStmts(p *Pass, sum *pkgSummary, launcher string, body *ast.BlockStmt) {
	// The WaitGroup-join rule needs launcher-side context: which
	// WaitGroups does this body Wait() on?
	waited := waitGroupsWaitedOn(p.Pkg, body)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goroutineIsCovered(p, sum, g.Call, waited) {
			return true
		}
		p.Reportf(g.Pos(), "goroutine launched from ctx-holding %s neither observes ctx.Done() nor is joined by a waited-on sync.WaitGroup; cancellation strands it",
			launcher)
		return true
	})
}

// goroutineIsCovered decides whether the launched call is safe under
// cancellation.
func goroutineIsCovered(p *Pass, sum *pkgSummary, call *ast.CallExpr, waited map[types.Object]bool) bool {
	// Any call form: passing a context argument hands the callee the
	// means to stop itself.
	for _, arg := range call.Args {
		if tv, ok := p.Pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		if litObservesDone(p, sum, fun) {
			return true
		}
		// WaitGroup join: the literal calls wg.Done() on a group the
		// launcher waits on.
		return litJoinsWaitGroup(p.Pkg, fun, waited)
	default:
		callee := calleeFunc(p.Pkg, call)
		if callee == nil {
			// Dynamic launch with no ctx argument: cannot prove
			// coverage; report.
			return false
		}
		if fs := sum.funcs[callee]; fs != nil {
			return fs.hasCtxParam || sum.observesDoneClosed(callee)
		}
		// Cross-package callee: trust a context parameter (checked
		// above via the arguments); otherwise report.
		return false
	}
}

// litObservesDone reports whether the literal's body receives from a
// context's Done() channel, directly or through a same-package call.
func litObservesDone(p *Pass, sum *pkgSummary, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isDoneObservation(p.Pkg, call) {
			found = true
			return false
		}
		if callee := calleeFunc(p.Pkg, call); callee != nil && sum.observesDoneClosed(callee) {
			found = true
			return false
		}
		return true
	})
	return found
}

// litJoinsWaitGroup reports whether the literal calls Done() on a
// sync.WaitGroup the launcher Wait()s on.
func litJoinsWaitGroup(pkg *Package, lit *ast.FuncLit, waited map[types.Object]bool) bool {
	if len(waited) == 0 {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isWaitGroupMethod(pkg, call, "Done") {
			return true
		}
		if obj := waitGroupOperand(pkg, call); obj != nil && waited[obj] {
			found = true
		}
		return false
	})
	return found
}

// waitGroupsWaitedOn collects the WaitGroup objects the body calls
// Wait() on (closures included — a Wait inside a helper literal still
// blocks the launch scope that invokes it).
func waitGroupsWaitedOn(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isWaitGroupMethod(pkg, call, "Wait") {
			return true
		}
		if obj := waitGroupOperand(pkg, call); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// waitGroupOperand resolves the WaitGroup value a method call operates
// on to its types.Object: the variable for `wg.Done()`, the field for
// `m.wg.Done()`. Nil when the operand is too dynamic to resolve.
func waitGroupOperand(pkg *Package, call *ast.CallExpr) types.Object {
	sel := call.Fun.(*ast.SelectorExpr)
	switch x := sel.X.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[x]; s != nil {
			return s.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	case *ast.UnaryExpr: // (&wg).Done()
		if id, ok := x.X.(*ast.Ident); ok {
			return pkg.Info.Uses[id]
		}
	}
	return nil
}

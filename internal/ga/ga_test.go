package ga

import (
	"context"
	"errors"
	"math"
	"testing"

	"fgbs/internal/features"
)

// targetFitness rewards masks close to a hidden target mask: the
// number of mismatched bits. The GA must drive it to (near) zero.
func targetFitness(target features.Mask) Fitness {
	return func(m features.Mask) float64 {
		miss := 0.0
		for i := 0; i < features.NumFeatures; i++ {
			if m.Get(i) != target.Get(i) {
				miss++
			}
		}
		return miss
	}
}

func TestConvergesToTarget(t *testing.T) {
	target := features.MaskOf(1, 5, 9, 20, 33, 41, 60, 75)
	res, err := Run(targetFitness(target), Options{
		Population:   120,
		Generations:  60,
		MutationProb: 0.01,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 2 {
		t.Errorf("GA stalled at fitness %g (mismatched bits)", res.BestFitness)
	}
}

func TestHistoryMonotone(t *testing.T) {
	target := features.MaskOf(3, 14, 15)
	res, err := Run(targetFitness(target), Options{
		Population: 50, Generations: 30, MutationProb: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 30 {
		t.Fatalf("history length %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best fitness worsened at generation %d", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	target := features.MaskOf(2, 30, 55)
	opts := Options{Population: 40, Generations: 15, MutationProb: 0.01, Seed: 99}
	r1, err := Run(targetFitness(target), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(targetFitness(target), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestFitness != r2.BestFitness || r1.Best != r2.Best {
		t.Error("same seed produced different results")
	}
}

func TestFitnessPressureTowardSmallSets(t *testing.T) {
	// With fitness = count (like the paper's x K term alone), the GA
	// must shrink masks; the empty mask is guarded to +Inf, so the
	// optimum is a single bit.
	fit := func(m features.Mask) float64 { return float64(m.Count()) }
	res, err := Run(fit, Options{Population: 80, Generations: 40, MutationProb: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Count() > 2 {
		t.Errorf("GA kept %d features where 1 suffices", res.Best.Count())
	}
	if res.Best.Count() == 0 {
		t.Error("empty mask won despite +Inf guard")
	}
}

func TestOnGenerationCallback(t *testing.T) {
	calls := 0
	_, err := Run(func(features.Mask) float64 { return 1 }, Options{
		Population: 10, Generations: 5, MutationProb: 0.01, Seed: 1,
		OnGeneration: func(gen int, best float64, m features.Mask) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("callback ran %d times", calls)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Run(nil, Options{Population: 10, Generations: 1}); err == nil {
		t.Error("nil fitness accepted")
	}
	f := func(features.Mask) float64 { return 0 }
	if _, err := Run(f, Options{Population: 1, Generations: 1}); err == nil {
		t.Error("population 1 accepted")
	}
	if _, err := Run(f, Options{Population: 10, Generations: 0}); err == nil {
		t.Error("zero generations accepted")
	}
	if _, err := Run(f, Options{Population: 10, Generations: 1, MutationProb: 2}); err == nil {
		t.Error("mutation prob 2 accepted")
	}
}

func TestEvaluationCount(t *testing.T) {
	res, err := Run(func(features.Mask) float64 { return 1 }, Options{
		Population: 20, Generations: 4, MutationProb: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 80 {
		t.Errorf("evaluations = %d, want 80", res.Evaluations)
	}
}

func TestParallelFitnessSafe(t *testing.T) {
	// A fitness that spins briefly makes races likely under -race.
	fit := func(m features.Mask) float64 {
		s := 0.0
		for i := 0; i < 1000; i++ {
			s += math.Sqrt(float64(i + m.Count()))
		}
		return s - math.Floor(s)
	}
	if _, err := Run(fit, Options{Population: 32, Generations: 3, MutationProb: 0.05, Seed: 5, Workers: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestRunContextCanceled: a canceled context aborts the run with the
// context's error — before the first generation, and mid-run via
// OnGeneration.
func TestRunContextCanceled(t *testing.T) {
	target := features.MaskOf(1, 5, 9)
	opts := Options{Population: 50, Generations: 40, MutationProb: 0.01, Seed: 3}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := RunContext(ctx, targetFitness(target), opts); !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("pre-canceled run = (%v, %v), want (nil, context.Canceled)", res, err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	gens := 0
	opts.OnGeneration = func(gen int, best float64, mask features.Mask) {
		gens++
		if gen == 2 {
			cancel()
		}
	}
	if res, err := RunContext(ctx, targetFitness(target), opts); !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("mid-run cancel = (%v, %v), want (nil, context.Canceled)", res, err)
	}
	if gens < 3 || gens >= opts.Generations {
		t.Errorf("observed %d generations before abort, want a handful", gens)
	}
}

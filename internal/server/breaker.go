package server

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Breaker defaults (overridable via Config).
const (
	// DefaultBreakerThreshold is how many consecutive failures open a
	// circuit.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open circuit waits before
	// letting one half-open probe through.
	DefaultBreakerCooldown = 30 * time.Second
)

// breakerSet is a family of circuit breakers keyed by string — one per
// suite build ("suite:<name>") plus data-level breakers per degraded
// measurement source ("ref:<suite>", "target:<suite>/<machine>").
//
// Each breaker follows the classic three-state machine:
//
//	closed ── threshold consecutive failures ──> open
//	open ── cooldown elapsed, one probe allowed ──> half-open
//	half-open ── probe succeeds ──> closed
//	half-open ── probe fails ──> open (cooldown restarts)
//
// The clock is injected so tests can drive the cooldown
// deterministically instead of sleeping.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState // guarded by mu
	trips  int64                    // cumulative closed->open transitions; guarded by mu
}

// breakerState is one key's breaker. All fields guarded by breakerSet.mu.
type breakerState struct {
	failures int // consecutive failures since the last success
	open     bool
	openedAt time.Time // start of the current cooldown window
	probing  bool      // a half-open probe is in flight
}

func newBreakerSet(threshold int, cooldown time.Duration, now func() time.Time) *breakerSet {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now //fgbs:allow determinism breaker cooldowns pace recovery probes; no experiment result reads the clock
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		states:    make(map[string]*breakerState),
	}
}

// allow reports whether a caller may attempt the guarded operation.
// Closed circuits always allow; open circuits allow exactly one
// half-open probe per cooldown window.
func (b *breakerSet) allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return true
	}
	if st.probing || b.now().Sub(st.openedAt) < b.cooldown {
		return false
	}
	st.probing = true
	return true
}

// succeed closes the circuit (a successful attempt or probe).
func (b *breakerSet) succeed(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, key)
}

// fail records a failed attempt. The circuit opens after threshold
// consecutive failures; a failed half-open probe re-opens it and
// restarts the cooldown.
func (b *breakerSet) fail(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.failures++
	st.probing = false
	if !st.open && st.failures >= b.threshold {
		st.open = true
		b.trips++
	}
	if st.open {
		st.openedAt = b.now()
	}
}

// trip opens the circuit immediately, bypassing the failure threshold —
// used when an outage is directly observed in the data (a degraded
// profile) rather than inferred from repeated errors.
func (b *breakerSet) trip(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.failures++
	st.probing = false
	if !st.open {
		st.open = true
		b.trips++
	}
	st.openedAt = b.now()
}

// clearPrefix closes every breaker whose key starts with prefix (the
// per-target breakers of a suite that rebuilt cleanly).
func (b *breakerSet) clearPrefix(prefix string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.states {
		if strings.HasPrefix(k, prefix) {
			delete(b.states, k)
		}
	}
}

// isOpen reports whether key's circuit is currently open.
func (b *breakerSet) isOpen(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	return st != nil && st.open
}

// retryIn reports how long until an open circuit admits its next
// probe (zero if closed or already due).
func (b *breakerSet) retryIn(key string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return 0
	}
	d := b.cooldown - b.now().Sub(st.openedAt)
	if d < 0 {
		d = 0
	}
	return d
}

// breakerInfo is one breaker's externally visible state (healthz,
// metricz).
type breakerInfo struct {
	Key      string `json:"key"`
	State    string `json:"state"` // closed | open | half-open
	Failures int    `json:"failures"`
	// RetryInSeconds is the remaining cooldown of an open circuit.
	RetryInSeconds float64 `json:"retryInSeconds,omitempty"`
}

// snapshot returns every tracked breaker sorted by key, plus the
// cumulative trip count.
func (b *breakerSet) snapshot() ([]breakerInfo, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	infos := make([]breakerInfo, 0, len(b.states))
	for k, st := range b.states {
		info := breakerInfo{Key: k, State: "closed", Failures: st.failures}
		if st.open {
			info.State = "open"
			if st.probing {
				info.State = "half-open"
			}
			if d := b.cooldown - now.Sub(st.openedAt); d > 0 {
				info.RetryInSeconds = d.Seconds()
			}
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, b.trips
}

// anyOpen reports whether any circuit is open or probing.
func (b *breakerSet) anyOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, st := range b.states {
		if st.open {
			return true
		}
	}
	return false
}

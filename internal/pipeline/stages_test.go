package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/cluster"
	"fgbs/internal/fault"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
	"fgbs/internal/stage"
)

// stageInputs is one full set of key-derivation inputs.
type stageInputs struct {
	progs       []*ir.Program
	opts        Options
	measurerKey string
	mask        features.Mask
	cfg         SubsetConfig
	k           int
	target      int
}

func baseInputs() stageInputs {
	return stageInputs{
		progs:  tinySuite(),
		opts:   Options{Seed: 1},
		mask:   tinyMask,
		k:      3,
		target: 0,
	}
}

// stageOrder is the DAG in topological order.
var stageOrder = []string{"detect", "profile", "normalize", "cluster", "represent", "predict"}

// allKeys derives every stage key for one input set, chaining upstream
// keys exactly as the engine does.
func allKeys(in stageInputs) map[string]stage.Key {
	dk := detectKey(in.progs)
	pk := profileKey(dk, in.opts, in.measurerKey)
	nk := normalizeKey(pk, in.mask, in.cfg)
	ck := clusterKey(nk, in.cfg)
	rk := representKey(ck, in.k, in.cfg)
	return map[string]stage.Key{
		"detect":    dk,
		"profile":   pk,
		"normalize": nk,
		"cluster":   ck,
		"represent": rk,
		"predict":   predictKey(rk, in.target),
	}
}

// TestStageKeyInvalidation pins the invalidation frontier: each input
// change must invalidate exactly the stage it feeds and everything
// downstream of it — never anything upstream, so cached upstream
// artifacts keep hitting.
func TestStageKeyInvalidation(t *testing.T) {
	base := allKeys(baseInputs())
	cases := []struct {
		name string
		mut  func(*stageInputs)
		// from is the first (most upstream) stage whose key must
		// change; "" means no key changes at all.
		from string
	}{
		{"program source", func(in *stageInputs) {
			in.progs[0].Codelets[0].Invocations++
		}, "detect"},
		{"uncovered fraction", func(in *stageInputs) {
			in.progs[0].UncoveredFraction = 0.25
		}, "detect"},
		{"seed", func(in *stageInputs) { in.opts.Seed = 2 }, "profile"},
		{"targets", func(in *stageInputs) {
			in.opts.Targets = arch.Targets()[:2]
		}, "profile"},
		{"measurer key", func(in *stageInputs) {
			in.measurerKey = "fault:deadbeef"
		}, "profile"},
		{"workers is excluded", func(in *stageInputs) {
			in.opts.Workers = 7
		}, ""},
		{"feature mask", func(in *stageInputs) {
			in.mask = features.AllMask()
		}, "normalize"},
		{"no-normalize ablation", func(in *stageInputs) {
			in.cfg.NoNormalize = true
		}, "normalize"},
		{"linkage", func(in *stageInputs) {
			in.cfg.Linkage = cluster.Complete
		}, "cluster"},
		{"cluster count", func(in *stageInputs) { in.k = 4 }, "represent"},
		{"rep strategy ablation", func(in *stageInputs) {
			in.cfg.RepStrategy = RepFirst
		}, "represent"},
		{"screening ablation", func(in *stageInputs) {
			in.cfg.IgnoreScreening = true
		}, "represent"},
		{"target index", func(in *stageInputs) { in.target = 1 }, "predict"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := baseInputs()
			tc.mut(&in)
			got := allKeys(in)
			invalidated := false
			for _, s := range stageOrder {
				invalidated = invalidated || s == tc.from
				if invalidated && got[s] == base[s] {
					t.Errorf("stage %s not invalidated", s)
				}
				if !invalidated && got[s] != base[s] {
					t.Errorf("stage %s invalidated upstream of %s", s, tc.from)
				}
			}
		})
	}
}

// stagedFixture wraps the shared tiny profile in a fresh engine.
func stagedFixture(t *testing.T) *Staged {
	t.Helper()
	eng := NewEngine(stage.NewStore(128, ""))
	return eng.Adopt(tinySuite(), StageOptions{Options: Options{Seed: 1}}, tinyProfile(t))
}

func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStagedMatchesMonolith is the golden regression: every staged
// entry point must be byte-identical to its monolithic counterpart.
// Subset carries an unexported prediction model, so subsets are
// compared through their exported Selection and through the Eval they
// produce, not by marshaling the Subset itself.
func TestStagedMatchesMonolith(t *testing.T) {
	prof := tinyProfile(t)
	st := stagedFixture(t)
	ctx := context.Background()

	for _, k := range []int{0, 2, 3, 5} {
		monoSub, err := prof.Subset(tinyMask, k)
		if err != nil {
			t.Fatal(err)
		}
		stagedSub, err := st.Subset(ctx, tinyMask, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(monoSub.Selection, stagedSub.Selection) {
			t.Errorf("k=%d: staged Selection = %+v, monolith %+v", k, stagedSub.Selection, monoSub.Selection)
		}
		if monoSub.RequestedK != stagedSub.RequestedK {
			t.Errorf("k=%d: RequestedK %d vs %d", k, stagedSub.RequestedK, monoSub.RequestedK)
		}
		for tt := range prof.Targets {
			monoEv, err := prof.Evaluate(monoSub, tt)
			if err != nil {
				t.Fatal(err)
			}
			_, stagedEv, err := st.Evaluate(ctx, tinyMask, k, tt)
			if err != nil {
				t.Fatal(err)
			}
			if m, s := asJSON(t, monoEv), asJSON(t, stagedEv); !bytes.Equal(m, s) {
				t.Errorf("k=%d target %d: staged Eval diverges\nmonolith: %s\nstaged:   %s", k, tt, m, s)
			}
		}
	}

	cfg := SubsetConfig{Linkage: cluster.Average, NoNormalize: true, RepStrategy: RepFirst, IgnoreScreening: true}
	monoSub, err := prof.SubsetWith(tinyMask, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stagedSub, err := st.SubsetWith(ctx, tinyMask, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(monoSub.Selection, stagedSub.Selection) {
		t.Errorf("ablation config: staged Selection = %+v, monolith %+v", stagedSub.Selection, monoSub.Selection)
	}

	mono, err := prof.SweepK(tinyMask, 2, prof.N())
	if err != nil {
		t.Fatal(err)
	}
	staged, err := st.SweepK(ctx, tinyMask, 2, prof.N())
	if err != nil {
		t.Fatal(err)
	}
	if m, s := asJSON(t, mono), asJSON(t, staged); !bytes.Equal(m, s) {
		t.Errorf("staged SweepK diverges\nmonolith: %s\nstaged:   %s", m, s)
	}
	par, err := st.SweepKParallel(ctx, tinyMask, 2, prof.N(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m, s := asJSON(t, mono), asJSON(t, par); !bytes.Equal(m, s) {
		t.Errorf("staged SweepKParallel diverges from serial monolith")
	}

	monoRand, err := prof.RandomClusterings(tinyMask, 3, 20, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	stagedRand, err := st.RandomClusteringsParallel(ctx, tinyMask, 3, 20, 0, 42, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(monoRand, stagedRand) {
		t.Errorf("staged RandomClusterings = %+v, monolith %+v", stagedRand, monoRand)
	}
}

// countingMeasurer is the clean simulator with an invocation counter:
// the probe for "did profiling actually re-measure?".
type countingMeasurer struct {
	n atomic.Int64
}

func (m *countingMeasurer) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	m.n.Add(1)
	return fault.Sim{}.Measure(ctx, p, c, opts)
}

// TestSweepKProfilesExactlyOnce is the issue's acceptance criterion: a
// K sweep over 8 cut values through the staged pipeline must run the
// Detect and Profile stages exactly once, with every simulator
// invocation happening during that single profiling run.
func TestSweepKProfilesExactlyOnce(t *testing.T) {
	cm := &countingMeasurer{}
	eng := NewEngine(stage.NewStore(256, ""))
	opts := StageOptions{Options: Options{Seed: 1, Measurer: cm}, MeasurerKey: "counting"}
	ctx := context.Background()

	st, out, err := eng.Profile(ctx, tinySuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("first profile reported cached")
	}
	profiled := cm.n.Load()
	if profiled == 0 {
		t.Fatal("profiling ran no measurements")
	}

	pts, err := st.SweepK(ctx, tinyMask, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("sweep returned %d points, want 8", len(pts))
	}
	if n := cm.n.Load(); n != profiled {
		t.Errorf("sweep ran %d extra measurements, want 0", n-profiled)
	}

	// A second resolve with identical options reuses the profile too.
	st2, out, err := eng.Profile(ctx, tinySuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("second profile resolve not served from cache")
	}
	if st2.Profile() != st.Profile() {
		t.Error("second resolve returned a different profile instance")
	}
	if n := cm.n.Load(); n != profiled {
		t.Errorf("second resolve ran %d extra measurements", n-profiled)
	}
	stats := eng.Store().Stats()
	for _, s := range []string{"detect", "profile"} {
		if m := stats.Stages[s].Misses; m != 1 {
			t.Errorf("stage %s ran %d times, want 1", s, m)
		}
	}
}

// TestEngineProfileMatchesMonolith pins that an engine-built profile —
// which consumes the memoized detect artifact instead of re-detecting —
// serializes byte-identically to the monolithic NewProfile.
func TestEngineProfileMatchesMonolith(t *testing.T) {
	mono := tinyProfile(t)
	eng := NewEngine(stage.NewStore(16, ""))
	st, _, err := eng.Profile(context.Background(), tinySuite(), StageOptions{Options: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := mono.SaveJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.Profile().SaveJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("engine-built profile diverges from monolithic NewProfile")
	}
}

// flakyMeasurer breaks every measurement of one codelet until healed —
// the smallest fixture that produces a degraded profile and then a
// clean rebuild under identical stage options.
type flakyMeasurer struct {
	broken string
	healed atomic.Bool
}

func (m *flakyMeasurer) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	if !m.healed.Load() && c.Name == m.broken {
		return nil, errInjectedFault
	}
	return fault.Sim{}.Measure(ctx, p, c, opts)
}

var errInjectedFault = errors.New("injected permanent fault")

// TestDegradedProfileDoesNotPoisonRebuild pins the recovery guarantee:
// derived stages computed from a degraded profile (zeroed features,
// screened codelets) must never be served to a clean rebuild resolving
// under the same profile key.
func TestDegradedProfileDoesNotPoisonRebuild(t *testing.T) {
	fm := &flakyMeasurer{broken: "beta_gather"}
	eng := NewEngine(stage.NewStore(256, ""))
	opts := StageOptions{Options: Options{Seed: 1, Measurer: fm}, MeasurerKey: "flaky"}
	ctx := context.Background()

	bad, _, err := eng.Profile(ctx, tinySuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Profile().Degraded() {
		t.Fatal("fixture did not produce a degraded profile")
	}
	// Warm every derived stage from the degraded profile, exactly what
	// a server answering requests during the outage would do.
	for tt := range bad.Profile().Targets {
		if _, _, err := bad.Evaluate(ctx, tinyMask, 3, tt); err != nil {
			t.Fatal(err)
		}
	}

	fm.healed.Store(true)
	good, out, err := eng.Profile(ctx, tinySuite(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("degraded profile was memoized: rebuild served from cache")
	}
	if good.Profile().Degraded() {
		t.Fatal("healed rebuild still degraded")
	}
	if good.Key() == bad.Key() {
		t.Error("degraded and clean Staged handles share a stage key")
	}

	// Every staged answer from the clean rebuild must match the clean
	// monolith — not the degraded run's cached artifacts.
	for tt := range good.Profile().Targets {
		sub, gotEv, err := good.Evaluate(ctx, tinyMask, 3, tt)
		if err != nil {
			t.Fatal(err)
		}
		monoSub, err := good.Profile().Subset(tinyMask, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(monoSub.Selection, sub.Selection) {
			t.Errorf("target %d: clean rebuild served the degraded run's subset", tt)
		}
		wantEv, err := good.Profile().Evaluate(monoSub, tt)
		if err != nil {
			t.Fatal(err)
		}
		if m, s := asJSON(t, wantEv), asJSON(t, gotEv); !bytes.Equal(m, s) {
			t.Errorf("target %d: clean rebuild served a degraded evaluation\nwant: %s\ngot:  %s", tt, m, s)
		}
	}
}

// TestDiskArtifactsKeyedByOptions pins the disk-layer isolation
// contract: profiles persist under key-qualified filenames, so
// fault-injected and clean runs (or runs with different seeds) sharing
// one directory never adopt each other's artifacts, while a bare
// legacy <suite>.json is still adopted by measurer-free resolves only.
func TestDiskArtifactsKeyedByOptions(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cleanOpts := StageOptions{Options: Options{Seed: 1}, DiskName: "tiny.json"}

	if _, _, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), cleanOpts); err != nil {
		t.Fatal(err)
	}
	keyed, err := filepath.Glob(filepath.Join(dir, "tiny-*.json"))
	if err != nil || len(keyed) != 1 {
		t.Fatalf("keyed files = %v (err %v), want exactly one", keyed, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tiny.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("bare legacy name was written (stat err %v)", err)
	}

	// Same options, fresh process: the keyed artifact satisfies the
	// miss from disk.
	if _, out, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), cleanOpts); err != nil || !out.Disk {
		t.Fatalf("warm clean resolve: out=%+v err=%v, want disk hit", out, err)
	}

	// A fault-keyed resolve over the same directory must re-measure,
	// not adopt the clean artifact.
	cm := &countingMeasurer{}
	faultOpts := StageOptions{Options: Options{Seed: 1, Measurer: cm}, MeasurerKey: "fault:deadbeef", DiskName: "tiny.json"}
	if _, out, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), faultOpts); err != nil {
		t.Fatal(err)
	} else if out.Disk {
		t.Error("fault-keyed resolve adopted a clean disk artifact")
	}
	if cm.n.Load() == 0 {
		t.Error("fault-keyed resolve ran no measurements")
	}

	// A different seed must re-measure too.
	if _, out, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), StageOptions{Options: Options{Seed: 2}, DiskName: "tiny.json"}); err != nil {
		t.Fatal(err)
	} else if out.Disk {
		t.Error("different-seed resolve adopted another seed's artifact")
	}
}

// TestLegacyBareProfileAdoptedOnlyWhenMeasurerFree pins the read-only
// legacy fallback: a pre-stage <suite>.json is adopted by a clean
// resolve but never by a fault-keyed one.
func TestLegacyBareProfileAdoptedOnlyWhenMeasurerFree(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	f, err := os.Create(filepath.Join(dir, "tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tinyProfile(t).SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, out, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), StageOptions{Options: Options{Seed: 1}, DiskName: "tiny.json"})
	if err != nil || !out.Disk {
		t.Fatalf("clean resolve over legacy file: out=%+v err=%v, want adoption", out, err)
	}
	if st.Profile().N() != tinyProfile(t).N() {
		t.Errorf("adopted profile has %d codelets, want %d", st.Profile().N(), tinyProfile(t).N())
	}

	cm := &countingMeasurer{}
	if _, out, err := NewEngine(stage.NewStore(8, dir)).Profile(ctx, tinySuite(), StageOptions{Options: Options{Seed: 1, Measurer: cm}, MeasurerKey: "fault:deadbeef", DiskName: "tiny.json"}); err != nil {
		t.Fatal(err)
	} else if out.Disk || cm.n.Load() == 0 {
		t.Errorf("fault-keyed resolve adopted the legacy clean profile (out=%+v, measured=%d)", out, cm.n.Load())
	}
}

// TestStagedConcurrentResolve hammers one Staged from many goroutines
// under -race: concurrent sweeps and evaluations must coalesce on the
// shared stages and agree on every result.
func TestStagedConcurrentResolve(t *testing.T) {
	prof := tinyProfile(t)
	st := stagedFixture(t)
	ctx := context.Background()
	want, err := prof.SweepK(tinyMask, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := asJSON(t, want)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := st.SweepK(ctx, tinyMask, 2, 6)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(asJSON(t, got), wantJSON) {
				t.Error("concurrent sweep diverged")
			}
		}()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := st.Evaluate(ctx, tinyMask, 2+i%5, i%len(prof.Targets))
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkSweepKWarm measures the incremental win and self-asserts
// it: a warm sweep must serve shared stages from the store (more than
// one hit) and must not re-run the simulator at all, so the warm
// invocation count stays strictly below a cold run's. ci.sh runs this
// with -benchtime=1x as the stage-cache smoke gate.
func BenchmarkSweepKWarm(b *testing.B) {
	ctx := context.Background()
	cold := &countingMeasurer{}
	coldEng := NewEngine(stage.NewStore(256, ""))
	coldSt, _, err := coldEng.Profile(ctx, tinySuite(), StageOptions{Options: Options{Seed: 1, Measurer: cold}, MeasurerKey: "counting"})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := coldSt.SweepK(ctx, tinyMask, 1, 8); err != nil {
		b.Fatal(err)
	}
	coldInv := cold.n.Load()

	warm := &countingMeasurer{}
	eng := NewEngine(stage.NewStore(256, ""))
	opts := StageOptions{Options: Options{Seed: 1, Measurer: warm}, MeasurerKey: "counting"}
	if _, _, err := eng.Profile(ctx, tinySuite(), opts); err != nil {
		b.Fatal(err)
	}
	base := eng.Store().Stats()
	warmBefore := warm.n.Load()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := eng.Profile(ctx, tinySuite(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.SweepK(ctx, tinyMask, 1, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	warmInv := warm.n.Load() - warmBefore
	hits := eng.Store().Stats().Total.Hits - base.Total.Hits
	if hits <= 1 {
		b.Fatalf("warm sweep hit the stage cache %d times, want > 1", hits)
	}
	if warmInv >= coldInv {
		b.Fatalf("warm sweep ran %d simulator invocations, cold ran %d — want strictly fewer", warmInv, coldInv)
	}
	b.ReportMetric(float64(hits)/float64(b.N), "stagehits/op")
}

// Package report renders the paper's tables and figures as aligned
// text, consuming the structured results produced by internal/pipeline.
// Each function mirrors one artifact of the evaluation section; the
// benchmark harness and cmd/fgbs print these for side-by-side
// comparison with the published numbers.
package report

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"fgbs/internal/arch"
	"fgbs/internal/features"
	"fgbs/internal/maqao"
	"fgbs/internal/pipeline"
)

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table1 renders the test-architecture table.
func Table1(w io.Writer, machines []*arch.Machine) error {
	t := tw(w)
	fmt.Fprintln(t, "Machine\tCPU\tGHz\tCores\tL1/core\tLLC\tIn-order\tMemBW B/cyc")
	for _, m := range machines {
		fmt.Fprintf(t, "%s\t%s\t%.2f\t%d\t%dB\t%dB\t%v\t%.1f\n",
			m.Name, m.CPU, m.FreqGHz, m.Cores,
			m.Caches[0].SizeBytes, m.LastLevelSize(), m.InOrder, m.MemBWBytesPerCycle)
	}
	return t.Flush()
}

// Table2 renders a feature subset like the paper's Table 2, grouped
// by provenance.
func Table2(w io.Writer, mask features.Mask) error {
	t := tw(w)
	fmt.Fprintln(t, "Group\tFeature")
	cat := features.Catalog()
	for _, g := range []features.Group{features.GroupLikwid, features.GroupMAQAO, features.GroupStructure} {
		for _, i := range mask.Indices() {
			if cat[i].Group == g {
				fmt.Fprintf(t, "%s\t%s\n", g, cat[i].Name)
			}
		}
	}
	return t.Flush()
}

// Table3 renders the per-codelet clustering table (NR, K clusters):
// cluster id, codelet, computation pattern, strides, vectorization
// ratio and target speedup, with representatives in angle brackets.
func Table3(w io.Writer, p *pipeline.Profile, sub *pipeline.Subset, ev *pipeline.Eval) error {
	t := tw(w)
	fmt.Fprintln(t, "C\tCodelet\tComputation Pattern\tStride\tVec.%\ts")
	reps := map[int]bool{}
	for _, r := range sub.Selection.Reps {
		reps[r] = true
	}
	order := make([]int, p.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sub.Selection.Labels[order[a]] < sub.Selection.Labels[order[b]]
	})
	for _, i := range order {
		c := p.Codelets[i]
		st := maqao.Analyze(p.Progs[i], c, p.Ref)
		name := c.Name
		speedup := p.RefInApp[i] / ev.Actual[i]
		s := fmt.Sprintf("%.2f", speedup)
		if reps[i] {
			name = "<" + name + ">"
			s = "<" + s + ">"
		}
		strides := ""
		for k, lc := range c.InnermostLoops() {
			if k > 0 {
				strides += " | "
			}
			set := p.Progs[i].StrideSet(lc)
			for j, sd := range set {
				if j > 0 {
					strides += " & "
				}
				strides += sd
			}
		}
		fmt.Fprintf(t, "%d\t%s\t%s\t%s\t%.0f\t%s\n",
			sub.Selection.Labels[i]+1, name, c.Pattern, strides, st.VecRatioAll*100, s)
	}
	return t.Flush()
}

// Table4 renders NR prediction errors for a set of cluster counts.
func Table4(w io.Writer, p *pipeline.Profile, mask features.Mask, ks []int, targetNames []string) error {
	t := tw(w)
	header := "K"
	for _, n := range targetNames {
		header += fmt.Sprintf("\t%s median\t%s average", n, n)
	}
	fmt.Fprintln(t, header)
	for _, k := range ks {
		sub, err := p.Subset(mask, k)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%d", k)
		for _, n := range targetNames {
			ti, err := p.TargetIndex(n)
			if err != nil {
				return err
			}
			ev, err := p.Evaluate(sub, ti)
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%.1f%%\t%.1f%%", ev.Summary.Median*100, ev.Summary.Average*100)
		}
		fmt.Fprintln(t, row)
	}
	return t.Flush()
}

// Table5 renders the benchmarking-reduction breakdown per target.
func Table5(w io.Writer, p *pipeline.Profile, sub *pipeline.Subset) error {
	t := tw(w)
	fmt.Fprintf(t, "Reduction (%d representatives)\tTotal\tReduced invocations\tClustering\n", sub.K())
	for ti, m := range p.Targets {
		ev, err := p.Evaluate(sub, ti)
		if err != nil {
			return err
		}
		r := ev.Reduction
		fmt.Fprintf(t, "%s\t%.1f\tx%.1f\tx%.1f\n", m.Name, r.Total, r.InvocationFactor, r.ClusteringFactor)
	}
	return t.Flush()
}

// Figure2 renders predicted vs real per-invocation times for the
// codelets of the given clusters (ms per invocation).
func Figure2(w io.Writer, p *pipeline.Profile, sub *pipeline.Subset, ev *pipeline.Eval, clusters []int) error {
	t := tw(w)
	fmt.Fprintf(t, "Cluster\tCodelet\tReference(ms)\t%s real(ms)\t%s predicted(ms)\terror\n",
		ev.Target.Name, ev.Target.Name)
	want := map[int]bool{}
	for _, c := range clusters {
		want[c] = true
	}
	reps := map[int]bool{}
	for _, r := range sub.Selection.Reps {
		reps[r] = true
	}
	for i := range p.Codelets {
		l := sub.Selection.Labels[i]
		if !want[l] {
			continue
		}
		name := p.Codelets[i].Name
		if reps[i] {
			name = "<" + name + ">"
		}
		fmt.Fprintf(t, "%d\t%s\t%.3f\t%.3f\t%.3f\t%.1f%%\n",
			l+1, name, p.RefInApp[i]*1e3, ev.Actual[i]*1e3, ev.Predicted[i]*1e3, ev.Errors[i]*100)
	}
	return t.Flush()
}

// Figure3 renders the error/reduction trade-off sweep.
func Figure3(w io.Writer, p *pipeline.Profile, points []pipeline.SweepPoint, elbowK int) error {
	t := tw(w)
	header := "K"
	for _, m := range p.Targets {
		header += fmt.Sprintf("\t%s med.err\t%s reduction", m.Name, m.Name)
	}
	fmt.Fprintln(t, header)
	for _, pt := range points {
		row := fmt.Sprintf("%d", pt.K)
		if pt.K == elbowK {
			row += "*"
		}
		for ti := range p.Targets {
			row += fmt.Sprintf("\t%.1f%%\tx%.1f", pt.MedianError[ti]*100, pt.Reduction[ti])
		}
		fmt.Fprintln(t, row)
	}
	fmt.Fprintln(t, "(* = elbow-selected cluster count)")
	return t.Flush()
}

// Figure4 renders per-codelet predicted vs real times grouped by
// application.
func Figure4(w io.Writer, p *pipeline.Profile, ev *pipeline.Eval) error {
	t := tw(w)
	fmt.Fprintf(t, "App\tCodelet\tReference(ms)\t%s real(ms)\tpredicted(ms)\terror\n", ev.Target.Name)
	byApp := p.AppIndices()
	apps := make([]string, 0, len(byApp))
	for a := range byApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	for _, a := range apps {
		for _, i := range byApp[a] {
			fmt.Fprintf(t, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.1f%%\n",
				a, p.Codelets[i].Name, p.RefInApp[i]*1e3, ev.Actual[i]*1e3, ev.Predicted[i]*1e3, ev.Errors[i]*100)
		}
	}
	return t.Flush()
}

// Figure5 renders application-level real vs predicted times per
// target.
func Figure5(w io.Writer, p *pipeline.Profile, evals []*pipeline.Eval) error {
	t := tw(w)
	fmt.Fprintln(t, "Target\tApp\tReference(s)\tReal(s)\tPredicted(s)\terror")
	for _, ev := range evals {
		for _, a := range ev.Apps {
			fmt.Fprintf(t, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.1f%%\n",
				ev.Target.Name, a.Name, a.RefSec, a.ActualSec, a.PredSec, a.ErrorFrac*100)
		}
	}
	return t.Flush()
}

// Figure6 renders geometric-mean speedups per architecture.
func Figure6(w io.Writer, evals []*pipeline.Eval) error {
	t := tw(w)
	fmt.Fprintln(t, "Target\tReal speedup\tPredicted speedup")
	for _, ev := range evals {
		fmt.Fprintf(t, "%s\t%.2f\t%.2f\n", ev.Target.Name, ev.GeoMeanRealSpeedup, ev.GeoMeanPredictedSpeedup)
	}
	return t.Flush()
}

// Figure7 renders the random-clustering comparison rows.
func Figure7(w io.Writer, target string, rows []pipeline.RandomClusteringStats) error {
	t := tw(w)
	fmt.Fprintf(t, "K\t%s guided\trandom best\trandom median\trandom worst\n", target)
	for _, r := range rows {
		fmt.Fprintf(t, "%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.K, r.Guided*100, r.Best*100, r.Median*100, r.Worst*100)
	}
	return t.Flush()
}

// Figure8 renders cross-application vs per-application subsetting.
func Figure8(w io.Writer, p *pipeline.Profile, cross, per []pipeline.PerAppPoint) error {
	t := tw(w)
	header := "Reps\tmode"
	for _, m := range p.Targets {
		header += "\t" + m.Name
	}
	fmt.Fprintln(t, header)
	for _, pt := range cross {
		row := fmt.Sprintf("%d\tacross-apps", pt.TotalReps)
		for ti := range p.Targets {
			row += fmt.Sprintf("\t%.1f%%", pt.MedianError[ti]*100)
		}
		fmt.Fprintln(t, row)
	}
	for _, pt := range per {
		row := fmt.Sprintf("%d\tper-app", pt.TotalReps)
		for ti := range p.Targets {
			row += fmt.Sprintf("\t%.1f%%", pt.MedianError[ti]*100)
		}
		if len(pt.ExcludedApps) > 0 {
			row += fmt.Sprintf("\t(excluded: %v)", pt.ExcludedApps)
		}
		fmt.Fprintln(t, row)
	}
	return t.Flush()
}

// Dendrogram renders the merge history as indented text.
func Dendrogram(w io.Writer, p *pipeline.Profile, sub *pipeline.Subset) error {
	if sub.Dendro == nil {
		fmt.Fprintln(w, "(no dendrogram: externally provided partition)")
		return nil
	}
	for i, m := range sub.Dendro.Merges {
		fmt.Fprintf(w, "merge %2d: %s + %s (height %.3f, size %d)\n",
			i, nodeName(p, sub, m.A), nodeName(p, sub, m.B), m.Height, m.Size)
	}
	return nil
}

func nodeName(p *pipeline.Profile, sub *pipeline.Subset, id int) string {
	if id < p.N() {
		return p.Codelets[id].Name
	}
	return fmt.Sprintf("#%d", id)
}

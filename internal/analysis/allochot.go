package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// allochotCheck turns the raw-speed campaign into a standing gate: a
// function annotated //fgbs:hot (the bench-spec hot paths — ward
// distance, key hashing, normalize, K-sweep inner loops) is held to a
// per-iteration allocation budget. Inside any loop of a hot function
// the check flags the constructs that allocate each iteration:
//
//   - fmt calls (every fmt call boxes its operands; Errorf is exempt —
//     error paths leave the loop)
//   - string concatenation with + / += (each one allocates; hot code
//     uses a byte buffer or strconv.Append*)
//   - append to a destination never preallocated with make(..., n) in
//     the same function (growth reallocations inside the loop)
//   - explicit conversions to an interface type (boxing on every
//     iteration)
//
// The annotation is a contract, not a heuristic: marking a function
// hot is a promise that its loops stay allocation-free, checked on
// every CI run instead of rediscovered by the next bench sweep.
var allochotCheck = &Check{
	Name: "allochot",
	Doc:  "loops in //fgbs:hot functions must avoid per-iteration allocation (fmt, string +, unpreallocated append, interface boxing)",
	run:  runAllocHot,
}

const hotDirective = "//fgbs:hot"

func runAllocHot(p *Pass) {
	for _, f := range p.Pkg.Files {
		hotLines := hotDirectiveLines(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isHotFunc(p, fd, hotLines) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

// hotDirectiveLines maps the lines carrying an //fgbs:hot comment.
func hotDirectiveLines(p *Pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, hotDirective) {
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotFunc reports whether fd carries the hot annotation: inside its
// doc comment, or on the line directly above the declaration.
func isHotFunc(p *Pass, fd *ast.FuncDecl, hotLines map[int]bool) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(c.Text, hotDirective) {
				return true
			}
		}
	}
	return hotLines[p.Fset.Position(fd.Pos()).Line-1]
}

// checkHotFunc walks the hot function's loops and reports allocating
// constructs inside them.
func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	prealloc := preallocatedDests(p.Pkg, fd.Body)
	var inLoop func(n ast.Node) bool
	inspectLoop := func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool { return inLoop(n) })
	}
	inLoop = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, fd, e, prealloc)
		case *ast.BinaryExpr:
			if e.Op.String() == "+" && isStringExpr(p.Pkg, e.X) {
				p.Reportf(e.OpPos, "string concatenation in a loop of hot %s allocates per iteration; use a buffer or strconv.Append",
					fd.Name.Name)
			}
		case *ast.AssignStmt:
			if e.Tok.String() == "+=" && len(e.Lhs) == 1 && isStringExpr(p.Pkg, e.Lhs[0]) {
				p.Reportf(e.TokPos, "string += in a loop of hot %s allocates per iteration; use a buffer or strconv.Append",
					fd.Name.Name)
			}
		}
		return true
	}
	// Find the loops; everything inside them (nested loops included)
	// is "in a loop".
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			inspectLoop(s.Body)
			return false
		case *ast.RangeStmt:
			inspectLoop(s.Body)
			return false
		}
		return true
	})
}

// checkHotCall flags allocating calls inside a hot loop: fmt (except
// Errorf), unpreallocated append, explicit interface conversions.
func checkHotCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	// fmt in loops: every variadic fmt call allocates for the boxed
	// arguments alone. Errorf is exempt — constructing the error is
	// the iteration's last act.
	if fn := calleeFunc(p.Pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if fn.Name() != "Errorf" {
			p.Reportf(call.Pos(), "fmt.%s in a loop of hot %s allocates per iteration", fn.Name(), fd.Name.Name)
		}
		return
	}
	// append without preallocation.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if dest := appendDestObj(p.Pkg, call.Args[0]); dest != nil && !prealloc[dest] {
				p.Reportf(call.Pos(), "append in a loop of hot %s grows %s without preallocation; make(..., n) it before the loop",
					fd.Name.Name, destName(call.Args[0]))
			}
		}
		return
	}
	// Explicit conversion to an interface type boxes the operand.
	if tn := conversionToInterface(p.Pkg, call); tn != "" {
		p.Reportf(call.Pos(), "conversion to interface %s in a loop of hot %s boxes per iteration", tn, fd.Name.Name)
	}
}

// preallocatedDests collects slice destinations assigned from a make()
// call with an explicit size anywhere in the body — appends to those
// amortize to zero growth.
func preallocatedDests(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) < 2 {
			return
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		if dest := appendDestObj(pkg, lhs); dest != nil {
			out[dest] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						record(vs.Names[i], vs.Values[i])
					}
				}
			}
		}
		return true
	})
	return out
}

// appendDestObj resolves an append destination (or make target) to a
// stable object: the variable for `s`, the field for `d.Merges`.
func appendDestObj(pkg *Package, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return identObj(pkg, e)
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[e]; s != nil {
			return s.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// destName renders the destination for the diagnostic.
func destName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "the destination"
}

// conversionToInterface returns the interface type's name when call is
// an explicit conversion to an interface type ("" otherwise).
func conversionToInterface(pkg *Package, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return ""
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return ""
	}
	if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
		return ""
	}
	// Converting an interface to an interface does not box.
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok {
		if _, alreadyIface := tv.Type.Underlying().(*types.Interface); alreadyIface {
			return ""
		}
	}
	return tn.Name()
}

// isStringExpr reports whether expr's static type is string.
func isStringExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown experiment", []string{"nope"}},
		{"unknown suite", []string{"summary", "-suite", "spec"}},
		{"bad flag", []string{"t5", "-bogus"}},
		{"show without codelet", []string{"show"}},
		{"show unknown codelet", []string{"show", "-codelet", "ghost"}},
		{"save without cache", []string{"save", "-suite", "nr", "-cache", ""}},
		{"negative k", []string{"summary", "-k", "-3"}},
		{"unknown target", []string{"f4", "-target", "PDP-11"}},
		{"unknown export kind", []string{"export", "-what", "yaml"}},
		{"non-positive trials", []string{"f7", "-trials", "0"}},
		{"negative jobs", []string{"f7", "-j", "-4"}},
		{"missing fault profile", []string{"summary", "-faultprofile", "/nonexistent/faults.json"}},
		{"bench bad spec pattern", []string{"bench", "-spec", "["}},
		{"bench no spec matches", []string{"bench", "-spec", "no-such-spec-anywhere"}},
		{"bench negative reps", []string{"bench", "-reps", "-2"}},
		{"bench negative tolerance", []string{"bench", "-tolerance", "-5"}},
		{"bench missing baseline", []string{"bench", "-spec", "^stats/", "-reps", "1", "-warmup", "0", "-compare", "/nonexistent/BENCH.json"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(context.Background(), c.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", c.args)
			}
		})
	}
}

func TestRunTable1(t *testing.T) {
	if err := run(context.Background(), []string{"t1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShow(t *testing.T) {
	if err := run(context.Background(), []string{"show", "-suite", "nr", "-codelet", "tridag_1"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCanceled: a canceled context aborts an experiment before it
// burns profiling time — the SIGINT path without the signal.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"f7", "-suite", "nas", "-trials", "10"}); err == nil {
		t.Error("canceled f7 run succeeded, want context error")
	}
}

func TestProfileCacheRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := profile(context.Background(), config{cache: path}, "nr")
	if err == nil || !strings.Contains(err.Error(), "re-create") {
		t.Errorf("corrupt cache error = %v", err)
	}
}

// TestValidateListsChoices checks that up-front validation names the
// valid values instead of failing deep in the pipeline.
func TestValidateListsChoices(t *testing.T) {
	cases := []struct {
		cfg  config
		want string
	}{
		{config{suite: "spec", what: "eval", trials: 1}, "nas, nr, poly, joint"},
		{config{suite: "nas", what: "yaml", trials: 1}, "eval, sweep, features, evaljson, subsetjson, select"},
		{config{suite: "nas", what: "eval", target: "VAX", trials: 1}, "Atom"},
		{config{suite: "nas", what: "eval", k: -1, trials: 1}, "elbow"},
	}
	for _, c := range cases {
		err := validate(c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("validate(%+v) = %v, want substring %q", c.cfg, err, c.want)
		}
	}
}

// TestRunRejectsInvalidFaultProfile: -faultprofile is validated before
// any profiling starts, and the error names what is wrong.
func TestRunRejectsInvalidFaultProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "faults.json")
	if err := os.WriteFile(path, []byte(`{"rules": [{"permanentRate": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"summary", "-faultprofile", path})
	if err == nil || !strings.Contains(err.Error(), "permanentRate") {
		t.Errorf("invalid fault profile error = %v, want the offending field named", err)
	}
}

// TestRunBenchEndToEnd drives the full gate loop on one cheap spec:
// run + persist, then a self-comparison (which can only regress against
// itself through measurement noise, absorbed by a wide tolerance).
func TestRunBenchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	args := []string{"bench", "-spec", "^stats/", "-reps", "3", "-warmup", "0", "-json", "-out", out}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("bench run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench -out wrote nothing: %v", err)
	}
	if !strings.Contains(string(data), "stats/median-mad") {
		t.Fatalf("run file missing the spec:\n%s", data)
	}
	compare := []string{"bench", "-spec", "^stats/", "-reps", "3", "-warmup", "0", "-quick",
		"-compare", out, "-tolerance", "10000"}
	if err := run(context.Background(), compare); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
}

// TestRunBenchGateFailsOnRegression plants a baseline with impossible
// numbers and checks the compare path exits with an error naming the
// regressed spec.
func TestRunBenchGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_fast.json")
	// A 1ns alloc-free baseline no real run can match.
	doc := `{"version": 1, "quick": false, "reps": 3, "results": [` +
		`{"name": "stats/median-mad", "reps": 3, "rejected": 0, "medianNs": 1, "madNs": 0, "allocsPerOp": 0, "bytesPerOp": 0}]}`
	if err := os.WriteFile(base, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"bench", "-spec", "^stats/", "-reps", "3", "-warmup", "0",
		"-compare", base, "-tolerance", "20"})
	if err == nil || !strings.Contains(err.Error(), "stats/median-mad") {
		t.Fatalf("regression gate error = %v, want the spec named", err)
	}
}

func TestPickHelpers(t *testing.T) {
	if pick(0, 5) != 5 || pick(3, 5) != 3 {
		t.Error("pick wrong")
	}
	if pickS("", "d") != "d" || pickS("x", "d") != "x" {
		t.Error("pickS wrong")
	}
}

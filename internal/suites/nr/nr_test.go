package nr

import (
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/extract"
	"fgbs/internal/ir"
	"fgbs/internal/maqao"
	"fgbs/internal/sim"
)

func TestSuiteShape(t *testing.T) {
	progs, codelets := Codelets()
	if len(codelets) != 28 {
		t.Fatalf("NR suite has %d codelets, want 28 (Table 3)", len(codelets))
	}
	if len(progs) != 28 {
		t.Fatalf("NR suite has %d programs, want 28 (one-to-one mapping)", len(progs))
	}
	seen := map[string]bool{}
	for i, c := range codelets {
		if progs[i].Codelets[0] != c {
			t.Errorf("program %d not aligned with codelet %q", i, c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate codelet %q", c.Name)
		}
		seen[c.Name] = true
		if c.Pattern == "" {
			t.Errorf("codelet %q has no computation pattern", c.Name)
		}
		if err := progs[i].Validate(); err != nil {
			t.Errorf("program %q invalid: %v", progs[i].Name, err)
		}
	}
	for _, want := range []string{
		"toeplz_1", "rstrct_29", "mprove_8", "toeplz_4", "realft_4", "toeplz_3",
		"svbksb_3", "lop_13", "toeplz_2", "four1_2", "tridag_2", "tridag_1",
		"ludcmp_4", "hqr_15", "relax2_26", "svdcmp_14", "svdcmp_13", "hqr_13",
		"hqr_12_sq", "jacobi_5", "hqr_12", "svdcmp_11", "elmhes_11", "mprove_9",
		"matadd_16", "svdcmp_6", "elmhes_10", "balanc_3",
	} {
		if !seen[want] {
			t.Errorf("missing Table 3 codelet %q", want)
		}
	}
}

func TestNoIllBehavedFlags(t *testing.T) {
	_, codelets := Codelets()
	for _, c := range codelets {
		if c.DatasetVariation != 0 || c.ContextSensitive {
			t.Errorf("NR codelet %q carries ill-behaved flags; the paper says all NR codelets are well-behaved", c.Name)
		}
	}
}

func TestPrecisionMix(t *testing.T) {
	// Table 3 has SP, DP and MP codelets; verify the suite reflects
	// the mix by checking specific entries.
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	if dt := progs[byName["svbksb_3"]].Array("u").DT; dt != ir.F32 {
		t.Errorf("svbksb_3 matrix is %v, want f32 (SP)", dt)
	}
	if dt := progs[byName["toeplz_1"]].Array("r").DT; dt != ir.F64 {
		t.Errorf("toeplz_1 is %v, want f64 (DP)", dt)
	}
	// MP: mprove_8 loads f32 and accumulates f64.
	p := progs[byName["mprove_8"]]
	if p.Array("a").DT != ir.F32 || p.Array("sdp").DT != ir.F64 {
		t.Error("mprove_8 does not mix precisions")
	}
}

func TestRecurrencesAreScalar(t *testing.T) {
	progs, codelets := Codelets()
	for i, c := range codelets {
		if c.Name != "tridag_1" && c.Name != "tridag_2" {
			continue
		}
		inner := c.InnermostLoops()[0]
		a := inner.Loop.Body[0].(*ir.Assign)
		if dep := progs[i].ClassifyDep(a, inner.Loop.Var); dep != ir.DepRecurrence {
			t.Errorf("%s classified %v, want recurrence", c.Name, dep)
		}
	}
}

// TestAllWellBehavedOnReference is the load-bearing property of the
// training suite: every extracted NR microbenchmark must reproduce
// its in-application time on the reference machine within the 10%
// tolerance (§4.1: "all the NR codelets are well-behaved").
func TestAllWellBehavedOnReference(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	ref := arch.Reference()
	var wg sync.WaitGroup
	errs := make([]string, len(codelets))
	sem := make(chan struct{}, 8)
	for i := range codelets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p, c := progs[i], codelets[i]
			inApp, err := sim.Measure(p, c, sim.Options{Machine: ref, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				errs[i] = err.Error()
				return
			}
			mb, err := extract.Extract(p, c, ref, extract.Options{Seed: 1})
			if err != nil {
				errs[i] = err.Error()
				return
			}
			if extract.IllBehaved(mb.Measurement.Seconds, inApp.Seconds) {
				errs[i] = c.Name + " is ill-behaved on the reference"
			}
			if inApp.Counters.Cycles < 25000 {
				errs[i] = c.Name + " too short to measure"
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Error(e)
		}
	}
}

// TestDividerClusterSlowestOnAtom checks the Table 3 cluster-10
// phenomenon: the vector-divide codelets suffer the worst Atom
// slowdowns of the vectorized kernels.
func TestDividerClusterSlowestOnAtom(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	speedup := func(name string) float64 {
		i := byName[name]
		ref, err := sim.Measure(progs[i], codelets[i], sim.Options{Machine: arch.Reference(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		atom, err := sim.Measure(progs[i], codelets[i], sim.Options{Machine: arch.Atom(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		return ref.Seconds / atom.Seconds
	}
	div := speedup("svdcmp_14")
	if div > 0.35 {
		t.Errorf("divide codelet Atom speedup %.3f too mild (paper: ~0.28)", div)
	}
	if div < 0.05 {
		t.Errorf("divide codelet Atom speedup %.3f implausibly harsh", div)
	}
}

// TestVectorizationClasses checks each codelet's vectorization against
// Table 3's Vec. column: V (fully vectorized), S (scalar), V+S
// (partial). The MAQAO-style ratio is computed on the reference
// architecture, as in the paper.
func TestVectorizationClasses(t *testing.T) {
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	ratio := func(name string) float64 {
		i := byName[name]
		return maqao.Analyze(progs[i], codelets[i], arch.Reference()).VecRatioAll
	}
	// mprove_8 and ludcmp_4 are "mostly vector" (60%/83%) in Table 3;
	// our lowering vectorizes their single reduction statement fully,
	// so they land in the V class here (recorded in EXPERIMENTS.md).
	fullyVector := []string{"toeplz_3", "svbksb_3", "lop_13", "svdcmp_14", "hqr_13",
		"hqr_12_sq", "jacobi_5", "hqr_12", "mprove_9", "matadd_16", "elmhes_10", "balanc_3",
		"mprove_8", "ludcmp_4"}
	for _, name := range fullyVector {
		if r := ratio(name); r < 0.95 {
			t.Errorf("%s: vec ratio %.2f, Table 3 marks it V (100%%)", name, r)
		}
	}
	scalar := []string{"toeplz_4", "realft_4", "toeplz_2", "four1_2", "tridag_1",
		"tridag_2", "hqr_15", "relax2_26", "svdcmp_11", "elmhes_11", "svdcmp_6"}
	for _, name := range scalar {
		if r := ratio(name); r > 0.05 {
			t.Errorf("%s: vec ratio %.2f, Table 3 marks it S (~0%%)", name, r)
		}
	}
	partial := []string{"toeplz_1"}
	for _, name := range partial {
		if r := ratio(name); r <= 0.05 || r >= 0.95 {
			t.Errorf("%s: vec ratio %.2f, Table 3 marks it V+S (partial)", name, r)
		}
	}
}

// TestStrideSignatures spot-checks Table 3's stride column.
func TestStrideSignatures(t *testing.T) {
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	strides := func(name string) map[string]bool {
		i := byName[name]
		out := map[string]bool{}
		for _, lc := range codelets[i].InnermostLoops() {
			for _, s := range progs[i].StrideSet(lc) {
				out[s] = true
			}
		}
		return out
	}
	// tridag_1: strides 0 & 1 (forward recurrence).
	if s := strides("tridag_1"); !s["1"] {
		t.Errorf("tridag_1 strides %v, want unit stride", s)
	}
	// toeplz_2: ascending and descending unit strides.
	if s := strides("toeplz_2"); !s["1"] || !s["-1"] {
		t.Errorf("toeplz_2 strides %v, want 1 and -1", s)
	}
	// realft_4: symmetric stride-2 walks.
	if s := strides("realft_4"); !s["2"] || !s["-2"] {
		t.Errorf("realft_4 strides %v, want 2 and -2", s)
	}
	// four1_2: stride 4.
	if s := strides("four1_2"); !s["4"] {
		t.Errorf("four1_2 strides %v, want 4", s)
	}
	// svdcmp_11: LDA stride (the matrix order).
	if s := strides("svdcmp_11"); !s["768"] {
		t.Errorf("svdcmp_11 strides %v, want LDA (768)", s)
	}
	// hqr_15: diagonal walk LDA+1.
	if s := strides("hqr_15"); !s["769"] {
		t.Errorf("hqr_15 strides %v, want LDA+1 (769)", s)
	}
}

// TestAtomSpeedupOrdering spot-checks the shape of Table 3's Atom
// speedup column: the memory-bound red-black sweep suffers most
// (paper: 0.12, the lowest), while the cache-resident diagonal update
// fares comparatively well (paper: 0.39).
func TestAtomSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	speedup := func(name string) float64 {
		i := byName[name]
		ref, err := sim.Measure(progs[i], codelets[i], sim.Options{Machine: arch.Reference(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		atom, err := sim.Measure(progs[i], codelets[i], sim.Options{Machine: arch.Atom(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		return ref.Seconds / atom.Seconds
	}
	relax := speedup("relax2_26")
	diag := speedup("hqr_15")
	if relax >= diag {
		t.Errorf("Atom speedups: relax2_26 %.2f not below hqr_15 %.2f (paper: 0.12 vs 0.39)", relax, diag)
	}
	// Every Atom speedup is a slowdown, within Table 3's broad range.
	for _, c := range codelets {
		s := speedup(c.Name)
		if s >= 1.0 || s < 0.03 {
			t.Errorf("%s: Atom speedup %.2f outside the plausible (0.03, 1) band", c.Name, s)
		}
	}
}

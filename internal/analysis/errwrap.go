package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errWrapCheck enforces error-chain hygiene: a fmt.Errorf that formats
// an error operand with %v or %s flattens it to text, so errors.Is and
// errors.As can no longer see the cause (the profile-cache code paths
// rely on sentinel matching). Any fmt.Errorf whose arguments include
// an error but whose format string has no %w is a finding.
var errWrapCheck = &Check{
	Name: "errwrap",
	Doc:  "forbid fmt.Errorf formatting an error operand without %w",
	run:  runErrWrap,
}

func runErrWrap(p *Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
				return true
			}
			tv, ok := p.Pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic format string: nothing to prove
			}
			if strings.Contains(constant.StringVal(tv.Value), "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				atv, ok := p.Pkg.Info.Types[arg]
				if !ok || atv.Type == nil {
					continue
				}
				if types.Implements(atv.Type, errIface) {
					p.Reportf(arg.Pos(), "fmt.Errorf formats an error without %%w; wrap it so errors.Is/As still see the cause")
				}
			}
			return true
		})
	}
}

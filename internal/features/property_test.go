package features

import (
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

// Property: String/ParseMask round-trips any mask.
func TestMaskRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var m Mask
		for i := 0; i < NumFeatures; i++ {
			m.Set(i, r.Bool(0.4))
		}
		back, err := ParseMask(m.String())
		return err == nil && back == m
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of indices, and Apply's output
// length equals Count.
func TestMaskCountConsistency(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var m Mask
		for i := 0; i < NumFeatures; i++ {
			m.Set(i, r.Bool(0.5))
		}
		full := make([]float64, NumFeatures)
		return m.Count() == len(m.Indices()) && len(m.Apply(full)) == m.Count()
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Apply selects exactly the masked positions, preserving
// catalog order.
func TestMaskApplyOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var m Mask
		for i := 0; i < NumFeatures; i++ {
			m.Set(i, r.Bool(0.3))
		}
		full := make([]float64, NumFeatures)
		for i := range full {
			full[i] = float64(i)
		}
		out := m.Apply(full)
		idx := m.Indices()
		if len(out) != len(idx) {
			return false
		}
		for j, i := range idx {
			if out[j] != float64(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArchIndependentMask(t *testing.T) {
	m := ArchIndependentMask()
	if m.Count() < 15 {
		t.Errorf("arch-independent mask has only %d features", m.Count())
	}
	// Must exclude everything tied to the reference machine's
	// execution resources or clock.
	for _, banned := range []int{FMFLOPS, FEstIPCL1, FPressureP1, FCPI, FExecSeconds,
		FL2BandwidthMBs, FMemBandwidthMBs, FVecRatioAll, FCyclesPerIterL1} {
		if m.Get(banned) {
			t.Errorf("arch-independent mask contains machine-dependent feature %s",
				Catalog()[banned].Name)
		}
	}
	// Must include the op-mix and structure core.
	for _, wanted := range []int{FFDivShare, FStrideIndirectShare, FWorkingSetBytes, FRecurrenceShare} {
		if !m.Get(wanted) {
			t.Errorf("arch-independent mask missing %s", Catalog()[wanted].Name)
		}
	}
}

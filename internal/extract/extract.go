// Package extract models Step D's codelet extraction: turning a
// codelet into a standalone microbenchmark the way the CAPS Codelet
// Finder does — capture the memory accessed by the codelet at its
// first invocation into a dump, generate a wrapper that reloads the
// dump and re-runs the codelet, and time it with a reduced invocation
// count.
//
// Two paper rules are implemented here:
//
//   - Invocation reduction (§3.4): "we select a number of invocations
//     so that the microbenchmark runs at least during 1 ms with a
//     minimum of 10 invocations. We then take the median measurement."
//   - Well-behavedness screening (§3.4): a representative whose
//     standalone time differs from its original in-application time by
//     more than 10% is ill-behaved.
//
// Extraction side effects that the paper documents emerge from the
// simulation modes of internal/sim: the dump reload warms the cache
// (CG-on-Atom anomaly), the dump snapshots the first invocation's
// dataset (ill-behaved category 1), and the standalone compilation
// loses the application context (ill-behaved category 2).
package extract

import (
	"math"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

// Invocation-reduction rule constants. The 1 ms floor is deliberately
// NOT scaled by arch.CacheScale: it reflects the wall-clock accuracy
// of the measurement harness, a property of the timer rather than of
// the (scaled) caches and datasets. Because scaled invocations are
// shorter while the floor stays put, fast targets need more
// invocations to fill it — which is exactly why the paper's
// invocation-reduction factor is larger on Atom (x12) than on Sandy
// Bridge (x6.3).
const (
	// MinBenchSeconds is the minimum total standalone running time.
	// The paper uses 1 ms on full-size invocations; our invocations
	// are CacheScale times shorter, so 2 ms keeps the floor binding
	// for short codelets on fast targets the way the paper's does.
	MinBenchSeconds = 2e-3
	// MinInvocations is the invocation floor.
	MinInvocations = 10
	// IllBehavedTolerance is the relative standalone-vs-original gap
	// above which a codelet is ill-behaved.
	IllBehavedTolerance = 0.10
)

// Microbenchmark is an extracted, standalone-measurable codelet on one
// machine.
type Microbenchmark struct {
	Codelet *ir.Codelet
	Machine *arch.Machine
	// Measurement is the standalone (dump-reload, back-to-back)
	// measurement; Measurement.Seconds is the median per-invocation
	// time.
	Measurement *sim.Measurement
	// Invocations is the reduced invocation count from the 1 ms / 10
	// invocation rule.
	Invocations int
	// BenchSeconds is the total cost of running this microbenchmark:
	// Invocations x median invocation time.
	BenchSeconds float64
	// DumpBytes is the memory-dump size (the codelet's working set).
	DumpBytes int64
}

// Options configures extraction.
type Options struct {
	// Seed propagates to the simulator's dataset build.
	Seed uint64
	// Dataset optionally reuses a prebuilt dataset.
	Dataset *sim.Dataset
}

// Extract builds and measures the standalone microbenchmark for
// codelet c on machine m.
func Extract(p *ir.Program, c *ir.Codelet, m *arch.Machine, opts Options) (*Microbenchmark, error) {
	meas, err := sim.Measure(p, c, sim.Options{
		Machine:     m,
		Mode:        sim.ModeStandalone,
		Seed:        opts.Seed,
		Dataset:     opts.Dataset,
		ProbeCycles: -1,
		NoiseAmp:    -1,
	})
	if err != nil {
		return nil, err
	}
	inv := ReducedInvocations(meas.Seconds)
	return &Microbenchmark{
		Codelet:      c,
		Machine:      m,
		Measurement:  meas,
		Invocations:  inv,
		BenchSeconds: float64(inv) * meas.Seconds,
		DumpBytes:    meas.WorkingSetBytes,
	}, nil
}

// ReducedInvocations applies the 1 ms / 10 invocation rule to a
// per-invocation time.
func ReducedInvocations(secondsPerInvocation float64) int {
	if secondsPerInvocation <= 0 {
		return MinInvocations
	}
	n := int(math.Ceil(MinBenchSeconds / secondsPerInvocation))
	if n < MinInvocations {
		n = MinInvocations
	}
	return n
}

// IllBehaved reports whether a standalone time misrepresents the
// original in-application time beyond the paper's 10% tolerance.
func IllBehaved(standaloneSeconds, inAppSeconds float64) bool {
	if inAppSeconds <= 0 {
		return true
	}
	return math.Abs(standaloneSeconds-inAppSeconds)/inAppSeconds > IllBehavedTolerance
}

package features

import (
	"strings"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
	"fgbs/internal/maqao"
	"fgbs/internal/sim"
)

func testCodelet(t *testing.T) (*ir.Program, *ir.Codelet) {
	t.Helper()
	p := ir.NewProgram("t")
	p.SetParam("n", 40000)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "axpy", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Add(p.LoadE("a", ir.V("i")), ir.Mul(ir.CF(2), p.LoadE("b", ir.V("i")))),
			},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func assemble(t *testing.T, p *ir.Program, c *ir.Codelet) []float64 {
	t.Helper()
	m := arch.Reference()
	meas, err := sim.Measure(p, c, sim.Options{Machine: m, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	return Assemble(p, c, meas, maqao.Analyze(p, c, m))
}

func TestCatalogComplete(t *testing.T) {
	if len(Catalog()) != NumFeatures {
		t.Fatalf("catalog has %d entries", len(Catalog()))
	}
	if NumFeatures != 76 {
		t.Fatalf("NumFeatures = %d, paper uses 76", NumFeatures)
	}
	seen := map[string]bool{}
	for i, d := range Catalog() {
		if d.Name == "" {
			t.Errorf("feature %d has no name", i)
		}
		if seen[d.Name] {
			t.Errorf("duplicate feature name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Index != i {
			t.Errorf("feature %q index mismatch: %d != %d", d.Name, d.Index, i)
		}
	}
}

func TestCatalogGroups(t *testing.T) {
	counts := map[Group]int{}
	for _, d := range Catalog() {
		counts[d.Group]++
	}
	if counts[GroupLikwid] == 0 || counts[GroupMAQAO] == 0 || counts[GroupStructure] == 0 {
		t.Errorf("group counts: %v", counts)
	}
}

func TestAssembleLength(t *testing.T) {
	p, c := testCodelet(t)
	v := assemble(t, p, c)
	if len(v) != NumFeatures {
		t.Fatalf("vector length %d", len(v))
	}
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero < 20 {
		t.Errorf("only %d nonzero features for a realistic codelet", nonzero)
	}
}

func TestAssembleKnownValues(t *testing.T) {
	p, c := testCodelet(t)
	v := assemble(t, p, c)
	if v[FVecRatioAll] != 1 {
		t.Errorf("fully vectorizable axpy: vec_ratio_all = %g", v[FVecRatioAll])
	}
	if v[FStrideUnitShare] != 1 {
		t.Errorf("all-unit-stride axpy: stride_unit_share = %g", v[FStrideUnitShare])
	}
	if v[FNumFPDiv] != 0 {
		t.Errorf("axpy has divs: %g", v[FNumFPDiv])
	}
	if v[FNestDepth] != 1 || v[FNumInnerLoops] != 1 {
		t.Errorf("nest shape: depth %g loops %g", v[FNestDepth], v[FNumInnerLoops])
	}
	if v[FNumArrays] != 2 {
		t.Errorf("num_arrays = %g", v[FNumArrays])
	}
}

func TestMaskBasics(t *testing.T) {
	m := MaskOf(0, 5, 75)
	if m.Count() != 3 {
		t.Errorf("count = %d", m.Count())
	}
	if !m.Get(5) || m.Get(6) {
		t.Error("bit lookup wrong")
	}
	idx := m.Indices()
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 5 || idx[2] != 75 {
		t.Errorf("indices = %v", idx)
	}
	full := make([]float64, NumFeatures)
	for i := range full {
		full[i] = float64(i)
	}
	got := m.Apply(full)
	if len(got) != 3 || got[0] != 0 || got[1] != 5 || got[2] != 75 {
		t.Errorf("Apply = %v", got)
	}
}

func TestMaskRoundTrip(t *testing.T) {
	m := MaskOf(1, 2, 3, 40, 70)
	s := m.String()
	if len(s) != NumFeatures {
		t.Fatalf("string length %d", len(s))
	}
	back, err := ParseMask(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Error("round trip changed mask")
	}
	if _, err := ParseMask("101"); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := ParseMask(strings.Repeat("2", NumFeatures)); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestMaskOfNames(t *testing.T) {
	m, err := MaskOfNames("mflops", "num_fp_div")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Get(FMFLOPS) || !m.Get(FNumFPDiv) || m.Count() != 2 {
		t.Error("MaskOfNames selected wrong bits")
	}
	if _, err := MaskOfNames("no_such_feature"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPaperMask(t *testing.T) {
	m := PaperMask()
	if m.Count() != 14 {
		t.Fatalf("paper mask selects %d features, Table 2 has 14", m.Count())
	}
	// Spot-check Table 2 membership.
	for _, idx := range []int{FMFLOPS, FL2BandwidthMBs, FL3MissRate, FMemBandwidthMBs,
		FEstIPCL1, FNumFPDiv, FNumSD, FPressureP1, FVecRatioMul} {
		if !m.Get(idx) {
			t.Errorf("paper mask missing feature %s", Catalog()[idx].Name)
		}
	}
	// Exactly 4 Likwid features in Table 2.
	likwid := 0
	for _, i := range m.Indices() {
		if Catalog()[i].Group == GroupLikwid {
			likwid++
		}
	}
	if likwid != 4 {
		t.Errorf("paper mask has %d Likwid features, want 4", likwid)
	}
}

func TestAllMask(t *testing.T) {
	if AllMask().Count() != NumFeatures {
		t.Error("AllMask incomplete")
	}
}

func TestDivCodeletFeatures(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 40000)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "vdiv", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.Div(ir.CF(1), p.LoadE("b", ir.V("i")))},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	v := assemble(t, p, c)
	if v[FNumFPDiv] != 1 {
		t.Errorf("num_fp_div = %g, want 1", v[FNumFPDiv])
	}
	if v[FFDivShare] == 0 {
		t.Error("fdiv_share zero for divide codelet")
	}
}

// The paper's core premise: different computation patterns produce
// distinguishable signatures under the Table 2 subset.
func TestSignaturesSeparatePatterns(t *testing.T) {
	p, axpy := testCodelet(t)
	vAxpy := PaperMask().Apply(assemble(t, p, axpy))

	p2 := ir.NewProgram("t2")
	p2.SetParam("n", 40000)
	p2.AddArray("a", ir.F64, ir.AV("n"))
	p2.AddArray("b", ir.F64, ir.AV("n"))
	rec := &ir.Codelet{
		Name: "rec", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p2.Ref("a", ir.V("i")),
				RHS: ir.Add(ir.Mul(p2.LoadE("a", ir.Sub(ir.V("i"), ir.CI(1))), ir.CF(0.99)), p2.LoadE("b", ir.V("i"))),
			},
		}},
	}
	if err := p2.AddCodelet(rec); err != nil {
		t.Fatal(err)
	}
	vRec := PaperMask().Apply(assemble(t, p2, rec))

	same := true
	for i := range vAxpy {
		if vAxpy[i] != vRec[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("vectorized axpy and scalar recurrence produced identical signatures")
	}
}

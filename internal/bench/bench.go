// Package bench is the repository's performance instrument: a registry
// of named benchmark specs covering the pipeline's hot paths (the cache
// hierarchy simulator, the bottleneck cost model, Ward clustering,
// stage-key hashing, the stage codec's disk path, feature
// normalization, warm and cold K sweeps through internal/stage), a
// runner that times each spec with the paper's own §3.4 measurement
// protocol — warmup invocations excluded, ≥N timed repetitions
// summarized by the median after MAD outlier rejection, reusing
// internal/stats — and pluggable reporters (human table, machine JSON).
//
// The JSON report is the repository's persisted perf trajectory: each
// release commits a BENCH_<n>.json baseline at the repo root, and
// Compare diffs a fresh run against it, failing CI when a spec's median
// time or allocations regress beyond a tolerance. "Machines are
// benchmarked by code, not algorithms": small code and compilation
// changes silently flip performance behavior, so the trajectory is
// measured, committed, and gated — not asserted in prose.
//
// This package is the one place in the module allowed to read the wall
// clock (fgbsvet's determinism check carries a path-suffix exemption
// for it): elapsed wall time is its product, not a side effect. All
// workload construction still draws from seeded internal/rng streams,
// so the work being timed is identical from run to run.
package bench

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Spec is one registered benchmark: a named hot path with a setup phase
// (excluded from timing) and the operation the runner times.
type Spec struct {
	// Name identifies the spec as "area/name", e.g.
	// "cluster/ward-distance". Names are unique within the registry and
	// are the join key for baseline comparison, so renaming one orphans
	// its baseline entry.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Setup builds the spec's workload once per run and returns the
	// instance the runner drives. Everything expensive and untimed
	// (profiles, datasets, stores) belongs here.
	Setup func(ctx context.Context) (*Instance, error)
}

// Instance is one prepared benchmark workload.
type Instance struct {
	// Op is the operation the runner times, once per repetition. It
	// must perform the same work every call (the runner's median/MAD
	// summary assumes repetitions are exchangeable).
	Op func() error
	// Verify, when non-nil, runs after the timed repetitions; an error
	// fails the whole run. Self-asserting specs (the warm K sweep
	// proving the stage cache actually served its artifacts) live here.
	Verify func() error
	// Cleanup, when non-nil, releases setup resources (temp dirs).
	Cleanup func()
}

// registry holds the package's specs, keyed by name.
var registry = map[string]Spec{}

// Register adds a spec to the registry. It panics on a duplicate or
// malformed name — registration happens at init time, where a panic is
// a build error, not a runtime hazard.
func Register(s Spec) {
	if s.Name == "" || !strings.Contains(s.Name, "/") {
		panic(fmt.Sprintf("bench: spec name %q is not of the form area/name", s.Name))
	}
	if s.Setup == nil {
		panic(fmt.Sprintf("bench: spec %s has no Setup", s.Name))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate spec %s", s.Name))
	}
	registry[s.Name] = s
}

// Names lists every registered spec name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registered spec, sorted by name.
func All() []Spec {
	specs := make([]Spec, 0, len(registry))
	for _, name := range Names() {
		specs = append(specs, registry[name])
	}
	return specs
}

// Match returns the specs whose names match the anchored-nowhere
// regular expression pattern, sorted by name. An empty pattern selects
// everything; a pattern matching nothing is an error naming the valid
// specs, in the flag-validation convention of cmd/fgbs.
func Match(pattern string) ([]Spec, error) {
	if pattern == "" {
		return All(), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bench: bad spec pattern %q: %w", pattern, err)
	}
	var specs []Spec
	for _, s := range All() {
		if re.MatchString(s.Name) {
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("bench: no spec matches %q (valid: %s)", pattern, strings.Join(Names(), ", "))
	}
	return specs, nil
}

package corpus

import (
	"fmt"

	"fgbs/internal/ir"
	"fgbs/internal/rng"
)

// arrayPool is the composer's shared working set: arrays are keyed by
// their full shape signature (element type, integer initialization,
// dimensions), and a codelet requesting a compatible array
// preferentially reuses one a sibling already declared. That is what
// makes a composed program an "application" in the paper's sense —
// codelets operating on common state, so WarmInApp and in-application
// cache effects have something to be warm about.
type arrayPool struct {
	byKey map[string][]string
}

func newArrayPool() *arrayPool {
	return &arrayPool{byKey: make(map[string][]string)}
}

func poolKey(dt ir.DType, init ir.IntInit, dims []ir.Affine) string {
	k := fmt.Sprintf("%v/%d/%s", dt, init.Kind, init.Bound.String())
	for _, d := range dims {
		k += "/" + d.String()
	}
	return k
}

// get serves an array of the requested shape from the pool, reusing an
// existing one with probability ~0.6 (drawn from the requesting
// codelet's own stream, so composition stays a pure function of the
// app seed). Reuse may alias two roles inside one codelet — e.g. a
// stencil reading and writing the same grid — which is deliberate:
// in-place nests are a real and distinct locality class (seidel-2d).
func (ap *arrayPool) get(b *build, dt ir.DType, init ir.IntInit, dims []ir.Affine) string {
	key := poolKey(dt, init, dims)
	if list := ap.byKey[key]; len(list) > 0 && b.r.Bool(0.6) {
		return list[b.r.Intn(len(list))]
	}
	name := b.fresh(dt, init, dims)
	ap.byKey[key] = append(ap.byKey[key], name)
	return name
}

// ComposeApp builds synthetic application index under the suite seed: k
// codelets from randomly drawn families generated into one program over
// a shared array pool, with per-codelet WarmInApp/ContextSensitive
// draws and a nonzero uncovered fraction. The result is a pure function
// of (seed, index, k).
func ComposeApp(seed uint64, index, k int) (*ir.Program, error) {
	return composeApp(seed, index, k, 0)
}

func composeApp(seed uint64, index, k int, footCap int64) (*ir.Program, error) {
	// The app's own stream ("app" is not a family name, so it can never
	// collide with a standalone codelet's stream under the same seed).
	appSeed := codeletSeed(seed, "app", index)
	name := fmt.Sprintf("synapp_%03d", index)
	p := ir.NewProgram(name)
	ar := rng.New(appSeed)
	p.UncoveredFraction = 0.02 + 0.10*ar.Float64()
	pool := newArrayPool()
	names := FamilyNames()
	arrayN := 0
	for j := 0; j < k; j++ {
		f := families[names[ar.Intn(len(names))]]
		warm := ar.Bool(0.5)
		ctx := ar.Bool(0.1)
		b := &build{
			p:       p,
			r:       rng.New(codeletSeed(appSeed, f.Name, j)),
			footCap: footCap,
			pool:    pool,
			arrayN:  &arrayN,
		}
		cname := fmt.Sprintf("%s_c%02d_%s", name, j, f.Name)
		if err := generateInto(b, f, cname, appSeed, j); err != nil {
			return nil, err
		}
		c := p.Codelets[len(p.Codelets)-1]
		c.WarmInApp = warm
		c.ContextSensitive = ctx
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: composed app %s invalid: %w", name, err)
	}
	return p, nil
}

// ComposeApps builds apps applications of perApp codelets each, fanning
// the independent builds across workers (0 = GOMAXPROCS). Output is
// byte-identical at every worker count.
func ComposeApps(seed uint64, apps, perApp, workers int) ([]*ir.Program, error) {
	return composeApps(seed, apps, perApp, workers, 0)
}

func composeApps(seed uint64, apps, perApp, workers int, footCap int64) ([]*ir.Program, error) {
	return fanOut(apps, workers, func(i int) (*ir.Program, error) {
		return composeApp(seed, i, perApp, footCap)
	})
}

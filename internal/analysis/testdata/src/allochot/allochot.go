// Corpus for the allochot check: functions annotated //fgbs:hot must
// keep their loops free of per-iteration allocation — no fmt calls
// (Errorf excepted), no string concatenation, no append to an
// unpreallocated destination, no interface boxing. Unannotated
// functions are never checked: the directive is an opt-in contract.
package allochot

import "fmt"

//fgbs:hot
func sumClean(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

//fgbs:hot
func badFmt(xs []int) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x)) // want "fmt.Sprintf in a loop of hot badFmt allocates per iteration"
	}
	return out
}

//fgbs:hot
func badConcat(names []string) string {
	out := ""
	for _, n := range names {
		out = out + "," + n // want "string concatenation in a loop of hot badConcat" "string concatenation in a loop of hot badConcat"
	}
	return out
}

//fgbs:hot
func badConcatAssign(names []string) string {
	var out string
	for _, n := range names {
		out += n // want "string \+= in a loop of hot badConcatAssign"
	}
	return out
}

//fgbs:hot
func badAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x) // want "append in a loop of hot badAppend grows out without preallocation"
	}
	return out
}

//fgbs:hot
func goodAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*x)
	}
	return out
}

type result struct {
	merges []int
}

// fillField shows the field-destination case: d.merges is preallocated
// with capacity before the loop, so the appends amortize to zero.
//
//fgbs:hot
func fillField(d *result, n int) {
	d.merges = make([]int, 0, n)
	for i := 0; i < n; i++ {
		d.merges = append(d.merges, i)
	}
}

//fgbs:hot
func badFillField(d *result, n int) {
	for i := 0; i < n; i++ {
		d.merges = append(d.merges, i) // want "append in a loop of hot badFillField grows d.merges without preallocation"
	}
}

//fgbs:hot
func badBox(xs []int) []any {
	out := make([]any, 0, len(xs))
	for _, x := range xs {
		out = append(out, any(x)) // want "conversion to interface any in a loop of hot badBox boxes per iteration"
	}
	return out
}

// errorPathOK: fmt.Errorf constructs the error that exits the loop —
// exempt by design.
//
//fgbs:hot
func errorPathOK(xs []int) error {
	for _, x := range xs {
		if x < 0 {
			return fmt.Errorf("negative input %d", x)
		}
	}
	return nil
}

// coldPath commits every hot-path sin but carries no annotation, so
// nothing is reported.
func coldPath(xs []int) string {
	out := ""
	var all []string
	for _, x := range xs {
		s := fmt.Sprintf("%d", x)
		all = append(all, s)
		out += s
	}
	return out
}

// outsideLoop: allocation before the loop is exactly what the check
// pushes toward — no findings on straight-line code.
//
//fgbs:hot
func outsideLoop(xs []int) string {
	header := fmt.Sprintf("n=%d", len(xs))
	total := 0
	for _, x := range xs {
		total += x
	}
	return header + fmt.Sprint(total)
}

// suppressed documents a measured exception (the fmt call is behind a
// debug flag that is off in production).
//
//fgbs:hot
func suppressed(xs []int, debug bool) {
	for _, x := range xs {
		if debug {
			//fgbs:allow allochot corpus: debug-only branch, off in production
			fmt.Println(x)
		}
	}
}

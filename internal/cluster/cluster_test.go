package cluster

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"fgbs/internal/rng"
	"fgbs/internal/stats"
)

// blobs generates k well-separated Gaussian blobs of m points each in
// dim dimensions. Returns points and the true labels.
func blobs(seed uint64, k, m, dim int, sep float64) ([][]float64, []int) {
	r := rng.New(seed)
	var points [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c) * sep
		}
		for i := 0; i < m; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = center[j] + r.NormFloat64()*0.2
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

// sameClustering checks that two labelings induce the same partition.
func sameClustering(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	bwd := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := bwd[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestRecoversBlobs(t *testing.T) {
	for _, linkage := range []Linkage{Ward, Single, Complete, Average} {
		points, truth := blobs(1, 4, 10, 5, 10)
		d, err := Build(points, linkage)
		if err != nil {
			t.Fatalf("%v: %v", linkage, err)
		}
		got := d.Cut(4)
		if !sameClustering(got, truth) {
			t.Errorf("%v linkage failed to recover 4 separated blobs", linkage)
		}
	}
}

func TestDendrogramShape(t *testing.T) {
	points, _ := blobs(2, 3, 5, 4, 8)
	d, err := Build(points, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != len(points)-1 {
		t.Fatalf("merges = %d, want %d", len(d.Merges), len(points)-1)
	}
	if d.Merges[len(d.Merges)-1].Size != len(points) {
		t.Error("final merge does not contain all leaves")
	}
	// Ward heights must be non-decreasing (reducibility property).
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Height < d.Merges[i-1].Height-1e-9 {
			t.Errorf("Ward heights decrease at step %d: %g < %g",
				i, d.Merges[i].Height, d.Merges[i-1].Height)
		}
	}
}

func TestCutExtremes(t *testing.T) {
	points, _ := blobs(3, 2, 6, 3, 6)
	d, err := Build(points, Ward)
	if err != nil {
		t.Fatal(err)
	}
	one := d.Cut(1)
	for _, l := range one {
		if l != 0 {
			t.Fatal("Cut(1) produced multiple clusters")
		}
	}
	all := d.Cut(len(points))
	seen := map[int]bool{}
	for _, l := range all {
		if seen[l] {
			t.Fatal("Cut(N) produced a non-singleton cluster")
		}
		seen[l] = true
	}
	// Out-of-range values clamp.
	if got := d.Cut(0); len(got) != len(points) {
		t.Error("Cut(0) wrong length")
	}
	if got := d.Cut(1000); len(got) != len(points) {
		t.Error("Cut(1000) wrong length")
	}
}

func TestCutLabelCount(t *testing.T) {
	points, _ := blobs(4, 5, 4, 6, 9)
	d, err := Build(points, Ward)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(points); k++ {
		labels := d.Cut(k)
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Fatalf("Cut(%d) produced %d clusters", k, len(distinct))
		}
		for _, l := range labels {
			if l < 0 || l >= k {
				t.Fatalf("Cut(%d) label %d out of range", k, l)
			}
		}
	}
}

func TestWithinSSMonotone(t *testing.T) {
	points, _ := blobs(5, 3, 8, 5, 4)
	d, err := Build(points, Ward)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 1; k <= len(points); k++ {
		w := WithinSS(points, d.Cut(k))
		if w > prev+1e-9 {
			t.Fatalf("WithinSS increased at k=%d: %g > %g", k, w, prev)
		}
		prev = w
	}
	if w := WithinSS(points, d.Cut(len(points))); w > 1e-12 {
		t.Errorf("WithinSS with singletons = %g, want 0", w)
	}
}

func TestElbowFindsBlobCount(t *testing.T) {
	points, _ := blobs(6, 5, 8, 6, 20)
	d, err := Build(points, Ward)
	if err != nil {
		t.Fatal(err)
	}
	k := d.Elbow(points, 20, 0)
	if k != 5 {
		t.Errorf("elbow chose %d clusters, want 5", k)
	}
}

func TestCentroids(t *testing.T) {
	points := [][]float64{{0, 0}, {2, 0}, {10, 10}}
	labels := []int{0, 0, 1}
	cents := Centroids(points, labels)
	if len(cents) != 2 {
		t.Fatalf("centroids = %d", len(cents))
	}
	if cents[0][0] != 1 || cents[0][1] != 0 {
		t.Errorf("centroid 0 = %v", cents[0])
	}
	if cents[1][0] != 10 || cents[1][1] != 10 {
		t.Errorf("centroid 1 = %v", cents[1])
	}
}

func TestRepresentatives(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {0.4, 0}, {10, 10}}
	labels := []int{0, 0, 0, 1}
	reps := Representatives(points, labels, nil)
	// Centroid of cluster 0 is (0.466, 0); closest member is index 2.
	if reps[0] != 2 {
		t.Errorf("rep of cluster 0 = %d, want 2", reps[0])
	}
	if reps[1] != 3 {
		t.Errorf("rep of cluster 1 = %d, want 3", reps[1])
	}
}

func TestRepresentativesEligibility(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {0.4, 0}}
	labels := []int{0, 0, 0}
	reps := Representatives(points, labels, func(i int) bool { return i != 2 })
	if reps[0] == 2 {
		t.Error("ineligible point selected")
	}
	// All ineligible -> -1.
	reps = Representatives(points, labels, func(i int) bool { return false })
	if reps[0] != -1 {
		t.Errorf("rep = %d, want -1 for fully ineligible cluster", reps[0])
	}
}

func TestNearestNeighbor(t *testing.T) {
	points := [][]float64{{0}, {1}, {5}, {0.2}}
	if nn := NearestNeighbor(points, 0, nil); nn != 3 {
		t.Errorf("nn of 0 = %d, want 3", nn)
	}
	if nn := NearestNeighbor(points, 0, func(j int) bool { return j != 3 }); nn != 1 {
		t.Errorf("filtered nn of 0 = %d, want 1", nn)
	}
	if nn := NearestNeighbor(points, 0, func(j int) bool { return false }); nn != -1 {
		t.Errorf("nn with nothing allowed = %d, want -1", nn)
	}
}

func TestSinglePoint(t *testing.T) {
	d, err := Build([][]float64{{1, 2}}, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if labels := d.Cut(1); len(labels) != 1 || labels[0] != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	if _, err := Build([][]float64{{1, 2}, {1}}, Ward); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Build(nil, Ward); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDeterministic(t *testing.T) {
	points, _ := blobs(9, 4, 10, 8, 6)
	d1, _ := Build(points, Ward)
	d2, _ := Build(points, Ward)
	for i := range d1.Merges {
		if d1.Merges[i] != d2.Merges[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

// Property: for random data, every cut is a valid partition and the
// dendrogram respects the merge-size invariant.
func TestPartitionProperty(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		dim := 1 + r.Intn(6)
		points := make([][]float64, n)
		for i := range points {
			points[i] = make([]float64, dim)
			for j := range points[i] {
				points[i][j] = r.NormFloat64()
			}
		}
		d, err := Build(points, Ward)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + r.Intn(n)
		labels := d.Cut(k)
		if len(labels) != n {
			t.Fatal("wrong label count")
		}
		distinct := map[int]bool{}
		for _, l := range labels {
			distinct[l] = true
		}
		if len(distinct) != k {
			t.Fatalf("trial %d: cut(%d) gave %d clusters", trial, k, len(distinct))
		}
	}
}

// buildDense is the pre-condensed reference implementation of Build:
// a full n×n symmetric distance matrix updated in both triangles. It
// exists only to pin the condensed-storage rewrite byte-identical.
func buildDense(points [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	d := &Dendrogram{N: n, Linkage: linkage}
	if n == 1 {
		return d, nil
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				e := stats.EuclideanDistance(points[i], points[j])
				dist[i][j] = e * e
			}
		}
	}
	active := make([]bool, n)
	id := make([]int, n)
	size := make([]float64, n)
	for i := range active {
		active[i] = true
		id[i] = i
		size[i] = 1
	}
	for step := 0; step < n-1; step++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		ni, nj := size[bi], size[bj]
		d.Merges = append(d.Merges, Merge{A: id[bi], B: id[bj], Height: best, Size: int(ni + nj)})
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			nk := size[k]
			var nd float64
			switch linkage {
			case Ward:
				nd = ((ni+nk)*dist[bi][k] + (nj+nk)*dist[bj][k] - nk*best) / (ni + nj + nk)
			case Single:
				nd = math.Min(dist[bi][k], dist[bj][k])
			case Complete:
				nd = math.Max(dist[bi][k], dist[bj][k])
			case Average:
				nd = (ni*dist[bi][k] + nj*dist[bj][k]) / (ni + nj)
			default:
				return nil, fmt.Errorf("cluster: unknown linkage %v", linkage)
			}
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		active[bj] = false
		size[bi] = ni + nj
		id[bi] = n + step
	}
	return d, nil
}

// TestCondensedMatchesDense pins the condensed-triangular rewrite
// byte-identical to the dense reference: same merges, same heights
// (reflect.DeepEqual on float64 means bitwise, not approximate), for
// every linkage over several point-set shapes. This is the contract
// that lets the optimization land without a baseline bump anywhere
// downstream — cluster assignments, representatives, and stage keys
// derived from them are all unchanged.
func TestCondensedMatchesDense(t *testing.T) {
	shapes := []struct {
		seed      uint64
		k, m, dim int
		sep       float64
	}{
		{1, 3, 10, 4, 8},
		{2, 5, 7, 16, 3},
		{3, 1, 2, 1, 1},
		{4, 4, 12, 8, 0.5}, // overlapping blobs: plenty of near-ties
	}
	for _, s := range shapes {
		points, _ := blobs(s.seed, s.k, s.m, s.dim, s.sep)
		for _, linkage := range []Linkage{Ward, Single, Complete, Average} {
			got, err := Build(points, linkage)
			if err != nil {
				t.Fatalf("Build(%v): %v", linkage, err)
			}
			want, err := buildDense(points, linkage)
			if err != nil {
				t.Fatalf("buildDense(%v): %v", linkage, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d linkage %v: condensed dendrogram differs from dense reference", s.seed, linkage)
			}
		}
	}
}

package pipeline

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"

	"fgbs/internal/arch"
	"fgbs/internal/cluster"
	"fgbs/internal/fault"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/stage"
)

// stages.go wires the per-step files into internal/stage's
// content-addressed graph. Engine.Profile resolves the expensive roots
// (Detect, Profile) through a stage.Store; the returned Staged view
// resolves the cheap derived stages (Normalize, Cluster, Represent,
// Predict) per request. Every staged method calls the same step
// functions as the monolithic Profile methods — points, cluster.Build,
// finishSubset, Evaluate — so outputs are byte-identical; the only
// difference is that an artifact whose key already resolved is reused
// instead of recomputed. A K sweep therefore normalizes and clusters
// once and re-runs only the cut, selection and prediction per K.

// Stage versions, folded into every key (and, through upstream
// chaining, into every downstream key). Bump one when its stage's
// computation changes meaning: old artifacts become unreachable
// instead of silently wrong.
const (
	detectStageVersion    = 1
	profileStageVersion   = 1
	normalizeStageVersion = 1
	clusterStageVersion   = 1
	representStageVersion = 1
	predictStageVersion   = 1
)

// detectKey fingerprints Step A's input: each program's name, its
// uncovered fraction (not part of the pseudo-source) and its
// deterministic pseudo-source rendering.
func detectKey(progs []*ir.Program) stage.Key {
	b := stage.NewKey("detect", detectStageVersion)
	for _, p := range progs {
		b.Str(p.Name).Float(p.UncoveredFraction).Str(p.Source())
	}
	return b.Key()
}

// profileKey fingerprints Step B: the detected input plus everything
// that shapes measurements — seed, machines, and the measurer's
// identity. Workers is deliberately excluded: it changes scheduling,
// never results (the property parallel.go pins).
func profileKey(dk stage.Key, opts Options, measurerKey string) stage.Key {
	ref := opts.Reference
	if ref == nil {
		ref = arch.Reference()
	}
	targets := opts.Targets
	if targets == nil {
		targets = arch.Targets()
	}
	names := make([]string, len(targets))
	for i, m := range targets {
		names[i] = m.Name
	}
	return stage.NewKey("profile", profileStageVersion).
		Upstream(dk).
		Uint64(opts.Seed).
		Str(ref.Name).
		Strs(names).
		Str(measurerKey).
		Key()
}

// normalizeKey fingerprints Step C's first half: the profile plus the
// feature mask and the A2 normalization switch.
func normalizeKey(pk stage.Key, mask features.Mask, cfg SubsetConfig) stage.Key {
	return stage.NewKey("normalize", normalizeStageVersion).
		Upstream(pk).
		Str(mask.String()).
		Bool(cfg.NoNormalize).
		Key()
}

// clusterKey fingerprints the dendrogram build: normalized points plus
// the linkage. K is not an input — the dendrogram covers every cut.
func clusterKey(nk stage.Key, cfg SubsetConfig) stage.Key {
	return stage.NewKey("cluster", clusterStageVersion).
		Upstream(nk).
		Int(int(cfg.Linkage)).
		Key()
}

// representKey fingerprints Step D: the dendrogram plus the requested
// cut and the A3/A5 ablation switches.
func representKey(ck stage.Key, k int, cfg SubsetConfig) stage.Key {
	return stage.NewKey("represent", representStageVersion).
		Upstream(ck).
		Int(k).
		Int(int(cfg.RepStrategy)).
		Bool(cfg.IgnoreScreening).
		Key()
}

// predictKey fingerprints Step E: the subset plus the target index.
func predictKey(rk stage.Key, t int) stage.Key {
	return stage.NewKey("predict", predictStageVersion).
		Upstream(rk).
		Int(t).
		Key()
}

// StageOptions extends Options with the stage-graph inputs that plain
// profiling does not need.
type StageOptions struct {
	Options

	// MeasurerKey identifies the Measurer's configuration in the
	// profile key (e.g. fault.Profile.Fingerprint()). Leave empty with
	// a nil Measurer. With a non-nil Measurer and an empty key, the
	// engine falls back to a per-Measurer-instance token, so distinct
	// anonymous measurers never collide with each other or with the
	// clean simulator — at the cost of no artifact sharing across
	// engine restarts.
	MeasurerKey string

	// DiskName, when non-empty and the engine's store has a disk
	// directory, persists the profile stage on disk. The file is
	// key-qualified — "nr.json" is written as "nr-<key prefix>.json" —
	// so resolves under different profile keys (another seed, an
	// injected fault profile) never share a disk artifact. For
	// measurer-free resolves the engine additionally probes the bare
	// name as a read-only fallback, adopting profiles a pre-stage
	// registry persisted; that legacy file carries no provenance, so
	// it is trusted across seeds exactly as the old registry trusted
	// it. Fault-keyed resolves never touch the bare name in either
	// direction.
	DiskName string
}

// Engine runs the pipeline through a stage.Store.
type Engine struct {
	store *stage.Store

	mu sync.Mutex
	// anon assigns per-instance tokens to measurers without a
	// MeasurerKey; guarded by mu. Keyed by the Measurer itself — every
	// implementation in this codebase is a pointer or empty struct, so
	// interface comparison is safe.
	anon  map[fault.Measurer]string // guarded by mu
	anonN int                       // guarded by mu
	// degradedN numbers degraded builds: each gets a unique Staged key
	// so its derived stages can never be served to a clean rebuild (or
	// to another degraded build) of the same profile key.
	degradedN int // guarded by mu
}

// NewEngine wraps a store. Engines are cheap; everything lives in the
// store, so any number of engines may share one.
func NewEngine(store *stage.Store) *Engine {
	return &Engine{store: store, anon: make(map[fault.Measurer]string)}
}

// Store exposes the backing store (for stats and tests).
func (e *Engine) Store() *stage.Store { return e.store }

// measurerKey resolves StageOptions' measurer identity for key
// derivation.
func (e *Engine) measurerKey(opts StageOptions) string {
	if opts.MeasurerKey != "" || opts.Measurer == nil {
		return opts.MeasurerKey
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k, ok := e.anon[opts.Measurer]
	if !ok {
		e.anonN++
		k = fmt.Sprintf("anon-measurer-%d", e.anonN)
		e.anon[opts.Measurer] = k
	}
	return k
}

// detected is the detect stage's artifact.
type detected struct {
	ps []*ir.Program
	cs []*ir.Codelet
}

// profileCodec persists the profile stage as the raw SaveJSON layout
// under a key-qualified filename, with the bare pre-stage registry
// name as an optional read-only fallback, so old cache directories
// keep being adopted while differently-keyed runs stay separate.
type profileCodec struct {
	name   string // key-qualified filename (diskFilename)
	legacy string // bare pre-stage name probed read-only; "" when none applies
	progs  []*ir.Program
}

func (c profileCodec) Filename() string       { return c.name }
func (c profileCodec) LegacyFilename() string { return c.legacy }

func (c profileCodec) Encode(w io.Writer, v any) error {
	return v.(*Profile).SaveJSON(w)
}

func (c profileCodec) Decode(r io.Reader) (any, error) {
	return ReadProfile(r, c.progs)
}

// Persist keeps degraded profiles off disk: a restart should retry the
// failed measurements, not resurrect the outage.
func (c profileCodec) Persist(v any) bool {
	return !v.(*Profile).Degraded()
}

// diskFilename qualifies a profile stage filename with its key so
// differently-keyed resolves (another seed, an injected fault profile)
// never share a disk artifact: "nr.json" → "nr-<key prefix>.json".
func diskFilename(name string, k stage.Key) string {
	ext := filepath.Ext(name)
	base := strings.TrimSuffix(name, ext)
	h := string(k)
	if len(h) > 12 {
		h = h[:12]
	}
	return base + "-" + h + ext
}

// legacyDiskName returns the bare pre-stage filename to probe when the
// keyed artifact is missing — only for measurer-free resolves, so an
// injected run can never adopt a clean legacy profile (and, because
// writes always use the keyed name, a clean run can never adopt an
// injected one).
func legacyDiskName(opts StageOptions) string {
	if opts.Measurer != nil || opts.MeasurerKey != "" {
		return ""
	}
	return opts.DiskName
}

// Profile resolves the Detect and Profile stages for progs, computing
// them only when no stored artifact matches. The Outcome reports how
// the profile stage was satisfied (memory/coalesced/disk vs computed).
func (e *Engine) Profile(ctx context.Context, progs []*ir.Program, opts StageOptions) (*Staged, stage.Outcome, error) {
	dk := detectKey(progs)
	dV, _, err := e.store.Resolve(ctx, "detect", dk, nil, func(context.Context) (any, error) {
		ps, cs, err := Detect(progs)
		if err != nil {
			return nil, err
		}
		return &detected{ps: ps, cs: cs}, nil
	})
	if err != nil {
		return nil, stage.Outcome{}, err
	}
	det := dV.(*detected)

	pk := profileKey(dk, opts.Options, e.measurerKey(opts))
	var codec stage.Codec
	if opts.DiskName != "" {
		codec = profileCodec{name: diskFilename(opts.DiskName, pk), legacy: legacyDiskName(opts), progs: progs}
	}
	// The profile compute consumes the detect artifact instead of
	// calling NewProfileContext, which would re-run Detect: Detect runs
	// exactly once per detect key, cold or warm.
	v, out, err := e.store.Resolve(ctx, "profile", pk, codec, func(ctx context.Context) (any, error) {
		return newProfileDetected(ctx, det.ps, det.cs, opts.Options)
	})
	if err != nil {
		return nil, out, err
	}
	prof := v.(*Profile)
	if prof.Degraded() {
		// A degraded profile is served but never memoized — the memory
		// analogue of profileCodec.Persist: the next resolve (a
		// half-open recovery probe, say) must retry the measurements,
		// not resurrect the outage from the LRU.
		e.store.Delete(pk)
	}
	return &Staged{eng: e, prof: prof, key: e.stagedKey(pk, prof)}, out, nil
}

// stagedKey derives the key the Staged view memoizes its derived
// stages under. A clean profile uses its profile key. A degraded
// profile gets a unique per-build key: derived artifacts computed from
// its zeroed features may be shared within the one Staged handle (a
// sweep over a degraded profile still reuses its own clustering) but
// must never be served to a later clean rebuild — or to a different
// degraded build — resolving under the same profile key.
func (e *Engine) stagedKey(pk stage.Key, prof *Profile) stage.Key {
	if !prof.Degraded() {
		return pk
	}
	e.mu.Lock()
	e.degradedN++
	n := e.degradedN
	e.mu.Unlock()
	return stage.NewKey("profile-degraded", profileStageVersion).Upstream(pk).Int(n).Key()
}

// Adopt inserts an externally built profile (e.g. loaded from a legacy
// -cache file) into the stage graph under the key Engine.Profile would
// derive for the same inputs, replacing any stored artifact. The
// adopted profile is trusted as-is, matching the CLI's historical
// cache semantics — except a degraded profile, which (like a degraded
// build) is served but never memoized, under an isolated key.
func (e *Engine) Adopt(progs []*ir.Program, opts StageOptions, prof *Profile) *Staged {
	pk := profileKey(detectKey(progs), opts.Options, e.measurerKey(opts))
	if !prof.Degraded() {
		e.store.Put(pk, prof)
	}
	return &Staged{eng: e, prof: prof, key: e.stagedKey(pk, prof)}
}

// Staged is a Profile bound to its stage key: the handle through which
// derived stages (Normalize → Cluster → Represent → Predict) resolve
// incrementally. Staged is immutable and safe for concurrent use, like
// the Profile it wraps.
type Staged struct {
	eng  *Engine
	prof *Profile
	key  stage.Key
}

// Profile returns the underlying profile.
func (s *Staged) Profile() *Profile { return s.prof }

// Key returns the profile stage's content address.
func (s *Staged) Key() stage.Key { return s.key }

// Subset is Profile.Subset through the stage graph.
func (s *Staged) Subset(ctx context.Context, mask features.Mask, k int) (*Subset, error) {
	sub, _, err := s.subsetWithKey(ctx, mask, k, SubsetConfig{})
	return sub, err
}

// SubsetWith is Profile.SubsetWith through the stage graph.
func (s *Staged) SubsetWith(ctx context.Context, mask features.Mask, k int, cfg SubsetConfig) (*Subset, error) {
	sub, _, err := s.subsetWithKey(ctx, mask, k, cfg)
	return sub, err
}

// subsetWithKey resolves Normalize, Cluster and Represent, returning
// the subset and its represent-stage key (the upstream of Predict).
// The bodies replicate Profile.SubsetWith stage by stage; cached
// artifacts are shared, which is safe because points/dendrograms/
// subsets are never mutated after construction.
func (s *Staged) subsetWithKey(ctx context.Context, mask features.Mask, k int, cfg SubsetConfig) (*Subset, stage.Key, error) {
	nk := normalizeKey(s.key, mask, cfg)
	ptsV, _, err := s.eng.store.Resolve(ctx, "normalize", nk, nil, func(context.Context) (any, error) {
		return s.prof.points(mask, cfg), nil
	})
	if err != nil {
		return nil, "", err
	}
	pts := ptsV.([][]float64)

	ck := clusterKey(nk, cfg)
	dV, _, err := s.eng.store.Resolve(ctx, "cluster", ck, nil, func(context.Context) (any, error) {
		return cluster.Build(pts, cfg.Linkage)
	})
	if err != nil {
		return nil, "", err
	}
	d := dV.(*cluster.Dendrogram)

	rk := representKey(ck, k, cfg)
	subV, _, err := s.eng.store.Resolve(ctx, "represent", rk, nil, func(context.Context) (any, error) {
		kk := k
		if kk <= 0 {
			kk = d.Elbow(pts, s.prof.maxElbowK(), 0)
		}
		labels := d.Cut(kk)
		return s.prof.finishSubset(mask, kk, d, pts, labels, cfg)
	})
	if err != nil {
		return nil, "", err
	}
	return subV.(*Subset), rk, nil
}

// Evaluate is Subset-then-Profile.Evaluate through the stage graph,
// returning both the subset and the target's evaluation.
func (s *Staged) Evaluate(ctx context.Context, mask features.Mask, k int, t int) (*Subset, *Eval, error) {
	return s.evaluateWith(ctx, mask, k, SubsetConfig{}, t)
}

func (s *Staged) evaluateWith(ctx context.Context, mask features.Mask, k int, cfg SubsetConfig, t int) (*Subset, *Eval, error) {
	sub, rk, err := s.subsetWithKey(ctx, mask, k, cfg)
	if err != nil {
		return nil, nil, err
	}
	evV, _, err := s.eng.store.Resolve(ctx, "predict", predictKey(rk, t), nil, func(context.Context) (any, error) {
		return s.prof.Evaluate(sub, t)
	})
	if err != nil {
		return nil, nil, err
	}
	return sub, evV.(*Eval), nil
}

// SweepK is Profile.SweepKContext through the stage graph: the
// normalize and cluster stages resolve once, each K re-runs only the
// cut, selection and prediction. Output is identical to the serial
// monolithic sweep.
func (s *Staged) SweepK(ctx context.Context, mask features.Mask, kMin, kMax int) ([]SweepPoint, error) {
	var out []SweepPoint
	for k := kMin; k <= kMax && k <= s.prof.N(); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := s.sweepPoint(ctx, mask, k)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// sweepPoint mirrors Profile.sweepPoint, staged.
func (s *Staged) sweepPoint(ctx context.Context, mask features.Mask, k int) (SweepPoint, error) {
	sub, rk, err := s.subsetWithKey(ctx, mask, k, SubsetConfig{})
	if err != nil {
		return SweepPoint{}, fmt.Errorf("pipeline: sweep k=%d: %w", k, err)
	}
	pt := SweepPoint{K: k, FinalK: sub.K()}
	for t := range s.prof.Targets {
		evV, _, err := s.eng.store.Resolve(ctx, "predict", predictKey(rk, t), nil, func(context.Context) (any, error) {
			return s.prof.Evaluate(sub, t)
		})
		if err != nil {
			return SweepPoint{}, err
		}
		ev := evV.(*Eval)
		pt.MedianError = append(pt.MedianError, ev.Summary.Median)
		pt.Reduction = append(pt.Reduction, ev.Reduction.Total)
	}
	return pt, nil
}

// SweepKParallel is Profile.SweepKParallel through the stage graph:
// same fan-out, same in-order merge, but shared stages resolve once
// across workers (coalesced by the store).
func (s *Staged) SweepKParallel(ctx context.Context, mask features.Mask, kMin, kMax, workers int, progress ProgressFunc) ([]SweepPoint, error) {
	var ks []int
	for k := kMin; k <= kMax && k <= s.prof.N(); k++ {
		ks = append(ks, k)
	}
	out := make([]SweepPoint, len(ks))
	err := runIndexed(ctx, len(ks), workers, progress, func(i int) error {
		pt, err := s.sweepPoint(ctx, mask, ks[i])
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RandomClusteringsParallel is Profile.RandomClusteringsParallel with
// the guided side staged. The random trials stay unstaged: each
// partition is drawn from a per-trial seed and essentially never
// recurs, so caching them would only churn the LRU.
func (s *Staged) RandomClusteringsParallel(ctx context.Context, mask features.Mask, k, trials int, t int, seed uint64, workers int, progress ProgressFunc) (RandomClusteringStats, error) {
	_, ev, err := s.Evaluate(ctx, mask, k, t)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	res := RandomClusteringStats{K: k, Guided: ev.Summary.Median}
	seeds := trialSeeds(seed, trials)
	errs := make([]float64, trials)
	runErr := runChunked(ctx, trials, workers, progress, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			e, err := s.prof.randomTrial(mask, seeds[i], k, t)
			if err != nil {
				return err
			}
			errs[i] = e
		}
		return nil
	})
	if runErr != nil {
		return RandomClusteringStats{}, runErr
	}
	return finishRandomStats(res, errs), nil
}

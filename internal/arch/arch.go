// Package arch defines the machine models standing in for the four
// Intel systems of the paper's Table 1 (Nehalem L5609 as reference;
// Atom D510, Core 2 E7500 and Sandy Bridge E31240 as targets).
//
// The paper measures real silicon with Likwid; this reproduction has no
// hardware, so each machine is an analytical bottleneck model consumed
// by internal/sim:
//
//   - a clock frequency,
//   - per-class execution throughputs (FP add/mul pipes, divider,
//     transcendental unit, load/store ports, integer ALUs) and an issue
//     width, which bound the compute cycles per loop iteration,
//   - SIMD width and efficiency, which set the vectorization payoff,
//   - a cache hierarchy (sizes, ways, latencies) simulated by
//     internal/cache, plus memory latency and bandwidth,
//   - an out-of-order overlap factor describing how much memory stall
//     the core hides under compute (Atom, in-order, hides none).
//
// The models are calibrated to reproduce the paper's qualitative
// contrasts: Atom is several times slower than Nehalem and pathological
// on divisions and memory misses; Core 2 trades a faster clock for a
// small last-level cache and a slow front-side bus; Sandy Bridge is
// roughly twice the reference across the board.
//
// Cache capacities are scaled down by CacheScale (and dataset sizes in
// internal/suites are scaled identically) so that the cache simulator
// processes tractable access streams while preserving every capacity
// relationship between working sets and cache levels.
package arch

import "fmt"

// CacheScale divides real cache capacities and real dataset sizes
// alike. Capacity *ratios* — which decide whether a working set is L1-,
// L2-, L3- or memory-resident on each machine — are preserved exactly.
const CacheScale = 16

// CacheLevel describes one level of the data-cache hierarchy.
type CacheLevel struct {
	Name string
	// SizeBytes is the modeled (already scaled) capacity available to a
	// single-threaded run.
	SizeBytes int64
	Ways      int
	LineBytes int64
	// LatencyCycles is the load-to-use latency of a hit in this level.
	LatencyCycles float64
}

// Machine is one system model.
type Machine struct {
	Name string
	// CPU is the marketing identifier from Table 1.
	CPU     string
	FreqGHz float64
	Cores   int

	// InOrder marks cores that cannot hide memory stalls (Atom).
	InOrder bool
	// IssueWidth bounds instructions retired per cycle.
	IssueWidth float64
	// SIMDBytes is the vector register width (16 = 128-bit SSE).
	SIMDBytes int64
	// SIMDFPEff derates vector FP throughput on machines whose SIMD
	// datapath is narrower than the register width (Atom executes
	// 128-bit FP ops in multiple passes).
	SIMDFPEff float64

	// Reciprocal throughputs, in operations started per cycle, for
	// scalar or one-vector operations.
	FPAddPerCycle float64
	FPMulPerCycle float64
	IntPerCycle   float64
	LoadPorts     float64
	StorePorts    float64

	// FPDivCycles is the reciprocal throughput of a double-precision
	// divide; DivVecFactor scales it for a packed divide.
	FPDivCycles  float64
	DivVecFactor float64
	// SpecialCycles is the cost of one transcendental (exp/log/sin/cos)
	// through the math library.
	SpecialCycles float64
	// SqrtCycles is the reciprocal throughput of a square root.
	SqrtCycles float64

	// Caches lists the hierarchy from L1 outward.
	Caches []CacheLevel
	// MemLatencyCycles is the full miss latency to DRAM.
	MemLatencyCycles float64
	// MemBWBytesPerCycle caps sustained memory traffic.
	MemBWBytesPerCycle float64
	// Overlap is the fraction of miss latency hidden by out-of-order
	// execution (0 for in-order Atom).
	Overlap float64
	// PrefetchEff is the additional fraction of the *exposed* miss
	// latency hidden by hardware prefetchers on sequential (small
	// constant stride) access streams. Random gathers get no benefit.
	PrefetchEff float64
}

// CyclesToSeconds converts core cycles to seconds on this machine.
func (m *Machine) CyclesToSeconds(cycles float64) float64 {
	return cycles / (m.FreqGHz * 1e9)
}

// LastLevelSize returns the capacity of the outermost cache level.
func (m *Machine) LastLevelSize() int64 {
	return m.Caches[len(m.Caches)-1].SizeBytes
}

// String returns the machine name.
func (m *Machine) String() string { return m.Name }

// scaled converts a real capacity in KB to the modeled size.
func scaledKB(kb int64) int64 { return kb * 1024 / CacheScale }

// Nehalem returns the reference architecture model (Xeon L5609,
// 1.86 GHz, 12 MB L3).
func Nehalem() *Machine {
	return &Machine{
		Name: "Nehalem", CPU: "L5609", FreqGHz: 1.86, Cores: 4,
		InOrder: false, IssueWidth: 4,
		SIMDBytes: 16, SIMDFPEff: 1.0,
		FPAddPerCycle: 1, FPMulPerCycle: 1, IntPerCycle: 3,
		LoadPorts: 1, StorePorts: 1,
		FPDivCycles: 22, DivVecFactor: 2.0, SpecialCycles: 45, SqrtCycles: 28,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: scaledKB(32), Ways: 8, LineBytes: 64, LatencyCycles: 4},
			{Name: "L2", SizeBytes: scaledKB(256), Ways: 8, LineBytes: 64, LatencyCycles: 10},
			// 12 ways rather than the real 16 so the 12 MB capacity
			// divides into a power-of-two set count.
			{Name: "L3", SizeBytes: scaledKB(12 * 1024), Ways: 12, LineBytes: 64, LatencyCycles: 38},
		},
		MemLatencyCycles: 190, MemBWBytesPerCycle: 8.5, Overlap: 0.78, PrefetchEff: 0.85,
	}
}

// Atom returns the Atom D510 model (1.66 GHz, in-order, no L3, slow
// divider, weak SIMD).
func Atom() *Machine {
	return &Machine{
		Name: "Atom", CPU: "D510", FreqGHz: 1.66, Cores: 2,
		InOrder: true, IssueWidth: 2,
		SIMDBytes: 16, SIMDFPEff: 0.45,
		FPAddPerCycle: 0.5, FPMulPerCycle: 0.25, IntPerCycle: 1.5,
		LoadPorts: 0.7, StorePorts: 0.7,
		FPDivCycles: 125, DivVecFactor: 2.0, SpecialCycles: 290, SqrtCycles: 135,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: scaledKB(24), Ways: 6, LineBytes: 64, LatencyCycles: 3},
			{Name: "L2", SizeBytes: scaledKB(512), Ways: 8, LineBytes: 64, LatencyCycles: 16},
		},
		MemLatencyCycles: 160, MemBWBytesPerCycle: 2.0, Overlap: 0.0, PrefetchEff: 0.40,
	}
}

// Core2 returns the Core 2 E7500 model (2.93 GHz, fast clock, 3 MB
// shared L2 as last level, front-side-bus memory).
func Core2() *Machine {
	return &Machine{
		Name: "Core 2", CPU: "E7500", FreqGHz: 2.93, Cores: 2,
		InOrder: false, IssueWidth: 4,
		SIMDBytes: 16, SIMDFPEff: 1.0,
		FPAddPerCycle: 1, FPMulPerCycle: 1, IntPerCycle: 3,
		LoadPorts: 1, StorePorts: 1,
		FPDivCycles: 28, DivVecFactor: 2.0, SpecialCycles: 50, SqrtCycles: 36,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: scaledKB(32), Ways: 8, LineBytes: 64, LatencyCycles: 3},
			{Name: "L2", SizeBytes: scaledKB(3 * 1024), Ways: 12, LineBytes: 64, LatencyCycles: 15},
		},
		MemLatencyCycles: 290, MemBWBytesPerCycle: 2.2, Overlap: 0.55, PrefetchEff: 0.85,
	}
}

// SandyBridge returns the Sandy Bridge E31240 model (3.3 GHz, two load
// ports, 8 MB L3).
func SandyBridge() *Machine {
	return &Machine{
		Name: "Sandy Bridge", CPU: "E31240", FreqGHz: 3.30, Cores: 4,
		InOrder: false, IssueWidth: 4.5,
		SIMDBytes: 16, SIMDFPEff: 1.0,
		FPAddPerCycle: 1, FPMulPerCycle: 1, IntPerCycle: 3,
		LoadPorts: 2, StorePorts: 1,
		FPDivCycles: 22, DivVecFactor: 2.0, SpecialCycles: 40, SqrtCycles: 21,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: scaledKB(32), Ways: 8, LineBytes: 64, LatencyCycles: 4},
			{Name: "L2", SizeBytes: scaledKB(256), Ways: 8, LineBytes: 64, LatencyCycles: 12},
			{Name: "L3", SizeBytes: scaledKB(8 * 1024), Ways: 16, LineBytes: 64, LatencyCycles: 30},
		},
		MemLatencyCycles: 170, MemBWBytesPerCycle: 6.0, Overlap: 0.82, PrefetchEff: 0.90,
	}
}

// WideVec returns a hypothetical wide-vector accelerator-like machine
// — the "completely different architecture such as a GPU" of the
// paper's §5, used by the extension experiments to probe how far the
// Intel-trained feature set generalizes. Compared to the four Table 1
// systems it has 512-bit vectors, enormous streaming bandwidth, and a
// weak scalar core: vectorizable codelets fly, recurrences and
// gather-bound codelets crawl.
func WideVec() *Machine {
	return &Machine{
		Name: "WideVec", CPU: "ACC100", FreqGHz: 1.10, Cores: 64,
		InOrder: false, IssueWidth: 2,
		SIMDBytes: 64, SIMDFPEff: 0.9,
		FPAddPerCycle: 2, FPMulPerCycle: 2, IntPerCycle: 2,
		LoadPorts: 2, StorePorts: 1,
		FPDivCycles: 80, DivVecFactor: 4.0, SpecialCycles: 220, SqrtCycles: 90,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: scaledKB(32), Ways: 8, LineBytes: 64, LatencyCycles: 6},
			{Name: "L2", SizeBytes: scaledKB(1024), Ways: 16, LineBytes: 64, LatencyCycles: 24},
		},
		MemLatencyCycles: 400, MemBWBytesPerCycle: 30.0, Overlap: 0.50, PrefetchEff: 0.95,
	}
}

// NehalemNoVec returns the reference machine with vectorization
// disabled — not different silicon but a different *compiler
// configuration* (-no-vec). Target configurations like this let the
// subsetting method drive auto-tuning decisions, the §6 extension:
// predict, from the representatives alone, which codelets benefit
// from vectorization.
func NehalemNoVec() *Machine {
	m := Nehalem()
	m.Name = "Nehalem -no-vec"
	// A 1-byte "vector" register disables packing for every element
	// type; everything else is identical.
	m.SIMDBytes = 1
	return m
}

// Reference returns the paper's reference architecture (Nehalem).
func Reference() *Machine { return Nehalem() }

// Targets returns the three target architectures in the paper's order.
func Targets() []*Machine {
	return []*Machine{Atom(), Core2(), SandyBridge()}
}

// All returns reference plus targets.
func All() []*Machine {
	return append([]*Machine{Reference()}, Targets()...)
}

// ByName returns the machine with the given name, or an error. All
// Table 1 machines plus the WideVec extension target are known.
func ByName(name string) (*Machine, error) {
	for _, m := range append(All(), WideVec(), NehalemNoVec()) {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown machine %q", name)
}

// Validate performs sanity checks on a machine model; it is exercised
// by tests and by cmd/fgbs when loading experimental configurations.
func (m *Machine) Validate() error {
	if m.FreqGHz <= 0 {
		return fmt.Errorf("arch %s: non-positive frequency", m.Name)
	}
	if len(m.Caches) == 0 {
		return fmt.Errorf("arch %s: no cache levels", m.Name)
	}
	prev := int64(0)
	for _, c := range m.Caches {
		if c.SizeBytes <= prev {
			return fmt.Errorf("arch %s: cache %s not larger than inner level", m.Name, c.Name)
		}
		if c.Ways <= 0 || c.LineBytes <= 0 {
			return fmt.Errorf("arch %s: cache %s has invalid geometry", m.Name, c.Name)
		}
		if c.SizeBytes%(int64(c.Ways)*c.LineBytes) != 0 {
			return fmt.Errorf("arch %s: cache %s size %d not divisible into %d ways of %dB lines",
				m.Name, c.Name, c.SizeBytes, c.Ways, c.LineBytes)
		}
		prev = c.SizeBytes
	}
	if m.Overlap < 0 || m.Overlap > 1 {
		return fmt.Errorf("arch %s: overlap %f outside [0,1]", m.Name, m.Overlap)
	}
	//fgbs:allow floatcompare exact-zero sentinel: in-order overlap is set to literal 0, never computed
	if m.InOrder && m.Overlap != 0 {
		return fmt.Errorf("arch %s: in-order core cannot overlap misses", m.Name)
	}
	if m.PrefetchEff < 0 || m.PrefetchEff > 1 {
		return fmt.Errorf("arch %s: prefetch efficiency %f outside [0,1]", m.Name, m.PrefetchEff)
	}
	if m.MemBWBytesPerCycle <= 0 || m.MemLatencyCycles <= 0 {
		return fmt.Errorf("arch %s: invalid memory parameters", m.Name)
	}
	return nil
}

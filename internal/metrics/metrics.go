// Package metrics derives Likwid-style dynamic performance metrics
// from the simulator's raw counters.
//
// The paper's Step B tags every codelet with dynamic metrics measured
// through hardware performance counters: floating-point rates, cache
// bandwidths, miss rates, memory bandwidth (§3.2, Table 2). This
// package computes the same quantities from sim.Counters.
package metrics

import (
	"fgbs/internal/sim"
)

// Dynamic is the set of Likwid-like derived metrics for one
// measurement.
type Dynamic struct {
	// Seconds is the measured per-invocation execution time.
	Seconds float64
	// CyclesPerInstr is CPI.
	CyclesPerInstr float64
	// MFLOPS is the floating-point rate in MFLOP/s.
	MFLOPS float64
	// VecFPShare is the fraction of FP operations retired by vector
	// instructions.
	VecFPShare float64

	// L1MissRate is L1 misses per memory reference.
	L1MissRate float64
	// L2BandwidthMBs is traffic between L2 and L1 in MB/s.
	L2BandwidthMBs float64
	// L3BandwidthMBs is traffic between L3 and L2 in MB/s (0 on
	// machines without an L3).
	L3BandwidthMBs float64
	// L3MissRate is misses at the last cache level per access to that
	// level.
	L3MissRate float64
	// MemBandwidthMBs is DRAM traffic (fills + writebacks) in MB/s.
	MemBandwidthMBs float64
	// MemAccessPerInstr is DRAM line fills per instruction.
	MemAccessPerInstr float64
	// OpIntensity is FP operations per byte of DRAM traffic.
	OpIntensity float64
}

// lineBytes is the modeled cache line size (all machines use 64-byte
// lines).
const lineBytes = 64

// Derive computes dynamic metrics from one measurement's counters.
func Derive(c sim.Counters) Dynamic {
	var d Dynamic
	d.Seconds = c.Seconds
	if c.Instructions > 0 {
		d.CyclesPerInstr = c.Cycles / c.Instructions
	}
	if c.Seconds > 0 {
		d.MFLOPS = float64(c.Ops.FPOps()) / c.Seconds / 1e6
	}
	if fp := float64(c.Ops.FPOps()); fp > 0 {
		d.VecFPShare = c.VecFPOps / fp
	}

	refs := c.MemLoads + c.MemStores
	if len(c.LevelMisses) > 0 && refs > 0 {
		d.L1MissRate = float64(c.LevelMisses[0]) / refs
	}
	if c.Seconds > 0 {
		if len(c.LevelMisses) > 0 {
			d.L2BandwidthMBs = float64(c.LevelMisses[0]) * lineBytes / c.Seconds / 1e6
		}
		if len(c.LevelMisses) > 1 {
			d.L3BandwidthMBs = float64(c.LevelMisses[1]) * lineBytes / c.Seconds / 1e6
		}
		memBytes := float64(c.MemAccesses+c.MemWritebacks) * lineBytes
		d.MemBandwidthMBs = memBytes / c.Seconds / 1e6
		if memBytes > 0 {
			d.OpIntensity = float64(c.Ops.FPOps()) / memBytes
		}
	}
	if n := len(c.LevelMisses); n > 0 {
		last := c.LevelHits[n-1] + c.LevelMisses[n-1]
		if last > 0 {
			d.L3MissRate = float64(c.LevelMisses[n-1]) / float64(last)
		}
	}
	if c.Instructions > 0 {
		d.MemAccessPerInstr = float64(c.MemAccesses) / c.Instructions
	}
	return d
}

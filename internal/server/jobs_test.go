package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fgbs/internal/features"
	"fgbs/internal/report"
)

// jobsTestServer is newTestServer with a small, deterministic job
// pool: two workers so one long job cannot starve the others.
func jobsTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny", "spare"},
		Programs:   testPrograms,
		JobWorkers: 2,
	})
	t.Cleanup(s.Close)
	seedSuite(t, s, "tiny", sharedProfile(t))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// submitJob posts a job request and returns the accepted job.
func submitJob(t *testing.T, ts *httptest.Server, body string) report.JobJSON {
	t.Helper()
	var jj report.JobJSON
	resp := post(t, ts, "/v1/jobs", body, &jj)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if jj.ID == "" {
		t.Fatal("submit returned no job ID")
	}
	return jj
}

// pollJob polls the job until pred is satisfied or the deadline hits.
func pollJob(t *testing.T, ts *httptest.Server, id string, what string, pred func(report.JobJSON) bool) report.JobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var jj report.JobJSON
		resp := get(t, ts, "/v1/jobs/"+id, &jj)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if pred(jj) {
			return jj
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s: %+v", id, what, jj)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(jj report.JobJSON) bool {
	switch jj.State {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// TestJobsSweepLifecycle is the happy path: submit a sweep, watch it
// finish, fetch the Figure 3 result, see it in the listing and in the
// /metricz gauges.
func TestJobsSweepLifecycle(t *testing.T) {
	ts := jobsTestServer(t)
	jj := submitJob(t, ts, `{"kind":"sweep","suite":"tiny","kmin":2,"kmax":4}`)

	done := pollJob(t, ts, jj.ID, "terminal", terminal)
	if done.State != "done" {
		t.Fatalf("state = %s err %q, want done", done.State, done.Error)
	}
	if done.Done != 3 || done.Total != 3 {
		t.Errorf("final progress = %d/%d, want 3/3", done.Done, done.Total)
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("terminal job missing started/finished timestamps")
	}

	var sweep report.SweepJSON
	resp := get(t, ts, "/v1/jobs/"+jj.ID+"/result", &sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	if sweep.Suite != "tiny" || sweep.KMin != 2 || sweep.KMax != 4 {
		t.Errorf("result identity = %q %d..%d", sweep.Suite, sweep.KMin, sweep.KMax)
	}
	prof := sharedProfile(t)
	if len(sweep.Targets) != len(prof.Targets) {
		t.Errorf("targets = %v", sweep.Targets)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points = %d, want 3 (k=2..4 on %d codelets)", len(sweep.Points), prof.N())
	}
	for i, pt := range sweep.Points {
		if pt.K != 2+i || len(pt.MedianError) != len(prof.Targets) {
			t.Errorf("point %d = %+v", i, pt)
		}
	}

	// The parallel job's points must equal the serial pipeline's.
	want, err := prof.SweepK(features.DefaultMask(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sweep.Points[i].FinalK != want[i].FinalK || sweep.Points[i].MedianError[0] != want[i].MedianError[0] {
			t.Errorf("point %d diverges from serial sweep: %+v vs %+v", i, sweep.Points[i], want[i])
		}
	}

	var list struct {
		Jobs []report.JobJSON `json:"jobs"`
	}
	get(t, ts, "/v1/jobs", &list)
	found := false
	for _, l := range list.Jobs {
		found = found || l.ID == jj.ID
	}
	if !found {
		t.Errorf("job %s missing from listing %+v", jj.ID, list.Jobs)
	}

	var m struct {
		Jobs struct {
			Completed int64 `json:"completed"`
		} `json:"jobs"`
	}
	get(t, ts, "/metricz", &m)
	if m.Jobs.Completed < 1 {
		t.Errorf("metricz jobs.completed = %d, want >= 1", m.Jobs.Completed)
	}
}

// TestJobsCancelRunning is the acceptance scenario's abort leg: a
// long randbaseline job is observed making progress mid-run, its
// result endpoint reports not-ready, and DELETE aborts it promptly.
func TestJobsCancelRunning(t *testing.T) {
	ts := jobsTestServer(t)
	// 2M serial trials: minutes of work, canceled after the first
	// progress report (a few hundred trials in).
	jj := submitJob(t, ts, `{"kind":"randbaseline","suite":"tiny","ks":[2],"trials":2000000,"parallelism":1}`)

	running := pollJob(t, ts, jj.ID, "running with progress", func(j report.JobJSON) bool {
		if terminal(j) {
			t.Fatalf("job finished before it could be canceled: %+v", j)
		}
		return j.State == "running" && j.Done > 0
	})
	if running.Total != 2000000 {
		t.Errorf("total = %d, want 2000000", running.Total)
	}

	// The result is not ready: 202 with the job snapshot.
	resp := get(t, ts, "/v1/jobs/"+jj.ID+"/result", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("mid-run result status = %d, want 202", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jj.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}

	canceled := pollJob(t, ts, jj.ID, "terminal", terminal)
	if canceled.State != "canceled" {
		t.Errorf("state after cancel = %s, want canceled", canceled.State)
	}
	if canceled.Done >= canceled.Total {
		t.Errorf("canceled job claims full progress %d/%d", canceled.Done, canceled.Total)
	}

	// Canceled jobs have no result.
	resp = get(t, ts, "/v1/jobs/"+jj.ID+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("canceled result status = %d, want 409", resp.StatusCode)
	}

	var m struct {
		Jobs struct {
			Canceled int64 `json:"canceled"`
			Running  int64 `json:"running"`
		} `json:"jobs"`
	}
	get(t, ts, "/metricz", &m)
	if m.Jobs.Canceled < 1 {
		t.Errorf("metricz jobs.canceled = %d, want >= 1", m.Jobs.Canceled)
	}
}

// TestJobsGA runs a miniature §4.2 feature selection asynchronously.
func TestJobsGA(t *testing.T) {
	ts := jobsTestServer(t)
	jj := submitJob(t, ts, `{"kind":"ga","suite":"tiny","population":12,"generations":3,"seed":7}`)
	done := pollJob(t, ts, jj.ID, "terminal", terminal)
	if done.State != "done" {
		t.Fatalf("state = %s err %q, want done", done.State, done.Error)
	}
	if done.Done != 3 || done.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3 generations", done.Done, done.Total)
	}
	var res report.GAJSON
	resp := get(t, ts, "/v1/jobs/"+jj.ID+"/result", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	if res.Suite != "tiny" || res.Seed != 7 || res.BestMask == "" {
		t.Errorf("result identity = %+v", res)
	}
	if len(res.History) != 3 || res.Evaluations != 12*3 {
		t.Errorf("history %d evaluations %d, want 3 and 36", len(res.History), res.Evaluations)
	}
	if len(res.Targets) != len(sharedProfile(t).Targets) {
		t.Errorf("defaulted targets = %v", res.Targets)
	}
}

// TestJobsFailure: a target name only a built profile can validate
// surfaces as a failed job with the error preserved, and the result
// endpoint answers 409.
func TestJobsFailure(t *testing.T) {
	ts := jobsTestServer(t)
	jj := submitJob(t, ts, `{"kind":"randbaseline","suite":"tiny","ks":[2],"trials":2,"target":"PDP-11"}`)
	done := pollJob(t, ts, jj.ID, "terminal", terminal)
	if done.State != "failed" {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if done.Error == "" {
		t.Error("failed job carries no error message")
	}
	resp := get(t, ts, "/v1/jobs/"+jj.ID+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("failed result status = %d, want 409", resp.StatusCode)
	}
}

func TestJobsBadRequests(t *testing.T) {
	ts := jobsTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"no kind", `{"suite":"tiny"}`},
		{"unknown kind", `{"kind":"fold","suite":"tiny"}`},
		{"unknown suite", `{"kind":"sweep","suite":"spec"}`},
		{"bad json", `{`},
		{"unknown field", `{"kind":"sweep","suite":"tiny","bogus":1}`},
		{"kmin above kmax", `{"kind":"sweep","suite":"tiny","kmin":5,"kmax":3}`},
		{"kmin below 2", `{"kind":"sweep","suite":"tiny","kmin":1,"kmax":3}`},
		{"negative trials", `{"kind":"randbaseline","suite":"tiny","trials":-1}`},
		{"tiny ks entry", `{"kind":"randbaseline","suite":"tiny","ks":[1]}`},
		{"bad mutation prob", `{"kind":"ga","suite":"tiny","mutationProb":1.5}`},
		{"negative parallelism", `{"kind":"sweep","suite":"tiny","parallelism":-2}`},
		{"bad features", `{"kind":"sweep","suite":"tiny","features":"nope"}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e errorJSON
			resp := post(t, ts, "/v1/jobs", c.body, &e)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			if e.Error == "" {
				t.Error("error body missing")
			}
		})
	}

	// Unknown job IDs: 404 on get, result, and cancel.
	for _, path := range []string{"/v1/jobs/job-nope", "/v1/jobs/job-nope/result"} {
		if resp := get(t, ts, path, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", resp.StatusCode)
	}

	// Submitting against an unbuilt suite is accepted — the job itself
	// builds the profile. "spare" builds fine, so the job completes.
	jj := submitJob(t, ts, `{"kind":"sweep","suite":"spare","kmin":2,"kmax":3}`)
	if done := pollJob(t, ts, jj.ID, "terminal", terminal); done.State != "done" {
		t.Errorf("unbuilt-suite job = %s err %q", done.State, done.Error)
	}
}

package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fgbs/internal/stage"
)

// TestArtifactEndpoint pins the peer-fetch read path over HTTP: the
// index lists what the node resolved, every served artifact
// frame-verifies, unknown keys are 404s, and malformed keys are 400s.
func TestArtifactEndpoint(t *testing.T) {
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs:   testPrograms,
		ProfileDir: t.TempDir(),
	})
	t.Cleanup(s.Close)
	if err := s.Warm([]string{"tiny"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var index struct {
		Count int      `json:"count"`
		Keys  []string `json:"keys"`
	}
	if resp := get(t, ts, "/v1/artifacts", &index); resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	if index.Count == 0 || len(index.Keys) != index.Count {
		t.Fatalf("artifact index = %+v, want the resolved profile's key", index)
	}

	for _, key := range index.Keys {
		resp, err := http.Get(ts.URL + "/v1/artifacts/" + key)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: status=%d err=%v", key, resp.StatusCode, err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
			t.Errorf("artifact %s content type = %q", key, ct)
		}
		if framed, err := stage.VerifyFrame(data); !framed || err != nil {
			t.Errorf("artifact %s: framed=%v err=%v, want verified frame", key, framed, err)
		}
	}

	// A well-formed key this node never resolved: 404, so the fetching
	// peer falls through to compute.
	miss := strings.Repeat("ab", 32)
	if resp, err := http.Get(ts.URL + "/v1/artifacts/" + miss); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown key status = %d, want 404", resp.StatusCode)
		}
	}
	// A malformed key never reaches the store.
	if resp, err := http.Get(ts.URL + "/v1/artifacts/not-a-key"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed key status = %d, want 400", resp.StatusCode)
		}
	}
}

// TestServerPeerFetchServesColdNode pins the two-node contract at the
// package level (the cmd/fgbsd e2e does it with real binaries): a cold
// server with a warm peer builds its profile from the peer's artifact
// — zero local profile computes — and counts the fetch.
func TestServerPeerFetchServesColdNode(t *testing.T) {
	warm := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs:   testPrograms,
		ProfileDir: t.TempDir(),
	})
	t.Cleanup(warm.Close)
	if err := warm.Warm([]string{"tiny"}); err != nil {
		t.Fatal(err)
	}
	warmTS := httptest.NewServer(warm.Handler())
	defer warmTS.Close()

	cold := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs:   testPrograms,
		ProfileDir: t.TempDir(),
		Peers:      []string{warmTS.URL},
	})
	t.Cleanup(cold.Close)
	if err := cold.Warm([]string{"tiny"}); err != nil {
		t.Fatal(err)
	}

	st := cold.registry.store.Stats()
	if c := st.Stages["profile"].Computes; c != 0 {
		t.Errorf("cold node ran %d profile computes, want 0 (peer must serve)", c)
	}
	peer := st.Tiers[stage.TierPeer]
	if peer.Hits < 1 {
		t.Errorf("peer tier hits = %d, want >= 1", peer.Hits)
	}
	if peer.Quarantined != 0 || peer.Errors != 0 {
		t.Errorf("peer tier row = %+v, want clean fetches", peer)
	}
	if got := cold.registry.peerLoads.Load(); got != 1 {
		t.Errorf("registry peerLoads = %d, want 1", got)
	}
	// The fetched artifact was promoted into the cold node's disk tier.
	if disk := st.Tiers[stage.TierDisk]; disk.Writes < 1 {
		t.Errorf("disk tier writes = %d, want the promoted artifact", disk.Writes)
	}
}

// TestHealthzTiers pins the satellite contract: per-tier states under
// "tiers", with the pre-tier "disk" key kept as an alias.
func TestHealthzTiers(t *testing.T) {
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs:   testPrograms,
		ProfileDir: t.TempDir(),
		Peers:      []string{"http://127.0.0.1:1"},
	})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body struct {
		Disk  string            `json:"disk"`
		Tiers map[string]string `json:"tiers"`
	}
	get(t, ts, "/healthz", &body)
	if body.Tiers[stage.TierDisk] != stage.DiskOK || body.Tiers[stage.TierPeer] != stage.DiskOK {
		t.Errorf("healthz tiers = %v, want disk and peer ok", body.Tiers)
	}
	if body.Disk != body.Tiers[stage.TierDisk] {
		t.Errorf("disk alias = %q, tiers.disk = %q; alias must track the tier", body.Disk, body.Tiers[stage.TierDisk])
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// determinismCheck guards the reproducibility contract PR 2's parallel
// runners rely on: results must be byte-identical across worker counts
// and reruns. That only holds when every random draw flows through a
// seeded internal/rng stream and every timestamp comes from an
// injected clock (the jobs.now hook pattern) — so any reference to
// time.Now or to math/rand's functions is a finding, module-wide.
// Infrastructure that legitimately reads the wall clock (HTTP metrics,
// uptime) carries an //fgbs:allow determinism annotation; the
// deterministic pipeline packages (internal/cluster, features, ga,
// pipeline, predict, represent, sim, stats, ir, extract, compile)
// must never need one.
var determinismCheck = &Check{
	Name: "determinism",
	Doc:  "forbid time.Now and math/rand: use internal/rng streams and injected clocks",
	run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on an injected *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" {
					p.Reportf(sel.Pos(), "time.Now reads the wall clock; inject a clock (the jobs.now hook pattern) so runs stay reproducible")
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s bypasses internal/rng; all randomness must come from a seeded rng.RNG stream", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
}

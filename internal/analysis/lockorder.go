package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockorderCheck is the flow-sensitive deadlock guard. It does two
// things with the sync.Mutex/RWMutex call sites the summary pass
// classifies:
//
//  1. Release-on-every-path: a forward may-analysis over each
//     function's CFG tracks which locks are held; a lock still held at
//     a return (and not covered by a deferred unlock) is a leak — the
//     classic missing-defer / early-return bug.
//  2. Lock ordering: every acquisition made while another lock is held
//     adds an edge held→acquired to a package-wide graph; calls to
//     same-package functions contribute their transitive acquisitions.
//     A cycle in that graph is a potential deadlock (two goroutines
//     taking the locks in opposite orders) and is reported once per
//     cycle at its lexicographically first edge.
//
// The analysis is deliberately intra-package: lock identities are
// named Type.field / varName strings, so an ordering inversion split
// across packages is out of scope (and out of idiom — the repo keeps
// each mutex private to its package).
var lockorderCheck = &Check{
	Name: "lockorder",
	Doc:  "locks must be released on every return path; the package lock-acquisition graph must be acyclic",
	run:  runLockOrder,
}

// heldKey identifies one held lock in the dataflow state: the class
// plus the read/write mode (an RUnlock does not release a write Lock).
type heldKey struct {
	class string
	mode  lockMode
}

// lockEdge is one ordering fact: to was acquired while from was held.
type lockEdge struct {
	from, to string
}

func runLockOrder(p *Pass) {
	sum := p.Pkg.summary()
	edges := make(map[lockEdge]token.Pos)
	for _, f := range p.Pkg.Files {
		for _, unit := range collectFuncUnits(f) {
			analyzeLockFlow(p, sum, unit, edges)
		}
	}
	reportLockCycles(p, edges)
}

// analyzeLockFlow runs the may-held dataflow over one function body,
// reporting leaks and accumulating ordering edges.
func analyzeLockFlow(p *Pass, sum *pkgSummary, unit funcUnit, edges map[lockEdge]token.Pos) {
	ops := hasLockOps(p.Pkg, unit.body)
	if !ops {
		return
	}
	g := buildCFG(unit.body)
	if g.unanalyzable {
		return
	}

	// Deferred releases cover every exit from their function frame
	// (including panics). Collected syntactically over the whole body:
	// a defer inside a branch is treated as covering, which errs
	// toward silence — the precise version would drown idiomatic
	// conditional-defer code in findings.
	deferred := deferredReleases(p.Pkg, unit.body)

	// Forward may-analysis: in[n] = union of out[preds]; the exit
	// state is the union over every path, so "held at exit" means
	// held on at least one return path.
	in := make([]map[heldKey]token.Pos, len(g.nodes))
	preds := make([][]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, s := range n.succs {
			preds[s.index] = append(preds[s.index], n.index)
		}
	}
	work := []int{g.entry.index}
	in[g.entry.index] = map[heldKey]token.Pos{}
	queued := make([]bool, len(g.nodes))
	queued[g.entry.index] = true
	out := make([]map[heldKey]token.Pos, len(g.nodes))
	for len(work) > 0 {
		idx := work[0]
		work = work[1:]
		queued[idx] = false
		n := g.nodes[idx]
		state := cloneHeld(in[idx])
		if n.stmt != nil {
			applyLockOps(p.Pkg, sum, n.stmt, state, edges)
		}
		if !heldEqual(out[idx], state) {
			out[idx] = state
			for _, s := range n.succs {
				merged := mergeHeld(in[s.index], state)
				if !heldEqual(in[s.index], merged) {
					in[s.index] = merged
					if !queued[s.index] {
						queued[s.index] = true
						work = append(work, s.index)
					}
				}
			}
		}
	}

	exitState := in[g.exit.index]
	// Deterministic reporting order: by acquire position.
	type leak struct {
		key heldKey
		pos token.Pos
	}
	var leaks []leak
	for k, pos := range exitState {
		if deferred[k] {
			continue
		}
		leaks = append(leaks, leak{k, pos})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		verb := "Lock"
		if l.key.mode == lockRead {
			verb = "RLock"
		}
		p.Reportf(l.pos, "%s.%s() in %s is not released on every return path (missing defer or early-return unlock)",
			l.key.class, verb, unit.name)
	}
}

// applyLockOps processes the lock-relevant calls of one CFG node's
// head in source order, mutating state and recording ordering edges.
func applyLockOps(pkg *Package, sum *pkgSummary, stmt ast.Stmt, state map[heldKey]token.Pos, edges map[lockEdge]token.Pos) {
	for _, expr := range stmtHeadExprs(stmt) {
		inspectSkippingFuncLits(expr, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if op, ok := classifyLockCall(pkg, call); ok {
				if op.class == "" {
					return
				}
				key := heldKey{op.class, op.mode}
				if op.acquire {
					recordEdges(state, op.class, call.Pos(), edges)
					// TryLock acquisitions are conditional; they feed
					// the ordering graph but not the held state (a
					// failed try would make "held" a false fact).
					if name := lockMethodName(pkg, call); !strings.HasPrefix(name, "Try") {
						if _, already := state[key]; !already {
							state[key] = call.Pos()
						}
					}
				} else {
					delete(state, key)
				}
				return
			}
			// A call into the same package may acquire locks of its
			// own: those acquisitions happen while everything in state
			// is held.
			if callee := calleeFunc(pkg, call); callee != nil && callee.Pkg() == pkg.Types {
				for class := range sum.acquiredBy(callee) {
					recordEdges(state, class, call.Pos(), edges)
				}
			}
		})
	}
}

// recordEdges adds held→acquired edges for every currently held class.
func recordEdges(state map[heldKey]token.Pos, acquired string, pos token.Pos, edges map[lockEdge]token.Pos) {
	for k := range state {
		if k.class == acquired {
			continue // re-entry is a separate concern, not an ordering edge
		}
		e := lockEdge{k.class, acquired}
		if _, ok := edges[e]; !ok {
			edges[e] = pos
		}
	}
}

// lockMethodName returns the sync method name of a classified lock
// call ("Lock", "TryRLock", ...).
func lockMethodName(pkg *Package, call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	return sel.Sel.Name
}

// deferredReleases collects the (class, mode) pairs released by defer
// statements anywhere in the body — either `defer mu.Unlock()`
// directly or inside a `defer func() { ... }()` literal.
func deferredReleases(pkg *Package, body *ast.BlockStmt) map[heldKey]bool {
	out := make(map[heldKey]bool)
	record := func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if op, ok := classifyLockCall(pkg, call); ok && !op.acquire && op.class != "" {
			out[heldKey{op.class, op.mode}] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool { record(n); return true })
		} else {
			record(d.Call)
		}
		return true
	})
	return out
}

// hasLockOps reports whether the body contains any sync lock-family
// call — the cheap gate before building a CFG.
func hasLockOps(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := classifyLockCall(pkg, call); ok {
				found = true
			}
		}
		return true
	})
	return found
}

// stmtHeadExprs returns the expressions a CFG node evaluates itself,
// excluding nested statements that are their own nodes (an IfStmt node
// evaluates its condition; its body belongs to other nodes).
func stmtHeadExprs(stmt ast.Stmt) []ast.Expr {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		var out []ast.Expr
		out = append(out, initExprs(s.Init)...)
		out = append(out, s.Cond)
		return out
	case *ast.ForStmt:
		var out []ast.Expr
		out = append(out, initExprs(s.Init)...)
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
		out = append(out, initExprs(s.Post)...)
		return out
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.SwitchStmt:
		var out []ast.Expr
		out = append(out, initExprs(s.Init)...)
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
		return out
	case *ast.TypeSwitchStmt:
		return initExprs(s.Assign)
	case *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		return nil
	case *ast.CaseClause:
		return s.List
	case *ast.CommClause:
		return initExprs(s.Comm)
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.ReturnStmt:
		return s.Results
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.DeferStmt:
		// Deferred calls run at exit, not here; deferredReleases owns
		// them. The argument expressions do evaluate now, but a lock
		// call in a defer's arguments would be pathological.
		return nil
	case *ast.GoStmt:
		// The goroutine's locks are its own problem (goroutineleak
		// watches the launch itself).
		return nil
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
		return nil
	default:
		return nil
	}
}

// initExprs flattens a simple statement (if/for init, comm statement)
// into its expressions.
func initExprs(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.SendStmt:
		return []ast.Expr{s.Chan, s.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	default:
		return nil
	}
}

// inspectSkippingFuncLits walks expr, visiting every node except the
// bodies of function literals (separate analysis units).
func inspectSkippingFuncLits(expr ast.Expr, visit func(ast.Node)) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func cloneHeld(m map[heldKey]token.Pos) map[heldKey]token.Pos {
	out := make(map[heldKey]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeHeld unions b into a copy of a, keeping the earliest acquire
// position per key so reports are stable.
func mergeHeld(a, b map[heldKey]token.Pos) map[heldKey]token.Pos {
	out := cloneHeld(a)
	for k, v := range b {
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

// heldEqual compares states; a nil map means "not yet computed" and
// compares unequal to everything (including the empty state), so the
// worklist always propagates a node's first evaluation.
func heldEqual(a, b map[heldKey]token.Pos) bool {
	if a == nil {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// reportLockCycles finds cycles in the package's acquisition graph and
// reports each once, deterministically, at the position of its
// lexicographically smallest edge.
func reportLockCycles(p *Pass, edges map[lockEdge]token.Pos) {
	if len(edges) == 0 {
		return
	}
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// DFS cycle detection with a canonicalized seen-set so each cycle
	// is reported exactly once no matter which node the walk entered
	// it from.
	seen := make(map[string]bool)
	color := make(map[string]int) // 0 white, 1 gray, 2 black
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = 1
		stack = append(stack, n)
		for _, next := range adj[n] {
			if color[next] == 1 {
				// Back edge: the cycle is stack[i..] + next.
				i := len(stack) - 1
				for i >= 0 && stack[i] != next {
					i--
				}
				cycle := append([]string{}, stack[i:]...)
				key := canonicalCycle(cycle)
				if !seen[key] {
					seen[key] = true
					reportOneCycle(p, cycle, edges)
				}
			} else if color[next] == 0 {
				dfs(next)
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = 2
	}
	for _, n := range nodes {
		if color[n] == 0 {
			dfs(n)
		}
	}
}

// canonicalCycle rotates the cycle to start at its smallest member so
// A→B→A and B→A→B dedupe to one key.
func canonicalCycle(cycle []string) string {
	min := 0
	for i, c := range cycle {
		if c < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string{}, cycle[min:]...), cycle[:min]...)
	return strings.Join(rotated, "→")
}

// reportOneCycle emits the finding at the cycle's lexicographically
// smallest edge position.
func reportOneCycle(p *Pass, cycle []string, edges map[lockEdge]token.Pos) {
	best := lockEdge{}
	var bestPos token.Pos
	for i, from := range cycle {
		to := cycle[(i+1)%len(cycle)]
		e := lockEdge{from, to}
		if pos, ok := edges[e]; ok {
			if best.from == "" || e.from < best.from || (e.from == best.from && e.to < best.to) {
				best, bestPos = e, pos
			}
		}
	}
	min := 0
	for i, c := range cycle {
		if c < cycle[min] {
			min = i
		}
	}
	ordered := append(append([]string{}, cycle[min:]...), cycle[:min]...)
	p.Reportf(bestPos, "lock-order cycle: %s → %s (inconsistent acquisition order can deadlock)",
		strings.Join(ordered, " → "), ordered[0])
}

package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// Baseline comparison: the regression gate. A fresh run is diffed
// against a committed BENCH_<n>.json; a spec whose median time or
// allocations grew beyond the tolerance is a regression, and ci.sh
// turns that into a red build. Improvements never fail — they are the
// trajectory moving the right way, and the next baseline bump records
// them.

// Delta is one spec's baseline-vs-fresh comparison.
type Delta struct {
	Name string
	// Base/Fresh are nil when the spec is absent on that side.
	Base, Fresh *Result
	// TimePct/AllocPct are the relative changes in percent; they are
	// meaningful only when the matching guard below is false.
	TimePct  float64
	AllocPct float64
	// TimeSkipped marks a zero-median baseline (nothing to divide by:
	// the guard against a degenerate baseline poisoning the gate).
	TimeSkipped bool
	// Regressed marks a gate failure; Note explains any special case.
	Regressed bool
	Note      string
}

// LoadBaseline reads a committed trajectory file, with a recovery hint
// on the likeliest failure (the file was never generated or moved).
func LoadBaseline(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w (regenerate with 'fgbs bench -json -out %s')", path, err, path)
	}
	defer f.Close()
	run, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return run, nil
}

// Compare diffs fresh against base under a tolerance in percent,
// returning one delta per spec in the union of both runs, sorted by
// name. Rules:
//
//   - present in both: regression when median time or allocs/op grew
//     by more than tolerancePct. A zero-median baseline entry skips the
//     time check (no denominator) instead of dividing by zero. Alloc
//     percentages are compared only when the baseline allocates at
//     least one whole object per op — sub-object counts are runtime
//     background noise (a 0.04 allocs/op baseline would turn one stray
//     allocation into a +200% "regression") — so an effectively
//     alloc-free baseline regresses only when the fresh run crosses
//     one object per op.
//   - present only in the baseline: a regression — the spec vanished,
//     which either reverts accidentally or needs a deliberate baseline
//     bump.
//   - present only in the fresh run: informational, never a failure —
//     new specs are expected to land before their baseline does.
func Compare(base, fresh *Run, tolerancePct float64) []Delta {
	names := map[string]bool{}
	for _, res := range base.Results {
		names[res.Name] = true
	}
	for _, res := range fresh.Results {
		names[res.Name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	var deltas []Delta
	for _, name := range sorted {
		d := Delta{Name: name}
		if b, ok := base.Lookup(name); ok {
			bb := b
			d.Base = &bb
		}
		if f, ok := fresh.Lookup(name); ok {
			ff := f
			d.Fresh = &ff
		}
		switch {
		case d.Fresh == nil:
			d.Regressed = true
			d.Note = "missing from this run (deliberate removal needs a baseline bump)"
		case d.Base == nil:
			d.Note = "new spec (not in baseline)"
		default:
			if d.Base.MedianNS > 0 {
				d.TimePct = (d.Fresh.MedianNS - d.Base.MedianNS) / d.Base.MedianNS * 100
				if d.TimePct > tolerancePct {
					d.Regressed = true
				}
			} else {
				d.TimeSkipped = true
				d.Note = "zero-median baseline; time not compared"
			}
			if d.Base.AllocsPerOp >= 1 {
				d.AllocPct = (d.Fresh.AllocsPerOp - d.Base.AllocsPerOp) / d.Base.AllocsPerOp * 100
				if d.AllocPct > tolerancePct {
					d.Regressed = true
				}
			} else if d.Fresh.AllocsPerOp >= 1 {
				d.Regressed = true
				d.Note = "alloc-free baseline now allocates"
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions extracts the failing deltas' messages, one line each.
func Regressions(deltas []Delta) []string {
	var msgs []string
	for _, d := range deltas {
		if !d.Regressed {
			continue
		}
		switch {
		case d.Fresh == nil:
			msgs = append(msgs, fmt.Sprintf("%s: %s", d.Name, d.Note))
		case d.Note != "":
			msgs = append(msgs, fmt.Sprintf("%s: %s (%.1f allocs/op)", d.Name, d.Note, d.Fresh.AllocsPerOp))
		default:
			msgs = append(msgs, fmt.Sprintf("%s: median %s → %s (%+.1f%%), allocs/op %.1f → %.1f (%+.1f%%)",
				d.Name, formatNS(d.Base.MedianNS), formatNS(d.Fresh.MedianNS), d.TimePct,
				d.Base.AllocsPerOp, d.Fresh.AllocsPerOp, d.AllocPct))
		}
	}
	return msgs
}

// WriteComparison renders the comparison table.
func WriteComparison(w io.Writer, deltas []Delta, tolerancePct float64) error {
	t := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(t, "Spec\tBase\tNew\tΔtime\tΔallocs\tStatus\n")
	for _, d := range deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED"
		}
		switch {
		case d.Fresh == nil:
			fmt.Fprintf(t, "%s\t%s\t-\t-\t-\t%s\n", d.Name, formatNS(d.Base.MedianNS), status)
		case d.Base == nil:
			fmt.Fprintf(t, "%s\t-\t%s\t-\t-\tnew\n", d.Name, formatNS(d.Fresh.MedianNS))
		case d.TimeSkipped:
			fmt.Fprintf(t, "%s\t%s\t%s\tskipped\t%+.1f%%\t%s\n",
				d.Name, formatNS(d.Base.MedianNS), formatNS(d.Fresh.MedianNS), d.AllocPct, status)
		default:
			fmt.Fprintf(t, "%s\t%s\t%s\t%+.1f%%\t%+.1f%%\t%s\n",
				d.Name, formatNS(d.Base.MedianNS), formatNS(d.Fresh.MedianNS), d.TimePct, d.AllocPct, status)
		}
	}
	fmt.Fprintf(t, "(tolerance %.0f%%)\n", tolerancePct)
	return t.Flush()
}

package cache

import (
	"testing"
	"testing/quick"

	"fgbs/internal/arch"
	"fgbs/internal/rng"
)

// Property: after any access, the line is cached at every level it
// traversed; an immediate re-access hits L1.
func TestAccessThenHit(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		m := arch.All()[int(seed%4)]
		h, err := NewHierarchy(m)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			addr := r.Int63n(m.LastLevelSize() * 8)
			h.Access(addr, r.Bool(0.3))
			if !h.Levels[0].Contains(addr) {
				return false
			}
			if lvl := h.Access(addr, false); lvl != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the number of memory accesses never exceeds the number of
// last-level misses plus write-back traffic at the last level.
func TestMemoryTrafficBounded(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		m := arch.All()[int(seed%4)]
		h, err := NewHierarchy(m)
		if err != nil {
			return false
		}
		const n = 5000
		for i := 0; i < n; i++ {
			h.Access(r.Int63n(m.LastLevelSize()*4), r.Bool(0.4))
		}
		last := h.Levels[len(h.Levels)-1]
		// Every DRAM fill corresponds to a miss at the last level.
		return h.MemAccesses <= last.Misses
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than a level is fully retained by
// a second sequential pass (no capacity misses at that level), for
// every machine's last level.
func TestResidencyProperty(t *testing.T) {
	for _, m := range arch.All() {
		h, err := NewHierarchy(m)
		if err != nil {
			t.Fatal(err)
		}
		ws := m.LastLevelSize() / 2
		for a := int64(0); a < ws; a += 64 {
			h.Access(a, false)
		}
		before := h.MemAccesses
		for a := int64(0); a < ws; a += 64 {
			h.Access(a, false)
		}
		if h.MemAccesses != before {
			t.Errorf("%s: %d DRAM accesses on a resident second pass", m.Name, h.MemAccesses-before)
		}
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must differ from the parent's continued stream.
	collisions := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("split stream collided %d times with parent", collisions)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want %.0f +/- 5%%", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %g", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	// Must not panic and must produce values.
	_ = r.Uint64()
	_ = r.Float64()
}

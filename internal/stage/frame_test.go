package stage

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	for _, payload := range []string{"", "x", strings.Repeat("artifact|", 1000)} {
		data := []byte(frameHeader([]byte(payload)) + payload)
		got, framed, err := unframe(data)
		if err != nil || !framed {
			t.Fatalf("unframe(%d bytes): framed=%v err=%v", len(payload), framed, err)
		}
		if string(got) != payload {
			t.Errorf("payload of %d bytes did not round-trip", len(payload))
		}
	}
}

func TestUnframeLegacy(t *testing.T) {
	raw := []byte(`{"plain":"json artifact from before framing"}`)
	got, framed, err := unframe(raw)
	if err != nil || framed {
		t.Fatalf("legacy bytes: framed=%v err=%v", framed, err)
	}
	if !bytes.Equal(got, raw) {
		t.Errorf("legacy payload altered: %q", got)
	}
}

func TestUnframeRejectsCorruption(t *testing.T) {
	payload := []byte("the artifact payload")
	good := frameHeader(payload) + string(payload)
	cases := map[string]string{
		"truncated payload": good[:len(good)-3],
		"flipped bit":       strings.Replace(good, "payload", "paYload", 1),
		"truncated header":  good[:20],
		"future version":    strings.Replace(good, " v1 ", " v2 ", 1),
		"malformed header":  frameMagic + " v1 bogus\n" + string(payload),
		"malformed length":  strings.Replace(good, "len:", "len:x", 1),
		"garbage after sum": good + "trailing",
	}
	for name, data := range cases {
		if _, _, err := unframe([]byte(data)); err == nil {
			t.Errorf("%s: unframe accepted corrupt data", name)
		}
	}
}

// TestQuarantine pins the corruption path end to end: a torn or
// bit-flipped artifact is renamed to *.corrupt (kept, counted, never
// silently deleted), the resolve falls through to recompute, and the
// fresh artifact replaces the corrupt one on disk.
func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	ctx := context.Background()
	s := NewStore(4, dir)
	if _, _, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return "original", nil
	}); err != nil {
		t.Fatal(err)
	}

	// Corrupt the published artifact the way a torn write would.
	path := filepath.Join(dir, "art.txt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (fresh LRU) must detect, quarantine, recompute.
	s2 := NewStore(4, dir)
	calls := 0
	v, out, err := s2.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		calls++
		return "recomputed", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Disk || calls != 1 || v.(string) != "recomputed" {
		t.Errorf("corrupt artifact served: out=%+v calls=%d v=%v", out, calls, v)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt artifact not quarantined: %v", err)
	}
	if st := s2.Stats(); st.Disk.Quarantined != 1 {
		t.Errorf("Stats().Disk.Quarantined = %d, want 1", st.Disk.Quarantined)
	}
	// The recompute republished a good artifact over the corrupt name.
	s3 := NewStore(4, dir)
	v, out, err = s3.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		t.Error("recompute ran against the republished artifact")
		return nil, nil
	})
	if err != nil || !out.Disk || v.(string) != "recomputed" {
		t.Errorf("republished artifact not served: out=%+v v=%v err=%v", out, v, err)
	}
}

// TestLegacyUnframedArtifactAdopted pins that pre-framing artifacts —
// plain codec bytes with no header — still decode, so an upgrade does
// not orphan existing caches.
func TestLegacyUnframedArtifactAdopted(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	if err := os.WriteFile(filepath.Join(dir, "art.txt"), []byte("legacy-artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(4, dir)
	v, out, err := s.Resolve(context.Background(), "test", testKey(1), codec, func(context.Context) (any, error) {
		t.Error("compute ran despite a decodable legacy artifact")
		return nil, nil
	})
	if err != nil || !out.Disk || v.(string) != "legacy-artifact" {
		t.Errorf("legacy artifact not adopted: out=%+v v=%v err=%v", out, v, err)
	}
}

// TestDiskBreaker drives the disk tier against an unwritable directory
// (the path is a regular file) until its breaker trips, checks the
// store keeps serving memory-only with probes paced by operation
// count, then repairs the disk and watches a probe close the breaker.
func TestDiskBreaker(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	codec := testCodec{name: "art.txt", persist: true}
	ctx := context.Background()
	s := NewStore(4, dir)
	// Tier ops are driven through Put directly so each call is exactly
	// one breaker-gated operation; Resolve interleaves a load and a
	// save per miss, which would obscure the pacing arithmetic.
	tier := s.Tiers()[0]
	ref := Ref{Key: testKey(1), Name: codec.Filename()}

	for i := 0; i < diskBreakerThreshold; i++ {
		tier.Put(ctx, ref, []byte("v"))
	}
	if got := s.DiskHealth(); got != DiskDegraded {
		t.Fatalf("DiskHealth after %d failures = %q, want %q", diskBreakerThreshold, got, DiskDegraded)
	}
	errsAtTrip := s.Stats().Disk.Errors

	// While open, ops are skipped between probes: the next
	// diskProbeInterval-1 puts must not touch the device at all.
	for i := 0; i < diskProbeInterval-1; i++ {
		tier.Put(ctx, ref, []byte(fmt.Sprintf("v%d", i)))
	}
	if got := s.Stats().Disk.Errors; got != errsAtTrip {
		t.Errorf("skipped ops still hit the disk: errors %d → %d", errsAtTrip, got)
	}
	// The next op is the probe; the disk is still broken, so it fails.
	tier.Put(ctx, ref, []byte("probe"))
	if got := s.Stats().Disk.Errors; got != errsAtTrip+1 {
		t.Errorf("probe did not hit the disk: errors %d → %d", errsAtTrip, got)
	}
	if got := s.DiskHealth(); got != DiskDegraded {
		t.Errorf("failed probe closed the breaker: %q", got)
	}

	// Degraded, the store must still serve resolves from memory,
	// without touching the device (both the load and the save of the
	// miss are skipped ops).
	v, _, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return "served", nil
	})
	if err != nil || v.(string) != "served" {
		t.Fatalf("resolve failed under disk degradation: v=%v err=%v", v, err)
	}
	if got := s.Stats().Disk.Errors; got != errsAtTrip+1 {
		t.Errorf("degraded resolve hit the disk: errors %d → %d", errsAtTrip+1, got)
	}

	// Repair the disk; the next admitted probe succeeds and closes the
	// breaker.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < diskProbeInterval; i++ {
		tier.Put(ctx, ref, []byte("recovered"))
	}
	if got := s.DiskHealth(); got != DiskOK {
		t.Errorf("DiskHealth after repair = %q, want %q", got, DiskOK)
	}
	// Closed again: writes flow to disk normally.
	tier.Put(ctx, ref, []byte("recovered"))
	if _, err := os.Stat(filepath.Join(dir, "art.txt")); err != nil {
		t.Errorf("recovered disk has no artifact: %v", err)
	}
}

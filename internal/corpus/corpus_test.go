package corpus

import (
	"sort"
	"strings"
	"testing"

	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
)

// skipIfRace skips the heavy generation+profiling tests under the race
// detector: generation itself is race-checked by the lighter tests, and
// the big suites exist to exercise scale, not concurrency.
func skipIfRace(tb testing.TB) {
	tb.Helper()
	if raceDetectorEnabled {
		tb.Skip("heavy single-threaded test: skipped under -race")
	}
}

func TestFamilyRegistry(t *testing.T) {
	names := FamilyNames()
	want := []string{"butterfly", "histogram", "matvec", "reduction", "spmv", "stencil1d", "stencil2d"}
	if len(names) != len(want) {
		t.Fatalf("FamilyNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("FamilyNames()[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, n := range names {
		f, err := FamilyByName(n)
		if err != nil {
			t.Fatalf("FamilyByName(%q): %v", n, err)
		}
		if f.Doc == "" || len(f.Axes) == 0 {
			t.Errorf("family %q: missing doc or axes", n)
		}
		for _, ax := range f.Axes {
			if len(ax.Values) < 2 {
				t.Errorf("family %q axis %q: fewer than 2 values", n, ax.Name)
			}
		}
	}
	if _, err := FamilyByName("nope"); err == nil {
		t.Fatal("FamilyByName(nope): want error")
	} else if !strings.Contains(err.Error(), "stencil1d") {
		t.Errorf("unknown-family error should list valid names, got %v", err)
	}
}

// TestGenerateDeterministic pins the core contract: the same
// (family, seed, index) triple yields a byte-identical program no
// matter how, in what order, or on how many workers it is generated.
func TestGenerateDeterministic(t *testing.T) {
	const seed, n = 42, 21
	for _, fam := range FamilyNames() {
		serial, err := GenerateFamily(fam, seed, n, 1)
		if err != nil {
			t.Fatalf("%s: serial: %v", fam, err)
		}
		wide, err := GenerateFamily(fam, seed, n, 8)
		if err != nil {
			t.Fatalf("%s: wide: %v", fam, err)
		}
		if Dump(serial) != Dump(wide) {
			t.Fatalf("%s: suite differs between 1 and 8 workers", fam)
		}
		// Out-of-order single generation must reproduce each slot.
		for i := n - 1; i >= 0; i -= 5 {
			p, err := Generate(fam, seed, i)
			if err != nil {
				t.Fatalf("%s[%d]: %v", fam, i, err)
			}
			if got, want := Dump([]*ir.Program{p}), Dump([]*ir.Program{serial[i]}); got != want {
				t.Fatalf("%s[%d]: out-of-order generation differs:\n%s\n--- vs ---\n%s", fam, i, got, want)
			}
		}
		// A different seed must actually change the suite.
		other, err := GenerateFamily(fam, seed+1, n, 0)
		if err != nil {
			t.Fatalf("%s: reseed: %v", fam, err)
		}
		if Dump(serial) == Dump(other) {
			t.Fatalf("%s: seed %d and %d generated identical suites", fam, seed, seed+1)
		}
	}
}

func TestMixedAndSuitesDeterministic(t *testing.T) {
	a, err := Mixed(3, 28, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mixed(3, 28, 8)
	if err != nil {
		t.Fatal(err)
	}
	if Dump(a) != Dump(b) {
		t.Fatal("Mixed: suite differs between 1 and 8 workers")
	}
	for _, name := range SuiteNames() {
		spec, err := SuiteByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Size() < 24 {
			t.Errorf("suite %q: size %d, want >= 24", name, spec.Size())
		}
	}
	s1, err := BuildSuiteWorkers("syn-smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSuiteWorkers("syn-smoke", 7)
	if err != nil {
		t.Fatal(err)
	}
	if Dump(s1) != Dump(s2) {
		t.Fatal("syn-smoke: suite differs between 1 and 7 workers")
	}
	if !IsSuite("syn-smoke") || IsSuite("nas") {
		t.Fatal("IsSuite misclassifies")
	}
	if _, err := BuildSuite("syn-nope"); err == nil || !strings.Contains(err.Error(), "syn-smoke") {
		t.Fatalf("BuildSuite(syn-nope): want error listing valid suites, got %v", err)
	}
}

// TestComposeApp checks the application composer: deterministic across
// workers, shared arrays actually shared, per-codelet annotations
// drawn.
func TestComposeApp(t *testing.T) {
	apps1, err := ComposeApps(1729, 6, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	apps2, err := ComposeApps(1729, 6, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if Dump(apps1) != Dump(apps2) {
		t.Fatal("ComposeApps: differs between 1 and 5 workers")
	}
	shared, warm := false, false
	for _, p := range apps1 {
		if len(p.Codelets) != 8 {
			t.Fatalf("%s: %d codelets, want 8", p.Name, len(p.Codelets))
		}
		if p.UncoveredFraction <= 0 {
			t.Errorf("%s: zero uncovered fraction", p.Name)
		}
		use := map[string]int{}
		for _, c := range p.Codelets {
			if c.WarmInApp {
				warm = true
			}
			for _, a := range codeletArrays(c) {
				use[a]++
			}
		}
		for _, n := range use {
			if n > 1 {
				shared = true
			}
		}
	}
	if !shared {
		t.Error("no array shared between codelets across 6 composed apps")
	}
	if !warm {
		t.Error("no WarmInApp codelet across 6 composed apps")
	}
}

// TestGeneratedCodeletsProfile is the property test of the determinism
// contract's second half: every generated codelet passes ir validation
// (Generate validates internally) and profiles cleanly under the raw
// simulator — no error, no RefFailed markers, and measurable work.
func TestGeneratedCodeletsProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling property test in -short mode")
	}
	for _, fam := range FamilyNames() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			progs, err := generateAll(picksOf(fam, 6), 11, 0, 8192)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := pipeline.NewProfile(progs, pipeline.Options{Seed: 11})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if prof.Degraded() {
				t.Fatal("raw-simulator profile carries failure markers")
			}
			for i, c := range prof.Codelets {
				if prof.RefInApp[i] <= 0 {
					t.Errorf("%s: non-positive reference time", c.Name)
				}
			}
		})
	}
}

// codeletArrays returns the sorted set of array names a codelet's nest
// references (loads, stores, and index expressions alike).
func codeletArrays(c *ir.Codelet) []string {
	set := map[string]bool{}
	var walkStmt func(s ir.Stmt)
	walkRef := func(r *ir.Ref) {
		set[r.Array] = true
		for _, ix := range r.Index {
			ir.WalkExpr(ix, func(e ir.Expr) {
				if l, ok := e.(*ir.Load); ok {
					set[l.Ref.Array] = true
				}
			})
		}
	}
	walkStmt = func(s ir.Stmt) {
		switch st := s.(type) {
		case *ir.Loop:
			for _, b := range st.Body {
				walkStmt(b)
			}
		case *ir.Assign:
			walkRef(st.LHS)
			ir.WalkExpr(st.RHS, func(e ir.Expr) {
				if l, ok := e.(*ir.Load); ok {
					set[l.Ref.Array] = true
				}
			})
		}
	}
	walkStmt(c.Loop)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func picksOf(fam string, n int) []*Family {
	picks := make([]*Family, n)
	for i := range picks {
		picks[i] = families[fam]
	}
	return picks
}

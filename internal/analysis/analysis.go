// Package analysis implements fgbsvet, the repository's stdlib-only
// invariant analyzer. It loads every package in the module with
// go/parser and go/types (no external dependencies) and runs a suite
// of checks that encode the reproducibility contracts the experiment
// pipeline depends on: randomness flows through internal/rng, wall
// clocks are injected, contexts propagate, floats are never compared
// raw, errors wrap their causes, and annotated mutex invariants hold.
//
// Each check is individually toggleable (see Options.Checks) and every
// finding can be suppressed at the site with an inline directive:
//
//	//fgbs:allow <check> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: a suppression without a justification is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
	"time"
)

// A Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string

	// noSuppress marks findings that no //fgbs:allow directive can
	// silence — used where the suppression itself is the defect (e.g.
	// an allow-determinism inside internal/stage, whose key hashing
	// must stay observably pure). Without it such a finding would be
	// swallowed by the very directive it reports.
	noSuppress bool
}

// String renders the diagnostic in the standard file:line:col form
// used by go vet, with the originating check appended so readers know
// which //fgbs:allow name suppresses it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Check)
}

// A Check is one named invariant analyzer.
type Check struct {
	// Name is the identifier used by -checks and //fgbs:allow.
	Name string
	// Doc is the one-line description printed by fgbsvet -list.
	Doc string

	run func(*Pass)
}

// registry holds every check in its canonical reporting order: the
// five syntactic/type-level checks from the first analyzer release,
// then the flow-sensitive generation (CFG + package summaries).
var registry = []*Check{
	determinismCheck,
	ctxPropagationCheck,
	floatCompareCheck,
	errWrapCheck,
	guardedByCheck,
	lockorderCheck,
	goroutineleakCheck,
	keypurityCheck,
	allochotCheck,
}

// Checks returns the registered checks in canonical order.
func Checks() []*Check {
	out := make([]*Check, len(registry))
	copy(out, registry)
	return out
}

// CheckNames returns the registered check names in canonical order.
func CheckNames() []string {
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name
	}
	return names
}

// A Pass carries one (check, package) unit of work. Check run
// functions read the syntax and type information and call Reportf.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	check *Check
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), false, format, args...)
}

// ReportfNoSuppress records a finding that no //fgbs:allow can
// silence.
func (p *Pass) ReportfNoSuppress(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), true, format, args...)
}

func (p *Pass) reportAt(pos token.Position, noSuppress bool, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        pos,
		Check:      p.check.Name,
		Message:    fmt.Sprintf(format, args...),
		noSuppress: noSuppress,
	})
}

// Options configure Run.
type Options struct {
	// Checks selects which checks run, by name. Empty means all.
	Checks []string

	// Workers sets Run's package-level parallelism: 0 or 1 analyze
	// serially, N>1 analyzes up to N packages concurrently. Packages
	// are independent analysis units (summaries and suppression tables
	// are per-package), and the final position sort gives a total
	// order, so output is byte-identical at any worker count.
	Workers int

	// Clock, when set, enables per-check timing: it must return a
	// monotonically non-decreasing reading (e.g. time.Since of a fixed
	// start). The analyzer cannot call time.Now itself — its own
	// determinism check forbids wall-clock reads module-wide — so the
	// driver injects one.
	Clock func() time.Duration

	// OnTiming receives, per selected check, the cumulative time the
	// check spent across all packages. Called once per check in
	// canonical order after analysis completes; requires Clock.
	OnTiming func(check string, elapsed time.Duration)
}

// Run executes the selected checks over pkgs and returns the surviving
// diagnostics (suppressed findings removed, malformed suppressions
// added), sorted by position. It fails only on configuration errors
// such as an unknown check name; the error lists the valid names,
// matching the cmd/fgbs flag-validation convention.
func Run(pkgs []*Package, opts Options) ([]Diagnostic, error) {
	selected := registry
	if len(opts.Checks) > 0 {
		selected = nil
		for _, name := range opts.Checks {
			c := lookupCheck(name)
			if c == nil {
				return nil, fmt.Errorf("unknown check %q (valid: %s)",
					name, strings.Join(CheckNames(), ", "))
			}
			selected = append(selected, c)
		}
	}

	// Each package gets its own diagnostic slice so packages can be
	// analyzed concurrently; merging afterwards keeps one code path
	// for serial and parallel runs.
	perPkg := make([][]Diagnostic, len(pkgs))
	var timingMu sync.Mutex
	timings := make(map[string]time.Duration)
	runPkg := func(i int) {
		pkg := pkgs[i]
		var diags []Diagnostic
		for _, c := range selected {
			var start time.Duration
			if opts.Clock != nil {
				start = opts.Clock()
			}
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, check: c, diags: &diags}
			c.run(pass)
			if opts.Clock != nil {
				elapsed := opts.Clock() - start
				timingMu.Lock()
				timings[c.Name] += elapsed
				timingMu.Unlock()
			}
		}
		diags = append(diags, pkg.badAllows...)
		perPkg[i] = diags
	}

	if opts.Workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					runPkg(i)
				}
			}()
		}
		for i := range pkgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range pkgs {
			runPkg(i)
		}
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	diags = filterSuppressed(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		// Message is the final tiebreaker: two findings from one check
		// at one position must still compare deterministically for the
		// parallel driver's byte-identical guarantee.
		return a.Message < b.Message
	})
	if opts.OnTiming != nil {
		for _, c := range selected {
			opts.OnTiming(c.Name, timings[c.Name])
		}
	}
	return diags, nil
}

func lookupCheck(name string) *Check {
	for _, c := range registry {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// An allowDirective is one parsed //fgbs:allow comment.
type allowDirective struct {
	check  string
	reason string
}

const allowPrefix = "//fgbs:allow"

// collectAllows scans a file's comments for //fgbs:allow directives,
// recording well-formed ones by line and reporting malformed ones
// (missing check name, unknown check, or missing reason) so that a
// suppression never silently fails to suppress.
func (p *Package) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				p.badAllow(pos, "//fgbs:allow needs a check name and a reason (valid checks: %s)",
					strings.Join(CheckNames(), ", "))
			case lookupCheck(fields[0]) == nil:
				p.badAllow(pos, "//fgbs:allow names unknown check %q (valid: %s)",
					fields[0], strings.Join(CheckNames(), ", "))
			case len(fields) == 1:
				p.badAllow(pos, "//fgbs:allow %s needs a reason", fields[0])
			default:
				key := allowKey{pos.Filename, pos.Line}
				p.allows[key] = append(p.allows[key], allowDirective{
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
}

func (p *Package) badAllow(pos token.Position, format string, args ...any) {
	p.badAllows = append(p.badAllows, Diagnostic{
		Pos:     pos,
		Check:   "allow",
		Message: fmt.Sprintf(format, args...),
	})
}

// allowKey addresses the suppression table: one file line.
type allowKey struct {
	file string
	line int
}

// filterSuppressed drops diagnostics covered by an //fgbs:allow for
// the same check on the flagged line or the line directly above.
func filterSuppressed(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	allows := make(map[allowKey][]allowDirective)
	for _, pkg := range pkgs {
		for k, v := range pkg.allows {
			allows[k] = append(allows[k], v...)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !d.noSuppress && allowed(allows, d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func allowed(allows map[allowKey][]allowDirective, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range allows[allowKey{d.Pos.Filename, line}] {
			if a.check == d.Check {
				return true
			}
		}
	}
	return false
}

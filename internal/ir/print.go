package ir

import (
	"fmt"
	"strings"
)

// Fortran-ish pretty printing. The paper works with C and Fortran
// sources; rendering a codelet back to readable loop-nest source makes
// reports and debugging sessions concrete ("what is this codelet?").

// String renders the expression as source text.
func ExprString(e Expr) string {
	switch n := e.(type) {
	case *Const:
		if n.DT == I64 {
			return fmt.Sprintf("%d", n.I)
		}
		if n.DT == F32 {
			return fmt.Sprintf("%gf", n.F)
		}
		return fmt.Sprintf("%g", n.F)
	case *Var:
		return n.Name
	case *Load:
		return RefString(n.Ref)
	case *Bin:
		switch n.Op {
		case OpMin, OpMax:
			return fmt.Sprintf("%s(%s, %s)", n.Op, ExprString(n.A), ExprString(n.B))
		default:
			return fmt.Sprintf("(%s %s %s)", ExprString(n.A), n.Op, ExprString(n.B))
		}
	case *Un:
		switch n.Op {
		case OpNeg:
			return fmt.Sprintf("(-%s)", ExprString(n.A))
		case OpCvtIF:
			return fmt.Sprintf("%s(%s)", n.To, ExprString(n.A))
		case OpCvtFI:
			return fmt.Sprintf("i64(%s)", ExprString(n.A))
		case OpWiden:
			return fmt.Sprintf("f64(%s)", ExprString(n.A))
		case OpNarrow:
			return fmt.Sprintf("f32(%s)", ExprString(n.A))
		default:
			return fmt.Sprintf("%s(%s)", n.Op, ExprString(n.A))
		}
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// RefString renders an array reference.
func RefString(r *Ref) string {
	if len(r.Index) == 0 {
		return r.Array
	}
	parts := make([]string, len(r.Index))
	for i, ix := range r.Index {
		parts[i] = ExprString(ix)
	}
	return fmt.Sprintf("%s[%s]", r.Array, strings.Join(parts, "]["))
}

// writeStmt renders one statement at the given indent depth.
func writeStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	switch st := s.(type) {
	case *Assign:
		hint := ""
		if st.Hint == VecNever {
			hint = "  // novector"
		}
		fmt.Fprintf(sb, "%s%s = %s%s\n", ind, RefString(st.LHS), ExprString(st.RHS), hint)
	case *Loop:
		fmt.Fprintf(sb, "%sfor %s = %s .. %s {\n", ind, st.Var, st.Lower, st.Upper)
		for _, b := range st.Body {
			writeStmt(sb, b, depth+1)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	default:
		fmt.Fprintf(sb, "%s<%T>\n", ind, s)
	}
}

// Source renders the codelet's loop nest as pseudo-source, prefixed
// with its provenance and behavioral annotations.
func (c *Codelet) Source() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s (%s)\n", c.Name, c.SourceRef)
	if c.Pattern != "" {
		fmt.Fprintf(&sb, "// %s\n", c.Pattern)
	}
	fmt.Fprintf(&sb, "// invocations: %d", c.Invocations)
	var flags []string
	if c.DatasetVariation > 0 {
		flags = append(flags, fmt.Sprintf("dataset varies ±%.0f%% (%s)", c.DatasetVariation*100, c.VaryParam))
	}
	if c.ContextSensitive {
		flags = append(flags, "context-sensitive compilation")
	}
	if c.WarmInApp {
		flags = append(flags, "shared working set")
	}
	if len(flags) > 0 {
		fmt.Fprintf(&sb, "; %s", strings.Join(flags, "; "))
	}
	sb.WriteString("\n")
	writeStmt(&sb, c.Loop, 0)
	return sb.String()
}

// Source renders the whole program: parameters, arrays, codelets.
func (p *Program) Source() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, name := range p.SortedParamNames() {
		fmt.Fprintf(&sb, "param %s = %d\n", name, p.Params[name])
	}
	for _, a := range p.Arrays() {
		if len(a.Dims) == 0 {
			fmt.Fprintf(&sb, "scalar %s %s\n", a.DT, a.Name)
			continue
		}
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&sb, "array %s %s[%s]\n", a.DT, a.Name, strings.Join(dims, "]["))
	}
	for _, c := range p.Codelets {
		sb.WriteString("\n")
		sb.WriteString(c.Source())
	}
	return sb.String()
}

package analysis

import (
	"go/ast"
	"regexp"
)

// guardedByCheck turns the informal "// guarded by mu" field comment
// into a machine-checked invariant: every method of the struct that
// touches an annotated field must hold the named mutex. RLock counts
// as a read guard — reading the field under RLock is fine — but a
// method that *writes* the field while only ever RLocking is reported:
// an RWMutex read lock is shared, so such a write races with every
// concurrent reader. The tracking is intra-procedural and syntactic —
// helper methods that run with the lock already held document that
// with //fgbs:allow.
var guardedByCheck = &Check{
	Name: "guardedby",
	Doc:  "fields annotated '// guarded by <mu>' must only be touched under <mu>: RLock suffices to read, Lock is required to write",
	run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField records one annotation: struct type name, field name,
// and the mutex field that guards it.
type guardedField struct {
	structName string
	field      string
	mu         string
}

func runGuardedBy(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvName, typeName := receiverInfo(fn)
			if recvName == "" {
				continue
			}
			fields := guards[typeName]
			if len(fields) == 0 {
				continue
			}
			writeLocked, readLocked := lockedMutexes(fn.Body, recvName)
			written := writtenExprs(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok || x.Name != recvName {
					return true
				}
				mu, guarded := fields[sel.Sel.Name]
				if !guarded {
					return true
				}
				switch {
				case writeLocked[mu]:
					// Full lock covers both directions.
				case readLocked[mu]:
					if written[sel] {
						p.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s writes it under RLock; writes need %s.Lock()",
							typeName, sel.Sel.Name, mu, fn.Name.Name, mu)
					}
				default:
					p.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s never locks it",
						typeName, sel.Sel.Name, mu, fn.Name.Name)
				}
				return true
			})
		}
	}
}

// collectGuards gathers '// guarded by <mu>' field annotations,
// validating that the named mutex is a sibling field.
func collectGuards(p *Pass) map[string]map[string]string {
	guards := make(map[string]map[string]string)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !siblings[mu] {
					p.Reportf(field.Pos(), "'guarded by %s' names no field of %s", mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if guards[ts.Name.Name] == nil {
						guards[ts.Name.Name] = make(map[string]string)
					}
					guards[ts.Name.Name][name.Name] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, or "" when the field carries no annotation.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverInfo returns the receiver variable name and its base type
// name ("" when the receiver is unnamed or anonymous).
func receiverInfo(fn *ast.FuncDecl) (recvName, typeName string) {
	recv := fn.Recv.List[0]
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return "", ""
	}
	t := recv.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers appear as IndexExpr/IndexListExpr; unwrap.
	switch it := t.(type) {
	case *ast.IndexExpr:
		t = it.X
	case *ast.IndexListExpr:
		t = it.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return recv.Names[0].Name, id.Name
}

// lockedMutexes returns the receiver mutex fields on which the body
// calls Lock (write guard) and RLock (read guard), possibly deferred.
func lockedMutexes(body *ast.BlockStmt, recvName string) (writeLocked, readLocked map[string]bool) {
	writeLocked = make(map[string]bool)
	readLocked = make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := muSel.X.(*ast.Ident); ok && x.Name == recvName {
			if sel.Sel.Name == "Lock" {
				writeLocked[muSel.Sel.Name] = true
			} else {
				readLocked[muSel.Sel.Name] = true
			}
		}
		return true
	})
	return writeLocked, readLocked
}

// writtenExprs marks the expressions the body assigns to: assignment
// left-hand sides and ++/-- operands. Everything else is a read.
func writtenExprs(body *ast.BlockStmt) map[ast.Expr]bool {
	written := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				written[lhs] = true
				// m[k] = v writes the map held in the field too.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					written[ix.X] = true
				}
			}
		case *ast.IncDecStmt:
			written[s.X] = true
		}
		return true
	})
	return written
}

// Corpus for the determinism check: wall-clock reads and math/rand
// draws are findings; injected clocks and rng methods are not.
package determinism

import (
	"log"
	"math/rand"
	"os"
	"time"
)

func clock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func nowAsValue() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}

func draw() int {
	return rand.Intn(10) // want "rand.Intn bypasses internal/rng"
}

func fresh() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "rand.New bypasses internal/rng" "rand.NewSource bypasses internal/rng"
}

// methodsAreFine: once a generator is injected, its methods are the
// caller's responsibility, not a new randomness source.
func methodsAreFine(r *rand.Rand) int {
	return r.Intn(10)
}

// injectedClock is the approved pattern: the clock is a parameter.
func injectedClock(now func() time.Time) time.Time {
	return now()
}

func suppressed() time.Time {
	//fgbs:allow determinism corpus: uptime display only, no experiment reads it
	return time.Now()
}

func suppressedTrailing() int {
	return rand.Intn(3) //fgbs:allow determinism corpus: jitter for backoff, not an experiment
}

func napping(d time.Duration) {
	time.Sleep(d) // want "time.Sleep paces on the wall clock"
}

func eventually() <-chan time.Time {
	return time.After(time.Second) // want "time.After paces on the wall clock"
}

func pacers() {
	ticker := time.NewTicker(time.Second) // want "time.NewTicker paces on the wall clock"
	defer ticker.Stop()
	timer := time.NewTimer(time.Second) // want "time.NewTimer paces on the wall clock"
	defer timer.Stop()
	<-time.Tick(time.Minute) // want "time.Tick paces on the wall clock"
}

// suppressedSleep: pacing that never feeds a result may be justified
// in place, same as any other finding.
func suppressedSleep(d time.Duration) {
	time.Sleep(d) //fgbs:allow determinism corpus: backoff pacing only, no result reads the clock
}

func bail() {
	os.Exit(1) // want "os.Exit aborts the process mid-flight"
}

func bailLogging(err error) {
	log.Fatal(err)          // want "log.Fatal aborts the process mid-flight"
	log.Fatalf("%v", err)   // want "log.Fatalf aborts the process mid-flight"
	log.Fatalln(err, "bye") // want "log.Fatalln aborts the process mid-flight"
	log.Printf("fine: %v", err)
}

// exitAsValue: referencing os.Exit without calling it is still an
// abort handed to whoever invokes it.
func exitAsValue() func(int) {
	return os.Exit // want "os.Exit aborts the process mid-flight"
}

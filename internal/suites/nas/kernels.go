// Package nas defines the seven NAS-like serial applications (BT, CG,
// FT, IS, LU, MG, SP) decomposed into 67 codelets, the validation
// suite of §4.4.
//
// The applications are not line-for-line ports of the NAS sources;
// they are performance proxies. Each codelet reproduces the loop
// structure, operation mix, stride signature and invocation behavior
// of the corresponding NAS kernel family, with CLASS-B-like dataset
// sizes scaled by arch.CacheScale (as the machine caches are):
//
//   - BT/SP/LU: flux stencils in the three sweep directions (the
//     "three-point stencil on five planes" z-sweeps are the paper's
//     memory-bound Cluster B), pointwise inversions, and scalar
//     tridiagonal/triangular recurrences with divisions.
//   - MG: level-sweeping multigrid operators whose per-invocation
//     grids change size — the dataset-variation ill-behaved category;
//     this is why the paper cannot predict MG with per-application
//     subsetting.
//   - FT: exponential-evolution kernels (with LU's erhs, the paper's
//     compute-bound Cluster A) and strided FFT butterfly passes.
//   - CG: a dominant sparse matrix-vector codelet (~95% of the
//     application) whose extracted microbenchmark does not preserve
//     the cache state — the paper's CG-on-Atom anomaly.
//   - IS: integer key histograms, scatters and prefix scans.
//
// Ill-behaved codelets (about 19% of the suite, matching Akel et
// al.'s measurement) are marked with DatasetVariation or
// ContextSensitive; see each app's builder.
package nas

import (
	"fgbs/internal/ir"
)

// Scaled dataset dimensions.
const (
	// gridN is the 2-D grid edge (f64 plane = 2 MB, streaming past
	// every modeled cache).
	gridN = 512
	// vecN is the 1-D array length used by CG/IS-style kernels.
	vecN = 1 << 18
)

var (
	vi = ir.V("i")
	vj = ir.V("j")
)

// app collects a program under construction.
type app struct {
	p *ir.Program
}

func newApp(name string, uncovered float64, n int64) *app {
	p := ir.NewProgram(name)
	p.SetParam("n", n)
	p.UncoveredFraction = uncovered
	return &app{p: p}
}

func (a *app) grid(name string) *ir.Array {
	return a.p.AddArray(name, ir.F64, ir.AV("n"), ir.AV("n"))
}

func (a *app) add(c *ir.Codelet, srcRef string) {
	c.SourceRef = srcRef
	// Solver codelets operate on the application's shared grids,
	// which the surrounding time-step loop keeps cache-resident.
	c.WarmInApp = true
	a.p.MustAddCodelet(c)
}

// fluxBody builds the arithmetic of one flux-stencil point from the
// three neighbor values: a weighted second difference, an advective
// product and a quadratic limiter — about a dozen FP operations, the
// arithmetic density of real CFD right-hand sides. The weight
// parameter w differs between applications, so sibling codelets from
// different apps are similar but not identical.
func fluxBody(w float64, terms int, left, mid, right ir.Expr) ir.Expr {
	diff := ir.Sub(ir.Add(left, right), ir.Mul(ir.CF(2), mid))
	adv := ir.Mul(ir.Sub(right, left), mid)
	poly := ir.Add(ir.Mul(ir.CF(w), diff), ir.Mul(ir.CF(0.5-w/4), adv))
	if terms >= 3 {
		poly = ir.Add(poly, ir.Mul(ir.CF(0.1), ir.Mul(diff, diff)))
	}
	if terms >= 4 {
		poly = ir.Add(poly, ir.Mul(ir.CF(1-w/2), ir.Mul(mid, mid)))
	}
	return poly
}

// stencilX builds a unit-stride three-point flux stencil sweep.
func (a *app) stencilX(name, out, u string, w float64, terms, inv int) *ir.Codelet {
	p := a.p
	at := func(dj int64) ir.Expr { return p.LoadE(u, vi, ir.Add(vj, ir.CI(dj))) }
	return &ir.Codelet{
		Name: name, Pattern: "DP: 3-point stencil, unit stride", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: fluxBody(w, terms, at(-1), at(0), at(1)),
				},
			}},
		}},
	}
}

// stencilY builds a column-walking (LDA stride) three-point flux
// stencil, left scalar by the vectorizer.
func (a *app) stencilY(name, out, u string, w float64, terms, inv int) *ir.Codelet {
	p := a.p
	at := func(di int64) ir.Expr { return p.LoadE(u, ir.Add(vi, ir.CI(di)), vj) }
	return &ir.Codelet{
		Name: name, Pattern: "DP: 3-point stencil, LDA stride", Invocations: inv,
		Loop: &ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: fluxBody(w, terms, at(-1), at(0), at(1)),
				},
			}},
		}},
	}
}

// zPlaneN is the plane edge of the z-sweep codelets (the paper's
// memory-bound Cluster B). Five f64 planes of 104x104 total ~433 KB:
// resident in Nehalem's and Sandy Bridge's L3 but four times larger
// than what Core 2's last-level cache can hold (and far beyond
// Atom's L2) — the capacity contrast §4.4 highlights ("the last-level
// cache is four times smaller than the reference").
const zPlaneN = 104

// planes5 builds the Cluster B shape: a three-point stencil combining
// five planes with a flux-like computation, memory bound on machines
// whose last-level cache cannot hold the planes.
func (a *app) planes5(name, out string, planes [5]string, inv int) *ir.Codelet {
	p := a.p
	if _, ok := p.Params["zn"]; !ok {
		p.SetParam("zn", zPlaneN)
	}
	zname := func(s string) string { return name + "_" + s }
	for _, pl := range planes {
		p.AddArray(zname(pl), ir.F64, ir.AV("zn"), ir.AV("zn"))
	}
	zout := name + "_" + out + "_out"
	p.AddArray(zout, ir.F64, ir.AV("zn"), ir.AV("zn"))
	at := func(arr string, dj int64) ir.Expr {
		return p.LoadE(zname(arr), vi, ir.Add(vj, ir.CI(dj)))
	}
	// Flux-like body: each plane contributes a weighted second
	// difference plus a quadratic coupling term, giving the ~20
	// FP ops per point of the real rhs z-sweeps.
	rhs := ir.Mul(ir.CF(-2), at(planes[0], 0))
	for k, pl := range planes[1:] {
		w := ir.CF(0.2 + 0.1*float64(k))
		diff := ir.Sub(ir.Add(at(pl, -1), at(pl, 1)), ir.Mul(ir.CF(2), at(pl, 0)))
		rhs = ir.Add(rhs, ir.Mul(w, diff))
		rhs = ir.Add(rhs, ir.Mul(at(pl, 0), at(planes[0], 0)))
		// Quadratic dissipation on alternating planes: reuses loaded
		// values, adding arithmetic density without memory traffic.
		if k%2 == 0 {
			rhs = ir.Add(rhs, ir.Mul(ir.CF(0.05), ir.Mul(diff, diff)))
		}
	}
	return &ir.Codelet{
		Name: name, Pattern: "DP: 3-point stencil on five planes", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("zn").PlusK(-1), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("zn").PlusK(-1), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref(zout, vi, vj), RHS: rhs},
			}},
		}},
	}
}

// triSolve builds a forward substitution sweep with a division: a
// first-order recurrence along the inner dimension, with the
// coefficient algebra of a real factored solve (w varies per app).
func (a *app) triSolve(name, lhs, rhs, diag string, w float64, inv int) *ir.Codelet {
	p := a.p
	prev := func() ir.Expr { return p.LoadE(lhs, vi, ir.Sub(vj, ir.CI(1))) }
	num := ir.Sub(p.LoadE(rhs, vi, vj), ir.Mul(ir.CF(w), prev()))
	num = ir.Sub(num, ir.Mul(ir.CF(w/3), ir.Mul(prev(), p.LoadE(diag, vi, vj))))
	return &ir.Codelet{
		Name: name, Pattern: "DP: tridiagonal forward substitution (recurrence + div)", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(lhs, vi, vj),
					RHS: ir.Div(num, ir.Add(p.LoadE(diag, vi, vj), ir.CF(1.0+w))),
				},
			}},
		}},
	}
}

// pointwise builds a vectorizable per-cell update mixing the given
// arrays with a rational-polynomial body (w varies per app).
func (a *app) pointwise(name, out, x, y, z string, w float64, inv int) *ir.Codelet {
	p := a.p
	lx := p.LoadE(x, vi, vj)
	ly := p.LoadE(y, vi, vj)
	lz := p.LoadE(z, vi, vj)
	t := ir.Add(ir.Mul(ir.CF(w), ir.Mul(lx, ly)), lz)
	t = ir.Add(t, ir.Mul(ir.CF(0.3), ir.Mul(lx, lx)))
	t = ir.Add(t, ir.Mul(ir.CF(1-w/2), ir.Mul(ly, ir.Sub(lx, lz))))
	return &ir.Codelet{
		Name: name, Pattern: "DP: pointwise block inversion", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref(out, vi, vj), RHS: t},
			}},
		}},
	}
}

// heavyPointwise builds a compute-dense per-cell update (~10 FP ops
// per point, like the real tzetar's characteristic-variable algebra):
// enough arithmetic that losing vectorization visibly slows it down.
func (a *app) heavyPointwise(name, out, x, y, z string, inv int) *ir.Codelet {
	p := a.p
	lx := func() ir.Expr { return p.LoadE(x, vi, vj) }
	ly := func() ir.Expr { return p.LoadE(y, vi, vj) }
	lz := func() ir.Expr { return p.LoadE(z, vi, vj) }
	t1 := ir.Add(ir.Mul(lx(), ly()), ir.Mul(ir.CF(0.3), lz()))
	t2 := ir.Sub(lx(), ir.Mul(ir.CF(0.25), lz()))
	t3 := ir.Add(ir.Mul(t1, t2), ir.Mul(lx(), lx()))
	return &ir.Codelet{
		Name: name, Pattern: "DP: characteristic-variable pointwise algebra", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Add(ir.Mul(ir.CF(0.7), t3), ly()),
				},
			}},
		}},
	}
}

// addGrids builds out += x (element-wise, vectorizable).
func (a *app) addGrids(name, out, x string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: element-wise grid add", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Add(p.LoadE(out, vi, vj), p.LoadE(x, vi, vj)),
				},
			}},
		}},
	}
}

// sumSq builds a sum-of-squares norm reduction.
func (a *app) sumSq(name, u, acc string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: sum of squares reduction", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(acc),
					RHS: ir.Add(p.LoadE(acc),
						ir.Mul(p.LoadE(u, vi, vj), p.LoadE(u, vi, vj))),
				},
			}},
		}},
	}
}

// setGrid builds out = const (store-only set, vectorizable).
func (a *app) setGrid(name, out string, val float64, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: set grid to constant", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref(out, vi, vj), RHS: ir.CF(val)},
			}},
		}},
	}
}

// expCompute builds the paper's Cluster A shape: a nest dominated by
// divisions and exponentials, compute bound.
func (a *app) expCompute(name, out, u string, inv int) *ir.Codelet {
	p := a.p
	return &ir.Codelet{
		Name: name, Pattern: "DP: division + exponential compute", Invocations: inv,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref(out, vi, vj),
					RHS: ir.Div(
						ir.Exp(ir.Mul(ir.CF(-1e-6), p.LoadE(u, vi, vj))),
						ir.Add(p.LoadE(u, vi, vj), ir.CF(1.5))),
				},
			}},
		}},
	}
}

module fgbs

go 1.22

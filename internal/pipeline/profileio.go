package pipeline

import (
	"encoding/json"
	"fmt"
	"io"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// Profile serialization. Profiling is the expensive step (Steps A-B
// simulate every codelet on every machine); persisting its outcome
// lets a session profile once and re-run subsetting experiments
// cheaply — exactly how the paper's workflow amortizes extraction cost
// across many target evaluations.
//
// The on-disk form stores measurements and codelet names; loading
// re-binds them to the suite's programs, which must match (the IR
// itself is code, not data).

// profileJSON is the serialized form.
type profileJSON struct {
	Version   int         `json:"version"`
	Reference string      `json:"reference"`
	Targets   []string    `json:"targets"`
	Codelets  []string    `json:"codelets"`
	Apps      []string    `json:"apps"`
	RefInApp  []float64   `json:"refInApp"`
	RefSA     []float64   `json:"refStandalone"`
	Ill       []bool      `json:"illBehaved"`
	Discarded []bool      `json:"discarded"`
	Features  [][]float64 `json:"features"`
	TgtInApp  [][]float64 `json:"targetInApp"`
	TgtSA     [][]float64 `json:"targetStandalone"`
	// Failure markers from fault-escalated builds. omitempty keeps
	// clean profiles byte-identical to fault-unaware serializations
	// (the fields are nil unless a measurement actually failed).
	RefFailed []bool   `json:"refFailed,omitempty"`
	TgtFailed [][]bool `json:"targetFailed,omitempty"`
}

const profileVersion = 1

// SaveJSON serializes the profile as JSON.
func (p *Profile) SaveJSON(w io.Writer) error {
	pj := profileJSON{
		Version:   profileVersion,
		Reference: p.Ref.Name,
		RefInApp:  p.RefInApp,
		RefSA:     p.RefStandalone,
		Ill:       p.IllBehaved,
		Discarded: p.Discarded,
		Features:  p.Features,
		TgtInApp:  p.TargetInApp,
		TgtSA:     p.TargetStandalone,
		RefFailed: p.RefFailed,
		TgtFailed: p.TargetFailed,
	}
	for _, m := range p.Targets {
		pj.Targets = append(pj.Targets, m.Name)
	}
	for i, c := range p.Codelets {
		pj.Codelets = append(pj.Codelets, c.Name)
		pj.Apps = append(pj.Apps, p.Progs[i].Name)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&pj)
}

// ReadProfile deserializes a profile and re-binds it to the suite
// programs it was built from. The suite must contain exactly the
// serialized codelets, in any program order.
func ReadProfile(r io.Reader, progs []*ir.Program) (*Profile, error) {
	var pj profileJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("pipeline: decoding profile: %w", err)
	}
	if pj.Version != profileVersion {
		return nil, fmt.Errorf("pipeline: profile cache has version %d, this build reads version %d — regenerate the cache", pj.Version, profileVersion)
	}
	n := len(pj.Codelets)
	if len(pj.RefInApp) != n || len(pj.RefSA) != n || len(pj.Ill) != n ||
		len(pj.Discarded) != n || len(pj.Features) != n || len(pj.Apps) != n {
		return nil, fmt.Errorf("pipeline: profile arrays inconsistent")
	}
	if len(pj.TgtInApp) != len(pj.Targets) || len(pj.TgtSA) != len(pj.Targets) {
		return nil, fmt.Errorf("pipeline: target arrays inconsistent")
	}
	for t := range pj.Targets {
		if len(pj.TgtInApp[t]) != n || len(pj.TgtSA[t]) != n {
			return nil, fmt.Errorf("pipeline: target %d measurement length mismatch", t)
		}
	}
	if pj.RefFailed != nil && len(pj.RefFailed) != n {
		return nil, fmt.Errorf("pipeline: refFailed length mismatch")
	}
	if pj.TgtFailed != nil {
		if len(pj.TgtFailed) != len(pj.Targets) {
			return nil, fmt.Errorf("pipeline: targetFailed target count mismatch")
		}
		for t := range pj.TgtFailed {
			if len(pj.TgtFailed[t]) != n {
				return nil, fmt.Errorf("pipeline: targetFailed length mismatch for target %d", t)
			}
		}
	}

	ref, err := arch.ByName(pj.Reference)
	if err != nil {
		return nil, err
	}
	var targets []*arch.Machine
	for _, name := range pj.Targets {
		m, err := arch.ByName(name)
		if err != nil {
			return nil, err
		}
		targets = append(targets, m)
	}

	// Index the suite's codelets by (app, name).
	type key struct{ app, name string }
	index := map[key]int{}
	ps, cs, err := Detect(progs)
	if err != nil {
		return nil, err
	}
	for i := range cs {
		index[key{ps[i].Name, cs[i].Name}] = i
	}
	if len(cs) != n {
		return nil, fmt.Errorf("pipeline: suite has %d codelets, profile has %d", len(cs), n)
	}

	p := &Profile{
		Ref: ref, Targets: targets,
		Progs:            make([]*ir.Program, n),
		Codelets:         make([]*ir.Codelet, n),
		RefInApp:         pj.RefInApp,
		RefStandalone:    pj.RefSA,
		IllBehaved:       pj.Ill,
		Discarded:        pj.Discarded,
		Features:         pj.Features,
		TargetInApp:      pj.TgtInApp,
		TargetStandalone: pj.TgtSA,
		RefFailed:        pj.RefFailed,
		TargetFailed:     pj.TgtFailed,
	}
	for j := 0; j < n; j++ {
		i, ok := index[key{pj.Apps[j], pj.Codelets[j]}]
		if !ok {
			return nil, fmt.Errorf("pipeline: profile codelet %s/%s not in suite", pj.Apps[j], pj.Codelets[j])
		}
		p.Progs[j] = ps[i]
		p.Codelets[j] = cs[i]
	}
	return p, nil
}

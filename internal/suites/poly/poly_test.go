package poly

import (
	"strings"
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/extract"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

func TestSuiteShape(t *testing.T) {
	progs, codelets := Codelets()
	if len(codelets) != 18 {
		t.Fatalf("poly suite has %d codelets, want 18", len(codelets))
	}
	seen := map[string]bool{}
	for i, c := range codelets {
		if err := progs[i].Validate(); err != nil {
			t.Errorf("%s: %v", progs[i].Name, err)
		}
		if seen[c.Name] {
			t.Errorf("duplicate %q", c.Name)
		}
		seen[c.Name] = true
		if !strings.HasPrefix(c.Name, "poly_") {
			t.Errorf("codelet %q not poly-prefixed", c.Name)
		}
		if c.Pattern == "" || c.SourceRef == "" {
			t.Errorf("codelet %q missing metadata", c.Name)
		}
	}
}

func TestPatternFamilies(t *testing.T) {
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	// Recurrences stay scalar.
	for _, name := range []string{"poly_durbin", "poly_trisolv", "poly_deriche", "poly_adi"} {
		i := byName[name]
		inner := codelets[i].InnermostLoops()
		a := inner[len(inner)-1].Loop.Body[0].(*ir.Assign)
		if dep := progs[i].ClassifyDep(a, inner[len(inner)-1].Loop.Var); dep != ir.DepRecurrence {
			t.Errorf("%s classified %v, want recurrence", name, dep)
		}
	}
	// gemm's interchanged inner loop updates c[i][j] in place along j:
	// no inner-carried dependence, freely vectorizable.
	i := byName["poly_gemm"]
	lc := codelets[i].InnermostLoops()[0]
	a := lc.Loop.Body[0].(*ir.Assign)
	if dep := progs[i].ClassifyDep(a, lc.Loop.Var); dep != ir.DepNone {
		t.Errorf("gemm inner dep = %v, want none", dep)
	}
	// syrk keeps the k-innermost reduction form.
	i = byName["poly_syrk"]
	lc = codelets[i].InnermostLoops()[0]
	a = lc.Loop.Body[0].(*ir.Assign)
	if dep := progs[i].ClassifyDep(a, lc.Loop.Var); dep != ir.DepReduction {
		t.Errorf("syrk inner dep = %v, want reduction", dep)
	}
	// deriche is single precision.
	if progs[byName["poly_deriche"]].Array("y").DT != ir.F32 {
		t.Error("deriche not single precision")
	}
}

// TestAllMeasurableAndWellBehaved: poly codelets must clear the
// measurement floor and pass the extraction screening on the reference
// (the suite has no designed ill-behaved codelets).
func TestAllMeasurableAndWellBehaved(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	ref := arch.Reference()
	var wg sync.WaitGroup
	errs := make([]string, len(codelets))
	sem := make(chan struct{}, 8)
	for i := range codelets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			inApp, err := sim.Measure(progs[i], codelets[i],
				sim.Options{Machine: ref, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				errs[i] = err.Error()
				return
			}
			sa, err := sim.Measure(progs[i], codelets[i],
				sim.Options{Machine: ref, Mode: sim.ModeStandalone, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				errs[i] = err.Error()
				return
			}
			if inApp.Counters.Cycles < 25000 {
				errs[i] = codelets[i].Name + " below the measurement floor"
			}
			if extract.IllBehaved(sa.Seconds, inApp.Seconds) {
				errs[i] = codelets[i].Name + " ill-behaved on the reference"
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Error(e)
		}
	}
}

// TestWideVectorLovesGemm: on the WideVec extension machine the
// vectorizable compute kernels speed up far more than the serial
// recurrences — the contrast that makes the suite interesting for the
// feature-generalization experiment.
func TestWideVectorLovesGemm(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	byName := map[string]int{}
	for i, c := range codelets {
		byName[c.Name] = i
	}
	speedup := func(name string) float64 {
		i := byName[name]
		ref, err := sim.Measure(progs[i], codelets[i],
			sim.Options{Machine: arch.Reference(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		wv, err := sim.Measure(progs[i], codelets[i],
			sim.Options{Machine: arch.WideVec(), Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		return ref.Seconds / wv.Seconds
	}
	gemm := speedup("poly_gemm")
	durbin := speedup("poly_durbin")
	if gemm < 2*durbin {
		t.Errorf("WideVec speedups: gemm %.2f vs durbin %.2f — vector machine must favor vector code strongly",
			gemm, durbin)
	}
}

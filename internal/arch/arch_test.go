package arch

import "testing"

func TestAllMachinesValid(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	ref := Reference()
	if ref.Name != "Nehalem" {
		t.Errorf("reference = %s, want Nehalem", ref.Name)
	}
	targets := Targets()
	if len(targets) != 3 {
		t.Fatalf("targets = %d, want 3", len(targets))
	}
	names := map[string]bool{}
	for _, m := range targets {
		names[m.Name] = true
	}
	for _, want := range []string{"Atom", "Core 2", "Sandy Bridge"} {
		if !names[want] {
			t.Errorf("missing target %q", want)
		}
	}
}

func TestFrequenciesMatchTable1(t *testing.T) {
	want := map[string]float64{
		"Nehalem": 1.86, "Atom": 1.66, "Core 2": 2.93, "Sandy Bridge": 3.30,
	}
	for _, m := range All() {
		if m.FreqGHz != want[m.Name] {
			t.Errorf("%s frequency = %g, want %g", m.Name, m.FreqGHz, want[m.Name])
		}
	}
}

func TestCacheLevelCounts(t *testing.T) {
	levels := map[string]int{
		"Nehalem": 3, "Sandy Bridge": 3, // L1 L2 L3
		"Atom": 2, "Core 2": 2, // no L3
	}
	for _, m := range All() {
		if got := len(m.Caches); got != levels[m.Name] {
			t.Errorf("%s: %d cache levels, want %d", m.Name, got, levels[m.Name])
		}
	}
}

func TestArchitectureContrasts(t *testing.T) {
	neh, atom, c2, sb := Nehalem(), Atom(), Core2(), SandyBridge()
	if !atom.InOrder || neh.InOrder || c2.InOrder || sb.InOrder {
		t.Error("only Atom is in-order")
	}
	if atom.FPDivCycles <= neh.FPDivCycles {
		t.Error("Atom divider must be slower than reference")
	}
	if c2.LastLevelSize() >= neh.LastLevelSize() {
		t.Error("Core 2 last-level cache must be smaller than Nehalem L3 (paper's cluster B mechanism)")
	}
	if c2.FreqGHz <= neh.FreqGHz {
		t.Error("Core 2 clocks higher than reference (paper's cluster A mechanism)")
	}
	if sb.MemBWBytesPerCycle*sb.FreqGHz <= c2.MemBWBytesPerCycle*c2.FreqGHz {
		t.Error("Sandy Bridge memory bandwidth must exceed Core 2 FSB")
	}
	if atom.MemBWBytesPerCycle*atom.FreqGHz >= neh.MemBWBytesPerCycle*neh.FreqGHz {
		t.Error("Atom memory bandwidth must be below reference")
	}
}

func TestCacheScalePreservesRatios(t *testing.T) {
	// The modeled Nehalem L3 / Core2 L2 capacity ratio must equal the
	// real 12MB / 3MB = 4.
	neh, c2 := Nehalem(), Core2()
	if r := neh.LastLevelSize() / c2.LastLevelSize(); r != 4 {
		t.Errorf("LLC ratio = %d, want 4", r)
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("Atom")
	if err != nil || m.CPU != "D510" {
		t.Errorf("ByName(Atom) = %v, %v", m, err)
	}
	if _, err := ByName("P4"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := Nehalem()
	if got := m.CyclesToSeconds(1.86e9); got != 1.0 {
		t.Errorf("1.86e9 cycles = %g s, want 1", got)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := Nehalem()
	m.Overlap = 1.5
	if err := m.Validate(); err == nil {
		t.Error("overlap > 1 accepted")
	}
	m = Atom()
	m.Overlap = 0.2
	if err := m.Validate(); err == nil {
		t.Error("in-order machine with overlap accepted")
	}
	m = Core2()
	m.Caches = nil
	if err := m.Validate(); err == nil {
		t.Error("machine without caches accepted")
	}
}

func TestExtensionMachines(t *testing.T) {
	wv := WideVec()
	if err := wv.Validate(); err != nil {
		t.Errorf("WideVec: %v", err)
	}
	if wv.SIMDBytes <= SandyBridge().SIMDBytes {
		t.Error("WideVec must be wider than the SSE machines")
	}
	nv := NehalemNoVec()
	if err := nv.Validate(); err != nil {
		t.Errorf("NehalemNoVec: %v", err)
	}
	if nv.SIMDBytes >= 8 {
		t.Error("NehalemNoVec still vectorizes")
	}
	if nv.FreqGHz != Nehalem().FreqGHz || nv.MemBWBytesPerCycle != Nehalem().MemBWBytesPerCycle {
		t.Error("NehalemNoVec must differ from Nehalem only in the compiler configuration")
	}
	if _, err := ByName("WideVec"); err != nil {
		t.Error("WideVec not resolvable by name")
	}
	if _, err := ByName("Nehalem -no-vec"); err != nil {
		t.Error("NehalemNoVec not resolvable by name")
	}
}

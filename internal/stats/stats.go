// Package stats implements the small set of descriptive statistics the
// benchmark-subsetting pipeline relies on: medians (used to summarize
// prediction errors and repeated microbenchmark invocations), geometric
// means (used for the per-architecture speedup summary of Figure 6),
// variance (the quantity Ward's clustering criterion minimizes), and
// z-score normalization (applied to feature vectors before clustering).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or NaN for an empty slice.
// xs is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// It returns NaN for an empty slice and panics on q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of xs: the median of
// |x - median(xs)|. It is the robust dispersion estimate behind the
// measurement layer's outlier rejection — unlike the standard
// deviation, a single wild invocation cannot inflate it. Returns NaN
// for an empty slice.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// MADConsistency rescales a MAD to estimate the standard deviation of
// normal data (the 1/Φ⁻¹(3/4) constant).
const MADConsistency = 1.4826

// MADKeep returns the indices of xs within k consistent MADs of the
// median — the outlier-rejection rule of the robust measurement
// protocol. With a (near-)zero MAD (at least half the samples
// identical) every sample is kept: there is no dispersion to reject
// against. k <= 0 keeps everything.
func MADKeep(xs []float64, k float64) []int {
	keep := make([]int, 0, len(xs))
	if k <= 0 {
		for i := range xs {
			keep = append(keep, i)
		}
		return keep
	}
	med := Median(xs)
	spread := MAD(xs) * MADConsistency
	if spread < 1e-300 {
		for i := range xs {
			keep = append(keep, i)
		}
		return keep
	}
	for i, x := range xs {
		if math.Abs(x-med) <= k*spread {
			keep = append(keep, i)
		}
	}
	return keep
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns NaN for an empty slice or any non-positive value.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the population variance of xs (dividing by n, not
// n-1): Ward's criterion is defined on total within-cluster dispersion,
// for which the population form is the natural choice. Returns NaN for
// an empty slice and 0 for a single element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Normalize z-scores each column of the row-major matrix rows in place:
// every column ends up with zero mean and unit variance. Columns with
// (near-)zero variance are set to all zeros rather than dividing by
// zero; such constant features carry no clustering information.
//
// This is the normalization of §3.3: "Features are normalized to have
// unit variance and to be centered on zero," giving every feature equal
// weight in the Euclidean distance.
// The column statistics are computed in place, walking each column in
// row order with the same two-pass sum/sum-of-squares arithmetic as
// Mean and StdDev, so results are bit-identical to the gather-a-column
// formulation while allocating nothing — this runs on every normalize
// stage resolution, over matrices as tall as the suite.
//
//fgbs:hot
func Normalize(rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	n := float64(len(rows))
	cols := len(rows[0])
	for c := 0; c < cols; c++ {
		sum := 0.0
		for r := range rows {
			sum += rows[r][c]
		}
		m := sum / n
		ss := 0.0
		for r := range rows {
			d := rows[r][c] - m
			ss += d * d
		}
		sd := math.Sqrt(ss / n)
		if sd < 1e-12 {
			for r := range rows {
				rows[r][c] = 0
			}
			continue
		}
		for r := range rows {
			rows[r][c] = (rows[r][c] - m) / sd
		}
	}
}

// EuclideanDistance returns the L2 distance between a and b.
// It panics if the lengths differ.
//
//fgbs:hot
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: dimension mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// RelError returns |predicted-actual| / |actual| as a fraction.
// A zero actual with nonzero predicted yields +Inf.
func RelError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

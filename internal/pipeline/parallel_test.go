package pipeline

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestSweepKParallelMatchesSerial is the determinism gate for the
// parallel sweep: at every worker count the fanned-out result must be
// identical — field for field — to the serial loop. Runs under -race.
func TestSweepKParallelMatchesSerial(t *testing.T) {
	prof := tinyProfile(t)
	want, err := prof.SweepK(tinyMask, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := prof.SweepKParallel(context.Background(), tinyMask, 2, 7, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel sweep diverged from serial\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestRandomClusteringsParallelMatchesSerial: the random baseline's
// envelope must be independent of the worker count, because every
// trial's partition is a pure function of (seed, trial index).
func TestRandomClusteringsParallelMatchesSerial(t *testing.T) {
	prof := tinyProfile(t)
	cases := []struct {
		k, trials int
		seed      uint64
	}{
		{2, 10, 1},
		{3, 25, 7},
		{4, 40, 99},
	}
	for _, c := range cases {
		want, err := prof.RandomClusterings(tinyMask, c.k, c.trials, 0, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			got, err := prof.RandomClusteringsParallel(context.Background(), tinyMask, c.k, c.trials, 0, c.seed, workers, nil)
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", c.k, workers, err)
			}
			if got != want {
				t.Errorf("k=%d trials=%d workers=%d: parallel %+v != serial %+v",
					c.k, c.trials, workers, got, want)
			}
		}
	}
}

// TestTrialSeedsStable: the per-trial seed derivation is part of the
// experiment's reproducibility contract — a longer run must extend,
// not reshuffle, a shorter run's seeds.
func TestTrialSeedsStable(t *testing.T) {
	short := trialSeeds(42, 10)
	long := trialSeeds(42, 100)
	for i, s := range short {
		if long[i] != s {
			t.Fatalf("seed %d changed with trial count: %d != %d", i, long[i], s)
		}
	}
	other := trialSeeds(43, 10)
	same := 0
	for i := range short {
		if short[i] == other[i] {
			same++
		}
	}
	if same == len(short) {
		t.Error("different base seeds produced identical trial seeds")
	}
}

// TestParallelProgressReachesTotal: the progress callback must end at
// done == total on success, whatever the interleaving.
func TestParallelProgressReachesTotal(t *testing.T) {
	prof := tinyProfile(t)
	var mu sync.Mutex
	var lastDone, lastTotal, calls int
	progress := func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > lastDone {
			lastDone = done
		}
		lastTotal = total
	}
	if _, err := prof.RandomClusteringsParallel(context.Background(), tinyMask, 3, 30, 0, 7, 4, progress); err != nil {
		t.Fatal(err)
	}
	if lastDone != 30 || lastTotal != 30 {
		t.Errorf("progress ended at %d/%d, want 30/30", lastDone, lastTotal)
	}
	if calls < 2 {
		t.Errorf("progress called %d times, want chunked reporting", calls)
	}
}

// TestParallelCancellation: a canceled context aborts both runners
// with the context's error.
func TestParallelCancellation(t *testing.T) {
	prof := tinyProfile(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prof.SweepKParallel(ctx, tinyMask, 2, 7, 4, nil); err != context.Canceled {
		t.Errorf("sweep err = %v, want context.Canceled", err)
	}
	if _, err := prof.RandomClusteringsParallel(ctx, tinyMask, 3, 50, 0, 7, 4, nil); err != context.Canceled {
		t.Errorf("randbaseline err = %v, want context.Canceled", err)
	}
	if _, err := prof.SweepKContext(ctx, tinyMask, 2, 7); err != context.Canceled {
		t.Errorf("serial sweep err = %v, want context.Canceled", err)
	}
	if _, err := prof.RandomClusteringsContext(ctx, tinyMask, 3, 50, 0, 7); err != context.Canceled {
		t.Errorf("serial randbaseline err = %v, want context.Canceled", err)
	}
	if _, err := prof.PerAppSubsettingContext(ctx, tinyMask, 2); err != context.Canceled {
		t.Errorf("per-app err = %v, want context.Canceled", err)
	}
}

// TestFeatureFitnessContextCanceled: a canceled fitness degrades to
// +Inf instead of running the pipeline.
func TestFeatureFitnessContextCanceled(t *testing.T) {
	prof := tinyProfile(t)
	ctx, cancel := context.WithCancel(context.Background())
	fitness, err := prof.FeatureFitnessContext(ctx, "Atom")
	if err != nil {
		t.Fatal(err)
	}
	if f := fitness(tinyMask); !isInf(f) && f <= 0 {
		t.Errorf("live fitness = %g", f)
	}
	cancel()
	if f := fitness(tinyMask); !isInf(f) {
		t.Errorf("canceled fitness = %g, want +Inf", f)
	}
}

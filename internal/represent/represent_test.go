package represent

import (
	"strings"
	"testing"
)

// Fixture: three clusters on a line.
//
//	cluster 0: points 0,1,2 at x = 0, 0.5, 1
//	cluster 1: points 3,4   at x = 10, 10.5
//	cluster 2: points 5     at x = 20
func fixture() ([][]float64, []int) {
	points := [][]float64{{0}, {0.5}, {1}, {10}, {10.5}, {20}}
	labels := []int{0, 0, 0, 1, 1, 2}
	return points, labels
}

func TestAllWellBehaved(t *testing.T) {
	points, labels := fixture()
	sel, err := Select(points, labels, make([]bool, 6))
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 3 || sel.Destroyed != 0 {
		t.Fatalf("K=%d destroyed=%d", sel.K, sel.Destroyed)
	}
	// Cluster 0 centroid = 0.5 -> representative is point 1.
	if sel.Reps[sel.Labels[0]] != 1 {
		t.Errorf("rep of cluster 0 = %d, want 1", sel.Reps[sel.Labels[0]])
	}
	if sel.Reps[sel.Labels[5]] != 5 {
		t.Errorf("singleton rep = %d, want 5", sel.Reps[sel.Labels[5]])
	}
}

func TestIllBehavedRepReselected(t *testing.T) {
	points, labels := fixture()
	ill := make([]bool, 6)
	ill[1] = true // centroid-closest of cluster 0 is ineligible
	sel, err := Select(points, labels, ill)
	if err != nil {
		t.Fatal(err)
	}
	rep := sel.Reps[sel.Labels[0]]
	if rep == 1 {
		t.Error("ill-behaved codelet kept as representative")
	}
	if rep != 0 && rep != 2 {
		t.Errorf("rep = %d, want 0 or 2", rep)
	}
	if sel.Destroyed != 0 {
		t.Error("cluster destroyed despite eligible members")
	}
}

func TestClusterDissolution(t *testing.T) {
	points, labels := fixture()
	ill := make([]bool, 6)
	ill[3] = true
	ill[4] = true // whole cluster 1 ill-behaved
	sel, err := Select(points, labels, ill)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Destroyed != 1 {
		t.Fatalf("destroyed = %d, want 1", sel.Destroyed)
	}
	if sel.K != 2 {
		t.Fatalf("K = %d, want 2", sel.K)
	}
	// Points 3 and 4 sit at x=10, 10.5: their nearest surviving
	// neighbor is point 5 (x=20) vs point 2 (x=1): 3 -> point 2 is 9
	// away, point 5 is 10 away -> cluster of point 2; 4 -> point 5 is
	// 9.5, point 2 is 9.5... point 2 at distance 9.5, point 5 at 9.5;
	// ties resolve to the first scanned (point 2).
	if sel.Labels[3] != sel.Labels[2] {
		t.Errorf("codelet 3 moved to cluster of %d, want cluster of point 2", sel.Labels[3])
	}
	if len(sel.Moved) != 2 {
		t.Errorf("moved = %v", sel.Moved)
	}
	// Labels stay consecutive.
	seen := map[int]bool{}
	for _, l := range sel.Labels {
		if l < 0 || l >= sel.K {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) != sel.K {
		t.Error("labels not consecutive")
	}
}

func TestMovedMembersDoNotBecomeReps(t *testing.T) {
	points, labels := fixture()
	ill := []bool{false, false, false, true, true, false}
	sel, err := Select(points, labels, ill)
	if err != nil {
		t.Fatal(err)
	}
	for c, r := range sel.Reps {
		if ill[r] {
			t.Errorf("cluster %d has ill-behaved representative %d", c, r)
		}
	}
}

func TestAllIllBehavedFails(t *testing.T) {
	points, labels := fixture()
	ill := []bool{true, true, true, true, true, true}
	if _, err := Select(points, labels, ill); err == nil {
		t.Error("fully ill-behaved suite accepted")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	points, labels := fixture()
	if _, err := Select(points, labels, make([]bool, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Select(nil, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSingletonIllBehavedDissolves(t *testing.T) {
	points, labels := fixture()
	ill := make([]bool, 6)
	ill[5] = true // singleton cluster 2
	sel, err := Select(points, labels, ill)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Destroyed != 1 || sel.K != 2 {
		t.Fatalf("destroyed=%d K=%d", sel.Destroyed, sel.K)
	}
	// Point 5 joins the cluster of its nearest neighbor (point 4,
	// cluster 1).
	if sel.Labels[5] != sel.Labels[4] {
		t.Error("dissolved singleton joined the wrong cluster")
	}
}

// TestEveryClusterDissolvedErrorIsLoud pins the failure mode down to
// its message: when every cluster is ill-behaved there is nothing to
// extract, and the caller (and its operator) should be told exactly
// that — not handed a zero-cluster Selection that fails later in
// prediction.
func TestEveryClusterDissolvedErrorIsLoud(t *testing.T) {
	points, labels := fixture()
	ill := []bool{true, true, true, true, true, true}
	sel, err := Select(points, labels, ill)
	if err == nil {
		t.Fatalf("fully ill-behaved suite accepted: %+v", sel)
	}
	if !strings.Contains(err.Error(), "every cluster is ill-behaved") {
		t.Errorf("error = %v, want the every-cluster diagnosis", err)
	}
}

// TestDissolutionTieBreaksToLowestIndex: a member of a destroyed
// cluster exactly equidistant from two well-behaved neighbors must
// land deterministically with the lowest-index one (NearestNeighbor's
// strict < keeps the first minimum) — the property the byte-identity
// guarantees of the chaos tests lean on.
func TestDissolutionTieBreaksToLowestIndex(t *testing.T) {
	// Point 2 at x=5 sits exactly 5 away from both surviving
	// neighbors: point 0 (x=0, cluster 0) and point 1 (x=10,
	// cluster 1). Its own cluster 2 dissolves.
	points := [][]float64{{0}, {10}, {5}}
	labels := []int{0, 1, 2}
	ill := []bool{false, false, true}
	var first *Selection
	for trial := 0; trial < 20; trial++ {
		sel, err := Select(points, labels, ill)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Labels[2] != sel.Labels[0] {
			t.Fatalf("trial %d: tied codelet joined cluster of point 1, want lowest-index point 0", trial)
		}
		if first == nil {
			first = sel
			continue
		}
		for i := range sel.Labels {
			if sel.Labels[i] != first.Labels[i] {
				t.Fatalf("trial %d: labels differ from first run: %v vs %v", trial, sel.Labels, first.Labels)
			}
		}
	}
}

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fgbs/internal/fault"
)

// wait blocks until the job is terminal or the test deadline hits.
func wait(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s not terminal after 30s: %+v", j.ID(), j.Snapshot())
	}
	return j.Snapshot()
}

func TestLifecycleDone(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	j, err := m.Submit("sum", func(ctx context.Context, pr *Progress) (any, error) {
		pr.SetTotal(10)
		total := 0
		for i := 0; i < 10; i++ {
			total += i
			pr.Add(1)
		}
		return total, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == "" || j.Kind() != "sum" {
		t.Errorf("job identity = %q/%q", j.ID(), j.Kind())
	}
	s := wait(t, j)
	if s.State != StateDone {
		t.Fatalf("state = %s, want done (err %s)", s.State, s.Err)
	}
	if s.Done != 10 || s.Total != 10 {
		t.Errorf("progress = %d/%d, want 10/10", s.Done, s.Total)
	}
	if s.Started.Before(s.Created) || s.Finished.Before(s.Started) {
		t.Errorf("timestamps disordered: %+v", s)
	}
	res, ok := j.Result()
	if !ok || res.(int) != 45 {
		t.Errorf("result = %v, %v", res, ok)
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	boom := errors.New("boom")
	j, err := m.Submit("bad", func(ctx context.Context, pr *Progress) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateFailed || s.Err != "boom" {
		t.Errorf("state = %s err %q, want failed/boom", s.State, s.Err)
	}
	if _, ok := j.Result(); ok {
		t.Error("failed job exposed a result")
	}
	if st := m.Stats(); st.Failed != 1 {
		t.Errorf("failed gauge = %d, want 1", st.Failed)
	}
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	started := make(chan struct{})
	j, err := m.Submit("spin", func(ctx context.Context, pr *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateCanceled {
		t.Errorf("state = %s, want canceled", s.State)
	}
	if st := m.Stats(); st.Canceled != 1 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCancelPending(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit("hog", func(ctx context.Context, pr *Progress) (any, error) {
		close(started)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	j, err := m.Submit("starved", func(ctx context.Context, pr *Progress) (any, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateCanceled {
		t.Errorf("pending cancel state = %s", s.State)
	}
	if !s.Started.IsZero() {
		t.Error("canceled-while-pending job claims to have started")
	}
	close(block)
}

func TestCancelUnknownAndTerminalIdempotent(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Cancel("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v, want ErrNotFound", err)
	}
	j, _ := m.Submit("ok", func(ctx context.Context, pr *Progress) (any, error) { return 1, nil })
	wait(t, j)
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Errorf("cancel of done job errored: %v", err)
	}
	if s := j.Snapshot(); s.State != StateDone {
		t.Errorf("cancel flipped a done job to %s", s.State)
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	hog := func(ctx context.Context, pr *Progress) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := m.Submit("a", hog); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; the queue slot is free again
	if _, err := m.Submit("b", hog); err != nil {
		t.Fatal(err) // fills the single queue slot
	}
	if _, err := m.Submit("c", hog); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit = %v, want ErrQueueFull", err)
	}
	// The rejected job must not linger in listings.
	if got := len(m.List()); got != 2 {
		t.Errorf("listed jobs = %d, want 2", got)
	}
	close(release)
}

func TestListNewestFirstAndStableIDs(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := m.Submit("n", func(ctx context.Context, pr *Progress) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		wait(t, j)
	}
	l := m.List()
	if len(l) != 3 {
		t.Fatalf("list = %d entries", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i].ID >= l[i-1].ID {
			t.Errorf("list not newest-first: %s before %s", l[i-1].ID, l[i].ID)
		}
	}
	if jobs[0].ID() == jobs[1].ID() {
		t.Error("duplicate job IDs")
	}
	got, err := m.Get(jobs[2].ID())
	if err != nil || got != jobs[2] {
		t.Errorf("Get = %v, %v", got, err)
	}
}

func TestRetentionGC(t *testing.T) {
	clock := time.Unix(1000, 0)
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	m := NewManager(Config{Workers: 1, Retention: time.Minute, now: now})
	defer m.Close()
	j, _ := m.Submit("old", func(ctx context.Context, pr *Progress) (any, error) { return nil, nil })
	wait(t, j)
	clockMu.Lock()
	clock = clock.Add(2 * time.Minute)
	clockMu.Unlock()
	if got := len(m.List()); got != 0 {
		t.Errorf("expired job still listed (%d entries)", got)
	}
	if _, err := m.Get(j.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired job still gettable: %v", err)
	}
}

func TestMaxRetainedGC(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxRetained: 2})
	defer m.Close()
	var last *Job
	for i := 0; i < 5; i++ {
		j, err := m.Submit("n", func(ctx context.Context, pr *Progress) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		last = j
	}
	l := m.List()
	if len(l) > 3 { // 2 retained terminal + possibly the freshest pre-GC
		t.Errorf("retained %d terminal jobs, cap 2", len(l))
	}
	found := false
	for _, s := range l {
		found = found || s.ID == last.ID()
	}
	if !found {
		t.Error("newest job evicted before older ones")
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{Workers: 1, Dir: dir})
	defer m.Close()
	j, err := m.Submit("persisted", func(ctx context.Context, pr *Progress) (any, error) {
		return map[string]int{"answer": 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	data, err := os.ReadFile(filepath.Join(dir, j.ID()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var pj persistedJob
	if err := json.Unmarshal(data, &pj); err != nil {
		t.Fatal(err)
	}
	if pj.ID != j.ID() || pj.Kind != "persisted" {
		t.Errorf("persisted identity = %q/%q", pj.ID, pj.Kind)
	}
	if pj.SchemaVersion != jobSchemaVersion {
		t.Errorf("persisted schema version = %d, want %d", pj.SchemaVersion, jobSchemaVersion)
	}
	var res map[string]float64
	if err := json.Unmarshal(pj.Result, &res); err != nil {
		t.Fatalf("persisted result does not decode: %v", err)
	}
	if res["answer"] != 42 {
		t.Errorf("persisted result = %s", pj.Result)
	}

	// Non-durable failed jobs leave no file.
	f, _ := m.Submit("broken", func(ctx context.Context, pr *Progress) (any, error) {
		return nil, errors.New("no")
	})
	wait(t, f)
	if _, err := os.Stat(filepath.Join(dir, f.ID()+".json")); !os.IsNotExist(err) {
		t.Error("failed job persisted a result file")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	started := make(chan struct{})
	running, _ := m.Submit("run", func(ctx context.Context, pr *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	queued, _ := m.Submit("queued", func(ctx context.Context, pr *Progress) (any, error) {
		return nil, nil
	})
	m.Close()
	if s := running.Snapshot(); s.State != StateCanceled {
		t.Errorf("running job after Close = %s", s.State)
	}
	if s := queued.Snapshot(); s.State != StateCanceled {
		t.Errorf("queued job after Close = %s", s.State)
	}
	if _, err := m.Submit("late", func(ctx context.Context, pr *Progress) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitPoll hammers the manager from many goroutines:
// the -race gate for the pool's bookkeeping.
func TestConcurrentSubmitPoll(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 256})
	defer m.Close()
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(fmt.Sprintf("w%d", i), func(ctx context.Context, pr *Progress) (any, error) {
				pr.SetTotal(100)
				for u := 0; u < 100; u++ {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					pr.Add(1)
				}
				return i, nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			m.List() // poll concurrently with execution
			j.Snapshot()
			select {
			case <-j.Done():
			case <-time.After(30 * time.Second):
				errs[i] = fmt.Errorf("job %s stuck", j.ID())
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if st := m.Stats(); st.Completed != n || st.Running != 0 || st.Queued != 0 {
		t.Errorf("stats = %+v, want %d completed, idle", st, n)
	}
}

func TestRetryTransientFailures(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 3})
	defer m.Close()
	var calls atomic.Int64
	j, err := m.Submit("flaky", func(ctx context.Context, pr *Progress) (any, error) {
		if calls.Add(1) < 3 {
			return nil, fault.Transient(errors.New("target rebooting"))
		}
		return "recovered", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateDone {
		t.Fatalf("state = %s (err %s), want done after retries", s.State, s.Err)
	}
	if s.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", s.Attempts)
	}
	if got := m.Stats().Retried; got != 2 {
		t.Errorf("retried = %d, want 2", got)
	}
	if res, ok := j.Result(); !ok || res.(string) != "recovered" {
		t.Errorf("result = %v, %v", res, ok)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 2})
	defer m.Close()
	var calls atomic.Int64
	j, err := m.Submit("hopeless", func(ctx context.Context, pr *Progress) (any, error) {
		calls.Add(1)
		return nil, fault.Transient(errors.New("still down"))
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateFailed {
		t.Fatalf("state = %s, want failed", s.State)
	}
	if s.Attempts != 2 || calls.Load() != 2 {
		t.Errorf("attempts = %d, calls = %d, want 2/2", s.Attempts, calls.Load())
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxAttempts: 5})
	defer m.Close()
	var calls atomic.Int64
	j, err := m.Submit("broken", func(ctx context.Context, pr *Progress) (any, error) {
		calls.Add(1)
		return nil, errors.New("bad request")
	})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != StateFailed || s.Attempts != 1 || calls.Load() != 1 {
		t.Errorf("state=%s attempts=%d calls=%d, want failed/1/1", s.State, s.Attempts, calls.Load())
	}
	if m.Stats().Retried != 0 {
		t.Errorf("retried = %d, want 0", m.Stats().Retried)
	}
}

func TestCustomRetryablePredicate(t *testing.T) {
	sentinel := errors.New("special")
	m := NewManager(Config{Workers: 1, MaxAttempts: 2,
		Retryable: func(err error) bool { return errors.Is(err, sentinel) }})
	defer m.Close()
	var calls atomic.Int64
	j, _ := m.Submit("custom", func(ctx context.Context, pr *Progress) (any, error) {
		if calls.Add(1) == 1 {
			return nil, sentinel
		}
		return "ok", nil
	})
	if s := wait(t, j); s.State != StateDone || s.Attempts != 2 {
		t.Errorf("state=%s attempts=%d, want done/2", s.State, s.Attempts)
	}
}

func TestSaturation(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 7})
	defer m.Close()
	if q, d := m.Saturation(); q != 0 || d != 7 {
		t.Errorf("saturation = %d/%d, want 0/7", q, d)
	}
}

package nas

import (
	"strings"
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/extract"
	"fgbs/internal/sim"
)

func TestSuiteShape(t *testing.T) {
	progs := Suite()
	if len(progs) != 7 {
		t.Fatalf("NAS suite has %d applications, want 7", len(progs))
	}
	counts := map[string]int{}
	total := 0
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		counts[p.Name] = len(p.Codelets)
		total += len(p.Codelets)
		if p.UncoveredFraction <= 0 || p.UncoveredFraction >= 0.2 {
			t.Errorf("%s uncovered fraction %g implausible", p.Name, p.UncoveredFraction)
		}
	}
	if total != 67 {
		t.Fatalf("NAS suite has %d codelets, want 67 (§4.1)", total)
	}
	for _, app := range []string{"bt", "cg", "ft", "is", "lu", "mg", "sp"} {
		if counts[app] == 0 {
			t.Errorf("application %q missing", app)
		}
	}
}

func TestCodeletNamesPrefixedByApp(t *testing.T) {
	progs, codelets := Codelets()
	seen := map[string]bool{}
	for i, c := range codelets {
		if seen[c.Name] {
			t.Errorf("duplicate codelet %q", c.Name)
		}
		seen[c.Name] = true
		if !strings.HasPrefix(c.Name, progs[i].Name+"_") {
			t.Errorf("codelet %q not prefixed by app %q", c.Name, progs[i].Name)
		}
		if c.SourceRef == "" {
			t.Errorf("codelet %q has no source provenance", c.Name)
		}
		if c.Invocations <= 0 {
			t.Errorf("codelet %q has no invocation count", c.Name)
		}
	}
}

func TestIllBehavedShare(t *testing.T) {
	_, codelets := Codelets()
	flagged := 0
	for _, c := range codelets {
		if c.DatasetVariation > 0 || c.ContextSensitive {
			flagged++
		}
	}
	// Akel et al.: 19% of the NAS codelets are ill-behaved. 13/67.
	if flagged < 11 || flagged > 15 {
		t.Errorf("%d/67 codelets flagged ill-behaved, want ~13 (19%%)", flagged)
	}
}

func TestMGEntirelyIllBehaved(t *testing.T) {
	// Figure 8: per-application subsetting cannot predict MG because
	// its codelets are ill-behaved (the V-cycle changes the dataset at
	// every invocation).
	for _, p := range Suite() {
		if p.Name != "mg" {
			continue
		}
		for _, c := range p.Codelets {
			if c.DatasetVariation == 0 {
				t.Errorf("MG codelet %q lacks dataset variation", c.Name)
			}
		}
	}
}

func TestClusterAandBPairsExist(t *testing.T) {
	_, codelets := Codelets()
	bySrc := map[string]bool{}
	for _, c := range codelets {
		bySrc[c.SourceRef] = true
	}
	// §4.4 "Capturing architecture change" names these four codelets.
	for _, src := range []string{"LU/erhs.f:49-57", "FT/appft.f:45-47", "BT/rhs.f:266-311", "SP/rhs.f:275-320"} {
		if !bySrc[src] {
			t.Errorf("missing paper-cited codelet %s", src)
		}
	}
}

func TestCGDominatedByMatvec(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	ref := arch.Reference()
	var total, matvec float64
	for _, p := range Suite() {
		if p.Name != "cg" {
			continue
		}
		for _, c := range p.Codelets {
			m, err := sim.Measure(p, c, sim.Options{Machine: ref, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				t.Fatal(err)
			}
			share := float64(c.Invocations) * m.Seconds
			total += share
			if c.Name == "cg_matvec" {
				matvec = share
			}
		}
	}
	if frac := matvec / total; frac < 0.85 {
		t.Errorf("cg_matvec is %.0f%% of CG, want ~95%%", frac*100)
	}
}

// TestCGCacheStateAnomaly reproduces the paper's CG finding: the
// dominant codelet passes the 10% screening on the reference but its
// standalone microbenchmark is much faster than the in-application
// codelet on Atom, with fewer cache misses.
func TestCGCacheStateAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	var idx = -1
	for i, c := range codelets {
		if c.Name == "cg_matvec" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("cg_matvec not found")
	}
	p, c := progs[idx], codelets[idx]

	measure := func(m *arch.Machine, mode sim.Mode) *sim.Measurement {
		r, err := sim.Measure(p, c, sim.Options{Machine: m, Mode: mode, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	refIn := measure(arch.Reference(), sim.ModeInApp)
	refSa := measure(arch.Reference(), sim.ModeStandalone)
	if extract.IllBehaved(refSa.Seconds, refIn.Seconds) {
		t.Fatalf("cg_matvec flagged ill-behaved on reference (sa/in = %.3f); it must pass the screening",
			refSa.Seconds/refIn.Seconds)
	}
	atomIn := measure(arch.Atom(), sim.ModeInApp)
	atomSa := measure(arch.Atom(), sim.ModeStandalone)
	ratio := atomSa.Seconds / atomIn.Seconds
	if ratio > 0.88 {
		t.Errorf("standalone/in-app on Atom = %.3f; want a pronounced gap (paper: microbenchmark much faster)", ratio)
	}
	inMiss := atomIn.Counters.MemAccesses
	saMiss := atomSa.Counters.MemAccesses
	if saMiss*3/2 >= inMiss {
		t.Errorf("standalone misses %d not well below in-app %d (paper: 1.6x fewer)", saMiss, inMiss)
	}
}

// TestReferenceScreening runs the §3.4 screening over the whole NAS
// suite on the reference architecture and checks that (a) roughly the
// flagged 19% fail it, (b) no unflagged codelet fails it, and (c)
// every codelet is long enough to measure.
func TestReferenceScreening(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-heavy")
	}
	progs, codelets := Codelets()
	ref := arch.Reference()
	type result struct {
		ill   bool
		short bool
		err   error
	}
	results := make([]result, len(codelets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range codelets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p, c := progs[i], codelets[i]
			inApp, err := sim.Measure(p, c, sim.Options{Machine: ref, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				results[i].err = err
				return
			}
			sa, err := sim.Measure(p, c, sim.Options{Machine: ref, Mode: sim.ModeStandalone, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
			if err != nil {
				results[i].err = err
				return
			}
			results[i].ill = extract.IllBehaved(sa.Seconds, inApp.Seconds)
			results[i].short = inApp.Counters.Cycles < 25000
		}(i)
	}
	wg.Wait()

	detected := 0
	for i, r := range results {
		c := codelets[i]
		if r.err != nil {
			t.Errorf("%s: %v", c.Name, r.err)
			continue
		}
		flagged := c.DatasetVariation > 0 || c.ContextSensitive
		if r.ill {
			detected++
			if !flagged {
				t.Errorf("%s fails screening but is not a designed ill-behaved codelet", c.Name)
			}
		} else if flagged {
			t.Errorf("%s is flagged ill-behaved but passes the screening", c.Name)
		}
		if r.short {
			t.Errorf("%s too short to measure accurately", c.Name)
		}
	}
	if detected < 11 || detected > 15 {
		t.Errorf("screening detected %d ill-behaved codelets, want ~13 (19%%)", detected)
	}
}

package corpus

import (
	"fmt"
	"strings"

	"fgbs/internal/ir"
)

// SuiteSpec is one registered synthetic suite: a name plus the seed and
// shape that fully determine its contents. Specs are static package
// data; BuildSuite materializes them on demand, byte-identically every
// time.
type SuiteSpec struct {
	Name string
	Doc  string
	Seed uint64
	// Codelets standalone single-codelet programs, cycling round-robin
	// through every family in sorted order.
	Codelets int
	// Apps composed applications of PerApp codelets each, appended
	// after the standalone programs.
	Apps, PerApp int
	// FootprintCap, when > 0, clamps every footprint axis to at most
	// this many elements — how smoke-sized suites stay fast under the
	// race detector without changing any codelet's draw stream.
	FootprintCap int64
}

// Size returns the suite's total codelet count.
func (s SuiteSpec) Size() int { return s.Codelets + s.Apps*s.PerApp }

// suiteSpecs is the registry, in listing order. Seeds are arbitrary but
// frozen: changing one regenerates a different suite, which downstream
// stage keys will correctly treat as new input.
var suiteSpecs = []SuiteSpec{
	{
		Name: "syn-smoke", Seed: 7, Codelets: 14, Apps: 2, PerApp: 5, FootprintCap: 8192,
		Doc: "24 capped-footprint codelets (14 standalone + 2 apps); the CI corpus gate",
	},
	{
		Name: "syn-mix-240", Seed: 20140215, Codelets: 240,
		Doc: "240 standalone codelets round-robin across all families",
	},
	{
		Name: "syn-apps-96", Seed: 1729, Apps: 12, PerApp: 8,
		Doc: "12 composed applications of 8 codelets over shared arrays",
	},
	{
		Name: "syn-mix-960", Seed: 97, Codelets: 960,
		Doc: "960 standalone codelets; the scaling stressor",
	},
}

// Suites returns the registered suite specs in listing order.
func Suites() []SuiteSpec {
	out := make([]SuiteSpec, len(suiteSpecs))
	copy(out, suiteSpecs)
	return out
}

// SuiteNames returns the registered synthetic suite names in listing
// order.
func SuiteNames() []string {
	names := make([]string, len(suiteSpecs))
	for i, s := range suiteSpecs {
		names[i] = s.Name
	}
	return names
}

// IsSuite reports whether name is a registered synthetic suite.
func IsSuite(name string) bool {
	for _, s := range suiteSpecs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// SuiteByName returns a suite spec; the error for an unknown name lists
// the valid ones.
func SuiteByName(name string) (SuiteSpec, error) {
	for _, s := range suiteSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return SuiteSpec{}, fmt.Errorf("corpus: unknown synthetic suite %q (valid: %s)",
		name, strings.Join(SuiteNames(), ", "))
}

// BuildSuite materializes a registered suite with default parallelism.
func BuildSuite(name string) ([]*ir.Program, error) {
	return BuildSuiteWorkers(name, 0)
}

// BuildSuiteWorkers materializes a registered suite across the given
// worker count (0 = GOMAXPROCS). The result is byte-identical at every
// worker count: standalone programs first, composed applications after.
func BuildSuiteWorkers(name string, workers int) ([]*ir.Program, error) {
	spec, err := SuiteByName(name)
	if err != nil {
		return nil, err
	}
	progs, err := mixedCapped(spec.Seed, spec.Codelets, workers, spec.FootprintCap)
	if err != nil {
		return nil, err
	}
	if spec.Apps > 0 {
		apps, err := composeApps(spec.Seed, spec.Apps, spec.PerApp, workers, spec.FootprintCap)
		if err != nil {
			return nil, err
		}
		progs = append(progs, apps...)
	}
	return progs, nil
}

package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	// Touch a so b becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction, want LRU drop")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted although recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Errorf("Get(a) = %q, want new", v)
	}
}

func TestResultCacheStats(t *testing.T) {
	c := newResultCache(4)
	c.Put("a", []byte("1"))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	hits, misses, size := c.Stats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Errorf("Stats = %d/%d/%d, want 2/1/1", hits, misses, size)
	}
}

// TestResultCacheConcurrent hammers the cache from many goroutines;
// meaningful only under -race, where any unsynchronized access fails.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if i%3 == 0 {
					c.Put(key, []byte(key))
				} else if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("Get(%s) = %q", key, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestResultKeyDistinguishesQueries(t *testing.T) {
	base := resultKey("select", "nas", "1010", 4, "*", 1)
	for _, other := range []string{
		resultKey("subset", "nas", "1010", 4, "*", 1),
		resultKey("select", "nr", "1010", 4, "*", 1),
		resultKey("select", "nas", "1110", 4, "*", 1),
		resultKey("select", "nas", "1010", 5, "*", 1),
		resultKey("select", "nas", "1010", 4, "Atom", 1),
		resultKey("select", "nas", "1010", 4, "*", 2),
	} {
		if other == base {
			t.Errorf("key collision: %s", other)
		}
	}
}

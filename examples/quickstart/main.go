// Quickstart: reduce the Numerical Recipes suite to a handful of
// representative microbenchmarks and predict every codelet's time on
// Atom from them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fgbs"
)

func main() {
	// Step A+B: profile all 28 NR codelets on the reference machine
	// (Nehalem) and collect the measurements the evaluation needs.
	prof, err := fgbs.NewProfile(fgbs.NRSuite(), fgbs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d codelets on %s\n", prof.N(), prof.Ref.Name)

	// Step C+D: cluster with Ward's criterion, let the elbow rule pick
	// K, and select one well-behaved representative per cluster.
	sub, err := prof.Subset(fgbs.DefaultFeatures(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced to %d representatives (elbow-selected)\n", sub.K())

	// Step E: measure only the representatives on Atom and predict
	// everything else.
	atom, err := prof.TargetIndex("Atom")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := prof.Evaluate(sub, atom)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprediction on %s: median error %.1f%%, average %.1f%%\n\n",
		ev.Target.Name, ev.Summary.Median*100, ev.Summary.Average*100)
	fmt.Println("codelet        real(ms)  predicted(ms)  error")
	for i, c := range prof.Codelets {
		if i >= 8 {
			fmt.Printf("... and %d more\n", prof.N()-8)
			break
		}
		fmt.Printf("%-14s %8.3f  %12.3f  %5.1f%%\n",
			c.Name, ev.Actual[i]*1e3, ev.Predicted[i]*1e3, ev.Errors[i]*100)
	}
}

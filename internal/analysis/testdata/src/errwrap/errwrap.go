// Corpus for the errwrap check: fmt.Errorf formatting an error without
// %w flattens the chain and is a finding.
package errwrap

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("boom")

func bad() error {
	return fmt.Errorf("load failed: %v", errSentinel) // want "fmt.Errorf formats an error without %w"
}

func badString(path string, err error) error {
	return fmt.Errorf("read %s: %s", path, err) // want "fmt.Errorf formats an error without %w"
}

func good() error {
	return fmt.Errorf("load failed: %w", errSentinel)
}

func goodMixed(path string, err error) error {
	return fmt.Errorf("read %s: %w", path, err)
}

func noError(path string) error {
	return fmt.Errorf("read %s: corrupt header", path)
}

// flattenedText passes the message, not the error: the chain was
// already cut deliberately and visibly at the call site.
func flattenedText(err error) error {
	return fmt.Errorf("wrapped: %s", err.Error())
}

func suppressed(err error) error {
	//fgbs:allow errwrap corpus: public API promises an opaque error string
	return fmt.Errorf("internal failure: %v", err)
}

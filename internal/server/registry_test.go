package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
)

func newTestRegistry(dir string) *registry {
	return newRegistry(Config{Seed: 1, ProfileDir: dir, Programs: testPrograms}, newBreakerSet(0, 0, nil))
}

func TestRegistryPersistsProfiles(t *testing.T) {
	dir := t.TempDir()
	r := newTestRegistry(dir)
	defer r.Close()
	prof, _, err := r.Profile(context.Background(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Profiles persist under the key-qualified name; the bare legacy
	// name is read-only and never written.
	keyed, err := filepath.Glob(filepath.Join(dir, "tiny-*.json"))
	if err != nil || len(keyed) != 1 {
		t.Fatalf("keyed profile files = %v (err %v), want exactly one", keyed, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tiny.json")); !os.IsNotExist(err) {
		t.Fatalf("bare legacy filename was written (stat err %v)", err)
	}

	// A second registry over the same directory loads instead of
	// rebuilding, and the loaded profile matches.
	r2 := newTestRegistry(dir)
	defer r2.Close()
	prof2, _, err := r2.Profile(context.Background(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if r2.diskLoads.Load() != 1 {
		t.Errorf("diskLoads = %d, want 1", r2.diskLoads.Load())
	}
	if prof2.N() != prof.N() {
		t.Errorf("loaded profile has %d codelets, want %d", prof2.N(), prof.N())
	}
	for i := 0; i < prof.N(); i++ {
		if prof2.RefInApp[i] != prof.RefInApp[i] {
			t.Fatalf("loaded profile differs at codelet %d", i)
		}
	}
}

// TestRegistryAdoptsLegacyBareProfile pins backward compatibility: a
// bare <suite>.json written by a pre-stage registry is still loaded
// (read-only) by a measurer-free build.
func TestRegistryAdoptsLegacyBareProfile(t *testing.T) {
	dir := t.TempDir()
	progs, err := testPrograms("tiny")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := pipeline.NewProfile(progs, pipeline.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.SaveJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := newTestRegistry(dir)
	defer r.Close()
	loaded, _, err := r.Profile(context.Background(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if r.diskLoads.Load() != 1 {
		t.Errorf("diskLoads = %d, want the legacy file adopted", r.diskLoads.Load())
	}
	if loaded.N() != prof.N() {
		t.Errorf("adopted profile has %d codelets, want %d", loaded.N(), prof.N())
	}
}

func TestRegistryRebuildsOnCorruptCache(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tiny.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := newTestRegistry(dir)
	defer r.Close()
	prof, _, err := r.Profile(context.Background(), "tiny")
	if err != nil {
		t.Fatalf("corrupt cache should trigger a rebuild, got %v", err)
	}
	if prof.N() == 0 || r.diskLoads.Load() != 0 {
		t.Errorf("N = %d, diskLoads = %d", prof.N(), r.diskLoads.Load())
	}
}

func TestRegistryRetriesAfterError(t *testing.T) {
	calls := 0
	r := newRegistry(Config{Seed: 1, Programs: func(name string) ([]*ir.Program, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return testPrograms("tiny")
	}}, newBreakerSet(0, 0, nil))
	defer r.Close()
	if _, _, err := r.Profile(context.Background(), "tiny"); err == nil {
		t.Fatal("first call should fail")
	}
	// The failed entry must not wedge the suite: the next request
	// retries and succeeds.
	prof, _, err := r.Profile(context.Background(), "tiny")
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if prof == nil || calls != 2 {
		t.Errorf("prof=%v calls=%d", prof, calls)
	}
	if r.builds.Load() != 2 {
		t.Errorf("builds = %d, want 2", r.builds.Load())
	}
}

func TestRegistryWaiterHonorsContext(t *testing.T) {
	block := make(chan struct{})
	r := newRegistry(Config{Seed: 1, Programs: func(name string) ([]*ir.Program, error) {
		<-block
		return testPrograms("tiny")
	}}, newBreakerSet(0, 0, nil))
	defer r.Close()
	defer close(block)

	// Kick off the build with a background waiter.
	go r.Profile(context.Background(), "tiny")

	// A waiter with an expired context gives up without killing the
	// build for everyone else.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Profile(ctx, "tiny"); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRegistryLoaded(t *testing.T) {
	r := newTestRegistry("")
	defer r.Close()
	if got := r.Loaded(); len(got) != 0 {
		t.Fatalf("fresh registry reports %d loaded suites", len(got))
	}
	if _, _, err := r.Profile(context.Background(), "tiny"); err != nil {
		t.Fatal(err)
	}
	got := r.Loaded()
	if len(got) != 1 || got["tiny"] == nil {
		t.Errorf("Loaded = %v, want tiny", got)
	}
}

package main

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"strings"

	"fgbs/internal/bench"
)

// cmdBench runs the internal/bench spec registry and reports or gates.
// The order of operations makes a CI invocation atomic: measure, then
// persist (-out), then compare (-compare) — so a failing gate still
// leaves the fresh numbers on disk for inspection.
func cmdBench(ctx context.Context, cfg config) error {
	specs, err := bench.Match(cfg.benchSpec)
	if err != nil {
		return err
	}
	r := bench.NewRunner(bench.Config{
		Reps:   cfg.benchReps,
		Warmup: cfg.benchWarmup,
		Quick:  cfg.benchQuick,
	})
	run, err := r.Run(ctx, specs)
	if err != nil {
		return err
	}
	if cfg.benchOut != "" {
		if err := writeRunJSON(cfg.benchOut, run); err != nil {
			return err
		}
	}
	if cfg.benchCompare != "" {
		return compareRun(cfg, run)
	}
	format := bench.Human
	if cfg.benchJSON {
		format = bench.JSON
	}
	return format(os.Stdout, run)
}

func writeRunJSON(path string, run *bench.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.JSON(f, run); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareRun gates the fresh run against the committed baseline. When
// -spec narrowed the run, the baseline is narrowed by the same pattern
// first — otherwise every unselected spec would read as "missing from
// this run".
func compareRun(cfg config, run *bench.Run) error {
	base, err := bench.LoadBaseline(cfg.benchCompare)
	if err != nil {
		return err
	}
	if cfg.benchSpec != "" {
		re, err := regexp.Compile(cfg.benchSpec)
		if err != nil {
			return fmt.Errorf("bad -spec pattern %q: %w", cfg.benchSpec, err)
		}
		kept := base.Results[:0]
		for _, res := range base.Results {
			if re.MatchString(res.Name) {
				kept = append(kept, res)
			}
		}
		base.Results = kept
	}
	deltas := bench.Compare(base, run, cfg.tolerance)
	if err := bench.WriteComparison(os.Stdout, deltas, cfg.tolerance); err != nil {
		return err
	}
	if msgs := bench.Regressions(deltas); len(msgs) > 0 {
		return fmt.Errorf("bench: %d regression(s) beyond %.0f%% vs %s:\n  %s",
			len(msgs), cfg.tolerance, cfg.benchCompare, strings.Join(msgs, "\n  "))
	}
	return nil
}

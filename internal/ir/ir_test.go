package ir

import (
	"strings"
	"testing"
)

// buildDotProduct returns a program with a dot-product codelet:
//
//	for i in [0, n): acc = acc + x[i]*y[i]
func buildDotProduct(t *testing.T) (*Program, *Codelet) {
	t.Helper()
	p := NewProgram("test")
	p.SetParam("n", 1000)
	p.AddArray("x", F64, AV("n"))
	p.AddArray("y", F64, AV("n"))
	p.AddScalar("acc", F64)
	c := &Codelet{
		Name:        "dot",
		Invocations: 10,
		Loop: &Loop{
			Var: "i", Lower: AC(0), Upper: AV("n"),
			Body: []Stmt{
				&Assign{
					LHS: p.Ref("acc"),
					RHS: Add(p.LoadE("acc"), Mul(p.LoadE("x", V("i")), p.LoadE("y", V("i")))),
				},
			},
		},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatalf("AddCodelet: %v", err)
	}
	return p, c
}

func TestDTypeSizes(t *testing.T) {
	if I64.Size() != 8 || F32.Size() != 4 || F64.Size() != 8 {
		t.Error("unexpected dtype sizes")
	}
	if I64.IsFloat() || !F32.IsFloat() || !F64.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
}

func TestAffineAlgebra(t *testing.T) {
	a := AV("i").ScaleK(2).PlusK(3) // 2i+3
	b := AV("i").Plus(AV("n"))      // i+n
	sum := a.Plus(b)                // 3i+n+3
	env := map[string]int64{"i": 5, "n": 100}
	if got := sum.Eval(env); got != 3*5+100+3 {
		t.Errorf("Eval = %d", got)
	}
	if sum.Coeff("i") != 3 || sum.Coeff("n") != 1 || sum.Coeff("zz") != 0 {
		t.Error("Coeff wrong")
	}
	if !a.Minus(a).IsConst() || a.Minus(a).K != 0 {
		t.Error("a-a should be the zero constant")
	}
	if !AC(4).Equal(AC(2).PlusK(2)) {
		t.Error("Equal on constants")
	}
	if AV("i").Equal(AV("j")) {
		t.Error("distinct vars compare equal")
	}
}

func TestAffineString(t *testing.T) {
	s := AV("i").ScaleK(2).Plus(AV("n")).PlusK(-1).String()
	for _, want := range []string{"2*i", "n", "-1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if AC(0).String() != "0" {
		t.Errorf("zero renders as %q", AC(0).String())
	}
}

func TestAffineEvalPanicsOnUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unbound var")
		}
	}()
	AV("ghost").Eval(map[string]int64{})
}

func TestExprAffine(t *testing.T) {
	// 2*i + j - 3 is affine.
	e := Sub(Add(Mul(CI(2), V("i")), V("j")), CI(3))
	aff, ok := ExprAffine(e)
	if !ok {
		t.Fatal("expected affine")
	}
	if aff.Coeff("i") != 2 || aff.Coeff("j") != 1 || aff.K != -3 {
		t.Errorf("got %v", aff)
	}
	// i*j is not affine.
	if _, ok := ExprAffine(Mul(V("i"), V("j"))); ok {
		t.Error("i*j classified affine")
	}
}

func TestExprAffineIndirect(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("idx", I64, AV("n"))
	if _, ok := ExprAffine(p.LoadE("idx", V("i"))); ok {
		t.Error("load classified affine")
	}
}

func TestTypedConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixing f64 and i64 should panic")
		}
	}()
	Add(CF(1), CI(1))
}

func TestIntegerOpsRejectFloats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mod on floats should panic")
		}
	}()
	Mod(CF(1), CF(2))
}

func TestValidateCatchesUnboundVar(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("a", F64, AV("n"))
	c := &Codelet{
		Name:        "bad",
		Invocations: 1,
		Loop: &Loop{
			Var: "i", Lower: AC(0), Upper: AV("n"),
			Body: []Stmt{
				&Assign{LHS: p.Ref("a", V("j")), RHS: CF(0)}, // j unbound
			},
		},
	}
	if err := p.AddCodelet(c); err == nil {
		t.Fatal("expected validation error for unbound index var")
	}
}

func TestValidateCatchesTypeMismatch(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("a", F32, AV("n"))
	c := &Codelet{
		Name:        "bad",
		Invocations: 1,
		Loop: &Loop{
			Var: "i", Lower: AC(0), Upper: AV("n"),
			Body: []Stmt{
				&Assign{LHS: p.Ref("a", V("i")), RHS: CF(0)}, // f64 into f32
			},
		},
	}
	if err := p.AddCodelet(c); err == nil {
		t.Fatal("expected type mismatch error")
	}
}

func TestValidateCatchesShadowedLoopVar(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("a", F64, AV("n"))
	c := &Codelet{
		Name:        "bad",
		Invocations: 1,
		Loop: &Loop{
			Var: "i", Lower: AC(0), Upper: AV("n"),
			Body: []Stmt{
				&Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
					&Assign{LHS: p.Ref("a", V("i")), RHS: CF(0)},
				}},
			},
		},
	}
	if err := p.AddCodelet(c); err == nil {
		t.Fatal("expected shadowing error")
	}
}

func TestRefArityPanics(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("a", F64, AV("n"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected arity panic")
		}
	}()
	p.Ref("a", V("i"), V("j"))
}

func TestDuplicateArrayPanics(t *testing.T) {
	p := NewProgram("t")
	p.AddScalar("s", F64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate panic")
		}
	}()
	p.AddScalar("s", F64)
}

func TestStrides(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("v", F64, AV("n"))
	p.AddArray("m", F64, AV("n"), AV("n"))
	p.AddArray("idx", I64, AV("n"))

	cases := []struct {
		ref  *Ref
		kind StrideKind
		el   int64
	}{
		{p.Ref("v", V("i")), StrideAffine, 1},
		{p.Ref("v", Sub(V("n"), V("i"))), StrideAffine, -1},
		{p.Ref("v", Mul(CI(2), V("i"))), StrideAffine, 2},
		{p.Ref("v", V("j")), StrideConst, 0},
		{p.Ref("m", V("i"), V("j")), StrideAffine, 100}, // row walk: stride = LDA
		{p.Ref("m", V("j"), V("i")), StrideAffine, 1},
		{p.Ref("v", p.LoadE("idx", V("i"))), StrideIndirect, 0},
	}
	for k, c := range cases {
		s := p.RefStride(c.ref, "i")
		if s.Kind != c.kind {
			t.Errorf("case %d: kind = %v, want %v", k, s.Kind, c.kind)
		}
		if c.kind == StrideAffine && s.Elems != c.el {
			t.Errorf("case %d: stride = %d, want %d", k, s.Elems, c.el)
		}
	}
}

func TestStrideBytesUsesElementSize(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("s", F32, AV("n"))
	if got := p.RefStride(p.Ref("s", V("i")), "i").Bytes; got != 4 {
		t.Errorf("f32 stride bytes = %d, want 4", got)
	}
}

func TestClassifyDepReduction(t *testing.T) {
	p, c := buildDotProduct(t)
	a := c.Loop.Body[0].(*Assign)
	if got := p.ClassifyDep(a, "i"); got != DepReduction {
		t.Errorf("dot product classified %v, want reduction", got)
	}
}

func TestClassifyDepRecurrence(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("a", F64, AV("n"))
	// a[i] = a[i-1] * 2  (first-order recurrence, tridag pattern)
	st := &Assign{
		LHS: p.Ref("a", V("i")),
		RHS: Mul(p.LoadE("a", Sub(V("i"), CI(1))), CF(2)),
	}
	if got := p.ClassifyDep(st, "i"); got != DepRecurrence {
		t.Errorf("recurrence classified %v", got)
	}
}

func TestClassifyDepNone(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("a", F64, AV("n"))
	p.AddArray("b", F64, AV("n"))
	// a[i] = b[i] + 1: independent.
	st := &Assign{LHS: p.Ref("a", V("i")), RHS: Add(p.LoadE("b", V("i")), CF(1))}
	if got := p.ClassifyDep(st, "i"); got != DepNone {
		t.Errorf("independent stmt classified %v", got)
	}
	// a[i] = a[i] * 2: same-location update, still vectorizable.
	st2 := &Assign{LHS: p.Ref("a", V("i")), RHS: Mul(p.LoadE("a", V("i")), CF(2))}
	if got := p.ClassifyDep(st2, "i"); got != DepNone {
		t.Errorf("in-place update classified %v", got)
	}
}

func TestClassifyDepIndirectStore(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	p.AddArray("hist", I64, AC(256))
	p.AddArray("key", I64, AV("n"))
	// hist[key[i]] = hist[key[i]] + 1: scatter with possible collisions.
	ix := p.LoadE("key", V("i"))
	st := &Assign{
		LHS: p.Ref("hist", ix),
		RHS: Add(p.LoadE("hist", p.LoadE("key", V("i"))), CI(1)),
	}
	if got := p.ClassifyDep(st, "i"); got != DepRecurrence {
		t.Errorf("scatter-update classified %v, want recurrence", got)
	}
}

func TestInnermostLoops(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 10)
	p.AddArray("m", F64, AV("n"), AV("n"))
	c := &Codelet{
		Name:        "nest",
		Invocations: 1,
		Loop: &Loop{
			Var: "i", Lower: AC(0), Upper: AV("n"),
			Body: []Stmt{
				&Loop{Var: "j", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
					&Assign{LHS: p.Ref("m", V("i"), V("j")), RHS: CF(1)},
				}},
			},
		},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	inner := c.InnermostLoops()
	if len(inner) != 1 {
		t.Fatalf("got %d innermost loops", len(inner))
	}
	if inner[0].Loop.Var != "j" {
		t.Errorf("innermost var = %q", inner[0].Loop.Var)
	}
	if len(inner[0].Outer) != 1 || inner[0].Outer[0] != "i" {
		t.Errorf("outer vars = %v", inner[0].Outer)
	}
	all := inner[0].AllVars()
	if len(all) != 2 || all[0] != "i" || all[1] != "j" {
		t.Errorf("AllVars = %v", all)
	}
}

func TestTripCount(t *testing.T) {
	l := &Loop{Var: "i", Lower: AC(2), Upper: AV("n")}
	if got := l.TripCount(map[string]int64{"n": 10}); got != 8 {
		t.Errorf("trip = %d", got)
	}
	if got := l.TripCount(map[string]int64{"n": 1}); got != 0 {
		t.Errorf("negative trip clamped to %d, want 0", got)
	}
}

func TestCountOps(t *testing.T) {
	p, c := buildDotProduct(t)
	_ = p
	a := c.Loop.Body[0].(*Assign)
	oc := CountAssign(a)
	if oc.FAdd != 1 || oc.FMul != 1 {
		t.Errorf("FAdd/FMul = %d/%d, want 1/1", oc.FAdd, oc.FMul)
	}
	if oc.Loads != 3 || oc.Stores != 1 {
		t.Errorf("Loads/Stores = %d/%d, want 3/1", oc.Loads, oc.Stores)
	}
	if oc.FDiv != 0 || oc.FSpecial != 0 {
		t.Error("unexpected div/special ops")
	}
}

func TestCountOpsSpecialAndPrecision(t *testing.T) {
	e := Sqrt(Div(CF32(1), CF32(2)))
	oc := CountOps(e)
	if oc.FDiv != 1 || oc.FSqrt != 1 {
		t.Errorf("div/sqrt = %d/%d", oc.FDiv, oc.FSqrt)
	}
	if oc.F32Ops != 2 {
		t.Errorf("F32Ops = %d, want 2", oc.F32Ops)
	}
}

func TestStrideSetRendering(t *testing.T) {
	p, c := buildDotProduct(t)
	inner := c.InnermostLoops()[0]
	set := p.StrideSet(inner)
	// dot product: accumulator (0) and two unit-stride loads (1).
	want := map[string]bool{"0": true, "1": true}
	if len(set) != 2 || !want[set[0]] || !want[set[1]] {
		t.Errorf("StrideSet = %v", set)
	}
}

func TestAccessSummary(t *testing.T) {
	p, c := buildDotProduct(t)
	sum := p.Accesses(c.InnermostLoops()[0])
	if len(sum.Loads) != 3 {
		t.Errorf("loads = %d, want 3", len(sum.Loads))
	}
	if len(sum.Stores) != 1 {
		t.Errorf("stores = %d, want 1", len(sum.Stores))
	}
}

func TestArrayFootprint(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 100)
	a := p.AddArray("m", F64, AV("n"), AC(50))
	if got := a.Elems(p.Params); got != 5000 {
		t.Errorf("Elems = %d", got)
	}
	if got := a.Bytes(p.Params); got != 40000 {
		t.Errorf("Bytes = %d", got)
	}
}

func TestDuplicateCodeletRejected(t *testing.T) {
	p, _ := buildDotProduct(t)
	c2 := &Codelet{Name: "dot", Invocations: 1, Loop: p.Codelets[0].Loop}
	p.Codelets = append(p.Codelets, c2)
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate codelet name accepted")
	}
}

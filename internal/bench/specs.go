package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"fgbs/internal/analysis"
	"fgbs/internal/arch"
	"fgbs/internal/cache"
	"fgbs/internal/cluster"
	"fgbs/internal/corpus"
	"fgbs/internal/fault"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
	"fgbs/internal/rng"
	"fgbs/internal/sim"
	"fgbs/internal/stage"
	"fgbs/internal/stats"
)

// The default spec registry: one spec per hot path the pipeline's
// scaling story leans on. Workload sizes are fixed (quick mode trims
// repetitions, never work), so medians stay comparable between a quick
// CI run and a full baseline.

// sink defeats any future cleverness about discarding results; specs
// fold their outputs into it so the timed work is observably used.
var sink atomic.Uint64

// benchSuite builds the synthetic two-application suite the pipeline
// specs profile: eight codelets with heterogeneous behavior (stream,
// divide, recurrence, gather) over arrays that stream past the modeled
// caches — structured enough to cluster, small enough to profile in
// well under a second.
func benchSuite() []*ir.Program {
	mk := func(appName string) *ir.Program {
		p := ir.NewProgram(appName)
		p.SetParam("n", 30000)
		p.UncoveredFraction = 0.05
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"))
		p.AddArray("c", ir.F64, ir.AV("n"))
		idx := p.AddArray("idx", ir.I64, ir.AV("n"))
		idx.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("n")}
		p.AddScalar("s", ir.F64)

		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_copy", Invocations: 50,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_div", Invocations: 30,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Div(p.LoadE("b", ir.V("i")), ir.Add(p.LoadE("c", ir.V("i")), ir.CF(1.5)))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_rec", Invocations: 20,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("a", ir.V("i")),
					RHS: ir.Add(ir.Mul(p.LoadE("a", ir.Sub(ir.V("i"), ir.CI(1))), ir.CF(0.5)), p.LoadE("b", ir.V("i")))},
			}},
		})
		p.MustAddCodelet(&ir.Codelet{
			Name: appName + "_gather", Invocations: 25,
			Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("s"),
					RHS: ir.Add(p.LoadE("s"), p.LoadE("c", p.LoadE("idx", ir.V("i"))))},
			}},
		})
		return p
	}
	return []*ir.Program{mk("bench1"), mk("bench2")}
}

// benchMask is the feature mask the pipeline specs cluster under.
var benchMask = features.DefaultMask()

// countingMeasurer wraps the clean simulator and counts invocations;
// the warm-sweep spec asserts the count stays flat while stages hit.
type countingMeasurer struct {
	n atomic.Int64
}

func (m *countingMeasurer) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	m.n.Add(1)
	return fault.Sim{}.Measure(ctx, p, c, opts)
}

func init() {
	Register(Spec{
		Name: "cache/hierarchy-stream",
		Doc:  "set-associative LRU hierarchy: sequential stream + random writes through every level",
		Setup: func(ctx context.Context) (*Instance, error) {
			h, err := cache.NewHierarchy(arch.Reference())
			if err != nil {
				return nil, err
			}
			const span = int64(1) << 22 // 4 MiB: past L1/L2, within reach of the LLC
			r := rng.New(42)
			writes := make([]int64, 1<<15)
			for i := range writes {
				writes[i] = r.Int63n(span)
			}
			line := h.LineBytes()
			op := func() error {
				level := 0
				for addr := int64(0); addr < span; addr += line {
					level += h.Access(addr, false)
				}
				for _, addr := range writes {
					level += h.Access(addr, true)
				}
				sink.Add(uint64(level))
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "sim/bottleneck",
		Doc:  "bottleneck cost model: one compute-bound and one latency-bound codelet, in-app mode",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			p := progs[0]
			ds, err := sim.BuildDataset(p, 1)
			if err != nil {
				return nil, err
			}
			div, gather := p.Codelets[1], p.Codelets[3]
			opts := sim.Options{Machine: arch.Reference(), Mode: sim.ModeInApp, Seed: 1, Dataset: ds}
			op := func() error {
				for _, c := range []*ir.Codelet{div, gather} {
					m, err := sim.Measure(p, c, opts)
					if err != nil {
						return err
					}
					sink.Add(uint64(m.Counters.MemAccesses))
				}
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "cluster/ward-distance",
		Doc:  "Ward dendrogram build, dominated by the pairwise distance matrix",
		Setup: func(ctx context.Context) (*Instance, error) {
			const n, dim = 96, 16
			r := rng.New(7)
			points := make([][]float64, n)
			for i := range points {
				points[i] = make([]float64, dim)
				for j := range points[i] {
					points[i][j] = r.NormFloat64()
				}
			}
			op := func() error {
				d, err := cluster.Build(points, cluster.Ward)
				if err != nil {
					return err
				}
				sink.Add(uint64(len(d.Merges)))
				return nil
			}
			verify := func() error {
				d, err := cluster.Build(points, cluster.Ward)
				if err != nil {
					return err
				}
				if len(d.Merges) != n-1 {
					return fmt.Errorf("dendrogram has %d merges, want %d", len(d.Merges), n-1)
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify}, nil
		},
	})

	Register(Spec{
		Name: "stage/key-hash",
		Doc:  "content-address derivation: 512 chained stage keys",
		Setup: func(ctx context.Context) (*Instance, error) {
			names := make([]string, 32)
			for i := range names {
				names[i] = fmt.Sprintf("codelet-%02d", i)
			}
			op := func() error {
				prev := stage.Key("seed")
				for i := 0; i < 512; i++ {
					prev = stage.NewKey("bench", 1).
						Str("suite").Strs(names).Int(i).Uint64(uint64(i) * 7).
						Float(0.25 * float64(i)).Bool(i%2 == 0).
						Upstream(prev).Key()
				}
				sink.Add(uint64(len(prev)))
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "stage/codec-roundtrip",
		Doc:  "profile artifact through the store's disk codec: encode to disk, decode back",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			prof, err := pipeline.NewProfileContext(ctx, progs, pipeline.Options{Seed: 1})
			if err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp("", "fgbs-bench-codec-*")
			if err != nil {
				return nil, err
			}
			store := stage.NewStore(8, dir)
			codec := profileArtifact{name: "bench-profile.json", progs: progs}
			key := stage.NewKey("bench-codec", 1).Str("profile").Key()
			path := filepath.Join(dir, codec.name)
			op := func() error {
				// Encode: a computed artifact persists through the codec.
				store.Delete(key)
				if err := os.RemoveAll(path); err != nil {
					return err
				}
				if _, _, err := store.Resolve(ctx, "bench-codec", key, codec, func(context.Context) (any, error) {
					return prof, nil
				}); err != nil {
					return err
				}
				// Decode: evicting the memory copy forces the disk read.
				store.Delete(key)
				v, out, err := store.Resolve(ctx, "bench-codec", key, codec, func(context.Context) (any, error) {
					return nil, fmt.Errorf("decode path must not recompute")
				})
				if err != nil {
					return err
				}
				if !out.Disk {
					return fmt.Errorf("second resolve not served from disk")
				}
				sink.Add(uint64(v.(*pipeline.Profile).N()))
				return nil
			}
			return &Instance{Op: op, Cleanup: func() { os.RemoveAll(dir) }}, nil
		},
	})

	Register(Spec{
		Name: "features/normalize",
		Doc:  "z-score normalization of a 256x76 feature matrix",
		Setup: func(ctx context.Context) (*Instance, error) {
			const rows = 256
			r := rng.New(11)
			src := make([][]float64, rows)
			scratch := make([][]float64, rows)
			for i := range src {
				src[i] = make([]float64, features.NumFeatures)
				scratch[i] = make([]float64, features.NumFeatures)
				for j := range src[i] {
					src[i][j] = r.NormFloat64() * float64(j+1)
				}
			}
			op := func() error {
				for i := range src {
					copy(scratch[i], src[i])
				}
				stats.Normalize(scratch)
				sink.Add(uint64(len(scratch)))
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "corpus/generate",
		Doc:  "synthetic suite generation: 96 mixed-family codelets from one seed",
		Setup: func(ctx context.Context) (*Instance, error) {
			op := func() error {
				progs, err := corpus.Mixed(42, 96, 0)
				if err != nil {
					return err
				}
				var n int
				for _, p := range progs {
					n += len(p.Codelets)
				}
				sink.Add(uint64(n))
				return nil
			}
			verify := func() error {
				progs, err := corpus.Mixed(42, 96, 1)
				if err != nil {
					return err
				}
				wide, err := corpus.Mixed(42, 96, 0)
				if err != nil {
					return err
				}
				if corpus.Dump(progs) != corpus.Dump(wide) {
					return fmt.Errorf("corpus/generate: serial and parallel dumps differ")
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify}, nil
		},
	})

	Register(Spec{
		Name: "stats/median-mad",
		Doc:  "robust summary primitives over 8192 samples: median, MAD, outlier rejection",
		Setup: func(ctx context.Context) (*Instance, error) {
			r := rng.New(23)
			xs := make([]float64, 8192)
			for i := range xs {
				xs[i] = r.NormFloat64()*5 + 100
			}
			op := func() error {
				med := stats.Median(xs)
				mad := stats.MAD(xs)
				keep := stats.MADKeep(xs, 3.5)
				sink.Add(uint64(len(keep)) + uint64(med+mad))
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "analysis/vet-tree",
		Doc:  "flow-sensitive fgbsvet analysis (all nine checks) over the repository's own packages, parallel workers",
		Setup: func(ctx context.Context) (*Instance, error) {
			workers := runtime.GOMAXPROCS(0)
			mod, err := analysis.LoadModuleParallel(".", workers)
			if err != nil {
				return nil, err
			}
			pkgs, err := mod.Select(nil)
			if err != nil {
				return nil, err
			}
			op := func() error {
				diags, err := analysis.Run(pkgs, analysis.Options{Workers: workers})
				if err != nil {
					return err
				}
				sink.Add(uint64(len(pkgs) + len(diags)))
				return nil
			}
			// Verify pins the two properties the parallel driver must
			// keep: the tree stays clean, and any worker count yields
			// exactly the serial run's diagnostics.
			verify := func() error {
				serial, err := analysis.Run(pkgs, analysis.Options{Workers: 1})
				if err != nil {
					return err
				}
				par, err := analysis.Run(pkgs, analysis.Options{Workers: workers})
				if err != nil {
					return err
				}
				if len(serial) != len(par) {
					return fmt.Errorf("parallel run found %d diagnostics, serial %d", len(par), len(serial))
				}
				for i := range serial {
					if serial[i].String() != par[i].String() {
						return fmt.Errorf("diagnostic %d diverged: serial %q, parallel %q", i, serial[i], par[i])
					}
				}
				if len(serial) != 0 {
					return fmt.Errorf("repository tree is not vet-clean: %d finding(s), first: %s", len(serial), serial[0])
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify}, nil
		},
	})

	Register(Spec{
		Name: "pipeline/ksweep-cold",
		Doc:  "cold K sweep: profile the synthetic suite and sweep K=2..6 through a fresh stage store",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			op := func() error {
				eng := pipeline.NewEngine(stage.NewStore(64, ""))
				st, _, err := eng.Profile(ctx, progs, pipeline.StageOptions{Options: pipeline.Options{Seed: 1}})
				if err != nil {
					return err
				}
				pts, err := st.SweepK(ctx, benchMask, 2, 6)
				if err != nil {
					return err
				}
				sink.Add(uint64(len(pts)))
				return nil
			}
			return &Instance{Op: op}, nil
		},
	})

	Register(Spec{
		Name: "pipeline/ksweep-warm",
		Doc:  "warm K sweep: same sweep against a filled store — and proof the store served it",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			meas := &countingMeasurer{}
			eng := pipeline.NewEngine(stage.NewStore(64, ""))
			opts := pipeline.StageOptions{
				Options:     pipeline.Options{Seed: 1, Measurer: meas},
				MeasurerKey: "bench-counting",
			}
			st, _, err := eng.Profile(ctx, progs, opts)
			if err != nil {
				return nil, err
			}
			if _, err := st.SweepK(ctx, benchMask, 2, 6); err != nil {
				return nil, err
			}
			coldInv := meas.n.Load()
			base := eng.Store().Stats()
			op := func() error {
				st, _, err := eng.Profile(ctx, progs, opts)
				if err != nil {
					return err
				}
				pts, err := st.SweepK(ctx, benchMask, 2, 6)
				if err != nil {
					return err
				}
				sink.Add(uint64(len(pts)))
				return nil
			}
			// The smoke contract formerly pinned by ci.sh's
			// BenchmarkSweepKWarm gate: a warm sweep must be served by
			// the store (hits grow past 1) without a single simulator
			// invocation beyond the cold fill.
			verify := func() error {
				if got := meas.n.Load(); got != coldInv {
					return fmt.Errorf("warm sweep ran %d simulator invocations beyond the cold fill's %d — stage cache not serving", got-coldInv, coldInv)
				}
				hits := eng.Store().Stats().Total.Hits - base.Total.Hits
				if hits <= 1 {
					return fmt.Errorf("warm sweep hit the stage cache %d times, want > 1", hits)
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify}, nil
		},
	})

	Register(Spec{
		Name: "stage/tier-promote",
		Doc:  "tiered byte plane: memory-evicted artifact re-read from the disk tier and promoted back into memory",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			prof, err := pipeline.NewProfileContext(ctx, progs, pipeline.Options{Seed: 1})
			if err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp("", "fgbs-bench-tier-*")
			if err != nil {
				return nil, err
			}
			tiers, err := stage.NewTierChain(
				[]string{stage.TierMemory, stage.TierDisk},
				stage.TierConfig{Dir: dir},
			)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			store := stage.NewTieredStore(8, tiers)
			codec := profileArtifact{name: "bench-tier.json", progs: progs}
			key := stage.NewKey("bench-tier", 1).Str("profile").Key()
			ref := stage.Ref{Key: key, Name: codec.Filename()}
			// Seed once; the timed path must never compute again.
			if _, _, err := store.Resolve(ctx, "bench-tier", key, codec, func(context.Context) (any, error) {
				return prof, nil
			}); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			op := func() error {
				// Evict the decoded value and the memory-tier bytes so the
				// resolve falls to disk and promotes the artifact back up.
				store.Delete(key)
				if err := tiers[0].Delete(ctx, ref); err != nil {
					return err
				}
				v, out, err := store.Resolve(ctx, "bench-tier", key, codec, func(context.Context) (any, error) {
					return nil, fmt.Errorf("tier-promote must not recompute")
				})
				if err != nil {
					return err
				}
				if out.Tier != stage.TierDisk {
					return fmt.Errorf("resolve served from tier %q, want %q", out.Tier, stage.TierDisk)
				}
				sink.Add(uint64(v.(*pipeline.Profile).N()))
				return nil
			}
			verify := func() error {
				st := store.Stats()
				mem, disk := st.Tiers[stage.TierMemory], st.Tiers[stage.TierDisk]
				if mem.Writes < 2 {
					return fmt.Errorf("memory tier writes = %d, want the seed plus promotions", mem.Writes)
				}
				if disk.Hits < 1 {
					return fmt.Errorf("disk tier hits = %d, want the evicted re-reads", disk.Hits)
				}
				if c := st.Stages["bench-tier"].Computes; c != 1 {
					return fmt.Errorf("computes = %d, want only the seed", c)
				}
				// The last promotion is live: with only the value evicted,
				// the memory tier serves.
				store.Delete(key)
				_, out, err := store.Resolve(ctx, "bench-tier", key, codec, func(context.Context) (any, error) {
					return nil, fmt.Errorf("tier-promote must not recompute")
				})
				if err != nil {
					return err
				}
				if out.Tier != stage.TierMemory {
					return fmt.Errorf("post-promotion resolve served from %q, want %q", out.Tier, stage.TierMemory)
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify, Cleanup: func() { os.RemoveAll(dir) }}, nil
		},
	})

	Register(Spec{
		Name: "stage/peer-fetch",
		Doc:  "peer tier fetch: profile artifact served over HTTP from a warm peer, frame-verified, never recomputed",
		Setup: func(ctx context.Context) (*Instance, error) {
			progs := benchSuite()
			prof, err := pipeline.NewProfileContext(ctx, progs, pipeline.Options{Seed: 1})
			if err != nil {
				return nil, err
			}
			codec := profileArtifact{name: "bench-peer.json", progs: progs}
			key := stage.NewKey("bench-peer", 1).Str("profile").Key()
			var buf bytes.Buffer
			if err := codec.Encode(&buf, prof); err != nil {
				return nil, err
			}
			framed := stage.Frame(buf.Bytes())
			// The warm peer: serves exactly the artifact, framed for the
			// wire the way /v1/artifacts/{key} is.
			peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == stage.ArtifactPathPrefix+key.String() {
					w.Write(framed)
					return
				}
				http.NotFound(w, r)
			}))
			tiers, err := stage.NewTierChain(
				[]string{stage.TierPeer},
				stage.TierConfig{Peers: []string{peer.URL}, Client: peer.Client()},
			)
			if err != nil {
				peer.Close()
				return nil, err
			}
			store := stage.NewTieredStore(8, tiers)
			op := func() error {
				// Evicting the value forces the full fetch-verify-decode
				// round trip every repetition.
				store.Delete(key)
				v, out, err := store.Resolve(ctx, "bench-peer", key, codec, func(context.Context) (any, error) {
					return nil, fmt.Errorf("peer-fetch must not recompute")
				})
				if err != nil {
					return err
				}
				if out.Tier != stage.TierPeer {
					return fmt.Errorf("resolve served from tier %q, want %q", out.Tier, stage.TierPeer)
				}
				sink.Add(uint64(v.(*pipeline.Profile).N()))
				return nil
			}
			verify := func() error {
				st := store.Stats()
				p := st.Tiers[stage.TierPeer]
				if p.Hits < 1 {
					return fmt.Errorf("peer tier hits = %d, want the fetches", p.Hits)
				}
				if p.Quarantined != 0 || p.Errors != 0 {
					return fmt.Errorf("peer tier quarantined=%d errors=%d, want clean frame-verified fetches", p.Quarantined, p.Errors)
				}
				if c := st.Stages["bench-peer"].Computes; c != 0 {
					return fmt.Errorf("computes = %d, want 0 (the peer must serve every repetition)", c)
				}
				return nil
			}
			return &Instance{Op: op, Verify: verify, Cleanup: peer.Close}, nil
		},
	})
}

// profileArtifact is the disk codec the codec-roundtrip spec resolves
// through: the same SaveJSON/ReadProfile layout the pipeline's profile
// stage persists.
type profileArtifact struct {
	name  string
	progs []*ir.Program
}

func (c profileArtifact) Filename() string { return c.name }

func (c profileArtifact) Encode(w io.Writer, v any) error {
	return v.(*pipeline.Profile).SaveJSON(w)
}

func (c profileArtifact) Decode(r io.Reader) (any, error) {
	return pipeline.ReadProfile(r, c.progs)
}

func (c profileArtifact) Persist(v any) bool { return true }

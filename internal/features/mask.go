package features

import (
	"fmt"
	"strings"
)

// Compile-time check that the index list matches NumFeatures.
var _ [NumFeatures]struct{} = [numFeaturesCheck]struct{}{}

// Mask selects a subset of the 76 features. It is the genome of the
// genetic algorithm (§4.2: "An individual is encoded as a 76 boolean
// vector").
type Mask struct {
	bits [NumFeatures]bool
}

// AllMask selects every feature.
func AllMask() Mask {
	var m Mask
	for i := range m.bits {
		m.bits[i] = true
	}
	return m
}

// MaskOf selects the given feature indices.
func MaskOf(indices ...int) Mask {
	var m Mask
	for _, i := range indices {
		if i < 0 || i >= NumFeatures {
			panic(fmt.Sprintf("features: index %d out of range", i))
		}
		m.bits[i] = true
	}
	return m
}

// MaskOfNames selects features by catalog name.
func MaskOfNames(names ...string) (Mask, error) {
	var m Mask
	for _, n := range names {
		d, err := ByName(n)
		if err != nil {
			return Mask{}, err
		}
		m.bits[d.Index] = true
	}
	return m, nil
}

// Set sets bit i to v.
func (m *Mask) Set(i int, v bool) { m.bits[i] = v }

// Get reports bit i.
func (m Mask) Get(i int) bool { return m.bits[i] }

// Count returns the number of selected features.
func (m Mask) Count() int {
	n := 0
	for _, b := range m.bits {
		if b {
			n++
		}
	}
	return n
}

// Indices returns the selected feature indices in ascending order.
func (m Mask) Indices() []int {
	var out []int
	for i, b := range m.bits {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// Names returns the selected feature names in catalog order.
func (m Mask) Names() []string {
	var out []string
	for i, b := range m.bits {
		if b {
			out = append(out, catalog[i].Name)
		}
	}
	return out
}

// Apply projects a full feature vector onto the selected subspace.
func (m Mask) Apply(full []float64) []float64 {
	out := make([]float64, 0, m.Count())
	for i, b := range m.bits {
		if b {
			out = append(out, full[i])
		}
	}
	return out
}

// ApplyMatrix projects every row.
func (m Mask) ApplyMatrix(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = m.Apply(r)
	}
	return out
}

// String renders the mask as a 76-character bit string.
func (m Mask) String() string {
	var sb strings.Builder
	for _, b := range m.bits {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseMask parses the String form.
func ParseMask(s string) (Mask, error) {
	if len(s) != NumFeatures {
		return Mask{}, fmt.Errorf("features: mask length %d, want %d", len(s), NumFeatures)
	}
	var m Mask
	for i := 0; i < NumFeatures; i++ {
		switch s[i] {
		case '1':
			m.bits[i] = true
		case '0':
		default:
			return Mask{}, fmt.Errorf("features: invalid mask character %q", s[i])
		}
	}
	return m, nil
}

// PaperMask returns the feature subset equivalent to the paper's
// Table 2 — the set its genetic algorithm selected on the Numerical
// Recipes training suite:
//
//	Likwid:  floating point rate, L2 bandwidth, L3 miss rate,
//	         memory bandwidth
//	MAQAO:   bytes stored per cycle (L1), data dependency stalls,
//	         estimated IPC (L1), number of FP DIV, number of SD
//	         instructions, pressure on dispatch port P1,
//	         ADD+SUB/MUL ratio, vectorization ratios (FP mul,
//	         other FP+INT, INT)
func PaperMask() Mask {
	return MaskOf(
		FMFLOPS,
		FL2BandwidthMBs,
		FL3MissRate,
		FMemBandwidthMBs,
		FBytesStoredPerCycle,
		FDepStallCycles,
		FEstIPCL1,
		FNumFPDiv,
		FNumSD,
		FPressureP1,
		FAddSubMulRatio,
		FVecRatioMul,
		FVecRatioOther,
		FVecRatioInt,
	)
}

// DefaultMask is the feature subset the pipeline uses by default: the
// paper's Table 2 set plus two features our genetic algorithm keeps
// selecting on this substrate — the indirect-access share (gathers and
// scatters, derivable from MAQAO addressing modes) and the codelet's
// working-set size (the memory-dump size CF reports). The paper's
// physical machines let the Table 2 counters separate cache-resident
// codelets from streaming ones indirectly; on the modeled machines
// these two features carry that information explicitly.
func DefaultMask() Mask {
	m := PaperMask()
	m.Set(FStrideIndirectShare, true)
	m.Set(FWorkingSetBytes, true)
	return m
}

// ArchIndependentMask returns a feature subset in the spirit of Hoste
// & Eeckhout's microarchitecture-independent workload characterization
// — the generalization the paper's §5 proposes for targets outside the
// reference's family (e.g. GPUs). It contains only quantities that do
// not depend on the reference machine's ports, caches or frequency:
// the operation mix, access-pattern shares, loop-nest shape and
// working-set size.
func ArchIndependentMask() Mask {
	return MaskOf(
		// Operation mix (ratios are machine-independent).
		FFAddShare, FFMulShare, FFDivShare, FFSqrtShare, FFSpecialShare,
		FF32ShareDyn,
		// Per-iteration operation counts from the source.
		FLoadsPerIter, FStoresPerIter, FFPOpsPerIter, FIntOpsPerIter,
		FGatherLoadsPerIter, FReductionShare, FRecurrenceShare,
		// Access-pattern and structural descriptors.
		FStrideUnitShare, FStrideConstShare, FStrideIndirectShare,
		FStrideOtherShare, FNumInnerLoops, FNestDepth, FEstInnerTrip,
		FNumStatements, FNumArrays, FDimensionality, FWorkingSetBytes,
	)
}

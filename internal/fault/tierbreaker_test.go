package fault_test

// The breaker decorator on the HTTP peer tier, exercised through a
// real (httptest) peer from outside the stage package: transient 5xx
// responses trip the peer tier into degraded, the local memory and
// disk tiers keep serving throughout, and once the peer heals a
// half-open probe closes the breaker again. Lives in the fault package
// because it is resilience behavior; package fault_test because stage
// imports fault and the test drives stage's public API.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fgbs/internal/stage"
)

// tierCodec is a minimal string codec so resolves flow through the
// byte tiers.
type tierCodec struct{ name string }

func (c tierCodec) Filename() string                { return c.name }
func (c tierCodec) Encode(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v) }
func (c tierCodec) Decode(r io.Reader) (any, error) {
	var s string
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}
func (c tierCodec) Persist(any) bool { return true }

func TestPeerTierBreaker(t *testing.T) {
	ctx := context.Background()
	codec := tierCodec{name: "tierbreaker.json"}
	key := stage.NewKey("tierbreaker", 1).Str("shared").Key()
	var buf bytes.Buffer
	if err := codec.Encode(&buf, "peer-artifact"); err != nil {
		t.Fatal(err)
	}
	framed := stage.Frame(buf.Bytes())

	// The peer: serves the shared key framed while healthy, returns
	// 503 for everything while failing.
	var failing atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "peer melting", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == stage.ArtifactPathPrefix+key.String() {
			w.Write(framed)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	tiers, err := stage.NewTierChain(
		[]string{stage.TierMemory, stage.TierDisk, stage.TierPeer},
		stage.TierConfig{Dir: t.TempDir(), Peers: []string{peer.URL}, Client: peer.Client()},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := stage.NewTieredStore(8, tiers)
	noCompute := func(context.Context) (any, error) {
		return nil, errors.New("compute must not run")
	}

	// Healthy peer serves the cold chain; the artifact is promoted
	// into memory and disk on the way.
	v, out, err := s.Resolve(ctx, "tierbreaker", key, codec, noCompute)
	if err != nil || v != "peer-artifact" || out.Tier != stage.TierPeer {
		t.Fatalf("cold resolve = %v, %+v, %v; want peer-artifact via peer tier", v, out, err)
	}

	// Three transient 5xx failures in a row trip the peer breaker.
	// The resolves themselves still succeed — compute covers the miss
	// — and the read-only peer tier's no-op Puts must not reset the
	// failure count on the way.
	failing.Store(true)
	for i := 0; i < 3; i++ {
		missKey := stage.NewKey("tierbreaker", 1).Str("miss").Int(i).Key()
		missCodec := tierCodec{name: fmt.Sprintf("tierbreaker-miss-%d.json", i)}
		want := fmt.Sprintf("computed-%d", i)
		v, _, err := s.Resolve(ctx, "tierbreaker", missKey, missCodec, func(context.Context) (any, error) {
			return want, nil
		})
		if err != nil || v != want {
			t.Fatalf("resolve %d under failing peer = %v, %v; want computed fallback", i, v, err)
		}
	}
	st := s.Stats().Tiers[stage.TierPeer]
	if st.State != stage.DiskDegraded {
		t.Fatalf("peer tier state = %q after 3 transient 5xx, want %q", st.State, stage.DiskDegraded)
	}
	if st.Errors < 3 {
		t.Errorf("peer tier errors = %d, want >= 3", st.Errors)
	}
	errsAfterTrip := st.Errors

	// Memory and disk keep serving while the peer is degraded: evict
	// the value, resolve from memory; evict the memory copy, resolve
	// from disk. Neither touches the peer.
	s.Delete(key)
	if v, out, err := s.Resolve(ctx, "tierbreaker", key, codec, noCompute); err != nil || v != "peer-artifact" || out.Tier != stage.TierMemory {
		t.Fatalf("degraded-peer resolve = %v, %+v, %v; want memory tier hit", v, out, err)
	}
	ref := stage.Ref{Key: key, Name: codec.Filename()}
	s.Delete(key)
	if err := tiers[0].Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if v, out, err := s.Resolve(ctx, "tierbreaker", key, codec, noCompute); err != nil || v != "peer-artifact" || out.Tier != stage.TierDisk {
		t.Fatalf("degraded-peer resolve = %v, %+v, %v; want disk tier hit", v, out, err)
	}
	if got := s.Stats().Tiers[stage.TierPeer].Errors; got != errsAfterTrip {
		t.Errorf("peer tier errors moved %d -> %d during local serves; degraded tier must be skipped", errsAfterTrip, got)
	}

	// Heal the peer and strip the local copies so resolves must reach
	// it. The open breaker skips most attempts (compute fails here, so
	// those resolves error), until the paced half-open probe runs for
	// real, succeeds, and closes the breaker.
	failing.Store(false)
	s.Delete(key)
	if err := tiers[0].Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if err := tiers[1].Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	recovered := false
	for i := 0; i < 64 && !recovered; i++ {
		s.Delete(key)
		v, out, err := s.Resolve(ctx, "tierbreaker", key, codec, noCompute)
		if err != nil {
			continue // probe not admitted yet: peer skipped, compute refused
		}
		if v != "peer-artifact" || out.Tier != stage.TierPeer {
			t.Fatalf("recovery resolve = %v, %+v; want peer-artifact via peer tier", v, out)
		}
		recovered = true
	}
	if !recovered {
		t.Fatal("half-open probe never recovered the healed peer")
	}
	if st := s.Stats().Tiers[stage.TierPeer]; st.State != stage.DiskOK {
		t.Errorf("peer tier state = %q after successful probe, want %q", st.State, stage.DiskOK)
	}
}

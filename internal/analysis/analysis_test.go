package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadRealTree loads the enclosing module once for all tests; the
// stdlib source-import is the expensive part and is identical across
// callers.
var realTreeOnce = sync.OnceValues(func() (*Module, error) {
	return LoadModule("../..")
})

func loadRealTree(t *testing.T) *Module {
	t.Helper()
	mod, err := realTreeOnce()
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// Corpus harness: each check has a testdata/src/<check> package whose
// lines carry golden assertions of the form
//
//	want "regexp" ["regexp" ...]
//
// inside a comment. Every diagnostic must match an assertion on its
// line and every assertion must be matched by a diagnostic — so the
// corpora pin both the positive cases and the suppressed ones (a
// suppressed line simply carries no want).

func TestDeterminismCorpus(t *testing.T)    { testCorpus(t, "determinism") }
func TestCtxPropagationCorpus(t *testing.T) { testCorpus(t, "ctxpropagation") }
func TestFloatCompareCorpus(t *testing.T)   { testCorpus(t, "floatcompare") }
func TestErrWrapCorpus(t *testing.T)        { testCorpus(t, "errwrap") }
func TestGuardedByCorpus(t *testing.T)      { testCorpus(t, "guardedby") }
func TestLockOrderCorpus(t *testing.T)      { testCorpus(t, "lockorder") }
func TestGoroutineLeakCorpus(t *testing.T)  { testCorpus(t, "goroutineleak") }
func TestKeyPurityCorpus(t *testing.T)      { testCorpus(t, "keypurity") }
func TestAllocHotCorpus(t *testing.T)       { testCorpus(t, "allochot") }

func testCorpus(t *testing.T, check string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", check)
	pkg, err := LoadDir(dir, "corpus/"+check)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{check}})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, dir, diags)
}

// checkWants matches diagnostics against dir's golden assertions in
// both directions.
func checkWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !consumeWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s: no diagnostic matched want %q", key, re)
			}
		}
	}
}

// TestDeterminismWallClockExemption loads the faultpkg corpus under an
// import path ending in internal/fault: the pacing calls are exempt
// (fault injection delays on the wall clock by design), while time.Now
// remains a finding even there.
func TestDeterminismWallClockExemption(t *testing.T) {
	dir := filepath.Join("testdata", "src", "faultpkg")
	pkg, err := LoadDir(dir, "corpus/internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, dir, diags)
}

// TestDeterminismStagePurity loads the stagepkg corpus under an import
// path ending in internal/stage, where determinism findings are
// unsuppressable: each //fgbs:allow determinism directive is itself a
// finding and the finding it tried to silence survives.
func TestDeterminismStagePurity(t *testing.T) {
	dir := filepath.Join("testdata", "src", "stagepkg")
	pkg, err := LoadDir(dir, "corpus/internal/stage")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, dir, diags)
}

// TestDeterminismBenchTimingExemption loads the benchpkg corpus under
// an import path ending in internal/bench, where time.Now is sanctioned
// (elapsed wall time is the benchmark runner's product) while pacing
// and math/rand remain findings even there.
func TestDeterminismBenchTimingExemption(t *testing.T) {
	dir := filepath.Join("testdata", "src", "benchpkg")
	pkg, err := LoadDir(dir, "corpus/internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, dir, diags)
}

// TestDeterminismBenchExemptionIsPathScoped is the control for the
// bench carve-out: the identical time.Now code that is silent under
// corpus/internal/bench is a finding under any other import path, so
// the exemption rides on the package path, not on the code's shape.
func TestDeterminismBenchExemptionIsPathScoped(t *testing.T) {
	src := `package snippet

import "time"

func elapsed(op func()) time.Duration {
	start := time.Now()
	op()
	return time.Now().Sub(start)
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings outside internal/bench, want 2 (one per time.Now): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "time.Now reads the wall clock") {
			t.Errorf("unexpected finding: %v", d)
		}
	}
}

// TestDeterminismAllowWorksOutsideStage is the control for the purity
// rule: the same suppressed time.Now that is a double finding inside
// internal/stage stays silent in an ordinary package.
func TestDeterminismAllowWorksOutsideStage(t *testing.T) {
	src := `package snippet

import "time"

func stamp() time.Time {
	//fgbs:allow determinism display timestamp only
	return time.Now()
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("suppressed finding leaked outside internal/stage: %v", diags)
	}
}

// TestDeterminismAbortExemptionIsScoped is the control for the abort
// rule's two carve-outs: the exact same os.Exit call is a finding in a
// library package, silent in package main (a CLI's error exit), and
// silent under an import path ending in internal/fault (the crashpoint
// hooks — see the faultpkg corpus for the positive case).
func TestDeterminismAbortExemptionIsScoped(t *testing.T) {
	body := `

import "os"

func bail(code int) {
	os.Exit(code)
}
`
	library := loadSnippet(t, "package snippet"+body)
	diags, err := Run([]*Package{library}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "os.Exit aborts the process mid-flight") {
		t.Fatalf("library os.Exit: got %v, want one abort finding", diags)
	}

	cli := loadSnippet(t, "package main"+body+"\nfunc main() { bail(0) }\n")
	diags, err = Run([]*Package{cli}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("os.Exit flagged in package main: %v", diags)
	}
}

var wantLineRe = regexp.MustCompile(`\bwant ("(?:[^"\\]|\\.)*")`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses every want assertion in dir's Go files, keyed
// by "file:line".
func collectWants(dir string) (map[string][]*regexp.Regexp, error) {
	wants := make(map[string][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			loc := wantLineRe.FindStringIndex(text)
			if loc == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, line)
			for _, m := range wantArgRe.FindAllStringSubmatch(text[loc[0]:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s: bad want %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
		f.Close()
	}
	return wants, nil
}

// consumeWant marks the first unconsumed assertion on the diagnostic's
// line that matches its message.
func consumeWant(wants map[string][]*regexp.Regexp, file string, line int, msg string) bool {
	key := fmt.Sprintf("%s:%d", file, line)
	for i, re := range wants[key] {
		if re != nil && re.MatchString(msg) {
			wants[key][i] = nil
			return true
		}
	}
	return false
}

// TestRealTreeIsClean is the acceptance gate: the shipped module must
// carry zero findings (fixed or justified with //fgbs:allow).
func TestRealTreeIsClean(t *testing.T) {
	mod := loadRealTree(t)
	diags, err := Run(mod.Pkgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding on the real tree: %s", d)
	}
}

// TestRunRejectsUnknownCheck pins the flag-validation convention: the
// error names the valid checks.
func TestRunRejectsUnknownCheck(t *testing.T) {
	_, err := Run(nil, Options{Checks: []string{"ghost"}})
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("Run with unknown check = %v, want error listing valid checks", err)
	}
}

// TestParallelRunMatchesSerial is the byte-identical guarantee at the
// Run level: the same loaded module analyzed with one worker and with
// many must render the exact same diagnostics in the exact same order.
func TestParallelRunMatchesSerial(t *testing.T) {
	mod := loadRealTree(t)
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial, err := Run(mod.Pkgs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(mod.Pkgs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if render(serial) != render(parallel) {
		t.Errorf("parallel output differs from serial:\nserial:\n%sparallel:\n%s",
			render(serial), render(parallel))
	}
}

// TestLoadModuleParallelMatchesSerial: the wave-scheduled loader must
// be observationally identical to the serial one — same packages in
// the same order, and identical analysis output on top.
func TestLoadModuleParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the module a second time")
	}
	serialMod := loadRealTree(t)
	parMod, err := LoadModuleParallel("../..", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialMod.Pkgs) != len(parMod.Pkgs) {
		t.Fatalf("parallel load found %d packages, serial %d", len(parMod.Pkgs), len(serialMod.Pkgs))
	}
	for i := range serialMod.Pkgs {
		if serialMod.Pkgs[i].Path != parMod.Pkgs[i].Path {
			t.Errorf("package %d: parallel %s, serial %s", i, parMod.Pkgs[i].Path, serialMod.Pkgs[i].Path)
		}
	}
	serialDiags, err := Run(serialMod.Pkgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parDiags, err := Run(parMod.Pkgs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serialDiags) != len(parDiags) {
		t.Fatalf("parallel-load analysis found %d diagnostics, serial %d", len(parDiags), len(serialDiags))
	}
	for i := range serialDiags {
		if serialDiags[i].String() != parDiags[i].String() {
			t.Errorf("diagnostic %d differs: parallel %q, serial %q", i, parDiags[i], serialDiags[i])
		}
	}
}

// TestRunTimings: the injected clock yields one timing per selected
// check, in canonical order.
func TestRunTimings(t *testing.T) {
	mod := loadRealTree(t)
	pkgs, err := mod.Select([]string{"./internal/rng"})
	if err != nil {
		t.Fatal(err)
	}
	var fake time.Duration
	var order []string
	_, err = Run(pkgs, Options{
		Clock: func() time.Duration { fake += time.Millisecond; return fake },
		OnTiming: func(check string, elapsed time.Duration) {
			order = append(order, check)
			if elapsed <= 0 {
				t.Errorf("check %s: elapsed %v, want > 0 with a strictly advancing clock", check, elapsed)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.Join(CheckNames(), ","); strings.Join(order, ",") != want {
		t.Errorf("timing order %v, want canonical %v", order, CheckNames())
	}
}

// TestAllowOnSameLine: the directive works as a trailing comment on
// the flagged line itself.
func TestAllowOnSameLine(t *testing.T) {
	src := `package snippet

import "time"

func f() time.Time {
	return time.Now() //fgbs:allow determinism display timestamp only
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("same-line directive failed to suppress: %v", diags)
	}
}

// TestMalformedMultiCheckAllow: one directive names one check; a
// comma-joined list is a malformed directive (reported), and neither
// named check is suppressed.
func TestMalformedMultiCheckAllow(t *testing.T) {
	src := `package snippet

import "time"

func f() time.Time {
	//fgbs:allow determinism,floatcompare two checks in one directive
	return time.Now()
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var badDirective, determinism bool
	for _, d := range diags {
		if d.Check == "allow" && strings.Contains(d.Message, `unknown check "determinism,floatcompare"`) {
			badDirective = true
		}
		if d.Check == "determinism" {
			determinism = true
		}
	}
	if !badDirective {
		t.Errorf("diagnostics %v lack the malformed-directive finding", diags)
	}
	if !determinism {
		t.Errorf("comma-joined directive suppressed the finding anyway: %v", diags)
	}
}

// TestStageAllowIsItselfReported pins the noSuppress interaction from
// the driver's point of view: inside a package whose path ends in
// internal/stage, an //fgbs:allow determinism both fails to suppress
// and produces its own finding.
func TestStageAllowIsItselfReported(t *testing.T) {
	src := `package stage

import "time"

func stamp() int64 {
	//fgbs:allow determinism trying to sneak a clock into key hashing
	return time.Now().UnixNano()
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stage.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "corpus/internal/stage")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	var suppressionReported, findingSurvives bool
	for _, d := range diags {
		if strings.Contains(d.Message, "cannot be suppressed") || strings.Contains(d.Message, "suppress") {
			suppressionReported = true
		}
		if strings.Contains(d.Message, "time.Now") {
			findingSurvives = true
		}
	}
	if !findingSurvives {
		t.Errorf("the allow directive silenced a noSuppress finding: %v", diags)
	}
	if !suppressionReported {
		t.Errorf("diagnostics %v lack a finding reporting the suppression attempt itself", diags)
	}
}

// loadSnippet type-checks one generated file as a package, for cases
// (like malformed suppressions) that cannot carry same-line want
// assertions.
func loadSnippet(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "corpus/snippet")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestMalformedAllows: a suppression that cannot work (no check, bad
// check, or no reason) must itself surface as a finding instead of
// silently not suppressing.
func TestMalformedAllows(t *testing.T) {
	cases := []struct {
		name      string
		directive string
		want      string
	}{
		{"bare", "//fgbs:allow", "needs a check name and a reason"},
		{"unknown check", "//fgbs:allow ghostcheck because reasons", `unknown check "ghostcheck"`},
		{"missing reason", "//fgbs:allow determinism", "needs a reason"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "package snippet\n\nimport \"time\"\n\nfunc f() time.Time {\n\t" +
				c.directive + "\n\treturn time.Now()\n}\n"
			pkg := loadSnippet(t, src)
			diags, err := Run([]*Package{pkg}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var allowMsg, determinism bool
			for _, d := range diags {
				if d.Check == "allow" && strings.Contains(d.Message, c.want) {
					allowMsg = true
				}
				if d.Check == "determinism" {
					determinism = true
				}
			}
			if !allowMsg {
				t.Errorf("diagnostics %v lack an allow finding containing %q", diags, c.want)
			}
			if !determinism {
				t.Errorf("broken directive still suppressed the determinism finding: %v", diags)
			}
		})
	}
}

// TestAllowOnPrecedingLine: the directive suppresses from its own line
// or the line directly above, but not further away.
func TestAllowOnPrecedingLine(t *testing.T) {
	src := `package snippet

import "time"

func f() time.Time {
	//fgbs:allow determinism display timestamp only
	return time.Now()
}

func g() time.Time {
	//fgbs:allow determinism too far away to apply

	return time.Now()
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the finding in g", diags)
	}
	if diags[0].Pos.Line != 13 {
		t.Errorf("finding at line %d, want 13 (g's time.Now)", diags[0].Pos.Line)
	}
}

// TestSelectPatterns covers the package-pattern forms fgbsvet accepts.
func TestSelectPatterns(t *testing.T) {
	mod := loadRealTree(t)
	cases := []struct {
		patterns []string
		wantAny  string
		wantErr  bool
	}{
		{nil, "fgbs/internal/analysis", false},
		{[]string{"./..."}, "fgbs/internal/rng", false},
		{[]string{"./internal/rng"}, "fgbs/internal/rng", false},
		{[]string{"internal/suites/..."}, "fgbs/internal/suites/nas", false},
		{[]string{"fgbs/internal/ga"}, "fgbs/internal/ga", false},
		{[]string{"."}, "fgbs", false},
		{[]string{"./nonexistent"}, "", true},
	}
	for _, c := range cases {
		pkgs, err := mod.Select(c.patterns)
		if c.wantErr {
			if err == nil {
				t.Errorf("Select(%v) succeeded, want error", c.patterns)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%v): %v", c.patterns, err)
			continue
		}
		found := false
		for _, p := range pkgs {
			if p.Path == c.wantAny {
				found = true
			}
		}
		if !found {
			t.Errorf("Select(%v) = %d packages without %s", c.patterns, len(pkgs), c.wantAny)
		}
	}
}

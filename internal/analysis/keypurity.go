package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// keypurityCheck makes stage keys provably deterministic: a taint pass
// over each function tracks values derived from nondeterministic
// sources — map iteration order, wall clocks (time.*), math/rand, and
// pointer formatting (%p) — and reports any tainted value flowing into
// a stage.KeyBuilder write method (Str, Strs, Int, Uint64, Float,
// Bool, Upstream) or NewKey itself. A key built from such a value
// hashes differently run to run, which silently defeats the
// content-addressed store and, once keys route a multi-node cluster,
// scatters one artifact across shards.
//
// The peer tier's request-path builder is a sink of the same kind:
// HTTPBackend.artifactURL routes an artifact fetch, so a peer URL
// pulled out of a map range would scatter fetches nondeterministically
// across the cluster.
//
// Sorting is the sanctioned laundering step: a variable passed to
// sort.* or slices.Sort* anywhere in the function is treated as clean
// (the map-keys-into-slice-then-sort idiom). So is rendering a key via
// Key.String(): a Key is a content hash whose assembly the KeyBuilder
// sinks already guard, so its rendered form — the peer tier derives
// request paths from it — is deterministic by construction.
//
// The pass is flow-insensitive and per-function (nested literals
// included — closures share the enclosing variables), which
// over-approximates: a value tainted on one path taints all its uses.
// That is the right bias for key material.
var keypurityCheck = &Check{
	Name: "keypurity",
	Doc:  "values reaching stage.KeyBuilder writes must not derive from map order, time, rand, or pointer formatting",
	run:  runKeyPurity,
}

// keyBuilderMethods are the sink methods on stage.KeyBuilder. NewKey's
// arguments are checked too (stage name and version are key material).
var keyBuilderMethods = map[string]bool{
	"Str": true, "Strs": true, "Int": true, "Uint64": true,
	"Float": true, "Bool": true, "Upstream": true,
}

func runKeyPurity(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasKeySinks(p.Pkg, fd.Body) {
				continue
			}
			analyzeKeyPurity(p, fd.Body)
		}
	}
}

// hasKeySinks is the cheap gate: does the body mention a KeyBuilder
// write at all?
func hasKeySinks(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isKeySink(pkg, call) {
			found = true
		}
		return true
	})
	return found
}

// isKeySink reports whether call writes key material: a method in
// keyBuilderMethods on a value whose named type is KeyBuilder, a call
// to a function named NewKey, or the peer tier's request-path builder
// artifactURL on an HTTPBackend. Matching is by type name rather
// than import path so the testdata corpora (which cannot import module
// packages) exercise the same code path as the real tree.
func isKeySink(pkg *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if !keyBuilderMethods[fun.Sel.Name] {
			if fun.Sel.Name == "NewKey" {
				return true
			}
			if fun.Sel.Name == "artifactURL" {
				tv, ok := pkg.Info.Types[fun.X]
				return ok && namedTypeName(tv.Type) == "HTTPBackend"
			}
			return false
		}
		tv, ok := pkg.Info.Types[fun.X]
		if !ok {
			return false
		}
		return namedTypeName(tv.Type) == "KeyBuilder"
	case *ast.Ident:
		return fun.Name == "NewKey"
	}
	return false
}

// analyzeKeyPurity runs the taint fixpoint over one function body and
// reports tainted sink arguments.
func analyzeKeyPurity(p *Pass, body *ast.BlockStmt) {
	pkg := p.Pkg
	// tainted maps a variable to the reason it is dirty; sanitized
	// variables can never become tainted.
	tainted := make(map[types.Object]string)
	sanitized := sortSanitized(pkg, body)

	taint := func(id *ast.Ident, reason string) bool {
		obj := identObj(pkg, id)
		if obj == nil || sanitized[obj] {
			return false
		}
		if _, ok := tainted[obj]; ok {
			return false
		}
		tainted[obj] = reason
		return true
	}

	// Seed: map-range loop variables.
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				taint(id, "map iteration order")
			}
		}
		return true
	})

	// Fixpoint: propagate through assignments until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0] // multi-value: taint every LHS
					}
					if rhs == nil {
						continue
					}
					if reason := exprTaint(pkg, rhs, tainted); reason != "" {
						if taint(id, reason) {
							changed = true
						}
					}
				}
			case *ast.GenDecl:
				for _, spec := range s.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						if rhs == nil {
							continue
						}
						if reason := exprTaint(pkg, rhs, tainted); reason != "" {
							if taint(name, reason) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Sinks: report tainted arguments in deterministic source order.
	type finding struct {
		pos    ast.Expr
		sink   string
		reason string
	}
	var finds []finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isKeySink(pkg, call) {
			return true
		}
		sink := "NewKey"
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch {
			case keyBuilderMethods[sel.Sel.Name]:
				sink = "KeyBuilder." + sel.Sel.Name
			case sel.Sel.Name == "artifactURL":
				sink = "HTTPBackend.artifactURL"
			}
		}
		for _, arg := range call.Args {
			if reason := exprTaint(pkg, arg, tainted); reason != "" {
				finds = append(finds, finding{arg, sink, reason})
			}
		}
		return true
	})
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos.Pos() < finds[j].pos.Pos() })
	for _, f := range finds {
		p.Reportf(f.pos.Pos(), "value derived from %s reaches %s; stage keys must be deterministic (sort or use a stable source)",
			f.reason, f.sink)
	}
}

// exprTaint returns the reason expr is tainted, or "": it mentions a
// tainted variable, or contains a nondeterministic source call.
// Key.String() subtrees are skipped — the rendering of a content hash
// is clean no matter how the Key variable was picked, because equal
// keys render equally.
func exprTaint(pkg *Package, expr ast.Expr, tainted map[types.Object]string) string {
	reason := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.Ident:
			if obj := identObj(pkg, e); obj != nil {
				if r, ok := tainted[obj]; ok {
					reason = r
					return false
				}
			}
		case *ast.CallExpr:
			if isKeyStringCall(pkg, e) {
				return false
			}
			if r := sourceCall(pkg, e); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// isKeyStringCall reports whether call is Key.String() on a value
// whose named type is Key — the sanctioned way to turn a stage key
// into a request path or filename.
func isKeyStringCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "String" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	return ok && namedTypeName(tv.Type) == "Key"
}

// sourceCall classifies a call as a nondeterminism source: anything in
// time, math/rand, math/rand/v2, or a fmt formatting call whose
// constant format string contains %p.
func sourceCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		return "the wall clock (time." + fn.Name() + ")"
	case "math/rand", "math/rand/v2":
		return "math/rand (" + fn.Name() + ")"
	case "fmt":
		for _, arg := range call.Args {
			tv, ok := pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			if strings.Contains(constant.StringVal(tv.Value), "%p") {
				return "pointer formatting (%p)"
			}
		}
	}
	return ""
}

// sortSanitized collects variables passed to a sort.* / slices.Sort*
// call anywhere in the body; those are declared clean.
func sortSanitized(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if path != "sort" && !(path == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
			return true
		}
		for _, arg := range call.Args {
			if id := identRoot(arg); id != nil {
				if obj := identObj(pkg, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// identRoot unwraps an argument to its base identifier: x, &x, x[i:j].
func identRoot(expr ast.Expr) *ast.Ident {
	switch e := expr.(type) {
	case *ast.Ident:
		return e
	case *ast.UnaryExpr:
		return identRoot(e.X)
	case *ast.ParenExpr:
		return identRoot(e.X)
	case *ast.SliceExpr:
		return identRoot(e.X)
	}
	return nil
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

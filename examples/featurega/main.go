// Feature selection: run the §4.2 genetic algorithm on the Numerical
// Recipes training suite and print the selected feature subset
// (the experiment behind the paper's Table 2).
//
// The default configuration is scaled down for interactive use; pass
// -full for the paper's population 1000 x 100 generations.
//
// Run with:
//
//	go run ./examples/featurega [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"fgbs"
)

func main() {
	full := flag.Bool("full", false, "use the paper's GA configuration (slow)")
	flag.Parse()

	prof, err := fgbs.NewProfile(fgbs.NRSuite(), fgbs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	opts := fgbs.GAOptions{
		Population:   120,
		Generations:  40,
		MutationProb: 0.01,
		Seed:         42,
		OnGeneration: func(gen int, best float64, _ fgbs.FeatureMask) {
			if gen%10 == 0 {
				fmt.Printf("generation %3d: best fitness %.3f\n", gen, best)
			}
		},
	}
	if *full {
		opts.Population, opts.Generations = 1000, 100
	}

	// Fitness: max of the average prediction errors on Atom and Sandy
	// Bridge, times the elbow-selected cluster count. Core 2 and the
	// NAS suite stay out of training, as in the paper.
	res, err := fgbs.SelectFeatures(prof, opts, "Atom", "Sandy Bridge")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged: fitness %.3f, %d features after %d evaluations\n",
		res.BestFitness, res.Best.Count(), res.Evaluations)
	for _, name := range res.Best.Names() {
		fmt.Println("  -", name)
	}

	// Compare with the built-in default subset's fitness.
	fitness, err := prof.FeatureFitness("Atom", "Sandy Bridge")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitness of the built-in default subset: %.3f\n", fitness(fgbs.DefaultFeatures()))
	fmt.Printf("fitness of the paper's Table 2 subset:  %.3f\n", fitness(fgbs.PaperFeatures()))
}

// Package cache implements the set-associative LRU data-cache
// hierarchy simulator used by internal/sim.
//
// The paper characterizes codelets with hardware counters (cache
// misses, bandwidths) read by Likwid on real machines. Here the same
// counters are produced by pushing the codelet's memory access stream
// through this simulator configured with each machine's geometry from
// internal/arch.
//
// The model is a single-threaded, inclusive, write-allocate,
// write-back hierarchy with true-LRU replacement per set — simple,
// deterministic and sufficient for the capacity/locality distinctions
// the method relies on (L1-resident vs. streaming vs. LLC-resident
// working sets).
package cache

import (
	"fmt"

	"fgbs/internal/arch"
)

// Level is one simulated cache level.
type Level struct {
	name      string
	sets      int64
	ways      int
	lineShift uint
	setMask   int64

	// tags[set*ways+way]; valid tags are non-negative, empty = -1.
	tags []int64
	// lru[set*ways+way] holds a per-set logical clock; the smallest
	// value in a set is the least recently used way.
	lru   []int64
	clock int64

	Hits   int64
	Misses int64
	// Writebacks counts dirty evictions (write-back traffic).
	Writebacks int64
	dirty      []bool
}

// log2 returns floor(log2(v)); v must be a positive power of two for
// exact geometry, which NewLevel validates.
func log2(v int64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// NewLevel builds a level from arch geometry.
func NewLevel(cl arch.CacheLevel) (*Level, error) {
	if cl.LineBytes <= 0 || cl.LineBytes&(cl.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cl.Name, cl.LineBytes)
	}
	lines := cl.SizeBytes / cl.LineBytes
	if lines%int64(cl.Ways) != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", cl.Name, lines, cl.Ways)
	}
	sets := lines / int64(cl.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cl.Name, sets)
	}
	l := &Level{
		name:      cl.Name,
		sets:      sets,
		ways:      cl.Ways,
		lineShift: log2(cl.LineBytes),
		setMask:   sets - 1,
		tags:      make([]int64, sets*int64(cl.Ways)),
		lru:       make([]int64, sets*int64(cl.Ways)),
		dirty:     make([]bool, sets*int64(cl.Ways)),
	}
	for i := range l.tags {
		l.tags[i] = -1
	}
	return l, nil
}

// Name returns the level's name (L1, L2, ...).
func (l *Level) Name() string { return l.name }

// Access looks address up in the level; on a miss the line is filled
// (write-allocate) and the victim reported. Returns hit and whether a
// dirty line was evicted.
func (l *Level) Access(addr int64, write bool) (hit, dirtyEvict bool) {
	line := addr >> l.lineShift
	set := line & l.setMask
	base := set * int64(l.ways)
	l.clock++
	for w := 0; w < l.ways; w++ {
		if l.tags[base+int64(w)] == line {
			l.Hits++
			l.lru[base+int64(w)] = l.clock
			if write {
				l.dirty[base+int64(w)] = true
			}
			return true, false
		}
	}
	l.Misses++
	// Victim: least recently used way (or an empty one).
	victim := int64(0)
	best := l.lru[base]
	for w := int64(1); w < int64(l.ways); w++ {
		if l.tags[base+w] == -1 {
			victim = w
			best = -1
			break
		}
		if l.lru[base+w] < best {
			victim = w
			best = l.lru[base+w]
		}
	}
	dirtyEvict = l.tags[base+victim] != -1 && l.dirty[base+victim]
	if dirtyEvict {
		l.Writebacks++
	}
	l.tags[base+victim] = line
	l.lru[base+victim] = l.clock
	l.dirty[base+victim] = write
	return false, dirtyEvict
}

// Contains reports whether the line holding addr is currently cached,
// without touching hit/miss counters or LRU state.
func (l *Level) Contains(addr int64) bool {
	line := addr >> l.lineShift
	base := (line & l.setMask) * int64(l.ways)
	for w := int64(0); w < int64(l.ways); w++ {
		if l.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and clears dirtiness; counters are kept.
func (l *Level) Flush() {
	for i := range l.tags {
		l.tags[i] = -1
		l.dirty[i] = false
	}
}

// ResetCounters zeroes hit/miss/writeback counters without touching
// cache contents.
func (l *Level) ResetCounters() {
	l.Hits, l.Misses, l.Writebacks = 0, 0, 0
}

// Hierarchy chains the levels of one machine.
type Hierarchy struct {
	Levels []*Level
	// MemAccesses counts line fills that reached DRAM.
	MemAccesses int64
	// MemWritebacks counts dirty lines written back to DRAM.
	MemWritebacks int64
	lineBytes     int64
}

// NewHierarchy builds the full hierarchy for machine m.
func NewHierarchy(m *arch.Machine) (*Hierarchy, error) {
	h := &Hierarchy{}
	for _, cl := range m.Caches {
		l, err := NewLevel(cl)
		if err != nil {
			return nil, fmt.Errorf("cache: machine %s: %w", m.Name, err)
		}
		h.Levels = append(h.Levels, l)
	}
	h.lineBytes = m.Caches[0].LineBytes
	return h, nil
}

// LineBytes returns the hierarchy's line size.
func (h *Hierarchy) LineBytes() int64 { return h.lineBytes }

// Access sends one reference down the hierarchy and returns the index
// of the level that hit (0 = L1), or len(Levels) if it went to memory.
//
// A miss in level i is looked up in level i+1; fills propagate back up
// (every level on the path allocates the line, keeping the hierarchy
// inclusive). Dirty victims are written back to the next level.
func (h *Hierarchy) Access(addr int64, write bool) int {
	for i, l := range h.Levels {
		hit, dirtyEvict := l.Access(addr, write)
		if dirtyEvict {
			if i+1 < len(h.Levels) {
				// Write-back traffic: update the line in the next
				// level (it is present under inclusion; count as a
				// write touch without recursive eviction modeling).
				_, _ = h.Levels[i+1].Access(addr, true)
			} else {
				h.MemWritebacks++
			}
		}
		if hit {
			return i
		}
	}
	h.MemAccesses++
	return len(h.Levels)
}

// Flush empties every level (used between in-application invocations,
// where other codelets trash the cache).
func (h *Hierarchy) Flush() {
	for _, l := range h.Levels {
		l.Flush()
	}
}

// ResetCounters clears all counters, keeping contents (used to warm up
// then measure).
func (h *Hierarchy) ResetCounters() {
	for _, l := range h.Levels {
		l.ResetCounters()
	}
	h.MemAccesses = 0
	h.MemWritebacks = 0
}

// Preload streams the byte range [base, base+size) through the
// hierarchy as reads, modeling the memory-dump load performed by the
// extracted microbenchmark's wrapper before the codelet runs.
func (h *Hierarchy) Preload(base, size int64) {
	for a := base &^ (h.lineBytes - 1); a < base+size; a += h.lineBytes {
		h.Access(a, false)
	}
}

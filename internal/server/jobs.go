package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"

	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/jobs"
	"fgbs/internal/pipeline"
	"fgbs/internal/report"
)

// Async experiment jobs: the expensive computations (the Figure 3
// sweep, the Figure 7 random baseline, the §4.2 GA) run minutes, far
// past what a synchronous request should hold open. POST /v1/jobs
// validates the request, submits a closure onto the jobs.Manager pool
// and returns 202 with the job's ID; clients poll GET /v1/jobs/{id}
// for state and progress, fetch GET /v1/jobs/{id}/result once done,
// and DELETE /v1/jobs/{id} to cancel. The closure resolves the
// suite's profile through the same coalescing registry the
// synchronous endpoints use — under the job's context, not the
// submit request's, so the experiment survives the submitter
// disconnecting.

// jobRequest is the body of POST /v1/jobs. Kind selects which
// parameter group applies; zero values mean defaults.
type jobRequest struct {
	Kind     string `json:"kind"`
	Suite    string `json:"suite"`
	Features string `json:"features"`

	// sweep: cluster counts kmin..kmax (defaults 2..24).
	KMin int `json:"kmin"`
	KMax int `json:"kmax"`

	// randbaseline: random trials per K (defaults: ks
	// [4 8 12 16 20 24], 1000 trials, first target).
	Ks     []int  `json:"ks"`
	Trials int    `json:"trials"`
	Target string `json:"target"`

	// ga: evolution parameters (defaults 120/40/0.01, all targets).
	Population   int      `json:"population"`
	Generations  int      `json:"generations"`
	MutationProb float64  `json:"mutationProb"`
	Targets      []string `json:"targets"`

	// Seed defaults to the server's seed; Parallelism bounds the
	// experiment's worker fan-out (0 = GOMAXPROCS).
	Seed        *uint64 `json:"seed"`
	Parallelism int     `json:"parallelism"`
}

// fillDefaults fills the request's zero values in place, before
// validation so defaulted fields never trip it.
func (req *jobRequest) fillDefaults(serverSeed uint64) {
	if req.KMin == 0 {
		req.KMin = 2
	}
	if req.KMax == 0 {
		req.KMax = 24
	}
	if len(req.Ks) == 0 {
		req.Ks = []int{4, 8, 12, 16, 20, 24}
	}
	if req.Trials == 0 {
		req.Trials = 1000
	}
	if req.Population == 0 {
		req.Population = 120
	}
	if req.Generations == 0 {
		req.Generations = 40
	}
	//fgbs:allow floatcompare exact-zero means "field omitted from the request JSON"
	if req.MutationProb == 0 {
		req.MutationProb = 0.01
	}
	if req.Seed == nil {
		req.Seed = &serverSeed
	}
	if req.Parallelism == 0 {
		req.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// validate rejects what can be rejected before profiles exist. Target
// names are only checkable against a built profile, so they are
// validated inside the job and surface as a failed job.
func (req *jobRequest) validate(s *Server) error {
	switch req.Kind {
	case "sweep", "randbaseline", "ga":
	case "":
		return fmt.Errorf("kind is required (sweep, randbaseline, or ga)")
	default:
		return fmt.Errorf("unknown kind %q (valid: sweep, randbaseline, ga)", req.Kind)
	}
	if !s.validSuite(req.Suite) {
		return fmt.Errorf("unknown suite %q (valid: %s)", req.Suite, strings.Join(s.suiteSet, ", "))
	}
	if req.KMin < 2 || req.KMax < req.KMin {
		return fmt.Errorf("need 2 <= kmin <= kmax, got %d..%d", req.KMin, req.KMax)
	}
	for _, k := range req.Ks {
		if k < 2 {
			return fmt.Errorf("ks entries must be >= 2, got %d", k)
		}
	}
	if req.Trials < 1 {
		return fmt.Errorf("trials must be >= 1, got %d", req.Trials)
	}
	if req.Population < 2 {
		return fmt.Errorf("population must be >= 2, got %d", req.Population)
	}
	if req.Generations < 1 {
		return fmt.Errorf("generations must be >= 1, got %d", req.Generations)
	}
	if req.MutationProb < 0 || req.MutationProb > 1 {
		return fmt.Errorf("mutationProb must be in [0,1], got %g", req.MutationProb)
	}
	if req.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", req.Parallelism)
	}
	return nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	req.fillDefaults(s.cfg.Seed)
	if err := req.validate(s); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fn, err := s.buildJobFn(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The filled request — defaults resolved, seed pinned — is the
	// job's durable spec: what the journal persists and what a
	// restarted daemon rehydrates, so a later change of server defaults
	// can never alter a resumed job's parameters.
	spec, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding job spec: %v", err)
		return
	}
	j, err := s.jobs.SubmitSpec(req.Kind, spec, fn)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "job queue full, retry later")
		return
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, report.NewJobJSON(j.Snapshot()))
}

// buildJobFn turns a validated, default-filled request into its work
// function — shared by fresh submits and journal rehydration so a
// resumed job runs exactly the code a fresh one would.
func (s *Server) buildJobFn(req jobRequest) (jobs.Fn, error) {
	mask, err := parseFeatureMask(req.Features)
	if err != nil {
		return nil, err
	}
	switch req.Kind {
	case "sweep":
		return s.sweepJob(req, mask), nil
	case "randbaseline":
		return s.randBaselineJob(req, mask), nil
	case "ga":
		return s.gaJob(req), nil
	default:
		return nil, fmt.Errorf("unknown kind %q (valid: sweep, randbaseline, ga)", req.Kind)
	}
}

// rehydrateJob is the jobs.Manager's Rehydrate hook: it rebuilds the
// work function for a journaled job that was pending or running when
// the previous process died. The spec is the filled request the submit
// handler persisted; it is re-validated so a record from a
// configuration that no longer accepts it (a removed suite, say) fails
// the job loudly instead of running unchecked.
func (s *Server) rehydrateJob(kind string, spec json.RawMessage) (jobs.Fn, error) {
	var req jobRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, fmt.Errorf("decoding persisted spec: %w", err)
	}
	if req.Kind != kind {
		return nil, fmt.Errorf("spec kind %q does not match record kind %q", req.Kind, kind)
	}
	if err := req.validate(s); err != nil {
		return nil, err
	}
	return s.buildJobFn(req)
}

func (s *Server) sweepJob(req jobRequest, mask features.Mask) jobs.Fn {
	return func(ctx context.Context, pr *jobs.Progress) (any, error) {
		st, _, err := s.registry.Staged(ctx, req.Suite)
		if err != nil {
			return nil, err
		}
		prof := st.Profile()
		pr.SetTotal(int64(req.KMax - req.KMin + 1))
		pts, err := st.SweepKParallel(ctx, mask, req.KMin, req.KMax, req.Parallelism, func(done, total int) {
			pr.Set(int64(done))
		})
		if err != nil {
			return nil, err
		}
		sj := report.NewSweepJSON(prof, pts)
		sj.Suite = req.Suite
		sj.Mask = mask.String()
		sj.KMin, sj.KMax = req.KMin, req.KMax
		return sj, nil
	}
}

func (s *Server) randBaselineJob(req jobRequest, mask features.Mask) jobs.Fn {
	return func(ctx context.Context, pr *jobs.Progress) (any, error) {
		st, _, err := s.registry.Staged(ctx, req.Suite)
		if err != nil {
			return nil, err
		}
		prof := st.Profile()
		target := req.Target
		if target == "" {
			target = prof.Targets[0].Name
		}
		t, err := prof.TargetIndex(target)
		if err != nil {
			return nil, err
		}
		pr.SetTotal(int64(len(req.Ks) * req.Trials))
		var all []pipeline.RandomClusteringStats
		for i, k := range req.Ks {
			base := int64(i * req.Trials)
			rcs, err := st.RandomClusteringsParallel(ctx, mask, k, req.Trials, t, *req.Seed, req.Parallelism, func(done, total int) {
				pr.Set(base + int64(done))
			})
			if err != nil {
				return nil, err
			}
			all = append(all, rcs)
		}
		rj := report.NewRandBaselineJSON(all)
		rj.Suite, rj.Mask, rj.Target = req.Suite, mask.String(), target
		rj.Trials, rj.Seed = req.Trials, *req.Seed
		return rj, nil
	}
}

func (s *Server) gaJob(req jobRequest) jobs.Fn {
	return func(ctx context.Context, pr *jobs.Progress) (any, error) {
		prof, _, err := s.registry.Profile(ctx, req.Suite)
		if err != nil {
			return nil, err
		}
		targets := req.Targets
		if len(targets) == 0 {
			for _, m := range prof.Targets {
				targets = append(targets, m.Name)
			}
		}
		fitness, err := prof.FeatureFitnessContext(ctx, targets...)
		if err != nil {
			return nil, err
		}
		pr.SetTotal(int64(req.Generations))
		res, err := ga.RunContext(ctx, fitness, ga.Options{
			Population:   req.Population,
			Generations:  req.Generations,
			MutationProb: req.MutationProb,
			Seed:         *req.Seed,
			Workers:      req.Parallelism,
			OnGeneration: func(gen int, best float64, mask features.Mask) {
				pr.Set(int64(gen + 1))
			},
		})
		if err != nil {
			return nil, err
		}
		return &report.GAJSON{
			Suite: req.Suite, Targets: targets,
			Population: req.Population, Generations: req.Generations,
			Seed:     *req.Seed,
			BestMask: res.Best.String(), BestFeatures: res.Best.Names(),
			BestFitness: res.BestFitness, Evaluations: res.Evaluations,
			History: res.History,
		}, nil
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	out := struct {
		Jobs []*report.JobJSON `json:"jobs"`
	}{Jobs: make([]*report.JobJSON, 0, len(snaps))}
	for _, sn := range snaps {
		out.Jobs = append(out.Jobs, report.NewJobJSON(sn))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, report.NewJobJSON(j.Snapshot()))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	res, done := j.Result()
	if !done {
		sn := j.Snapshot()
		status := http.StatusConflict
		if !sn.State.Terminal() {
			// Not failed, just not finished yet.
			status = http.StatusAccepted
		}
		writeJSON(w, status, report.NewJobJSON(sn))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, report.NewJobJSON(j.Snapshot()))
}

// lookupJob fetches the path's job or writes a 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

// Corpus for the guardedby check: methods touching a field annotated
// '// guarded by <mu>' must lock that mutex somewhere in their body.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want "counter.n is guarded by mu, but bad never locks it"
}

func (c *counter) wrongLock(other *counter) int {
	other.mu.Lock() // locking someone else's mutex does not count
	defer other.mu.Unlock()
	return c.n // want "counter.n is guarded by mu, but wrongLock never locks it"
}

func (c *counter) suppressed() int {
	//fgbs:allow guardedby corpus: caller holds mu, locked-suffix contract
	return c.n
}

type gauge struct {
	mu sync.RWMutex
	// v is the published value.
	// guarded by mu
	v float64
}

func (g *gauge) read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *gauge) set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// readEverything reads several guarded values under RLock only — the
// read guard suffices, so no findings.
func (g *gauge) readEverything() (float64, float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v, g.v * 2
}

// sneakyWrite holds only the read lock while writing: shared readers
// race with this write, so RLock does not cover it.
func (g *gauge) sneakyWrite(v float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.v = v // want "gauge.v is guarded by mu, but sneakyWrite writes it under RLock; writes need mu.Lock\(\)"
}

// upgrades reads under RLock, then reacquires for the write — the
// body-wide tracking sees both lock modes, so both accesses pass.
func (g *gauge) upgrades(v float64) {
	g.mu.RLock()
	cur := g.v
	g.mu.RUnlock()
	if cur != v {
		g.mu.Lock()
		g.v = v
		g.mu.Unlock()
	}
}

type typo struct {
	mux sync.Mutex
	n   int // guarded by mu; want "'guarded by mu' names no field of typo"
}

func (t *typo) get() int {
	return t.n // the broken annotation guards nothing, so no finding here
}

type free struct {
	n int // unannotated fields are never checked
}

func (f *free) get() int {
	return f.n
}

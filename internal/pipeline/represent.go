package pipeline

import (
	"fgbs/internal/cluster"
	"fgbs/internal/features"
	"fgbs/internal/predict"
	"fgbs/internal/represent"
)

// Step D: representative selection over a cut — extraction screening
// (the 10% rule, carried in Profile.IllBehaved) plus the §3.4
// dissolution/reselection loop via internal/represent, finished with
// the prediction model the representatives anchor.

func (p *Profile) finishSubset(mask features.Mask, k int, d *cluster.Dendrogram, pts [][]float64, labels []int, cfg SubsetConfig) (*Subset, error) {
	ill := p.IllBehaved
	if cfg.IgnoreScreening {
		ill = make([]bool, p.N())
	}
	if cfg.RepStrategy == RepFirst {
		return p.firstMemberSubset(mask, k, d, pts, labels, ill)
	}
	sel, err := represent.Select(pts, labels, ill)
	if err != nil {
		return nil, err
	}
	model, err := predict.NewModel(p.RefInApp, sel.Labels, sel.Reps)
	if err != nil {
		return nil, err
	}
	return &Subset{
		Mask: mask, RequestedK: k, Dendro: d, Points: pts,
		Selection: sel, Model: model,
	}, nil
}

// firstMemberSubset implements RepFirst: the lowest-indexed eligible
// member of each cluster, with the same dissolution semantics.
func (p *Profile) firstMemberSubset(mask features.Mask, k int, d *cluster.Dendrogram, pts [][]float64, labels []int, ill []bool) (*Subset, error) {
	sel, err := represent.Select(pts, labels, ill)
	if err != nil {
		return nil, err
	}
	for c := range sel.Reps {
		for i, l := range sel.Labels {
			if l == c && !ill[i] {
				sel.Reps[c] = i
				break
			}
		}
	}
	model, err := predict.NewModel(p.RefInApp, sel.Labels, sel.Reps)
	if err != nil {
		return nil, err
	}
	return &Subset{
		Mask: mask, RequestedK: k, Dendro: d, Points: pts,
		Selection: sel, Model: model,
	}, nil
}

// Package fault is the deterministic fault-injection layer under the
// measurement path. The paper's Step D exists because real
// measurements misbehave — representatives are re-measured with ≥10
// invocations and a median, and ill-behaved ones are replaced — yet a
// simulator is always instant, clean and available. This package
// restores the misbehavior on demand: a seeded injector wraps any
// Measurer and imposes multiplicative noise, wild outlier invocations,
// transient errors, hangs (visible only through context deadlines),
// latency, and machine-down episodes, all declared in a JSON fault
// profile so chaos runs are configuration, not code.
//
// Everything is deterministic. Each injection decision is drawn from a
// SplitMix64 stream seeded by the fault profile's seed and the
// measurement's identity (machine, codelet, mode, attempt number), so
// a chaos run replays exactly under a fixed seed regardless of how the
// profiler schedules its goroutines — the same property internal/rng
// gives the GA and the random-clustering baseline.
package fault

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"
	"time"

	"fgbs/internal/ir"
	"fgbs/internal/rng"
	"fgbs/internal/sim"
	"fgbs/internal/stats"
)

// Measurer is the measurement path: anything that can produce a
// sim.Measurement for one codelet on one machine. The raw simulator,
// the fault injector, and the robust retry protocol all implement it,
// so the pipeline composes them freely.
type Measurer interface {
	Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error)
}

// Sim is the clean Measurer: the raw simulator with no faults. It is
// the default bottom of every measurement stack.
type Sim struct{}

// Measure runs the simulator, honoring ctx between nothing — the
// simulation itself is atomic and fast; cancellation is checked on
// entry so a canceled profiling run stops scheduling new work.
func (Sim) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sim.Measure(p, c, opts)
}

// TransientError marks a failure worth retrying: the fault is expected
// to clear (a flaky target, a dropped connection, a machine-down
// episode with an end). Permanent failures are every other error.
type TransientError struct {
	Err error
}

// Error describes the transient failure.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the cause for errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is retryable: a TransientError
// anywhere in its chain, or a context deadline (a hang that a
// per-attempt timeout cut short — the next attempt may not hang).
// Context cancellation is NOT transient: the caller gave up.
func IsTransient(err error) bool {
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// Sentinel causes the injector wraps in TransientError or returns
// bare (permanent).
var (
	// ErrMachineDown is a machine-down episode: the target is
	// unreachable for a bounded number of attempts. Always transient.
	ErrMachineDown = errors.New("fault: machine down")
	// ErrInjected is a generic injected transient failure.
	ErrInjected = errors.New("fault: injected transient failure")
	// ErrBroken is an injected permanent failure: the measurement can
	// never succeed (a codelet that crashes the target, say).
	ErrBroken = errors.New("fault: measurement permanently broken")
)

// Rule is one fault clause of a profile. Machine and Codelet restrict
// which measurements it applies to ("" or "*" match everything); the
// first matching rule wins. All rates are probabilities in [0, 1],
// evaluated independently per attempt from the deterministic stream.
type Rule struct {
	// Machine matches arch.Machine.Name ("" or "*" = every machine).
	Machine string `json:"machine,omitempty"`
	// Codelet matches ir.Codelet.Name ("" or "*" = every codelet).
	Codelet string `json:"codelet,omitempty"`

	// NoiseAmp adds multiplicative per-invocation noise: each
	// invocation's time is scaled by 1 + NoiseAmp*u with u uniform in
	// [-1, 1]. This stacks on top of the simulator's own probe noise.
	NoiseAmp float64 `json:"noiseAmp,omitempty"`
	// OutlierRate is the probability an invocation is a wild outlier
	// (scaled by OutlierScale) — the misbehavior MAD rejection exists
	// to absorb.
	OutlierRate float64 `json:"outlierRate,omitempty"`
	// OutlierScale is the outlier multiplier (default 10).
	OutlierScale float64 `json:"outlierScale,omitempty"`
	// TransientRate is the probability an attempt fails with an
	// injected transient error.
	TransientRate float64 `json:"transientRate,omitempty"`
	// PermanentRate is the probability an attempt fails permanently
	// (ErrBroken, not retryable).
	PermanentRate float64 `json:"permanentRate,omitempty"`
	// HangRate is the probability an attempt hangs until its context
	// is canceled or times out — the failure mode only visible through
	// per-attempt deadlines.
	HangRate float64 `json:"hangRate,omitempty"`
	// DownFor fails the first DownFor attempts of every matching
	// measurement with ErrMachineDown: a deterministic machine-down
	// episode that retries with backoff ride out.
	DownFor int `json:"downFor,omitempty"`
	// Delay imposes real latency per attempt (a Go duration string,
	// e.g. "15ms"), bounded by the attempt's context.
	Delay string `json:"delay,omitempty"`

	delay time.Duration // parsed form of Delay
}

// ruleFields lists the valid JSON fields of a Rule, for the
// flag-validation errors the CLIs print.
const ruleFields = "machine, codelet, noiseAmp, outlierRate, outlierScale, transientRate, permanentRate, hangRate, downFor, delay"

// Profile is a declarative fault profile: a seed and an ordered rule
// list. The zero value injects nothing and is byte-transparent.
type Profile struct {
	// Seed drives every injection decision. Two chaos runs with the
	// same profile and workload are identical.
	Seed uint64 `json:"seed,omitempty"`
	// Rules are matched first-to-last; the first match applies.
	Rules []Rule `json:"rules,omitempty"`
}

// Fingerprint returns a stable content hash of the profile — the hex
// SHA-256 of its canonical JSON encoding. It identifies the injected
// fault configuration in pipeline stage keys (StageOptions.
// MeasurerKey): runs under the same profile share measurement
// artifacts, runs under different ones never collide.
func (p *Profile) Fingerprint() string {
	b, err := json.Marshal(p)
	if err != nil {
		// Profiles are plain data; Marshal cannot fail on one. Keep a
		// distinct constant anyway rather than panicking in a path that
		// only derives cache identity.
		return "fault:unencodable"
	}
	sum := sha256.Sum256(b)
	return "fault:" + hex.EncodeToString(sum[:])
}

// Validate checks every rule: rates in [0, 1], non-negative episode
// lengths, parsable delays. It also parses Delay strings in place.
func (p *Profile) Validate() error {
	for i := range p.Rules {
		r := &p.Rules[i]
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"noiseAmp", r.NoiseAmp},
			{"outlierRate", r.OutlierRate},
			{"transientRate", r.TransientRate},
			{"permanentRate", r.PermanentRate},
			{"hangRate", r.HangRate},
		} {
			if f.v < 0 || f.v > 1 {
				return fmt.Errorf("fault: rule %d: %s must be in [0,1], got %g", i, f.name, f.v)
			}
		}
		if r.OutlierScale < 0 {
			return fmt.Errorf("fault: rule %d: outlierScale must be >= 0, got %g", i, r.OutlierScale)
		}
		if r.DownFor < 0 {
			return fmt.Errorf("fault: rule %d: downFor must be >= 0, got %d", i, r.DownFor)
		}
		if r.Delay != "" {
			d, err := time.ParseDuration(r.Delay)
			if err != nil || d < 0 {
				return fmt.Errorf("fault: rule %d: delay %q is not a non-negative Go duration", i, r.Delay)
			}
			r.delay = d
		}
	}
	return nil
}

// Parse decodes and validates a JSON fault profile. Unknown fields are
// rejected with an error listing the valid ones, matching the
// repository's flag-validation convention.
func Parse(data []byte) (*Profile, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: invalid profile: %w (valid fields: seed, rules; rule fields: %s)", err, ruleFields)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and validates a fault profile file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}

// match returns the first rule applying to (machine, codelet), or nil.
func (p *Profile) match(machine, codelet string) *Rule {
	for i := range p.Rules {
		r := &p.Rules[i]
		if (r.Machine == "" || r.Machine == "*" || r.Machine == machine) &&
			(r.Codelet == "" || r.Codelet == "*" || r.Codelet == codelet) {
			return r
		}
	}
	return nil
}

// Stats are the injector's cumulative counters, for /metricz and chaos
// assertions.
type Stats struct {
	Calls      int64 `json:"calls"`
	Noisy      int64 `json:"noisy"`
	Outliers   int64 `json:"outliers"`
	Transients int64 `json:"transients"`
	Permanents int64 `json:"permanents"`
	Hangs      int64 `json:"hangs"`
	Downs      int64 `json:"downs"`
	Delays     int64 `json:"delays"`
}

// Injector is a Measurer that perturbs another Measurer according to a
// Profile. Safe for concurrent use.
type Injector struct {
	profile *Profile
	base    Measurer

	mu       sync.Mutex
	attempts map[string]int // per-measurement attempt counter, guarded by mu
	stats    Stats          // guarded by mu
}

// NewInjector wraps base (nil = the raw simulator) with profile (nil =
// inject nothing).
func NewInjector(profile *Profile, base Measurer) *Injector {
	if profile == nil {
		profile = &Profile{}
	}
	if base == nil {
		base = Sim{}
	}
	return &Injector{
		profile:  profile,
		base:     base,
		attempts: make(map[string]int),
	}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// nextAttempt returns the 0-based attempt index for a measurement key.
func (in *Injector) nextAttempt(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Calls++
	n := in.attempts[key]
	in.attempts[key] = n + 1
	return n
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// stream derives the deterministic decision stream for one attempt of
// one measurement. The hash covers the full identity, so concurrent
// profiling schedules cannot reorder outcomes.
func (in *Injector) stream(machine, codelet string, mode sim.Mode, attempt int) *rng.RNG {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d", in.profile.Seed, machine, codelet, mode, attempt)
	return rng.New(h.Sum64())
}

// Measure applies the first matching rule to one measurement attempt:
// machine-down episodes and injected failures surface as errors,
// delays and hangs consume real time (bounded by ctx), and noise and
// outliers perturb the invocation times of an otherwise-successful
// measurement, re-deriving the median exactly as the simulator does.
func (in *Injector) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	machine := ""
	if opts.Machine != nil {
		machine = opts.Machine.Name
	}
	rule := in.profile.match(machine, c.Name)
	if rule == nil {
		return in.base.Measure(ctx, p, c, opts)
	}
	key := fmt.Sprintf("%s|%s|%d", machine, c.Name, opts.Mode)
	attempt := in.nextAttempt(key)
	r := in.stream(machine, c.Name, opts.Mode, attempt)

	if rule.delay > 0 {
		in.count(func(s *Stats) { s.Delays++ })
		// The allowed wall-clock timer: latency injection is this
		// package's purpose, and the delay is bounded by ctx.
		t := time.NewTimer(rule.delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if attempt < rule.DownFor {
		in.count(func(s *Stats) { s.Downs++ })
		return nil, Transient(fmt.Errorf("%w: %s (attempt %d of a %d-attempt episode)",
			ErrMachineDown, machine, attempt+1, rule.DownFor))
	}
	if rule.HangRate > 0 && r.Bool(rule.HangRate) {
		in.count(func(s *Stats) { s.Hangs++ })
		// A hang is only observable through the caller's deadline: the
		// attempt blocks until its context gives up, then reports the
		// context's own error so the retry layer classifies it.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if rule.PermanentRate > 0 && r.Bool(rule.PermanentRate) {
		in.count(func(s *Stats) { s.Permanents++ })
		return nil, fmt.Errorf("%w: %s on %s", ErrBroken, c.Name, machine)
	}
	if rule.TransientRate > 0 && r.Bool(rule.TransientRate) {
		in.count(func(s *Stats) { s.Transients++ })
		return nil, Transient(fmt.Errorf("%w: %s on %s (attempt %d)", ErrInjected, c.Name, machine, attempt+1))
	}

	meas, err := in.base.Measure(ctx, p, c, opts)
	if err != nil {
		return nil, err
	}
	in.perturb(meas, rule, r)
	return meas, nil
}

// perturb scales the measurement's invocation times by per-invocation
// noise and outlier factors, then re-derives the median summary the
// same way sim.Measure does.
func (in *Injector) perturb(meas *sim.Measurement, rule *Rule, r *rng.RNG) {
	if rule.NoiseAmp <= 0 && rule.OutlierRate <= 0 {
		return
	}
	outlierScale := rule.OutlierScale
	if outlierScale <= 0 {
		outlierScale = 10
	}
	noisy, outliers := false, int64(0)
	for i := range meas.Invocations {
		factor := 1.0
		if rule.NoiseAmp > 0 {
			factor *= 1 + rule.NoiseAmp*(2*r.Float64()-1)
			noisy = true
		}
		if rule.OutlierRate > 0 && r.Bool(rule.OutlierRate) {
			factor *= outlierScale
			outliers++
		}
		inv := &meas.Invocations[i]
		inv.Seconds *= factor
		inv.Counters.Seconds *= factor
		inv.Counters.Cycles *= factor
	}
	if noisy {
		in.count(func(s *Stats) { s.Noisy++ })
	}
	if outliers > 0 {
		in.count(func(s *Stats) { s.Outliers += outliers })
	}

	times := make([]float64, len(meas.Invocations))
	for i, inv := range meas.Invocations {
		times[i] = inv.Seconds
	}
	meas.Seconds = stats.Median(times)
	bestIdx, bestDiff := 0, -1.0
	for i, inv := range meas.Invocations {
		d := inv.Seconds - meas.Seconds
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestIdx, bestDiff = i, d
		}
	}
	meas.Counters = meas.Invocations[bestIdx].Counters
}

package pipeline

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadProfile: arbitrary input must produce an error or a valid
// profile — never a panic or an inconsistent result.
func FuzzReadProfile(f *testing.F) {
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"codelets":["alpha_copy"],"apps":["alpha"]}`))
	f.Add([]byte(strings.Repeat("[", 100)))
	// A real serialized profile as a seed.
	prof, err := NewProfile(tinySuite(), Options{Seed: 1})
	if err == nil {
		var buf bytes.Buffer
		if err := prof.SaveJSON(&buf); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data), tinySuite())
		if err != nil {
			return
		}
		// Accepted profiles must be internally consistent.
		if len(p.RefInApp) != p.N() || len(p.Features) != p.N() {
			t.Fatal("accepted inconsistent profile")
		}
		for _, tgt := range p.TargetInApp {
			if len(tgt) != p.N() {
				t.Fatal("accepted inconsistent target measurements")
			}
		}
	})
}

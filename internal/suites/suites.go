// Package suites names the benchmark suites the pipeline can profile
// and maps each name to its IR programs. It is the single registry the
// CLI (cmd/fgbs), the daemon (cmd/fgbsd) and the serving layer
// (internal/server) share, so "valid suite" means the same thing
// everywhere. Besides the hand-built suites, every synthetic suite
// registered by internal/corpus resolves here too — materialized
// deterministically on demand from its seed, so downstream consumers
// cannot tell generated programs from curated ones.
package suites

import (
	"fmt"
	"strings"

	"fgbs/internal/corpus"
	"fgbs/internal/ir"
	"fgbs/internal/suites/nas"
	"fgbs/internal/suites/nr"
	"fgbs/internal/suites/poly"
)

// Names returns the valid suite names in canonical order: the
// hand-built suites first, then the registered synthetic ones.
func Names() []string {
	return append([]string{"nas", "nr", "poly", "joint"}, corpus.SuiteNames()...)
}

// Valid reports whether name is a known suite.
func Valid(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Programs returns the IR programs of the named suite. The error for
// an unknown name lists the valid ones.
func Programs(name string) ([]*ir.Program, error) {
	switch name {
	case "nr":
		return nr.Suite(), nil
	case "nas":
		return nas.Suite(), nil
	case "poly":
		return poly.Suite(), nil
	case "joint":
		return append(nas.Suite(), poly.Suite()...), nil
	default:
		if corpus.IsSuite(name) {
			return corpus.BuildSuite(name)
		}
		return nil, fmt.Errorf("suites: unknown suite %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
}

package features

import (
	"strings"
	"testing"
)

// FuzzParseMask: ParseMask must never panic and must round-trip every
// string it accepts.
func FuzzParseMask(f *testing.F) {
	f.Add(strings.Repeat("0", NumFeatures))
	f.Add(strings.Repeat("1", NumFeatures))
	f.Add(PaperMask().String())
	f.Add("101")
	f.Add("")
	f.Add(strings.Repeat("2", NumFeatures))
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMask(s)
		if err != nil {
			return
		}
		if m.String() != s {
			t.Errorf("accepted %q but round-trips to %q", s, m.String())
		}
	})
}

package stage

import (
	"bytes"
	"container/list"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
)

// bufPool recycles the scratch buffers artifact bytes are encoded
// into. Profile artifacts run to megabytes of JSON; without pooling,
// every persist allocates and grows a fresh buffer of that size.
// Codecs must not retain the readers or writers they are handed — the
// buffer behind them returns to the pool when the call ends, and
// tiers copy what they keep (see Backend's Put contract).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Codec serializes one stage's artifacts for the Store's byte tiers.
// Stages whose artifacts are not worth persisting (cheap to recompute,
// or referencing in-memory structures) resolve with a nil Codec and
// live only in the value LRU.
type Codec interface {
	// Filename is the artifact's name inside a local tier's directory.
	// Names should be qualified by the artifact's key (the profile
	// stage embeds a key prefix) so differently-keyed resolves never
	// share a file; a Codec may additionally implement LegacyNamer to
	// keep reading files written under an older, unqualified layout.
	Filename() string
	// Encode writes the artifact.
	Encode(w io.Writer, v any) error
	// Decode reads it back. Any error means "rebuild", never "fail".
	Decode(r io.Reader) (any, error)
	// Persist reports whether v should be written at all — the hook
	// that keeps degraded profiles off disk (a restart should retry the
	// measurements, not resurrect the outage).
	Persist(v any) bool
}

// LegacyNamer is an optional Codec extension: a second, read-only
// filename probed when Filename misses. It exists for artifacts
// persisted before filenames were key-qualified (the registry's bare
// <suite>.json profiles); fresh artifacts are always written under
// Filename, never the legacy name.
type LegacyNamer interface {
	// LegacyFilename returns the fallback name, or "" when no legacy
	// layout applies to this resolve.
	LegacyFilename() string
}

// Counters is one hit/miss row, either a per-stage breakdown entry or
// the store-wide total.
type Counters struct {
	// Hits served from the in-memory value LRU.
	Hits int64 `json:"hits"`
	// Joined resolves that coalesced onto another caller's in-flight
	// computation of the same key.
	Joined int64 `json:"joined"`
	// Misses that entered fill (tier probe, then compute).
	Misses int64 `json:"misses"`
	// Computes are misses no tier could satisfy: the stage's compute
	// function actually ran. Misses - Computes = misses served from a
	// byte tier.
	Computes int64 `json:"computes"`
	// DiskHits are misses satisfied by decoding the disk tier's
	// artifact (other tiers' hits are under Stats.Tiers).
	DiskHits int64 `json:"diskHits"`
	// DiskWrites are computed artifacts persisted to the disk tier.
	DiskWrites int64 `json:"diskWrites"`
}

func (c *Counters) add(d Counters) {
	c.Hits += d.Hits
	c.Joined += d.Joined
	c.Misses += d.Misses
	c.Computes += d.Computes
	c.DiskHits += d.DiskHits
	c.DiskWrites += d.DiskWrites
}

// Stats is a Store snapshot for /metricz.
type Stats struct {
	Entries  int                  `json:"entries"`
	Capacity int                  `json:"capacity"`
	Total    Counters             `json:"total"`
	Stages   map[string]Counters  `json:"stages"`
	Disk     DiskStats            `json:"disk"`
	Tiers    map[string]TierStats `json:"tiers"`
}

// Tier health states reported by DiskHealth, Stats.Disk.State, and
// each tier's Stats row. (The Disk* names predate the tier plane; they
// apply to every tier.)
const (
	// DiskDisabled: the store has no such tier.
	DiskDisabled = "disabled"
	// DiskOK: the tier is serving normally.
	DiskOK = "ok"
	// DiskDegraded: the tier's breaker has tripped; the store serves
	// around it, probing the tier every diskProbeInterval-th
	// operation.
	DiskDegraded = "degraded"
)

// DiskStats is the disk tier's legacy health row — an alias view of
// Stats.Tiers["disk"] kept for one release so /metricz and /healthz
// consumers keep working.
type DiskStats struct {
	// State is DiskDisabled, DiskOK, or DiskDegraded.
	State string `json:"state"`
	// Errors counts I/O failures against the disk tier (cumulative).
	Errors int64 `json:"errors"`
	// Quarantined counts artifacts renamed to *.corrupt after failing
	// integrity or decode checks (cumulative).
	Quarantined int64 `json:"quarantined"`
}

// Outcome reports how one Resolve was satisfied.
type Outcome struct {
	// Cached means compute did not run: the value came from the LRU,
	// from a coalesced in-flight computation, or from a byte tier.
	Cached bool
	// Disk means the value was decoded from the disk tier's artifact
	// (alias of Tier == TierDisk).
	Disk bool
	// Tier names the byte tier that served the artifact ("" when it
	// came from the value LRU, a coalesced flight, or compute).
	Tier string
}

// diskBreakerThreshold is how many consecutive I/O failures trip a
// tier's breaker (mirrors the serving layer's
// DefaultBreakerThreshold).
const diskBreakerThreshold = 3

// diskProbeInterval is how many tier operations are skipped between
// half-open probes while a breaker is open.
const diskProbeInterval = 16

// Store memoizes stage artifacts on two planes. The value plane is an
// in-memory LRU over content addresses with per-key singleflight
// coalescing (concurrent resolves of the same key run compute once and
// share the outcome); artifacts are treated as immutable once stored —
// the same contract pipeline.Profile already carries — so values are
// shared, never copied. Beneath it, for stages with a Codec, sits an
// ordered chain of byte tiers (see Backend): a value miss probes the
// tiers top to bottom, a tier hit is decoded and its bytes promoted
// into every tier above, and a computed artifact is written through
// the whole chain.
type Store struct {
	cap   int
	tiers []Backend

	mu       sync.Mutex
	ll       *list.List            // front = most recently used; guarded by mu
	items    map[Key]*list.Element // guarded by mu
	inflight map[Key]*flight       // guarded by mu
	stages   map[string]*Counters  // guarded by mu
	refs     map[Key]Ref           // byte-tier names per resolved key; guarded by mu
}

// entry is one LRU slot.
type entry struct {
	key Key
	val any
}

// flight is one in-progress computation; done is closed when val/out/
// err are final.
type flight struct {
	done chan struct{}
	val  any
	out  Outcome
	err  error
}

// NewStore builds a store holding at most capacity artifacts in
// memory, persisting Codec-bearing stages under dir ("" disables the
// byte tiers). The dir form is the single-node configuration: one
// framed, breakered disk tier. Multi-tier chains come from
// NewTieredStore.
func NewStore(capacity int, dir string) *Store {
	var tiers []Backend
	if dir != "" {
		tiers = []Backend{Framed(Breakered(NewDiskBackend(dir)))}
	}
	return NewTieredStore(capacity, tiers)
}

// NewTieredStore builds a store resolving byte misses through tiers,
// in order (typically from NewTierChain). An empty chain disables the
// byte plane; Codec-bearing stages then live memory-only.
func NewTieredStore(capacity int, tiers []Backend) *Store {
	if capacity <= 0 {
		capacity = 1
	}
	return &Store{
		cap:      capacity,
		tiers:    tiers,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		stages:   make(map[string]*Counters),
		refs:     make(map[Key]Ref),
	}
}

// Tiers returns the store's byte-tier chain, in resolve order.
func (s *Store) Tiers() []Backend {
	out := make([]Backend, len(s.tiers))
	copy(out, s.tiers)
	return out
}

// tier returns the chain member with the given name, or nil.
func (s *Store) tier(name string) Backend {
	for _, t := range s.tiers {
		if t.Name() == name {
			return t
		}
	}
	return nil
}

// DiskHealth reports the disk tier's state: DiskDisabled, DiskOK, or
// DiskDegraded. The serving layer surfaces it on /healthz (alongside
// the full per-tier map).
func (s *Store) DiskHealth() string {
	t := s.tier(TierDisk)
	if t == nil {
		return DiskDisabled
	}
	return t.Stats().State
}

// counterLocked returns stage's counter row, creating it on first use.
func (s *Store) counterLocked(stage string) *Counters {
	//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
	c := s.stages[stage]
	if c == nil {
		c = &Counters{}
		//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
		s.stages[stage] = c
	}
	return c
}

// Resolve returns the artifact stored under key, computing and storing
// it on a miss. Exactly one caller runs compute per key at a time;
// concurrent resolves of the same key wait for that caller's outcome.
// A failed compute is not stored — the flight is dropped so a later
// Resolve retries. ctx bounds this caller's wait and is the context
// compute runs under; a caller whose ctx expires while coalesced gives
// up alone, without aborting the computing caller.
func (s *Store) Resolve(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, Outcome{}, err
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.counterLocked(stage).Hits++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, Outcome{Cached: true}, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.counterLocked(stage).Joined++
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Outcome{}, ctx.Err()
		}
		if f.err != nil {
			return nil, Outcome{}, f.err
		}
		return f.val, Outcome{Cached: true, Disk: f.out.Disk, Tier: f.out.Tier}, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.counterLocked(stage).Misses++
	s.mu.Unlock()

	// finish publishes the flight's outcome exactly once: drop the
	// flight (so a failure can retry), store a success, wake waiters.
	finish := func() {
		s.mu.Lock()
		delete(s.inflight, key)
		if f.err == nil {
			if el, ok := s.items[key]; ok {
				el.Value.(*entry).val = f.val
				s.ll.MoveToFront(el)
			} else {
				s.items[key] = s.ll.PushFront(&entry{key: key, val: f.val})
				for s.ll.Len() > s.cap {
					last := s.ll.Back()
					s.ll.Remove(last)
					delete(s.items, last.Value.(*entry).key)
				}
			}
		}
		s.mu.Unlock()
		close(f.done)
	}
	// finish must run even when compute panics — otherwise the dead
	// flight stays in s.inflight and every later Resolve of the key
	// blocks on it until its own ctx expires, wedging the key for the
	// process lifetime. The panic is re-propagated after waiters are
	// handed an error, so they fail fast and can retry.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.val, f.out = nil, Outcome{}
				f.err = fmt.Errorf("stage: %s compute panicked: %v", stage, r)
				finish()
				panic(r)
			}
			finish()
		}()
		f.val, f.out, f.err = s.fill(ctx, stage, key, codec, compute)
	}()
	return f.val, f.out, f.err
}

// refFor derives the byte-tier Ref for one codec-bearing resolve and
// records it so FetchFramed can serve the artifact later.
func (s *Store) refFor(key Key, codec Codec) Ref {
	ref := Ref{Key: key, Name: codec.Filename()}
	if ln, ok := codec.(LegacyNamer); ok {
		if n := ln.LegacyFilename(); n != "" && n != ref.Name {
			ref.Legacy = n
		}
	}
	s.mu.Lock()
	s.refs[key] = ref
	s.mu.Unlock()
	return ref
}

// fill satisfies a miss: the byte tiers first (when the stage has a
// Codec), then compute, writing the fresh artifact through the chain.
func (s *Store) fill(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	tiered := codec != nil && len(s.tiers) > 0
	var ref Ref
	if tiered {
		ref = s.refFor(key, codec)
		for i, tier := range s.tiers {
			payload, err := tier.Get(ctx, ref)
			if err != nil {
				// A miss, an I/O failure, or corruption (already
				// quarantined and counted by the tier's decorators):
				// fall through to the next tier, then to compute — the
				// artifact can always be regenerated.
				continue
			}
			v, err := codec.Decode(bytes.NewReader(payload))
			if err != nil {
				// The frame verified but the codec rejects the payload
				// (stale schema, truncated legacy file): quarantine in
				// the serving tier and keep falling through.
				quarantineTier(ctx, tier, ref)
				continue
			}
			s.promote(ctx, ref, payload, i)
			name := tier.Name()
			s.mu.Lock()
			if name == TierDisk {
				s.counterLocked(stage).DiskHits++
			}
			s.mu.Unlock()
			return v, Outcome{Cached: true, Disk: name == TierDisk, Tier: name}, nil
		}
	}
	v, err := compute(ctx)
	if err != nil {
		return nil, Outcome{}, err
	}
	s.mu.Lock()
	s.counterLocked(stage).Computes++
	s.mu.Unlock()
	if tiered && codec.Persist(v) {
		s.writeThrough(ctx, stage, ref, codec, v)
	}
	return v, Outcome{}, nil
}

// promote copies a tier hit's bytes into every tier above it, so the
// next resolve finds the artifact at the fastest tier that will hold
// it. Promotion failures are the receiving tier's problem (its breaker
// saw them); the resolve already has its artifact.
func (s *Store) promote(ctx context.Context, ref Ref, payload []byte, hit int) {
	for i := hit - 1; i >= 0; i-- {
		s.tiers[i].Put(ctx, ref, payload)
	}
}

// writeThrough encodes a computed artifact once and offers it to every
// tier. Failures feed the per-tier breakers but never fail the resolve
// (the artifact is already in memory; tier copies are an
// optimization). A failed encode writes nowhere — an unencodable
// artifact is not a tier failure.
func (s *Store) writeThrough(ctx context.Context, stage string, ref Ref, codec Codec, v any) {
	// Encode into a pooled buffer, then hand the bytes to the tiers:
	// the encoder's many small writes land in memory, a failed encode
	// never reaches a device, and the frame header needs the payload's
	// checksum before the first byte leaves the process.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := codec.Encode(buf, v); err != nil {
		return
	}
	payload := buf.Bytes()
	for _, tier := range s.tiers {
		written, err := tier.Put(ctx, ref, payload)
		if written && err == nil && tier.Name() == TierDisk {
			s.mu.Lock()
			s.counterLocked(stage).DiskWrites++
			s.mu.Unlock()
		}
	}
}

// FetchFramed returns the framed bytes of a previously resolved
// artifact — the peer-fetch endpoint's read path. Only keys this
// store has resolved through a Codec are servable (the Ref carries the
// tier filename); remote tiers are skipped so peers never bounce a
// fetch back and forth. ErrNotFound means this node cannot serve the
// key.
func (s *Store) FetchFramed(ctx context.Context, key Key) ([]byte, error) {
	s.mu.Lock()
	ref, ok := s.refs[key]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	for _, tier := range s.tiers {
		if isRemote(tier) {
			continue
		}
		if fg, ok := tier.(framedGetter); ok {
			if data, err := fg.GetFramed(ctx, ref); err == nil {
				return data, nil
			}
			continue
		}
		// A bare tier holds raw payload bytes; frame them for the wire.
		if payload, err := tier.Get(ctx, ref); err == nil {
			return Frame(payload), nil
		}
	}
	return nil, ErrNotFound
}

// Keys lists the content addresses this store can serve over
// FetchFramed, sorted for determinism — the artifact index a peer (or
// an operator) enumerates.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	keys := make([]Key, 0, len(s.refs))
	for k := range s.refs {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Put stores an externally produced artifact under key, replacing any
// existing value — the adoption path for artifacts loaded from legacy
// cache files, which must win over whatever a rebuild would produce.
func (s *Store) Put(key Key, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: v})
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*entry).key)
	}
}

// Delete evicts key from the value LRU; byte-tier artifacts, when any,
// are left alone. Callers use it to serve an artifact once without
// memoizing it — a later Resolve of the same key recomputes or reloads
// from a tier.
func (s *Store) Delete(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
}

// Get peeks at the value LRU without counting a hit or touching
// recency.
func (s *Store) Get(key Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).val, true
}

// Len returns the current in-memory artifact count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats snapshots the counters: the value plane's per-stage rows plus
// one row per byte tier. Stats.Disk mirrors the disk tier's row for
// consumers of the pre-tier layout.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Entries:  s.ll.Len(),
		Capacity: s.cap,
		Stages:   make(map[string]Counters, len(s.stages)),
	}
	for name, c := range s.stages {
		st.Stages[name] = *c
		st.Total.add(*c)
	}
	s.mu.Unlock()
	st.Tiers = make(map[string]TierStats, len(s.tiers))
	for _, t := range s.tiers {
		st.Tiers[t.Name()] = t.Stats()
	}
	st.Disk = DiskStats{State: DiskDisabled}
	if row, ok := st.Tiers[TierDisk]; ok {
		st.Disk = DiskStats{State: row.State, Errors: row.Errors, Quarantined: row.Quarantined}
	}
	return st
}

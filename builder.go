package fgbs

// Suite authoring surface. The whole point of benchmark subsetting is
// to apply it to *your* workloads: write each application's hot loops
// as codelets in the loop-nest IR, then run the same profile/subset/
// evaluate pipeline the bundled NR and NAS suites use. See
// examples/customsuite for a complete program.

import "fgbs/internal/ir"

// Element types.
const (
	I64 = ir.I64
	F32 = ir.F32
	F64 = ir.F64
)

// DType is an array element type.
type DType = ir.DType

// Loop is a counted loop over [Lower, Upper) with unit step.
type Loop = ir.Loop

// Assign is a store statement; the only side effect in the IR.
type Assign = ir.Assign

// Stmt is a loop-body statement (Assign or nested Loop).
type Stmt = ir.Stmt

// Expr is a side-effect-free expression.
type Expr = ir.Expr

// Affine is an integer affine form used in loop bounds.
type Affine = ir.Affine

// IntInit selects integer-array initialization (steering indirect
// accesses); see the IntInit* constants.
type IntInit = ir.IntInit

// Integer-array initializers.
const (
	IntInitZero    = ir.IntInitZero
	IntInitUniform = ir.IntInitUniform
	IntInitMod     = ir.IntInitMod
)

// Vectorization hints for Assign.Hint.
const (
	VecAuto  = ir.VecAuto
	VecNever = ir.VecNever
)

// NewProgram starts an application definition.
func NewProgram(name string) *Program { return ir.NewProgram(name) }

// Affine-form constructors for loop bounds: AC(k) is the constant k,
// AV(name) references a parameter or enclosing loop variable, and
// AT(name, c) is c*name.
func AC(k int64) Affine              { return ir.AC(k) }
func AV(name string) Affine          { return ir.AV(name) }
func AT(name string, c int64) Affine { return ir.AT(name, c) }

// Expression constructors. V references a loop variable or parameter;
// CI/CF/CF32 are integer, f64 and f32 literals.
func V(name string) Expr  { return ir.V(name) }
func CI(v int64) Expr     { return ir.CI(v) }
func CF(v float64) Expr   { return ir.CF(v) }
func CF32(v float64) Expr { return ir.CF32(v) }
func Add(a, b Expr) Expr  { return ir.Add(a, b) }
func Sub(a, b Expr) Expr  { return ir.Sub(a, b) }
func Mul(a, b Expr) Expr  { return ir.Mul(a, b) }
func DivE(a, b Expr) Expr { return ir.Div(a, b) }
func Abs(a Expr) Expr     { return ir.Abs(a) }
func Sqrt(a Expr) Expr    { return ir.Sqrt(a) }
func Exp(a Expr) Expr     { return ir.Exp(a) }
func Widen(a Expr) Expr   { return ir.Widen(a) }
func Narrow(a Expr) Expr  { return ir.Narrow(a) }

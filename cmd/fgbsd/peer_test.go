package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fgbs/internal/stage"
)

// TestPeerArtifactPlane is the two-daemon e2e behind ci.sh's artifact
// plane gate: daemon A profiles syn-smoke and completes the canonical
// sweep job; daemon B starts over an empty directory with -peers
// pointing at A and runs the same sweep. The multi-node contract under
// test — B's result is byte-identical to A's, B never invokes the
// simulator (its profile arrives through the peer tier: zero computes,
// at least one peer hit, nothing quarantined), the fetched artifact is
// promoted onto B's own disk with its integrity frame intact, and A's
// /v1/artifacts endpoints serve frame-verified bytes with a 404 for
// keys A never resolved.
func TestPeerArtifactPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs two daemons")
	}
	bin := buildDaemon(t)

	dirA := t.TempDir()
	a := startDaemon(t, bin, dirA, "")
	defer a.stop(t)
	idA := a.submitSweep(t)
	a.pollDone(t, idA)
	ref := a.result(t, idA)
	if len(ref) == 0 {
		t.Fatal("warm daemon produced an empty sweep result")
	}

	// A's artifact plane: the index lists the resolved profile, each
	// entry frame-verifies on the wire, unknown keys miss with 404.
	keys := artifactIndex(t, a)
	if len(keys) == 0 {
		t.Fatal("warm daemon serves no artifacts")
	}
	for _, key := range keys {
		data := fetchArtifact(t, a, key)
		if framed, err := stage.VerifyFrame(data); !framed || err != nil {
			t.Errorf("artifact %s from warm daemon: framed=%v err=%v", key, framed, err)
		}
	}
	if resp, err := http.Get(a.base + "/v1/artifacts/" + strings.Repeat("ab", 32)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown key status = %d, want 404", resp.StatusCode)
		}
	}

	// Cold daemon B: empty directory, A as its peer.
	dirB := t.TempDir()
	b := startDaemon(t, bin, dirB, "", "-peers", a.base)
	defer b.stop(t)
	idB := b.submitSweep(t)
	b.pollDone(t, idB)
	if got := b.result(t, idB); !bytes.Equal(got, ref) {
		t.Errorf("peer-served sweep differs from warm run:\n got %d bytes: %.120s\nwant %d bytes: %.120s", len(got), got, len(ref), ref)
	}

	// Zero simulator invocations on B: the profile stage never computed.
	if n := b.metricInt(t, "stages", "stages", "profile", "computes"); n != 0 {
		t.Errorf("cold daemon ran %d profile computes, want 0 (peer must serve)", n)
	}
	if n := b.metricInt(t, "stages", "tiers", stage.TierPeer, "hits"); n < 1 {
		t.Errorf("peer tier hits = %d, want >= 1", n)
	}
	if n := b.metricInt(t, "stages", "tiers", stage.TierPeer, "quarantined"); n != 0 {
		t.Errorf("peer tier quarantined = %d, want 0", n)
	}
	if n := b.metricInt(t, "registry", "peerLoads"); n != 1 {
		t.Errorf("registry peerLoads = %d, want 1", n)
	}
	// The fetch was promoted onto B's disk tier, frame intact.
	verifyArtifacts(t, dirB)
}

// artifactIndex fetches a daemon's /v1/artifacts key list.
func artifactIndex(t *testing.T, d *daemon) []string {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var index struct {
		Count int      `json:"count"`
		Keys  []string `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact index: status=%d err=%v", resp.StatusCode, err)
	}
	if index.Count != len(index.Keys) {
		t.Fatalf("artifact index count=%d but %d keys", index.Count, len(index.Keys))
	}
	return index.Keys
}

// fetchArtifact fetches one framed artifact, asserting a 200.
func fetchArtifact(t *testing.T, d *daemon, key string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/artifacts/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s: status=%d err=%v", key, resp.StatusCode, err)
	}
	return data
}

package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"fgbs/internal/stats"
)

// Runner defaults. Quick mode trades repetitions for wall time — the
// workloads themselves are identical, so quick medians stay comparable
// to a full-mode baseline (only their dispersion estimate is coarser).
const (
	// DefaultReps is the timed repetition count per spec — the §3.4
	// "at least 10 invocations, take the median" floor with headroom
	// for MAD rejection.
	DefaultReps = 25
	// DefaultWarmup runs before timing starts: code and data caches
	// fill, lazy initialization happens off the clock.
	DefaultWarmup = 3
	// QuickReps/QuickWarmup are the CI-gate settings.
	QuickReps   = 8
	QuickWarmup = 1
	// DefaultMADK rejects repetitions more than 3.5 consistent MADs
	// from the median — the same cut internal/measure applies to
	// simulated invocations, here absorbing GC pauses and scheduler
	// noise instead of injected faults.
	DefaultMADK = 3.5
)

// Config tunes a Runner.
type Config struct {
	// Reps is the timed repetition count per spec (<=0 = default).
	Reps int
	// Warmup is the untimed repetition count per spec: negative means
	// "use the default", zero genuinely disables warmup.
	Warmup int
	// Quick switches Reps/Warmup to the CI-gate defaults when they are
	// unset, and is recorded in the Run for provenance.
	Quick bool
	// MADK is the outlier-rejection threshold in consistent MADs
	// (0 = default; negative disables rejection).
	MADK float64
	// Now is the clock; tests inject a scripted one. nil = time.Now.
	Now func() time.Time
}

func (c *Config) fill() {
	if c.Reps <= 0 {
		if c.Quick {
			c.Reps = QuickReps
		} else {
			c.Reps = DefaultReps
		}
	}
	if c.Warmup < 0 {
		if c.Quick {
			c.Warmup = QuickWarmup
		} else {
			c.Warmup = DefaultWarmup
		}
	}
	//fgbs:allow floatcompare exact-zero sentinel: 0 means "use the default", never a computed value
	if c.MADK == 0 {
		c.MADK = DefaultMADK
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Result is one spec's measured summary.
type Result struct {
	Name string `json:"name"`
	// Reps is the timed repetition count; Rejected of them were MAD
	// outliers excluded from the median.
	Reps     int `json:"reps"`
	Rejected int `json:"rejected"`
	// MedianNS/MADNS summarize per-repetition wall time in
	// nanoseconds: the median of the surviving repetitions and the
	// median absolute deviation across all of them.
	MedianNS float64 `json:"medianNs"`
	MADNS    float64 `json:"madNs"`
	// AllocsPerOp/BytesPerOp are heap allocations and bytes per
	// repetition, averaged over the timed phase.
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// RunVersion is the trajectory file's schema version; bump it when the
// Run layout changes incompatibly.
const RunVersion = 1

// Run is one full benchmark run — the document BENCH_<n>.json persists.
type Run struct {
	Version int      `json:"version"`
	Quick   bool     `json:"quick"`
	Reps    int      `json:"reps"`
	Results []Result `json:"results"`
}

// Lookup returns the run's result for name.
func (r *Run) Lookup(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Runner executes specs under one Config.
type Runner struct {
	cfg Config
}

// NewRunner builds a runner; cfg's unset fields take defaults.
func NewRunner(cfg Config) *Runner {
	cfg.fill()
	return &Runner{cfg: cfg}
}

// Run executes every spec in order and returns the summarized run.
// Specs run sequentially — concurrent specs would time each other's
// scheduler pressure.
func (r *Runner) Run(ctx context.Context, specs []Spec) (*Run, error) {
	out := &Run{Version: RunVersion, Quick: r.cfg.Quick, Reps: r.cfg.Reps}
	for _, sp := range specs {
		res, err := r.runSpec(ctx, sp)
		if err != nil {
			return nil, fmt.Errorf("bench: spec %s: %w", sp.Name, err)
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// runSpec times one spec: setup, warmup, timed repetitions, summary.
func (r *Runner) runSpec(ctx context.Context, sp Spec) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	inst, err := sp.Setup(ctx)
	if err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	if inst.Cleanup != nil {
		defer inst.Cleanup()
	}
	for i := 0; i < r.cfg.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := inst.Op(); err != nil {
			return Result{}, fmt.Errorf("warmup %d: %w", i, err)
		}
	}

	// A collection between warmup and timing keeps one spec's garbage
	// from billing its GC pause to the next repetitions.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	times := make([]float64, r.cfg.Reps)
	for i := 0; i < r.cfg.Reps; i++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		start := r.cfg.Now()
		if err := inst.Op(); err != nil {
			return Result{}, fmt.Errorf("rep %d: %w", i, err)
		}
		times[i] = float64(r.cfg.Now().Sub(start).Nanoseconds())
	}
	runtime.ReadMemStats(&m1)

	if inst.Verify != nil {
		if err := inst.Verify(); err != nil {
			return Result{}, fmt.Errorf("verify: %w", err)
		}
	}
	return summarize(sp.Name, times, r.cfg.MADK, m1.Mallocs-m0.Mallocs, m1.TotalAlloc-m0.TotalAlloc), nil
}

// summarize applies the §3.4 protocol to the repetition times: MAD
// outlier rejection, then the median of the survivors. The MAD itself
// is reported over all repetitions, so the dispersion estimate is not
// flattered by its own rejection.
func summarize(name string, times []float64, madK float64, mallocs, bytes uint64) Result {
	keep := stats.MADKeep(times, madK)
	kept := make([]float64, len(keep))
	for j, i := range keep {
		kept[j] = times[i]
	}
	reps := len(times)
	return Result{
		Name:        name,
		Reps:        reps,
		Rejected:    reps - len(keep),
		MedianNS:    stats.Median(kept),
		MADNS:       stats.MAD(times),
		AllocsPerOp: float64(mallocs) / float64(reps),
		BytesPerOp:  float64(bytes) / float64(reps),
	}
}

package maqao

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

func build(t *testing.T, name string, body func(p *ir.Program) *ir.Loop) (*ir.Program, *ir.Codelet) {
	t.Helper()
	p := ir.NewProgram("t")
	p.SetParam("n", 10000)
	c := &ir.Codelet{Name: name, Invocations: 1, Loop: body(p)}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestDivCount(t *testing.T) {
	p, c := build(t, "div", func(p *ir.Program) *ir.Loop {
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.Div(p.LoadE("b", ir.V("i")), p.LoadE("a", ir.V("i")))},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.NumFPDiv != 1 {
		t.Errorf("NumFPDiv = %g, want 1", s.NumFPDiv)
	}
	if s.EstIPCL1 <= 0 {
		t.Error("EstIPCL1 not positive")
	}
}

func TestVectorizedLoopHasNoSD(t *testing.T) {
	p, c := build(t, "axpy", func(p *ir.Program) *ir.Loop {
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Add(p.LoadE("a", ir.V("i")), ir.Mul(ir.CF(2), p.LoadE("b", ir.V("i"))))},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.NumSD != 0 {
		t.Errorf("vectorized DP loop reports %g SD instructions", s.NumSD)
	}
	if s.VecRatioAll != 1 {
		t.Errorf("VecRatioAll = %g", s.VecRatioAll)
	}
	if s.AddSubMulRatio != 1 {
		t.Errorf("AddSubMulRatio = %g, want 1 (one add, one mul)", s.AddSubMulRatio)
	}
}

func TestScalarDPLoopReportsSD(t *testing.T) {
	p, c := build(t, "rec", func(p *ir.Program) *ir.Loop {
		p.AddArray("a", ir.F64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Mul(p.LoadE("a", ir.Sub(ir.V("i"), ir.CI(1))), ir.CF(0.5))},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.NumSD == 0 {
		t.Error("scalar DP recurrence reports no SD instructions")
	}
	if s.DepStallCycles <= 0 {
		t.Error("recurrence shows no dependency stalls")
	}
	if s.RecurrenceShare != 1 {
		t.Errorf("RecurrenceShare = %g", s.RecurrenceShare)
	}
}

func TestStorePressureAndBytes(t *testing.T) {
	p, c := build(t, "set", func(p *ir.Program) *ir.Loop {
		p.AddArray("a", ir.F64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.CF(0)},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.BytesStoredPerCycle <= 0 {
		t.Error("no store bytes per cycle")
	}
	if s.StoresPerIter != 1 || s.LoadsPerIter != 0 {
		t.Errorf("loads/stores per iter = %g/%g", s.LoadsPerIter, s.StoresPerIter)
	}
	if s.PressureStore <= 0 {
		t.Error("no store port pressure")
	}
}

func TestTriangularWeighting(t *testing.T) {
	// A nest with two innermost loops of different shapes still gets
	// finite, positive aggregates.
	p, c := build(t, "two", func(p *ir.Program) *ir.Loop {
		p.AddArray("m", ir.F64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AC(100), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("i"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("m", ir.V("j")), RHS: ir.CF(1)},
			}},
			&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AC(50), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("m", ir.V("k")), RHS: ir.CF(2)},
			}},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.LoopInstr <= 0 || s.CyclesPerIterL1 <= 0 {
		t.Errorf("aggregates not positive: %+v", s)
	}
}

func TestGatherCounted(t *testing.T) {
	p, c := build(t, "gather", func(p *ir.Program) *ir.Loop {
		p.AddArray("a", ir.F64, ir.AV("n"))
		p.AddArray("v", ir.F64, ir.AV("n"))
		p.AddArray("idx", ir.I64, ir.AV("n"))
		return &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("v", p.LoadE("idx", ir.V("i")))},
		}}
	})
	s := Analyze(p, c, arch.Reference())
	if s.GatherLoadsPerIter != 1 {
		t.Errorf("GatherLoadsPerIter = %g", s.GatherLoadsPerIter)
	}
	if s.VecRatioAll != 0 {
		t.Errorf("gather loop vectorized: %g", s.VecRatioAll)
	}
}

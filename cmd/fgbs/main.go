// Command fgbs runs the benchmark-subsetting pipeline and regenerates
// the paper's tables and figures.
//
// Usage:
//
//	fgbs <experiment> [flags]
//
// Experiments (see DESIGN.md's per-experiment index):
//
//	t1        Table 1  — test architectures
//	t2        Table 2  — GA feature selection on NR
//	t3        Table 3  — NR clustering with per-codelet detail
//	t4        Table 4  — NR prediction errors at K=14 and the elbow K
//	t5        Table 5  — reduction factor breakdown (NAS)
//	f2        Figure 2 — per-codelet prediction for two NR clusters
//	f3        Figure 3 — error/reduction trade-off sweep (NAS)
//	f4        Figure 4 — per-codelet prediction on a target (NAS)
//	f5        Figure 5 — application-level prediction (NAS)
//	f6        Figure 6 — geometric mean speedups (NAS)
//	f7        Figure 7 — guided vs random clusterings (NAS)
//	f8        Figure 8 — cross-application vs per-application subsetting
//	summary   headline numbers in one screen
//	clusters  cluster memberships at the elbow K
//	dendro    Ward dendrogram merge history
//	show      pseudo-source of a codelet (-codelet name)
//	save      profile a suite and write it to -cache
//	export    data series: -what eval|sweep|features (CSV) or
//	          evaljson|subsetjson|select (the JSON forms the fgbsd
//	          service also returns)
//	corpus    synthetic-suite generator (internal/corpus): with no
//	          flags, list the codelet families, their axes and the
//	          registered synthetic suites; with -family name -n N,
//	          materialize N standalone codelets of that family under
//	          -seed; with a synthetic -suite (syn-*), materialize the
//	          registered suite. Output is the canonical corpus dump —
//	          byte-identical for a given seed at every -j — to stdout
//	          or -out
//	bench     run the internal/bench spec registry — the repository's
//	          performance trajectory (see the README's "Performance
//	          trajectory" section). Writes a human table by default,
//	          machine JSON with -json, and with -compare diffs the run
//	          against a committed BENCH_<n>.json baseline, exiting
//	          nonzero on regressions beyond -tolerance
//
// Flags:
//
//	-suite name     suite to analyze: nas, nr, poly, joint, or a
//	                registered synthetic suite (syn-smoke, syn-mix-240,
//	                syn-apps-96, syn-mix-960) materialized on demand by
//	                internal/corpus (default nas)
//	-family name    corpus: codelet family to generate (run 'fgbs
//	                corpus' with no flags for the catalog)
//	-n N            corpus: how many codelets to generate (default 100)
//	-target name    target machine for f2/f4/f7 (default depends)
//	-k N            cluster count (0 = elbow)
//	-seed N         experiment seed (default 1)
//	-trials N       random clusterings per K for f7 (default 1000)
//	-full           full-size GA for t2 (population 1000 x 100
//	                generations, as in the paper; slow)
//	-paperfeatures  use the exact Table 2 feature set instead of the
//	                default mask
//	-cache path     load the profile from path if it exists; the save
//	                experiment writes it (profiling is the expensive
//	                step — cache it once, then every experiment is
//	                instant)
//	-codelet name   codelet for the show experiment
//	-what kind      export kind: eval, sweep, features, evaljson,
//	                subsetjson or select
//	-j N            parallel workers for the f3/f7 sweeps and the
//	                sweep export (0 = GOMAXPROCS, 1 = serial); the
//	                output is identical at every worker count
//	-stagecache N   in-memory stage artifact cache size (entries,
//	                default 256). Experiments resolve the pipeline
//	                through a content-addressed stage graph, so
//	                repeated work within one run (a K sweep's shared
//	                clustering, say) is computed once.
//	-stagedir path  also persist stage artifacts (the profile) under
//	                this directory and load them back on later runs —
//	                the directory-shaped analogue of -cache, sharing
//	                its <suite>-<key>.json layout with fgbsd's
//	                -profiledir (and reading the bare <suite>.json
//	                files earlier releases wrote)
//	-peers list     comma-separated base URLs of fgbsd daemons; adds a
//	                peer tier to the stage store that fetches artifacts
//	                from their /v1/artifacts/{key} endpoints before
//	                recomputing, so a CLI run can reuse a daemon's
//	                already-built profile
//	-stagetiers l   comma-separated stage tier order (memory, disk,
//	                peer); default: disk when -stagedir is set, then
//	                peer when -peers is set
//	-faultprofile p JSON fault-injection profile applied to every
//	                measurement, with the robust retry/outlier-rejection
//	                protocol mounted on top (chaos testing; see the
//	                README's "Chaos testing" section). Validated before
//	                any profiling starts.
//	-spec pattern   bench: run only specs matching this regexp
//	-reps N         bench: timed repetitions per spec (0 = default)
//	-warmup N       bench: untimed warmup repetitions per spec
//	                (-1 = default, 0 = none)
//	-quick          bench: CI-gate settings — fewer repetitions, same
//	                workloads, so medians stay comparable to a full run
//	-json           bench: write the machine-readable run to stdout
//	-out path       bench: also write the JSON run to path (the form
//	                committed as BENCH_<n>.json); corpus: write the
//	                dump to path instead of stdout
//	-compare path   bench: diff this run against the baseline at path
//	                and exit nonzero on regression
//	-tolerance pct  bench: regression threshold in percent for -compare
//	                (default 20)
//
// SIGINT/SIGTERM cancel the running experiment: long sweeps and GA
// runs abort at the next unit of work instead of ignoring Ctrl-C.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"

	"fgbs/internal/arch"
	"fgbs/internal/corpus"
	"fgbs/internal/fault"
	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/measure"
	"fgbs/internal/pipeline"
	"fgbs/internal/report"
	"fgbs/internal/stage"
	"fgbs/internal/suites"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fgbs:", err)
		os.Exit(1)
	}
}

type config struct {
	suite      string
	target     string
	k          int
	seed       uint64
	trials     int
	full       bool
	paperSet   bool
	cache      string
	codelet    string
	what       string
	family     string
	n          int
	jobs       int
	faultPath  string
	stageCache int
	stageDir   string
	peers      string
	stageTiers string
	// bench-only flags (the bench experiment shares the flag set).
	benchSpec    string
	benchReps    int
	benchWarmup  int
	benchQuick   bool
	benchJSON    bool
	benchOut     string
	benchCompare string
	tolerance    float64
	// measurer is the fault-injection + robust-measurement stack built
	// from -faultprofile; nil keeps the pipeline fault-unaware (and
	// byte-identical to earlier releases). measurerKey is its stage-key
	// identity (the fault profile's fingerprint).
	measurer    fault.Measurer
	measurerKey string
	// engine resolves experiments through the content-addressed stage
	// graph; built in run() once flags are validated.
	engine *pipeline.Engine
}

// stageOpts assembles the engine inputs for one suite.
func (c config) stageOpts(suite string) pipeline.StageOptions {
	return pipeline.StageOptions{
		Options:     pipeline.Options{Seed: c.seed, Measurer: c.measurer},
		MeasurerKey: c.measurerKey,
		DiskName:    suite + ".json",
	}
}

// workers resolves the -j flag (0 = GOMAXPROCS).
func (c config) workers() int {
	if c.jobs == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.jobs
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fgbs <experiment> [flags]; run 'go doc fgbs/cmd/fgbs' for the list")
	}
	exp := args[0]
	fs := flag.NewFlagSet("fgbs", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.suite, "suite", "nas", "suite: nas, nr, poly, joint, or a registered synthetic syn-* suite")
	fs.StringVar(&cfg.target, "target", "", "target machine name")
	fs.IntVar(&cfg.k, "k", 0, "cluster count (0 = elbow)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "experiment seed")
	fs.IntVar(&cfg.trials, "trials", 1000, "random clusterings per K (f7)")
	fs.BoolVar(&cfg.full, "full", false, "full-size GA run for t2")
	fs.BoolVar(&cfg.paperSet, "paperfeatures", false, "use the exact Table 2 feature set")
	fs.StringVar(&cfg.cache, "cache", "", "profile cache file (load if present; 'save' writes it)")
	fs.StringVar(&cfg.codelet, "codelet", "", "codelet name for 'show'")
	fs.StringVar(&cfg.what, "what", "eval", "export kind: eval, sweep, features, evaljson, subsetjson or select")
	fs.StringVar(&cfg.family, "family", "", "corpus: codelet family to generate")
	fs.IntVar(&cfg.n, "n", 100, "corpus: codelets to generate with -family")
	fs.IntVar(&cfg.jobs, "j", 0, "parallel workers for f3/f7 and the sweep export (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.faultPath, "faultprofile", "", "JSON fault-injection profile (chaos testing)")
	fs.IntVar(&cfg.stageCache, "stagecache", 256, "in-memory stage artifact cache size (entries)")
	fs.StringVar(&cfg.stageDir, "stagedir", "", "directory for persisted stage artifacts (optional)")
	fs.StringVar(&cfg.peers, "peers", "", "comma-separated base URLs of peer fgbsd daemons")
	fs.StringVar(&cfg.stageTiers, "stagetiers", "", "comma-separated stage tier order (memory, disk, peer)")
	fs.StringVar(&cfg.benchSpec, "spec", "", "bench: run only specs matching this regexp")
	fs.IntVar(&cfg.benchReps, "reps", 0, "bench: timed repetitions per spec (0 = default)")
	fs.IntVar(&cfg.benchWarmup, "warmup", -1, "bench: untimed warmup repetitions (-1 = default, 0 = none)")
	fs.BoolVar(&cfg.benchQuick, "quick", false, "bench: CI-gate repetition counts")
	fs.BoolVar(&cfg.benchJSON, "json", false, "bench: machine-readable output")
	fs.StringVar(&cfg.benchOut, "out", "", "bench: also write the JSON run to this path")
	fs.StringVar(&cfg.benchCompare, "compare", "", "bench: baseline BENCH_<n>.json to diff against")
	fs.Float64Var(&cfg.tolerance, "tolerance", 20, "bench: regression threshold in percent for -compare")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := validate(cfg); err != nil {
		return err
	}
	if cfg.faultPath != "" {
		fp, err := fault.Load(cfg.faultPath)
		if err != nil {
			return fmt.Errorf("-faultprofile: %w", err)
		}
		cfg.measurer = measure.New(fault.NewInjector(fp, nil), measure.Config{})
		cfg.measurerKey = fp.Fingerprint()
	}
	store, err := buildStore(cfg)
	if err != nil {
		return err
	}
	cfg.engine = pipeline.NewEngine(store)

	if exp == "t1" {
		return report.Table1(os.Stdout, arch.All())
	}
	if exp == "bench" {
		return cmdBench(ctx, cfg)
	}
	if exp == "corpus" {
		return cmdCorpus(cfg)
	}

	mask := features.DefaultMask()
	if cfg.paperSet {
		mask = features.PaperMask()
	}

	switch exp {
	case "t2":
		return cmdGA(ctx, cfg)
	case "t3", "f2":
		st, err := profile(ctx, cfg, "nr")
		if err != nil {
			return err
		}
		prof := st.Profile()
		ti, err := prof.TargetIndex(pickS(cfg.target, "Atom"))
		if err != nil {
			return err
		}
		sub, ev, err := st.Evaluate(ctx, mask, pick(cfg.k, 14), ti)
		if err != nil {
			return err
		}
		if exp == "t3" {
			return report.Table3(os.Stdout, prof, sub, ev)
		}
		return report.Figure2(os.Stdout, prof, sub, ev, []int{0, 1})
	case "t4":
		st, err := profile(ctx, cfg, "nr")
		if err != nil {
			return err
		}
		prof := st.Profile()
		elbow, err := prof.Elbow(mask)
		if err != nil {
			return err
		}
		return report.Table4(os.Stdout, prof, mask, []int{14, elbow}, []string{"Atom", "Sandy Bridge"})
	case "t5":
		st, err := profile(ctx, cfg, "nas")
		if err != nil {
			return err
		}
		sub, err := st.Subset(ctx, mask, cfg.k)
		if err != nil {
			return err
		}
		return report.Table5(os.Stdout, st.Profile(), sub)
	case "f3":
		st, err := profile(ctx, cfg, "nas")
		if err != nil {
			return err
		}
		prof := st.Profile()
		pts, err := st.SweepKParallel(ctx, mask, 2, 24, cfg.workers(), nil)
		if err != nil {
			return err
		}
		elbow, err := prof.Elbow(mask)
		if err != nil {
			return err
		}
		return report.Figure3(os.Stdout, prof, pts, elbow)
	case "f4":
		st, err := profile(ctx, cfg, "nas")
		if err != nil {
			return err
		}
		prof := st.Profile()
		ti, err := prof.TargetIndex(pickS(cfg.target, "Sandy Bridge"))
		if err != nil {
			return err
		}
		_, ev, err := st.Evaluate(ctx, mask, cfg.k, ti)
		if err != nil {
			return err
		}
		return report.Figure4(os.Stdout, prof, ev)
	case "f5", "f6", "summary":
		st, err := profile(ctx, cfg, cfg.suite)
		if err != nil {
			return err
		}
		prof := st.Profile()
		sub, err := st.Subset(ctx, mask, cfg.k)
		if err != nil {
			return err
		}
		var evals []*pipeline.Eval
		for t := range prof.Targets {
			_, ev, err := st.Evaluate(ctx, mask, cfg.k, t)
			if err != nil {
				return err
			}
			evals = append(evals, ev)
		}
		switch exp {
		case "f5":
			return report.Figure5(os.Stdout, prof, evals)
		case "f6":
			return report.Figure6(os.Stdout, evals)
		default:
			return summary(prof, sub, evals)
		}
	case "f7":
		st, err := profile(ctx, cfg, "nas")
		if err != nil {
			return err
		}
		ti, err := st.Profile().TargetIndex(pickS(cfg.target, "Atom"))
		if err != nil {
			return err
		}
		var rows []pipeline.RandomClusteringStats
		for _, k := range []int{4, 8, 12, 16, 20, 24} {
			rcs, err := st.RandomClusteringsParallel(ctx, mask, k, cfg.trials, ti, cfg.seed, cfg.workers(), nil)
			if err != nil {
				return err
			}
			rows = append(rows, rcs)
		}
		return report.Figure7(os.Stdout, pickS(cfg.target, "Atom"), rows)
	case "f8":
		st, err := profile(ctx, cfg, "nas")
		if err != nil {
			return err
		}
		prof := st.Profile()
		var cross, per []pipeline.PerAppPoint
		for _, reps := range []int{1, 2, 3, 4, 6, 8, 10, 12} {
			pp, err := prof.PerAppSubsettingContext(ctx, mask, reps)
			if err != nil {
				return err
			}
			per = append(per, pp)
			cp, err := prof.CrossAppPoint(mask, pp.TotalReps)
			if err != nil {
				return err
			}
			cross = append(cross, cp)
		}
		return report.Figure8(os.Stdout, prof, cross, per)
	case "save":
		if cfg.cache == "" {
			return fmt.Errorf("save needs -cache <path>")
		}
		prof, err := pipelineProfileFresh(ctx, cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(cfg.cache)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prof.SaveJSON(f); err != nil {
			return err
		}
		fmt.Printf("profiled %d codelets of %s; cached to %s\n", prof.N(), cfg.suite, cfg.cache)
		return nil
	case "show":
		return cmdShow(cfg)
	case "export":
		st, err := profile(ctx, cfg, cfg.suite)
		if err != nil {
			return err
		}
		prof := st.Profile()
		switch cfg.what {
		case "eval", "evaljson":
			ti, err := prof.TargetIndex(pickS(cfg.target, "Atom"))
			if err != nil {
				return err
			}
			_, ev, err := st.Evaluate(ctx, mask, cfg.k, ti)
			if err != nil {
				return err
			}
			if cfg.what == "evaljson" {
				return report.WriteJSON(os.Stdout, report.NewEvalJSON(prof, ev))
			}
			return report.EvalCSV(os.Stdout, prof, ev)
		case "subsetjson":
			sub, err := st.Subset(ctx, mask, cfg.k)
			if err != nil {
				return err
			}
			sj := report.NewSubsetJSON(prof, sub)
			sj.Suite = cfg.suite
			return report.WriteJSON(os.Stdout, sj)
		case "select":
			sub, err := st.Subset(ctx, mask, cfg.k)
			if err != nil {
				return err
			}
			var evals []*pipeline.Eval
			for t := range prof.Targets {
				_, ev, err := st.Evaluate(ctx, mask, cfg.k, t)
				if err != nil {
					return err
				}
				evals = append(evals, ev)
			}
			sj := report.NewSelectJSON(prof, sub, evals)
			sj.Suite = cfg.suite
			return report.WriteJSON(os.Stdout, sj)
		case "sweep":
			pts, err := st.SweepKParallel(ctx, mask, 2, 24, cfg.workers(), nil)
			if err != nil {
				return err
			}
			return report.SweepCSV(os.Stdout, prof, pts)
		case "features":
			return report.FeaturesCSV(os.Stdout, prof)
		default:
			return fmt.Errorf("unknown export kind %q", cfg.what)
		}
	case "dendro":
		st, err := profile(ctx, cfg, cfg.suite)
		if err != nil {
			return err
		}
		sub, err := st.Subset(ctx, mask, cfg.k)
		if err != nil {
			return err
		}
		return report.DendrogramTree(os.Stdout, st.Profile(), sub)
	case "clusters":
		st, err := profile(ctx, cfg, cfg.suite)
		if err != nil {
			return err
		}
		sub, err := st.Subset(ctx, mask, cfg.k)
		if err != nil {
			return err
		}
		return printClusters(st.Profile(), sub)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// buildStore assembles the stage store's byte-tier chain from
// -stagedir, -peers and -stagetiers, rejecting bad combinations before
// any profiling starts.
func buildStore(cfg config) (*stage.Store, error) {
	var peers, names []string
	if cfg.peers != "" {
		for _, p := range strings.Split(cfg.peers, ",") {
			p = strings.TrimSpace(p)
			u, err := url.Parse(p)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return nil, fmt.Errorf("-peers: peer %q: want an absolute http(s) base URL", p)
			}
			peers = append(peers, p)
		}
	}
	if cfg.stageTiers != "" {
		for _, name := range strings.Split(cfg.stageTiers, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	} else {
		names = stage.DefaultTierNames(cfg.stageDir, peers)
	}
	tiers, err := stage.NewTierChain(names, stage.TierConfig{Dir: cfg.stageDir, Peers: peers})
	if err != nil {
		return nil, fmt.Errorf("-stagetiers: %w", err)
	}
	return stage.NewTieredStore(cfg.stageCache, tiers), nil
}

// pipelineProfileFresh always re-profiles (ignoring any cache), which
// is what 'save' wants.
func pipelineProfileFresh(ctx context.Context, cfg config) (*pipeline.Profile, error) {
	progs, err := suites.Programs(cfg.suite)
	if err != nil {
		return nil, err
	}
	return pipeline.NewProfileContext(ctx, progs, pipeline.Options{Seed: cfg.seed, Measurer: cfg.measurer})
}

// exportKinds are the valid -what values.
var exportKinds = []string{"eval", "sweep", "features", "evaljson", "subsetjson", "select"}

// validate rejects bad flag values up front, with errors that list the
// valid choices, instead of failing deep inside the pipeline after
// seconds of profiling.
func validate(cfg config) error {
	if cfg.k < 0 {
		return fmt.Errorf("-k must be >= 0 (0 = elbow rule), got %d", cfg.k)
	}
	if !suites.Valid(cfg.suite) {
		return fmt.Errorf("unknown suite %q (valid: %s)", cfg.suite, strings.Join(suites.Names(), ", "))
	}
	kindOK := false
	for _, k := range exportKinds {
		kindOK = kindOK || k == cfg.what
	}
	if !kindOK {
		return fmt.Errorf("unknown export kind %q (valid: %s)", cfg.what, strings.Join(exportKinds, ", "))
	}
	if cfg.target != "" {
		if _, err := arch.ByName(cfg.target); err != nil {
			var names []string
			for _, m := range arch.All() {
				names = append(names, m.Name)
			}
			return fmt.Errorf("unknown target %q (valid: %s)", cfg.target, strings.Join(names, ", "))
		}
	}
	if cfg.family != "" {
		if _, err := corpus.FamilyByName(cfg.family); err != nil {
			return fmt.Errorf("-family: %w", err)
		}
	}
	if cfg.n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", cfg.n)
	}
	if cfg.trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", cfg.trials)
	}
	if cfg.jobs < 0 {
		return fmt.Errorf("-j must be >= 0 (0 = GOMAXPROCS), got %d", cfg.jobs)
	}
	if cfg.benchReps < 0 {
		return fmt.Errorf("-reps must be >= 0 (0 = default), got %d", cfg.benchReps)
	}
	if cfg.tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0 percent, got %g", cfg.tolerance)
	}
	return nil
}

// profile resolves the suite through the stage graph: a -cache file is
// adopted as the profile artifact, anything else resolves via the
// engine (in-memory, then -stagedir, then a fresh build).
func profile(ctx context.Context, cfg config, suite string) (*pipeline.Staged, error) {
	progs, err := suites.Programs(suite)
	if err != nil {
		return nil, err
	}
	if cfg.cache != "" {
		if f, err := os.Open(cfg.cache); err == nil {
			defer f.Close()
			prof, err := pipeline.ReadProfile(f, progs)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w (re-create with 'save')", cfg.cache, err)
			}
			return cfg.engine.Adopt(progs, cfg.stageOpts(suite), prof), nil
		}
	}
	st, _, err := cfg.engine.Profile(ctx, progs, cfg.stageOpts(suite))
	return st, err
}

func cmdShow(cfg config) error {
	progs, err := suites.Programs(cfg.suite)
	if err != nil {
		return err
	}
	if cfg.codelet == "" {
		var names []string
		for _, p := range progs {
			for _, c := range p.Codelets {
				names = append(names, c.Name)
			}
		}
		return fmt.Errorf("show needs -codelet <name>; available: %s", strings.Join(names, " "))
	}
	for _, p := range progs {
		for _, c := range p.Codelets {
			if c.Name == cfg.codelet {
				fmt.Print(c.Source())
				return nil
			}
		}
	}
	return fmt.Errorf("codelet %q not in suite %q", cfg.codelet, cfg.suite)
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func pickS(v, def string) string {
	if v != "" {
		return v
	}
	return def
}

func cmdGA(ctx context.Context, cfg config) error {
	st, err := profile(ctx, cfg, "nr")
	if err != nil {
		return err
	}
	fitness, err := st.Profile().FeatureFitnessContext(ctx, "Atom", "Sandy Bridge")
	if err != nil {
		return err
	}
	opts := ga.Options{
		Population: 120, Generations: 40, MutationProb: 0.01, Seed: cfg.seed,
		OnGeneration: func(gen int, best float64, _ features.Mask) {
			if gen%10 == 0 {
				fmt.Printf("generation %d: best fitness %.3f\n", gen, best)
			}
		},
	}
	if cfg.full {
		// The paper's configuration (§4.2).
		opts.Population, opts.Generations = 1000, 100
	}
	res, err := ga.RunContext(ctx, fitness, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest fitness %.3f after %d evaluations; %d features selected:\n\n",
		res.BestFitness, res.Evaluations, res.Best.Count())
	return report.Table2(os.Stdout, res.Best)
}

func summary(prof *pipeline.Profile, sub *pipeline.Subset, evals []*pipeline.Eval) error {
	ill := 0
	for _, b := range prof.IllBehaved {
		if b {
			ill++
		}
	}
	fmt.Printf("codelets: %d (%d ill-behaved)\nclusters: %d (requested %d, %d destroyed)\n",
		prof.N(), ill, sub.K(), sub.RequestedK, sub.Selection.Destroyed)
	for _, ev := range evals {
		fmt.Printf("%-13s median err %.1f%%  reduction x%.1f  geomean speedup real %.2f predicted %.2f\n",
			ev.Target.Name, ev.Summary.Median*100, ev.Reduction.Total,
			ev.GeoMeanRealSpeedup, ev.GeoMeanPredictedSpeedup)
	}
	return nil
}

func printClusters(prof *pipeline.Profile, sub *pipeline.Subset) error {
	reps := map[int]bool{}
	for _, r := range sub.Selection.Reps {
		reps[r] = true
	}
	groups := make([][]string, sub.K())
	for i, l := range sub.Selection.Labels {
		name := prof.Codelets[i].Name
		if reps[i] {
			name = "<" + name + ">"
		}
		groups[l] = append(groups[l], name)
	}
	for c, g := range groups {
		sort.Strings(g)
		fmt.Printf("C%-2d %v\n", c+1, g)
	}
	return nil
}

package stage

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Artifact integrity framing. Every artifact the store writes is
// prefixed with a one-line header carrying a schema version and a
// SHA-256 checksum of the payload:
//
//	fgbs-artifact v1 sha256:<64 hex> len:<decimal>\n
//	<payload bytes>
//
// On load the header is verified before the codec ever sees the
// payload, so a torn write, a flipped bit, or a frame from a future
// layout is detected as corruption — quarantined, recomputed — instead
// of being decoded into a half-plausible artifact. Files without the
// magic prefix are pre-framing artifacts and decode as before; they
// gain a frame the next time they are written.

// frameMagic opens every framed artifact. No JSON document can start
// with it, so framed and legacy files are unambiguous.
const frameMagic = "fgbs-artifact"

// frameVersion is the current frame layout. Frames from any other
// version are treated as corrupt (quarantined and recomputed) rather
// than guessed at.
const frameVersion = 1

// VerifyFrame checks one artifact's bytes against their integrity
// frame. framed is false for legacy files without a frame (no
// integrity claim to check); err is non-nil when the frame fails
// verification. Harnesses (the crash-recovery e2e) use it to assert
// every surviving artifact verifies after a kill.
func VerifyFrame(data []byte) (framed bool, err error) {
	_, framed, err = unframe(data)
	return framed, err
}

// Frame returns payload prefixed with its integrity frame — the at-
// rest and on-the-wire form of every artifact. Harnesses use it to
// stage artifacts a peer endpoint would serve; the Framed decorator
// uses it on every Put.
func Frame(payload []byte) []byte {
	h := frameHeader(payload)
	out := make([]byte, 0, len(h)+len(payload))
	out = append(out, h...)
	return append(out, payload...)
}

// frameHeader builds the header line for payload.
func frameHeader(payload []byte) string {
	sum := sha256.Sum256(payload)
	return fmt.Sprintf("%s v%d sha256:%s len:%d\n", frameMagic, frameVersion, hex.EncodeToString(sum[:]), len(payload))
}

// unframe validates data's frame and returns the payload. framed is
// false for legacy files without the magic prefix — the payload is the
// file verbatim and no integrity claim is made. A non-nil error means
// the file claims to be framed but fails verification: truncated
// header, unsupported version, length or checksum mismatch.
func unframe(data []byte) (payload []byte, framed bool, err error) {
	if !bytes.HasPrefix(data, []byte(frameMagic+" ")) {
		return data, false, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, true, fmt.Errorf("stage: truncated frame header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 {
		return nil, true, fmt.Errorf("stage: malformed frame header %q", data[:nl])
	}
	ver, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
	if err != nil || !strings.HasPrefix(fields[1], "v") {
		return nil, true, fmt.Errorf("stage: malformed frame version %q", fields[1])
	}
	if ver != frameVersion {
		return nil, true, fmt.Errorf("stage: artifact has frame version %d, this build reads version %d", ver, frameVersion)
	}
	wantSum, ok := strings.CutPrefix(fields[2], "sha256:")
	if !ok {
		return nil, true, fmt.Errorf("stage: malformed frame digest %q", fields[2])
	}
	wantLen, err := strconv.Atoi(strings.TrimPrefix(fields[3], "len:"))
	if err != nil || !strings.HasPrefix(fields[3], "len:") {
		return nil, true, fmt.Errorf("stage: malformed frame length %q", fields[3])
	}
	payload = data[nl+1:]
	if len(payload) != wantLen {
		return nil, true, fmt.Errorf("stage: artifact payload is %d bytes, frame says %d (truncated write?)", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, true, fmt.Errorf("stage: artifact checksum mismatch")
	}
	return payload, true, nil
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
		{[]float64{1, 1, 1, 100}, 1},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("q.25 = %g, want 2", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(-0.1) did not panic")
		}
	}()
	Quantile([]float64{1}, -0.1)
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %g", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean with negative value should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) should be NaN")
	}
}

func TestMAD(t *testing.T) {
	// median = 3, deviations = {2,1,0,1,2}, MAD = 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD(1..5) = %g, want 1", got)
	}
	// A single wild value cannot inflate the MAD.
	if got := MAD([]float64{1, 2, 3, 4, 1e9}); got > 2 {
		t.Errorf("MAD with outlier = %g, want robust (<= 2)", got)
	}
	if got := MAD([]float64{7, 7, 7}); got != 0 {
		t.Errorf("MAD of constants = %g, want 0", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) should be NaN")
	}
}

func TestMADKeep(t *testing.T) {
	xs := []float64{10, 10.1, 9.9, 10.05, 500}
	keep := MADKeep(xs, 3.5)
	if len(keep) != 4 {
		t.Fatalf("MADKeep kept %v, want the 4 inliers", keep)
	}
	for _, i := range keep {
		if i == 4 {
			t.Errorf("outlier index survived: %v", keep)
		}
	}
	// Zero-dispersion and disabled-k cases keep everything.
	if keep := MADKeep([]float64{5, 5, 5, 5}, 3.5); len(keep) != 4 {
		t.Errorf("constant samples: kept %v, want all", keep)
	}
	if keep := MADKeep(xs, 0); len(keep) != len(xs) {
		t.Errorf("k=0 should keep all, kept %v", keep)
	}
	if keep := MADKeep(nil, 3.5); len(keep) != 0 {
		t.Errorf("MADKeep(nil) = %v, want empty", keep)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 4}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Variance(2,4) = %g, want 1 (population)", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance singleton = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max(%v) = %g/%g", xs, Min(xs), Max(xs))
	}
}

func TestNormalize(t *testing.T) {
	rows := [][]float64{
		{1, 10, 5},
		{2, 20, 5},
		{3, 30, 5},
	}
	Normalize(rows)
	// Column means ~0, stddev ~1; constant column zeroed.
	for c := 0; c < 3; c++ {
		col := []float64{rows[0][c], rows[1][c], rows[2][c]}
		if !almostEqual(Mean(col), 0, 1e-9) {
			t.Errorf("col %d mean = %g", c, Mean(col))
		}
	}
	for c := 0; c < 2; c++ {
		col := []float64{rows[0][c], rows[1][c], rows[2][c]}
		if !almostEqual(StdDev(col), 1, 1e-9) {
			t.Errorf("col %d sd = %g", c, StdDev(col))
		}
	}
	if rows[0][2] != 0 || rows[1][2] != 0 || rows[2][2] != 0 {
		t.Errorf("constant column not zeroed: %v", rows)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	Normalize(nil)              // must not panic
	Normalize([][]float64{{}})  // zero columns
	Normalize([][]float64{{1}}) // single row: sd 0 -> zeroed
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("distance = %g, want 5", got)
	}
}

func TestEuclideanDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	EuclideanDistance([]float64{1}, []float64{1, 2})
}

func TestRelError(t *testing.T) {
	if got := RelError(110, 100); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelError = %g, want 0.1", got)
	}
	if got := RelError(0, 0); got != 0 {
		t.Errorf("RelError(0,0) = %g, want 0", got)
	}
	if !math.IsInf(RelError(1, 0), 1) {
		t.Error("RelError(1,0) should be +Inf")
	}
}

// Property: median lies between min and max, and is invariant under
// permutation.
func TestMedianProperties(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		m := Median(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			t.Fatalf("median %g outside [%g,%g]", m, Min(xs), Max(xs))
		}
		shuffled := append([]float64(nil), xs...)
		perm := r.Perm(n)
		for i, p := range perm {
			shuffled[i] = xs[p]
		}
		if m2 := Median(shuffled); !almostEqual(m, m2, 1e-9) {
			t.Fatalf("median not permutation-invariant: %g vs %g", m, m2)
		}
	}
}

// Property: geometric mean of positive values lies between min and max
// and is scale-equivariant: GeoMean(c*xs) = c*GeoMean(xs).
func TestGeoMeanProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.01 + r.Float64()*10
		}
		g := GeoMean(xs)
		if g < Min(xs)-1e-9 || g > Max(xs)+1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return almostEqual(GeoMean(scaled), 3*g, 1e-9*g+1e-12)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-9 {
				t.Fatalf("quantile not monotone at q=%g", qq)
			}
			prev = v
		}
	}
}

// Property: after Normalize, Euclidean distances are invariant to
// per-column affine transforms of the raw data (the reason the paper
// normalizes before clustering).
func TestNormalizeAffineInvariance(t *testing.T) {
	r := rng.New(2024)
	const rows, cols = 12, 5
	a := make([][]float64, rows)
	b := make([][]float64, rows)
	scale := make([]float64, cols)
	shift := make([]float64, cols)
	for c := 0; c < cols; c++ {
		scale[c] = 0.5 + r.Float64()*10
		shift[c] = r.NormFloat64() * 50
	}
	for i := range a {
		a[i] = make([]float64, cols)
		b[i] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			v := r.NormFloat64()
			a[i][c] = v
			b[i][c] = v*scale[c] + shift[c]
		}
	}
	Normalize(a)
	Normalize(b)
	for i := 0; i < rows; i++ {
		for j := i + 1; j < rows; j++ {
			da := EuclideanDistance(a[i], a[j])
			db := EuclideanDistance(b[i], b[j])
			if !almostEqual(da, db, 1e-9) {
				t.Fatalf("distance (%d,%d) changed under affine transform: %g vs %g", i, j, da, db)
			}
		}
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// With 101 points, quantile k/100 must equal sorted[k] exactly.
	for k := 0; k <= 100; k += 10 {
		if got := Quantile(xs, float64(k)/100); !almostEqual(got, sorted[k], 1e-12) {
			t.Errorf("q%d = %g, want %g", k, got, sorted[k])
		}
	}
}

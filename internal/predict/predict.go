// Package predict implements Step E: extrapolating every codelet's
// target-architecture time from the measured cluster representatives,
// plus the error and benchmarking-reduction accounting used throughout
// the paper's evaluation.
//
// The model (§3.5) assumes codelets in one cluster share the same
// speedup between reference and target:
//
//	t_tar(i) ≈ t_ref(i) / s(r_k) = t_ref(i) * t_tar(r_k) / t_ref(r_k)
//
// for every codelet i in cluster C_k with representative r_k. In
// matrix form, t_tar_all ≈ M · t_tar_repr with
//
//	M[i][k] = t_ref(i) / t_ref(r_k)   if codelet i ∈ C_k, else 0.
package predict

import (
	"fmt"

	"fgbs/internal/stats"
)

// Model is the trained transformation from representative
// measurements to whole-suite predictions.
type Model struct {
	refSeconds []float64
	labels     []int
	reps       []int
}

// NewModel builds the prediction model from reference profiling times
// (per codelet), the final cluster assignment, and the representative
// index per cluster.
func NewModel(refSeconds []float64, labels []int, reps []int) (*Model, error) {
	n := len(refSeconds)
	if len(labels) != n {
		return nil, fmt.Errorf("predict: %d labels for %d codelets", len(labels), n)
	}
	for i, l := range labels {
		if l < 0 || l >= len(reps) {
			return nil, fmt.Errorf("predict: codelet %d has label %d outside [0,%d)", i, l, len(reps))
		}
	}
	for k, r := range reps {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("predict: cluster %d has representative %d outside [0,%d)", k, r, n)
		}
		if labels[r] != k {
			return nil, fmt.Errorf("predict: representative %d of cluster %d belongs to cluster %d", r, k, labels[r])
		}
		if refSeconds[r] <= 0 {
			return nil, fmt.Errorf("predict: representative %d has non-positive reference time", r)
		}
	}
	return &Model{refSeconds: refSeconds, labels: labels, reps: reps}, nil
}

// K returns the cluster count.
func (m *Model) K() int { return len(m.reps) }

// Reps returns the representative index per cluster.
func (m *Model) Reps() []int { return append([]int(nil), m.reps...) }

// Matrix materializes the N x K model matrix M.
func (m *Model) Matrix() [][]float64 {
	out := make([][]float64, len(m.refSeconds))
	for i := range out {
		out[i] = make([]float64, len(m.reps))
		k := m.labels[i]
		out[i][k] = m.refSeconds[i] / m.refSeconds[m.reps[k]]
	}
	return out
}

// Predict maps the representatives' measured target times (indexed by
// cluster) to predicted per-codelet target times: t_all = M · t_repr.
func (m *Model) Predict(repTargetSeconds []float64) ([]float64, error) {
	if len(repTargetSeconds) != len(m.reps) {
		return nil, fmt.Errorf("predict: %d representative times for %d clusters",
			len(repTargetSeconds), len(m.reps))
	}
	out := make([]float64, len(m.refSeconds))
	for i := range out {
		k := m.labels[i]
		out[i] = m.refSeconds[i] * repTargetSeconds[k] / m.refSeconds[m.reps[k]]
	}
	return out, nil
}

// Errors returns per-codelet relative errors |pred-actual|/actual.
func Errors(predicted, actual []float64) []float64 {
	errs := make([]float64, len(predicted))
	for i := range predicted {
		errs[i] = stats.RelError(predicted[i], actual[i])
	}
	return errs
}

// ErrorSummary condenses per-codelet errors.
type ErrorSummary struct {
	Median  float64
	Average float64
	Max     float64
}

// Summarize computes the paper's error statistics (reported as
// percentages by the callers; stored as fractions here).
func Summarize(errs []float64) ErrorSummary {
	return ErrorSummary{
		Median:  stats.Median(errs),
		Average: stats.Mean(errs),
		Max:     stats.Max(errs),
	}
}

// App describes one application for whole-application prediction
// (Figure 5): which codelets it owns, their invocation counts, and the
// fraction of its runtime not covered by codelets.
type App struct {
	Name string
	// Codelets indexes into the suite-wide codelet arrays.
	Codelets []int
	// Invocations per codelet (aligned with Codelets).
	Invocations []int
	// UncoveredFraction is the share of application time outside
	// codelets; the paper measures 8% on average for NAS.
	UncoveredFraction float64
}

// AppTimes aggregates per-invocation codelet times into a whole-
// application time: covered time scaled up by the uncovered share,
// which is assumed to follow the covered part's speedup (§4.4,
// "Application performance prediction").
func (a *App) AppTimes(perInvocationSeconds []float64) float64 {
	covered := 0.0
	for j, ci := range a.Codelets {
		covered += float64(a.Invocations[j]) * perInvocationSeconds[ci]
	}
	if a.UncoveredFraction >= 1 {
		return covered
	}
	return covered / (1 - a.UncoveredFraction)
}

// Speedup returns t_ref / t_tar.
func Speedup(refSeconds, tarSeconds float64) float64 {
	if tarSeconds <= 0 {
		return 0
	}
	return refSeconds / tarSeconds
}

// GeoMeanSpeedup computes the geometric mean of per-application
// speedups (Figure 6).
func GeoMeanSpeedup(refApp, tarApp []float64) float64 {
	sp := make([]float64, len(refApp))
	for i := range sp {
		sp[i] = Speedup(refApp[i], tarApp[i])
	}
	return stats.GeoMean(sp)
}

// ReductionBreakdown decomposes the benchmarking reduction factor the
// way Table 5 does.
type ReductionBreakdown struct {
	// FullSeconds is the cost of running the original full suite on
	// the target.
	FullSeconds float64
	// ReducedInvSeconds is the cost of running every codelet but with
	// the reduced invocation counts.
	ReducedInvSeconds float64
	// RepsSeconds is the cost of running only the representative
	// microbenchmarks (with reduced invocations).
	RepsSeconds float64

	// Total = FullSeconds / RepsSeconds.
	Total float64
	// InvocationFactor = FullSeconds / ReducedInvSeconds.
	InvocationFactor float64
	// ClusteringFactor = ReducedInvSeconds / RepsSeconds.
	ClusteringFactor float64
}

// Reduction computes the breakdown from the three suite costs.
func Reduction(fullSeconds, reducedInvSeconds, repsSeconds float64) ReductionBreakdown {
	b := ReductionBreakdown{
		FullSeconds:       fullSeconds,
		ReducedInvSeconds: reducedInvSeconds,
		RepsSeconds:       repsSeconds,
	}
	if repsSeconds > 0 {
		b.Total = fullSeconds / repsSeconds
		b.ClusteringFactor = reducedInvSeconds / repsSeconds
	}
	if reducedInvSeconds > 0 {
		b.InvocationFactor = fullSeconds / reducedInvSeconds
	}
	return b
}

package fgbs

import (
	"testing"

	"fgbs/internal/features"
	"fgbs/internal/ir"
)

func TestFacadeSuites(t *testing.T) {
	if got := len(NRSuite()); got != 28 {
		t.Errorf("NRSuite programs = %d", got)
	}
	if got := len(NASSuite()); got != 7 {
		t.Errorf("NASSuite programs = %d", got)
	}
	if got := len(PolySuite()); got != 18 {
		t.Errorf("PolySuite programs = %d", got)
	}
}

func TestFacadeMachines(t *testing.T) {
	if Reference().Name != "Nehalem" {
		t.Error("reference is not Nehalem")
	}
	if len(Targets()) != 3 {
		t.Error("targets != 3")
	}
	if len(Machines()) != 4 {
		t.Error("machines != 4")
	}
}

func TestFacadeMasks(t *testing.T) {
	if PaperFeatures().Count() != 14 {
		t.Error("paper mask != 14 features")
	}
	if DefaultFeatures().Count() != 16 {
		t.Error("default mask != 16 features")
	}
	if AllFeatures().Count() != features.NumFeatures {
		t.Error("all mask incomplete")
	}
}

// TestBuilderSurface exercises the suite-authoring façade end to end:
// define a small program purely through the public helpers, then run
// it through the pipeline.
func TestBuilderSurface(t *testing.T) {
	p := NewProgram("user")
	p.SetParam("n", 150000)
	p.UncoveredFraction = 0.05
	p.AddArray("a", F64, AV("n"))
	p.AddArray("b", F64, AV("n"))
	p.AddArray("h", I64, AC(512))
	keys := p.AddArray("k", I64, AV("n"))
	keys.Init = IntInit{Kind: IntInitUniform, Bound: AC(512)}
	p.AddScalar("s", F64)

	i := V("i")
	p.MustAddCodelet(&Codelet{
		Name: "user_saxpyish", Invocations: 20, WarmInApp: true,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Assign{LHS: p.Ref("a", i),
				RHS: Add(Mul(CF(2), p.LoadE("b", i)), Sub(p.LoadE("a", i), CF(1)))},
		}},
	})
	p.MustAddCodelet(&Codelet{
		Name: "user_sqrtdiv", Invocations: 20, WarmInApp: true,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Assign{LHS: p.Ref("a", i),
				RHS: DivE(Sqrt(Abs(p.LoadE("b", i))), Add(p.LoadE("a", i), CF(2)))},
		}},
	})
	p.MustAddCodelet(&Codelet{
		Name: "user_hist", Invocations: 20, WarmInApp: true,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Assign{LHS: p.Ref("h", p.LoadE("k", i)),
				RHS: Add(p.LoadE("h", p.LoadE("k", i)), CI(1))},
		}},
	})
	p.MustAddCodelet(&Codelet{
		Name: "user_mixed", Invocations: 20, WarmInApp: true,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Assign{LHS: p.Ref("s"),
				RHS: Add(p.LoadE("s"), Widen(Narrow(Mul(Exp(CF(0.0)), p.LoadE("b", i)))))},
		}},
	})

	prof, err := NewProfile([]*Program{p}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := prof.Subset(DefaultFeatures(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.K() < 2 {
		t.Errorf("user suite collapsed to %d clusters", sub.K())
	}
	for tt := range prof.Targets {
		ev, err := prof.Evaluate(sub, tt)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Summary.Median > 0.15 {
			t.Errorf("%s: user suite median error %.1f%%", ev.Target.Name, ev.Summary.Median*100)
		}
	}
}

func TestBuilderAffineHelpers(t *testing.T) {
	a := AT("n", 3).Plus(AC(2))
	if got := a.Eval(map[string]int64{"n": 5}); got != 17 {
		t.Errorf("AT/AC composition = %d", got)
	}
	if AV("x").Coeff("x") != 1 {
		t.Error("AV coefficient wrong")
	}
}

func TestBuilderExprHelpers(t *testing.T) {
	// Type checks carry through the aliases.
	e := Add(CF(1), Mul(CF(2), CF(3)))
	if e.DType() != F64 {
		t.Error("f64 arithmetic wrong type")
	}
	if CF32(1).DType() != F32 || CI(1).DType() != I64 {
		t.Error("literal types wrong")
	}
	if Widen(CF32(1)).DType() != F64 || Narrow(CF(1)).DType() != F32 {
		t.Error("precision conversions wrong")
	}
	if ir.ExprString(Sub(V("i"), CI(1))) != "(i - 1)" {
		t.Error("expression alias mismatch with ir")
	}
}

func TestSelectFeaturesFacade(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("GA on the NR profile")
	}
	prof := nrProfile(t)
	res, err := SelectFeatures(prof, GAOptions{
		Population: 20, Generations: 4, MutationProb: 0.02, Seed: 1,
	}, "Atom")
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Count() == 0 || res.BestFitness <= 0 {
		t.Errorf("GA façade returned %d features, fitness %g", res.Best.Count(), res.BestFitness)
	}
	if _, err := SelectFeatures(prof, GAOptions{Population: 10, Generations: 1}, "NoSuch"); err == nil {
		t.Error("unknown target accepted")
	}
}

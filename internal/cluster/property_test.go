package cluster

import (
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

// randomPoints draws n points in dim dimensions from a seeded PRNG.
func randomPoints(seed uint64, n, dim int) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
	}
	return pts
}

// Property: hierarchical cuts are nested — Cut(k+1) refines Cut(k):
// two leaves together at k+1 are together at k.
func TestCutsAreNested(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		dim := 1 + r.Intn(5)
		pts := randomPoints(seed+1, n, dim)
		d, err := Build(pts, Ward)
		if err != nil {
			return false
		}
		for k := 1; k < n; k++ {
			coarse := d.Cut(k)
			fine := d.Cut(k + 1)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if fine[i] == fine[j] && coarse[i] != coarse[j] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Ward merge heights never decrease (reducibility), for any
// data.
func TestWardHeightsMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		pts := randomPoints(seed+2, n, 1+r.Intn(6))
		d, err := Build(pts, Ward)
		if err != nil {
			return false
		}
		for i := 1; i < len(d.Merges); i++ {
			if d.Merges[i].Height < d.Merges[i-1].Height-1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: duplicating every point leaves the k-cluster partition of
// the originals intact under Ward (duplicates merge at height 0 first).
func TestDuplicatesMergeFirst(t *testing.T) {
	pts := randomPoints(7, 8, 3)
	doubled := append(append([][]float64(nil), pts...), pts...)
	d, err := Build(doubled, Ward)
	if err != nil {
		t.Fatal(err)
	}
	// The first 8 merges must all be at height 0 (the duplicates).
	for i := 0; i < 8; i++ {
		if d.Merges[i].Height > 1e-12 {
			t.Fatalf("merge %d height %g, want 0 (duplicate pair)", i, d.Merges[i].Height)
		}
	}
	labels := d.Cut(8)
	for i := range pts {
		if labels[i] != labels[i+8] {
			t.Fatalf("point %d not clustered with its duplicate", i)
		}
	}
}

// Property: centroid of each cluster minimizes within-cluster sum of
// squares against any single alternative point (first-order check).
func TestCentroidOptimality(t *testing.T) {
	r := rng.New(11)
	pts := randomPoints(11, 20, 4)
	d, err := Build(pts, Ward)
	if err != nil {
		t.Fatal(err)
	}
	labels := d.Cut(4)
	base := WithinSS(pts, labels)
	cents := Centroids(pts, labels)
	for trial := 0; trial < 50; trial++ {
		c := r.Intn(len(cents))
		// Perturb one centroid: the total SS against perturbed centers
		// cannot be smaller.
		perturbed := make([][]float64, len(cents))
		copy(perturbed, cents)
		alt := append([]float64(nil), cents[c]...)
		for j := range alt {
			alt[j] += r.NormFloat64() * 0.1
		}
		perturbed[c] = alt
		total := 0.0
		for i, p := range pts {
			ctr := perturbed[labels[i]]
			for j := range p {
				diff := p[j] - ctr[j]
				total += diff * diff
			}
		}
		if total < base-1e-9 {
			t.Fatalf("perturbed centers beat centroids: %g < %g", total, base)
		}
	}
}

// Property: every linkage produces the same singleton cut and the
// same 1-cluster cut.
func TestLinkagesAgreeAtExtremes(t *testing.T) {
	pts := randomPoints(3, 12, 3)
	for _, l := range []Linkage{Ward, Single, Complete, Average} {
		d, err := Build(pts, l)
		if err != nil {
			t.Fatal(err)
		}
		one := d.Cut(1)
		for _, lab := range one {
			if lab != 0 {
				t.Fatalf("%v: Cut(1) not a single cluster", l)
			}
		}
		all := d.Cut(len(pts))
		seen := map[int]bool{}
		for _, lab := range all {
			if seen[lab] {
				t.Fatalf("%v: Cut(N) has duplicates", l)
			}
			seen[lab] = true
		}
	}
}

// Property: Elbow never exceeds maxK and never returns less than 1.
func TestElbowBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(25)
		pts := randomPoints(seed+3, n, 2)
		d, err := Build(pts, Ward)
		if err != nil {
			return false
		}
		maxK := 1 + r.Intn(n)
		k := d.Elbow(pts, maxK, 0)
		return k >= 1 && k <= maxK
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Subset exploration: walk the accuracy-versus-reduction trade-off of
// Figure 3 on the NAS suite. More clusters mean lower prediction
// error but a smaller benchmarking reduction; the elbow rule picks a
// balanced cut.
//
// Run with:
//
//	go run ./examples/subsetexplore
package main

import (
	"fmt"
	"log"

	"fgbs"
)

func main() {
	prof, err := fgbs.NewProfile(fgbs.NASSuite(), fgbs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	mask := fgbs.DefaultFeatures()

	elbow, err := prof.Elbow(mask)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("  K  | median error per target        | benchmarking reduction")
	fmt.Print("     |")
	for _, m := range prof.Targets {
		fmt.Printf(" %-9.9s", m.Name)
	}
	fmt.Print(" |")
	for _, m := range prof.Targets {
		fmt.Printf(" %-9.9s", m.Name)
	}
	fmt.Println()

	pts, err := prof.SweepK(mask, 2, 24)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		marker := "  "
		if pt.K == elbow {
			marker = "<-"
		}
		fmt.Printf(" %3d |", pt.K)
		for t := range prof.Targets {
			fmt.Printf(" %7.1f%% ", pt.MedianError[t]*100)
		}
		fmt.Print(" |")
		for t := range prof.Targets {
			fmt.Printf("   x%-6.1f", pt.Reduction[t])
		}
		fmt.Println(" ", marker)
	}
	fmt.Printf("\nelbow-selected K = %d (paper: 18 of 67 codelets)\n", elbow)
}

package cache

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/rng"
)

func smallLevel(t *testing.T, sizeBytes int64, ways int) *Level {
	t.Helper()
	l, err := NewLevel(arch.CacheLevel{Name: "T", SizeBytes: sizeBytes, Ways: ways, LineBytes: 64, LatencyCycles: 1})
	if err != nil {
		t.Fatalf("NewLevel: %v", err)
	}
	return l
}

func TestLevelHitAfterMiss(t *testing.T) {
	l := smallLevel(t, 1024, 2) // 8 sets x 2 ways
	if hit, _ := l.Access(0, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := l.Access(0, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _ := l.Access(32, false); !hit {
		t.Fatal("same-line access missed")
	}
	if l.Hits != 2 || l.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", l.Hits, l.Misses)
	}
}

func TestLevelLRUEviction(t *testing.T) {
	l := smallLevel(t, 1024, 2) // 8 sets, set stride = 64, wrap at 512B
	// Three lines mapping to set 0: addresses 0, 512, 1024.
	l.Access(0, false)
	l.Access(512, false)
	l.Access(0, false)    // refresh line 0, so 512 is LRU
	l.Access(1024, false) // evicts 512
	if !l.Contains(0) {
		t.Error("line 0 evicted although most recently used")
	}
	if l.Contains(512) {
		t.Error("LRU line 512 not evicted")
	}
	if !l.Contains(1024) {
		t.Error("new line not cached")
	}
}

func TestLevelDirtyEviction(t *testing.T) {
	l := smallLevel(t, 1024, 2)
	l.Access(0, true) // dirty
	l.Access(512, false)
	_, dirtyEvict := l.Access(1024, false) // evicts line 0 (LRU, dirty)
	if !dirtyEvict {
		t.Error("dirty eviction not reported")
	}
	if l.Writebacks != 1 {
		t.Errorf("writebacks = %d", l.Writebacks)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	l := smallLevel(t, 1024, 2)
	l.Access(0, false)
	h0, m0 := l.Hits, l.Misses
	if l.Contains(4096) {
		t.Error("Contains invented a line")
	}
	if l.Hits != h0 || l.Misses != m0 {
		t.Error("Contains changed counters")
	}
}

func TestFlushEmpties(t *testing.T) {
	l := smallLevel(t, 1024, 2)
	l.Access(0, true)
	l.Flush()
	if l.Contains(0) {
		t.Error("line survived flush")
	}
	if hit, _ := l.Access(0, false); hit {
		t.Error("hit after flush")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to the cache size, accessed twice
	// sequentially, must miss only on the first pass (LRU,
	// fully-covered set mapping).
	l := smallLevel(t, 4096, 4)
	var miss int64
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < 4096; a += 64 {
			if hit, _ := l.Access(a, false); !hit && pass == 1 {
				miss++
			}
		}
	}
	if miss != 0 {
		t.Errorf("%d second-pass misses for resident working set", miss)
	}
}

func TestStreamingAlwaysMisses(t *testing.T) {
	// A working set 8x the cache, streamed twice, misses on every new
	// line both times.
	l := smallLevel(t, 1024, 2)
	total := int64(8 * 1024)
	for pass := 0; pass < 2; pass++ {
		before := l.Misses
		for a := int64(0); a < total; a += 64 {
			l.Access(a, false)
		}
		got := l.Misses - before
		if want := total / 64; got != want {
			t.Errorf("pass %d: misses = %d, want %d", pass, got, want)
		}
	}
}

func newHier(t *testing.T, m *arch.Machine) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := newHier(t, arch.Nehalem())
	if len(h.Levels) != 3 {
		t.Fatalf("Nehalem levels = %d", len(h.Levels))
	}
	// First touch goes to memory.
	if lvl := h.Access(0, false); lvl != 3 {
		t.Errorf("cold access level = %d, want 3 (memory)", lvl)
	}
	// Second touch hits L1.
	if lvl := h.Access(0, false); lvl != 0 {
		t.Errorf("warm access level = %d, want 0", lvl)
	}
	if h.MemAccesses != 1 {
		t.Errorf("MemAccesses = %d", h.MemAccesses)
	}
}

func TestHierarchyL2Resident(t *testing.T) {
	// Working set bigger than L1 but within L2 should, on a second
	// pass, hit mostly in L2.
	m := arch.Nehalem()
	h := newHier(t, m)
	ws := m.Caches[1].SizeBytes / 2
	for a := int64(0); a < ws; a += 64 {
		h.Access(a, false)
	}
	l2Before := h.Levels[1].Hits
	memBefore := h.MemAccesses
	for a := int64(0); a < ws; a += 64 {
		h.Access(a, false)
	}
	if h.MemAccesses != memBefore {
		t.Errorf("second pass went to memory %d times", h.MemAccesses-memBefore)
	}
	if h.Levels[1].Hits == l2Before {
		t.Error("no L2 hits on second pass over L2-resident set")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := newHier(t, arch.Atom())
	h.Access(128, true)
	h.Flush()
	if lvl := h.Access(128, false); lvl != len(h.Levels) {
		t.Errorf("post-flush access level = %d, want memory", lvl)
	}
}

func TestPreloadWarmsCache(t *testing.T) {
	m := arch.Atom()
	h := newHier(t, m)
	size := m.Caches[1].SizeBytes / 2
	h.Preload(0, size)
	h.ResetCounters()
	miss := 0
	for a := int64(0); a < size; a += 64 {
		if h.Access(a, false) >= len(h.Levels) {
			miss++
		}
	}
	if miss != 0 {
		t.Errorf("%d memory accesses after preload of resident set", miss)
	}
}

func TestResetCountersKeepsContents(t *testing.T) {
	h := newHier(t, arch.Core2())
	h.Access(0, false)
	h.ResetCounters()
	if h.Levels[0].Hits != 0 || h.Levels[0].Misses != 0 {
		t.Error("counters not reset")
	}
	if lvl := h.Access(0, false); lvl != 0 {
		t.Error("contents lost on counter reset")
	}
}

func TestAllMachinesBuildHierarchies(t *testing.T) {
	for _, m := range arch.All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if _, err := NewHierarchy(m); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBadGeometryRejected(t *testing.T) {
	_, err := NewLevel(arch.CacheLevel{Name: "bad", SizeBytes: 1000, Ways: 3, LineBytes: 48})
	if err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	_, err = NewLevel(arch.CacheLevel{Name: "bad", SizeBytes: 3 * 64 * 5, Ways: 5, LineBytes: 64})
	if err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

// Property: hits + misses == total accesses, for random access streams
// on every machine.
func TestCounterConservation(t *testing.T) {
	r := rng.New(41)
	for _, m := range arch.All() {
		h := newHier(t, m)
		const n = 20000
		span := m.LastLevelSize() * 4
		for i := 0; i < n; i++ {
			h.Access(r.Int63n(span), r.Bool(0.3))
		}
		l1 := h.Levels[0]
		if l1.Hits+l1.Misses < n {
			t.Errorf("%s: L1 hits+misses = %d < %d accesses", m.Name, l1.Hits+l1.Misses, n)
		}
		// Every L1 miss must be accounted for downstream: hits at
		// deeper levels plus memory accesses, modulo write-back
		// traffic which adds accesses (never removes).
		deeper := h.MemAccesses
		for _, l := range h.Levels[1:] {
			deeper += l.Hits
		}
		if deeper < l1.Misses {
			t.Errorf("%s: downstream accounted %d < L1 misses %d", m.Name, deeper, l1.Misses)
		}
	}
}

// Property: identical access streams produce identical counters
// (determinism).
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		h := newHier(t, arch.SandyBridge())
		r := rng.New(7)
		for i := 0; i < 50000; i++ {
			h.Access(r.Int63n(1<<22), r.Bool(0.25))
		}
		return h.Levels[0].Misses, h.Levels[len(h.Levels)-1].Misses, h.MemAccesses
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Error("cache simulation not deterministic")
	}
}

package pipeline

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	prof := tinyProfile(t)
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf, tinySuite())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != prof.N() {
		t.Fatalf("N = %d, want %d", back.N(), prof.N())
	}
	if back.Ref.Name != prof.Ref.Name {
		t.Error("reference machine lost")
	}
	for i := 0; i < prof.N(); i++ {
		if back.Codelets[i].Name != prof.Codelets[i].Name {
			t.Fatalf("codelet %d misbound: %s vs %s", i, back.Codelets[i].Name, prof.Codelets[i].Name)
		}
		if back.RefInApp[i] != prof.RefInApp[i] {
			t.Error("reference times changed")
		}
		if back.IllBehaved[i] != prof.IllBehaved[i] {
			t.Error("screening flags changed")
		}
		for tt := range prof.Targets {
			if back.TargetInApp[tt][i] != prof.TargetInApp[tt][i] {
				t.Error("target times changed")
			}
		}
	}
	// A loaded profile must drive the full downstream pipeline.
	sub, err := back.Subset(tinyMask, 3)
	if err != nil {
		t.Fatal(err)
	}
	origSub, err := prof.Subset(tinyMask, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sub.Selection.Labels {
		if sub.Selection.Labels[i] != origSub.Selection.Labels[i] {
			t.Fatal("clustering differs after round trip")
		}
	}
	ev, err := back.Evaluate(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	origEv, err := prof.Evaluate(origSub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Summary.Median != origEv.Summary.Median {
		t.Error("evaluation differs after round trip")
	}
}

func TestReadProfileRejectsWrongSuite(t *testing.T) {
	prof := tinyProfile(t)
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// A suite with a renamed codelet must be rejected.
	other := tinySuite()
	other[0].Codelets[0].Name = "renamed"
	if _, err := ReadProfile(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("mismatched suite accepted")
	}
}

func TestReadProfileRejectsWrongVersion(t *testing.T) {
	// A profile saved by a different build must point the user at
	// regenerating the cache, not at a JSON internals error.
	prof := tinyProfile(t)
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if stale == buf.String() {
		t.Fatal("fixture did not contain the version field")
	}
	_, err := ReadProfile(strings.NewReader(stale), tinySuite())
	if err == nil || !strings.Contains(err.Error(), "regenerate the cache") {
		t.Errorf("stale version error = %v, want a 'regenerate the cache' hint", err)
	}
}

func TestReadProfileRejectsTruncated(t *testing.T) {
	prof := tinyProfile(t)
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// A partially written cache (disk full, killed save) at any cut
	// point must fail loudly, never yield a half-filled profile.
	for _, frac := range []int{4, 2} {
		cut := full[:len(full)/frac]
		if _, err := ReadProfile(bytes.NewReader(cut), tinySuite()); err == nil {
			t.Errorf("truncated profile (1/%d) accepted", frac)
		}
	}
}

func TestReadProfileRejectsMissingCodelet(t *testing.T) {
	prof := tinyProfile(t)
	var buf bytes.Buffer
	if err := prof.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// A suite that lost a codelet since the profile was saved (count
	// mismatch) must be rejected.
	smaller := tinySuite()
	smaller[0].Codelets = smaller[0].Codelets[:len(smaller[0].Codelets)-1]
	_, err := ReadProfile(bytes.NewReader(buf.Bytes()), smaller)
	if err == nil || !strings.Contains(err.Error(), "codelets") {
		t.Errorf("shrunken suite error = %v, want codelet count mismatch", err)
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("not json"), tinySuite()); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"version":99}`), tinySuite()); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"version":1,"codelets":["x"]}`), tinySuite()); err == nil {
		t.Error("inconsistent arrays accepted")
	}
}

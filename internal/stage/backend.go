package stage

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// The byte plane under the Store: an ordered chain of Backend tiers
// holding encoded artifact bytes. The Store's value plane (decoded
// artifacts in the LRU, singleflight) sits above it; on a value miss
// the Store walks the chain top to bottom, decodes the first tier that
// has the bytes, and promotes them into every tier above the hit. A
// miss through the whole chain falls through to compute, and the
// computed artifact is written through every tier.
//
// Tiers deal in raw bytes only — framing, quarantine, and degradation
// are decorators (Framed, Breakered) wrapped around every tier, so a
// remote tier gets exactly the same integrity and breaker behavior as
// the local disk.

// Canonical tier names. NewTierChain resolves these; the Store uses
// TierDisk to keep the legacy Disk counters and Outcome.Disk exact.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
	TierPeer   = "peer"
)

// DefaultMemoryTierEntries bounds a memory tier built without an
// explicit capacity.
const DefaultMemoryTierEntries = 256

// ErrNotFound reports a clean miss: the tier is healthy, it just does
// not hold the artifact. Every other error from a tier means the
// operation failed and feeds its breaker.
var ErrNotFound = errors.New("stage: artifact not found")

// CorruptError reports bytes that failed integrity verification. The
// Framed decorator returns it after quarantining the artifact; the
// breaker does not treat it as an I/O failure (the device delivered
// bytes fine — the bytes themselves were bad).
type CorruptError struct {
	Tier string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("stage: corrupt artifact in %s tier: %v", e.Tier, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Ref names one artifact for the byte tiers. Key is the content
// address; Name is the codec-chosen filename local tiers store under;
// Legacy, when non-empty, is a read-only fallback name probed after
// Name (artifacts persisted before filenames were key-qualified).
// Fresh writes always land under Name.
type Ref struct {
	Key    Key
	Name   string
	Legacy string
}

// TierStats is one tier's health and traffic row, surfaced under
// /metricz stages.tiers. Base backends report State and Entries; the
// decorators contribute the counters (Framed: hits/misses/writes/
// quarantined, Breakered: errors and the degraded state).
type TierStats struct {
	// State is DiskOK or DiskDegraded (the breaker decorator's view).
	State string `json:"state"`
	// Entries is the tier's current artifact count, where knowable.
	Entries int `json:"entries"`
	// Hits are Gets that returned verified payload bytes.
	Hits int64 `json:"hits"`
	// Misses are Gets that found nothing (including breaker skips).
	Misses int64 `json:"misses"`
	// Writes are Puts that actually stored bytes.
	Writes int64 `json:"writes"`
	// Errors counts I/O failures (cumulative), from the breaker.
	Errors int64 `json:"errors"`
	// Quarantined counts artifacts that failed integrity or decode
	// checks and were moved aside (cumulative).
	Quarantined int64 `json:"quarantined"`
}

// Backend is one artifact tier. Implementations store and serve opaque
// byte slices; whether those bytes carry an integrity frame is the
// Framed decorator's business, not the tier's.
//
// Contracts: Get returns ErrNotFound for a clean miss and must not
// return bytes the caller may mutate in place; callers in turn must
// treat returned slices as read-only. Put reports whether bytes were
// actually stored (a read-only tier or a breaker skip returns false,
// nil) and must copy data if it retains it beyond the call. All
// methods may be called concurrently.
type Backend interface {
	// Name identifies the tier ("memory", "disk", "peer") in stats,
	// health reports, and Outcome.Tier.
	Name() string
	Get(ctx context.Context, ref Ref) ([]byte, error)
	Put(ctx context.Context, ref Ref, data []byte) (bool, error)
	Delete(ctx context.Context, ref Ref) error
	// Len is the tier's current artifact count, where knowable (a
	// remote tier reports 0).
	Len() int
	Stats() TierStats
}

// quarantiner is implemented by tiers that can move a corrupt artifact
// out of the load path (the disk tier renames to *.corrupt; the memory
// tier drops the entry). The Framed decorator counts the quarantine
// and forwards it down the stack.
type quarantiner interface {
	Quarantine(ctx context.Context, ref Ref)
}

// quarantineTier moves ref aside in tier, when the tier knows how.
func quarantineTier(ctx context.Context, tier Backend, ref Ref) {
	if q, ok := tier.(quarantiner); ok {
		q.Quarantine(ctx, ref)
	}
}

// framedGetter is implemented by the Framed decorator: GetFramed
// returns the verified artifact with its frame still attached (legacy
// unframed bytes gain one), which is the wire format the peer-fetch
// endpoint serves.
type framedGetter interface {
	GetFramed(ctx context.Context, ref Ref) ([]byte, error)
}

// remoteTier marks tiers that are themselves served by a peer's
// artifact endpoint. FetchFramed skips them so two daemons pointed at
// each other can never bounce a fetch back and forth.
type remoteTier interface {
	Remote() bool
}

// isRemote reports whether tier (through any decorators) is remote.
func isRemote(tier Backend) bool {
	r, ok := tier.(remoteTier)
	return ok && r.Remote()
}

// TierConfig carries the resources tier names resolve against when
// assembling a chain.
type TierConfig struct {
	// Dir is the disk tier's directory.
	Dir string
	// Peers are base URLs of peer fgbsd daemons for the peer tier.
	Peers []string
	// MemoryEntries bounds the memory tier (DefaultMemoryTierEntries
	// when <= 0).
	MemoryEntries int
	// Client overrides the peer tier's HTTP client (nil uses
	// http.DefaultClient).
	Client *http.Client
}

// NewTierChain assembles an ordered backend chain from tier names,
// wrapping every tier in the standard decorators
// (Framed(Breakered(tier))) so integrity verification and breaker
// degradation apply uniformly. Valid names are TierMemory, TierDisk,
// and TierPeer; each may appear at most once and must have its
// resources configured.
func NewTierChain(names []string, cfg TierConfig) ([]Backend, error) {
	seen := make(map[string]bool, len(names))
	tiers := make([]Backend, 0, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("stage: duplicate tier %q in chain", name)
		}
		seen[name] = true
		var base Backend
		switch name {
		case TierMemory:
			n := cfg.MemoryEntries
			if n <= 0 {
				n = DefaultMemoryTierEntries
			}
			base = NewMemoryBackend(n)
		case TierDisk:
			if cfg.Dir == "" {
				return nil, fmt.Errorf("stage: tier %q requires a stage directory", TierDisk)
			}
			base = NewDiskBackend(cfg.Dir)
		case TierPeer:
			if len(cfg.Peers) == 0 {
				return nil, fmt.Errorf("stage: tier %q requires at least one peer URL", TierPeer)
			}
			base = NewHTTPBackend(cfg.Peers, cfg.Client)
		default:
			return nil, fmt.Errorf("stage: unknown tier %q (valid: %s, %s, %s)", name, TierMemory, TierDisk, TierPeer)
		}
		tiers = append(tiers, Framed(Breakered(base)))
	}
	return tiers, nil
}

// DefaultTierNames is the chain implied by plain directory/peer
// configuration when no explicit tier list is given: disk when a
// directory is set, then peer when peers are set.
func DefaultTierNames(dir string, peers []string) []string {
	var names []string
	if dir != "" {
		names = append(names, TierDisk)
	}
	if len(peers) > 0 {
		names = append(names, TierPeer)
	}
	return names
}

package report

import (
	"encoding/csv"
	"fmt"
	"io"

	"fgbs/internal/features"
	"fgbs/internal/pipeline"
)

// CSV exporters: machine-readable counterparts of the figure
// renderers, for plotting the curves outside Go (the paper ships its
// data as an IPython notebook; these are the equivalent raw series).

// EvalCSV writes one row per codelet: app, codelet, reference seconds,
// actual and predicted target seconds, relative error.
func EvalCSV(w io.Writer, p *pipeline.Profile, ev *pipeline.Eval) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "codelet", "ref_s", "actual_s", "predicted_s", "rel_error"}); err != nil {
		return err
	}
	for i, c := range p.Codelets {
		rec := []string{
			p.Progs[i].Name,
			c.Name,
			fmt.Sprintf("%.9g", p.RefInApp[i]),
			fmt.Sprintf("%.9g", ev.Actual[i]),
			fmt.Sprintf("%.9g", ev.Predicted[i]),
			fmt.Sprintf("%.6g", ev.Errors[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SweepCSV writes one row per (K, target): the Figure 3 series.
func SweepCSV(w io.Writer, p *pipeline.Profile, points []pipeline.SweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"k", "target", "median_error", "reduction"}); err != nil {
		return err
	}
	for _, pt := range points {
		for ti, m := range p.Targets {
			rec := []string{
				fmt.Sprintf("%d", pt.K),
				m.Name,
				fmt.Sprintf("%.6g", pt.MedianError[ti]),
				fmt.Sprintf("%.6g", pt.Reduction[ti]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// FeaturesCSV writes the raw 76-feature matrix, one row per codelet.
func FeaturesCSV(w io.Writer, p *pipeline.Profile) error {
	cw := csv.NewWriter(w)
	header := []string{"app", "codelet"}
	for _, d := range featureNames() {
		header = append(header, d)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, c := range p.Codelets {
		rec := []string{p.Progs[i].Name, c.Name}
		for _, v := range p.Features[i] {
			rec = append(rec, fmt.Sprintf("%.9g", v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// featureNames returns the catalog names in index order.
func featureNames() []string {
	cat := features.Catalog()
	names := make([]string, len(cat))
	for i, d := range cat {
		names[i] = d.Name
	}
	return names
}

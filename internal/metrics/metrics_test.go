package metrics

import (
	"math"
	"testing"

	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

func sampleCounters() sim.Counters {
	return sim.Counters{
		Cycles:        2e6,
		Seconds:       1e-3,
		Instructions:  1e6,
		Ops:           ir.OpCount{FAdd: 300000, FMul: 200000, Loads: 400000, Stores: 100000},
		VecFPOps:      250000,
		MemLoads:      400000,
		MemStores:     100000,
		LevelHits:     []int64{450000, 30000, 15000},
		LevelMisses:   []int64{50000, 20000, 5000},
		MemAccesses:   5000,
		MemWritebacks: 1000,
	}
}

func TestDerive(t *testing.T) {
	d := Derive(sampleCounters())
	if got, want := d.CyclesPerInstr, 2.0; got != want {
		t.Errorf("CPI = %g, want %g", got, want)
	}
	if got, want := d.MFLOPS, 500000/1e-3/1e6; got != want {
		t.Errorf("MFLOPS = %g, want %g", got, want)
	}
	if got, want := d.VecFPShare, 0.5; got != want {
		t.Errorf("VecFPShare = %g", got)
	}
	if got, want := d.L1MissRate, 0.1; got != want {
		t.Errorf("L1MissRate = %g", got)
	}
	// L2 bandwidth: L1 misses x 64B over 1ms.
	if got, want := d.L2BandwidthMBs, 50000.0*64/1e-3/1e6; math.Abs(got-want) > 1e-9 {
		t.Errorf("L2 bandwidth = %g, want %g", got, want)
	}
	// L3 miss rate: misses at last level / accesses at last level.
	if got, want := d.L3MissRate, 5000.0/20000.0; got != want {
		t.Errorf("L3MissRate = %g, want %g", got, want)
	}
	// Memory bandwidth includes writebacks.
	if got, want := d.MemBandwidthMBs, 6000.0*64/1e-3/1e6; math.Abs(got-want) > 1e-9 {
		t.Errorf("mem bandwidth = %g, want %g", got, want)
	}
	if d.OpIntensity <= 0 {
		t.Error("OpIntensity not positive")
	}
}

func TestDeriveZeroSafe(t *testing.T) {
	d := Derive(sim.Counters{})
	// All-zero counters must not produce NaN or Inf.
	for name, v := range map[string]float64{
		"CPI": d.CyclesPerInstr, "MFLOPS": d.MFLOPS, "L1MissRate": d.L1MissRate,
		"L3MissRate": d.L3MissRate, "MemBW": d.MemBandwidthMBs, "OpInt": d.OpIntensity,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %g for zero counters", name, v)
		}
	}
}

func TestTwoLevelMachineHasNoL3Bandwidth(t *testing.T) {
	c := sampleCounters()
	c.LevelHits = c.LevelHits[:1]
	c.LevelMisses = c.LevelMisses[:1]
	d := Derive(c)
	if d.L3BandwidthMBs != 0 {
		t.Errorf("L3 bandwidth = %g on machine without L3", d.L3BandwidthMBs)
	}
	// Last-level miss rate falls back to L1 counters.
	if d.L3MissRate != 0.1 {
		t.Errorf("last-level miss rate = %g", d.L3MissRate)
	}
}

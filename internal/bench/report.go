package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Reporters render a Run. The registry maps a format name to its
// renderer so callers (cmd/fgbs, future services) select output shapes
// by name, and adding a format is one Register call — the
// benchrunner/reporters/formats shape.

// Format renders one run.
type Format func(w io.Writer, r *Run) error

var formats = map[string]Format{
	"human": Human,
	"json":  JSON,
}

// Formats lists the registered format names, sorted.
func Formats() []string {
	names := make([]string, 0, len(formats))
	for name := range formats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupFormat resolves a format by name.
func LookupFormat(name string) (Format, bool) {
	f, ok := formats[name]
	return f, ok
}

// Human renders the aligned table a developer reads at the terminal.
func Human(w io.Writer, r *Run) error {
	t := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(t, "Spec\tReps\tMedian\tMAD\tAllocs/op\tB/op\n")
	for _, res := range r.Results {
		fmt.Fprintf(t, "%s\t%d", res.Name, res.Reps)
		if res.Rejected > 0 {
			fmt.Fprintf(t, " (-%d)", res.Rejected)
		}
		fmt.Fprintf(t, "\t%s\t%s\t%.1f\t%.0f\n",
			formatNS(res.MedianNS), formatNS(res.MADNS), res.AllocsPerOp, res.BytesPerOp)
	}
	fmt.Fprintf(t, "(%d specs, %s mode)\n", len(r.Results), mode)
	return t.Flush()
}

// JSON renders the machine form — the exact layout committed as
// BENCH_<n>.json and read back by ReadRun.
func JSON(w io.Writer, r *Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// ReadRun decodes a Run persisted by the JSON reporter, rejecting
// schema versions this build does not understand.
func ReadRun(r io.Reader) (*Run, error) {
	var run Run
	if err := json.NewDecoder(r).Decode(&run); err != nil {
		return nil, fmt.Errorf("bench: decoding run: %w", err)
	}
	if run.Version != RunVersion {
		return nil, fmt.Errorf("bench: run has version %d, this build reads version %d — regenerate the baseline", run.Version, RunVersion)
	}
	return &run, nil
}

// formatNS renders a nanosecond count at human scale with a fixed rule,
// so golden tests and eyeballs agree across runs.
func formatNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

package fgbs

// The tests in this file are the reproduction checks: one per table
// and figure of the paper's evaluation (§4). Each asserts the *shape*
// of the published result — who wins, by roughly what factor, where
// crossovers fall — not the absolute numbers, which depended on the
// authors' physical testbed. EXPERIMENTS.md records paper-vs-measured
// values side by side.

import (
	"testing"

	"fgbs/internal/features"
	"fgbs/internal/ga"
)

// TestTable2FeatureGA: the genetic algorithm trained on NR (targets
// Atom and Sandy Bridge, fitness = max error x K) must find a subset
// at least as fit as the full feature set, and the default subset
// must beat the full set too — the paper's point that irrelevant
// features degrade clustering.
func TestTable2FeatureGA(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("GA is measurement- and compute-heavy")
	}
	prof := nrProfile(t)
	fitness, err := prof.FeatureFitness("Atom", "Sandy Bridge")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ga.Run(fitness, ga.Options{
		Population: 60, Generations: 20, MutationProb: 0.01, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	full := fitness(AllFeatures())
	if res.BestFitness > full {
		t.Errorf("GA best %.3f worse than all-features %.3f", res.BestFitness, full)
	}
	if res.Best.Count() >= features.NumFeatures/2 {
		t.Errorf("GA kept %d features; the paper's winner is small (14)", res.Best.Count())
	}
}

// TestTable3NRClustering: the NR clustering at K=14 must reproduce
// the structural groupings the paper highlights — the vector-divide
// codelets isolated together (cluster 10), the two first-order
// recurrences together (cluster 12), and the two dense matrix-vector
// products separated by precision.
func TestTable3NRClustering(t *testing.T) {
	skipIfRace(t)
	prof := nrProfile(t)
	sub, err := prof.Subset(DefaultFeatures(), 14)
	if err != nil {
		t.Fatal(err)
	}
	label := map[string]int{}
	for i, c := range prof.Codelets {
		label[c.Name] = sub.Selection.Labels[i]
	}
	if label["svdcmp_14"] != label["svdcmp_13"] {
		t.Error("divide codelets svdcmp_14 and svdcmp_13 not clustered together")
	}
	if label["tridag_1"] != label["tridag_2"] {
		t.Error("recurrence codelets tridag_1 and tridag_2 not clustered together")
	}
	if label["mprove_8"] == label["svbksb_3"] {
		t.Error("MP and SP matrix-vector products merged; the paper separates them by precision")
	}
	// Divides sit apart from plain element-wise vector code.
	if label["svdcmp_14"] == label["balanc_3"] {
		t.Error("divide codelets merged with element-wise multiply")
	}
}

// TestTable4NRPrediction: NR prediction errors (Table 4). Paper:
// K=14 -> medians 1.8%/3.2%, averages 12%/9.3%; elbow K -> medians
// 0%, averages 1.7%/0.97%.
func TestTable4NRPrediction(t *testing.T) {
	skipIfRace(t)
	prof := nrProfile(t)
	check := func(k int, wantMedianBelow, wantAvgBelow float64) {
		sub, err := prof.Subset(DefaultFeatures(), k)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"Atom", "Sandy Bridge"} {
			ev := targetEval(t, prof, sub, name)
			if ev.Summary.Median > wantMedianBelow {
				t.Errorf("K=%d on %s: median error %.1f%% above %.1f%%",
					k, name, ev.Summary.Median*100, wantMedianBelow*100)
			}
			if ev.Summary.Average > wantAvgBelow {
				t.Errorf("K=%d on %s: average error %.1f%% above %.1f%%",
					k, name, ev.Summary.Average*100, wantAvgBelow*100)
			}
		}
	}
	check(14, 0.05, 0.20)
	elbow, err := prof.Elbow(DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if elbow < 20 || elbow > 26 {
		t.Errorf("NR elbow K = %d, paper selects 24", elbow)
	}
	check(elbow, 0.02, 0.08)
}

// TestTable5ReductionBreakdown: the benchmarking-reduction factors.
// Paper: totals x44.3/x24.7/x22.5 (Atom/Core 2/Sandy Bridge) with
// invocation factors x12/x8.7/x6.3 and clustering factors
// x3.7/x2.8/x3.6, i.e. tens overall, invocation reduction the bigger
// contributor, clustering worth about N/K.
func TestTable5ReductionBreakdown(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)
	for _, ev := range evaluateAll(t, prof, sub) {
		r := ev.Reduction
		if r.Total < 15 || r.Total > 70 {
			t.Errorf("%s: total reduction x%.1f outside the paper's band (x22-x44)", ev.Target.Name, r.Total)
		}
		if r.InvocationFactor < 4 || r.InvocationFactor > 20 {
			t.Errorf("%s: invocation factor x%.1f outside band", ev.Target.Name, r.InvocationFactor)
		}
		if r.ClusteringFactor < 1.8 || r.ClusteringFactor > 6 {
			t.Errorf("%s: clustering factor x%.1f outside band", ev.Target.Name, r.ClusteringFactor)
		}
		if r.InvocationFactor < r.ClusteringFactor {
			t.Errorf("%s: invocation reduction x%.1f below clustering x%.1f; the paper has invocations dominate",
				ev.Target.Name, r.InvocationFactor, r.ClusteringFactor)
		}
	}
}

// TestFigure2ClusterPrediction: representatives are measured, so
// their prediction error is (near) zero, and the cluster-speedup
// extrapolation lands siblings close to truth for well-behaved
// clusters.
func TestFigure2ClusterPrediction(t *testing.T) {
	skipIfRace(t)
	prof := nrProfile(t)
	sub, err := prof.Subset(DefaultFeatures(), 14)
	if err != nil {
		t.Fatal(err)
	}
	ev := targetEval(t, prof, sub, "Atom")
	for k, r := range sub.Selection.Reps {
		// A representative's only prediction error is the standalone
		// vs in-app measurement gap, bounded by the screening
		// tolerance plus noise.
		if ev.Errors[r] > 0.13 {
			t.Errorf("cluster %d representative %s error %.1f%%",
				k, prof.Codelets[r].Name, ev.Errors[r]*100)
		}
	}
}

// TestFigure3TradeoffSweep: more clusters -> lower error and lower
// reduction factor; the elbow K sits in the paper's neighborhood
// (18 of 67).
func TestFigure3TradeoffSweep(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	pts, err := prof.SweepK(DefaultFeatures(), 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	for ti, m := range prof.Targets {
		if last.MedianError[ti] > first.MedianError[ti] {
			t.Errorf("%s: error did not fall from K=2 (%.1f%%) to K=24 (%.1f%%)",
				m.Name, first.MedianError[ti]*100, last.MedianError[ti]*100)
		}
		if last.Reduction[ti] > first.Reduction[ti] {
			t.Errorf("%s: reduction did not fall with K", m.Name)
		}
		if last.MedianError[ti] > 0.10 {
			t.Errorf("%s: median error %.1f%% at K=24, paper is below 8%%",
				m.Name, last.MedianError[ti]*100)
		}
	}
	elbow, err := prof.Elbow(DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if elbow < 14 || elbow > 22 {
		t.Errorf("NAS elbow K = %d, paper selects 18", elbow)
	}
}

// TestFigure4CodeletPrediction: per-codelet prediction on Sandy
// Bridge — median a few percent and only a small minority of
// codelets badly mispredicted ("Only three codelets in BT, LU, and
// SP are mispredicted").
func TestFigure4CodeletPrediction(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)
	ev := targetEval(t, prof, sub, "Sandy Bridge")
	if ev.Summary.Median > 0.06 {
		t.Errorf("Sandy Bridge median error %.1f%%, paper 5.8%%", ev.Summary.Median*100)
	}
	bad := 0
	for _, e := range ev.Errors {
		if e > 0.30 {
			bad++
		}
	}
	if bad > 6 {
		t.Errorf("%d codelets mispredicted >30%% on Sandy Bridge; the paper shows only a handful", bad)
	}
}

// TestFigure5ApplicationPrediction: application-level behavior.
// Paper: every Atom app predicted well except CG (the cache-state
// anomaly); Core 2 close to the reference with app-dependent winners;
// Sandy Bridge fast and accurately predicted.
func TestFigure5ApplicationPrediction(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)

	atom := targetEval(t, prof, sub, "Atom")
	var cgErr, worst float64
	var worstApp string
	for _, a := range atom.Apps {
		if a.Name == "cg" {
			cgErr = a.ErrorFrac
		}
		if a.ErrorFrac > worst {
			worst, worstApp = a.ErrorFrac, a.Name
		}
		if a.ActualSec < a.RefSec {
			t.Errorf("app %s faster on Atom than on the reference", a.Name)
		}
	}
	if cgErr < 0.08 {
		t.Errorf("CG error on Atom = %.1f%%; the paper's cache-state anomaly makes it large", cgErr*100)
	}
	if worstApp != "cg" {
		t.Errorf("worst-predicted Atom app is %s (%.1f%%), paper singles out CG", worstApp, worst*100)
	}
	// The CG misprediction must be an underestimate: the extracted
	// microbenchmark runs faster than the real codelet on Atom.
	for _, a := range atom.Apps {
		if a.Name == "cg" && a.PredSec >= a.ActualSec {
			t.Error("CG on Atom overpredicted; paper's anomaly underpredicts")
		}
	}

	core2 := targetEval(t, prof, sub, "Core 2")
	faster, slower := 0, 0
	for _, a := range core2.Apps {
		if a.ActualSec < a.RefSec {
			faster++
		} else {
			slower++
		}
	}
	if faster == 0 || slower == 0 {
		t.Errorf("Core 2 winners not app-dependent (faster=%d slower=%d); the paper's system-selection challenge requires both", faster, slower)
	}

	sb := targetEval(t, prof, sub, "Sandy Bridge")
	for _, a := range sb.Apps {
		if a.ActualSec > a.RefSec {
			t.Errorf("app %s slower on Sandy Bridge than reference", a.Name)
		}
		if a.ErrorFrac > 0.12 {
			t.Errorf("app %s error %.1f%% on Sandy Bridge; paper predicts all apps accurately", a.Name, a.ErrorFrac*100)
		}
	}
}

// TestFigure6GeomeanSpeedup: per-architecture geometric-mean
// speedups. Paper: Atom 0.15 real / 0.19 predicted, Core 2 0.97 /
// 1.00, Sandy Bridge 1.98 / 1.89.
func TestFigure6GeomeanSpeedup(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)
	bands := map[string][2]float64{
		"Atom":         {0.10, 0.30},
		"Core 2":       {0.75, 1.15},
		"Sandy Bridge": {1.75, 2.25},
	}
	for _, ev := range evaluateAll(t, prof, sub) {
		band := bands[ev.Target.Name]
		if ev.GeoMeanRealSpeedup < band[0] || ev.GeoMeanRealSpeedup > band[1] {
			t.Errorf("%s real geomean %.2f outside [%.2f, %.2f]",
				ev.Target.Name, ev.GeoMeanRealSpeedup, band[0], band[1])
		}
		rel := ev.GeoMeanPredictedSpeedup/ev.GeoMeanRealSpeedup - 1
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("%s predicted geomean %.2f vs real %.2f: off by %.0f%%",
				ev.Target.Name, ev.GeoMeanPredictedSpeedup, ev.GeoMeanRealSpeedup, rel*100)
		}
	}
}

// TestFigure7RandomClusteringBaseline: the feature-guided clustering
// must be consistently close to or better than the best of the random
// clusterings.
func TestFigure7RandomClusteringBaseline(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("random-clustering sweep is compute-heavy")
	}
	prof := nasProfile(t)
	ti, err := prof.TargetIndex("Atom")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{6, 12, 18} {
		st, err := prof.RandomClusterings(DefaultFeatures(), k, 200, ti, 99)
		if err != nil {
			t.Fatal(err)
		}
		if st.Guided > st.Median {
			t.Errorf("K=%d: guided %.1f%% worse than the random median %.1f%%",
				k, st.Guided*100, st.Median*100)
		}
		if st.Guided > st.Best*3+0.02 {
			t.Errorf("K=%d: guided %.1f%% not close to the best random %.1f%%",
				k, st.Guided*100, st.Best*100)
		}
	}
}

// TestFigure8CrossApplication: shared representatives beat
// per-application subsetting at matched budgets, and MG is
// unpredictable per-app (all its codelets are ill-behaved).
func TestFigure8CrossApplication(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	mask := DefaultFeatures()

	// The paper's claim lives in the small-budget regime: "shared
	// representatives can exploit inter-application redundancy,
	// achieving low prediction errors with less representatives."
	perWins, crossWins := 0, 0
	atomCore2Losses := 0
	var sawMGExcluded bool
	for _, reps := range []int{1, 2, 3} {
		pp, err := prof.PerAppSubsetting(mask, reps)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range pp.ExcludedApps {
			if ex == "mg" {
				sawMGExcluded = true
			}
		}
		cp, err := prof.CrossAppPoint(mask, pp.TotalReps)
		if err != nil {
			t.Fatal(err)
		}
		for ti, m := range prof.Targets {
			if cp.MedianError[ti] <= pp.MedianError[ti] {
				crossWins++
			} else {
				perWins++
				if reps >= 2 && (m.Name == "Atom" || m.Name == "Core 2") {
					atomCore2Losses++
				}
			}
		}
	}
	if !sawMGExcluded {
		t.Error("MG predictable per-app; the paper excludes it (ill-behaved codelets)")
	}
	if crossWins <= perWins {
		t.Errorf("cross-app subsetting won only %d of %d small-budget comparisons",
			crossWins, crossWins+perWins)
	}
	if atomCore2Losses > 0 {
		t.Errorf("cross-app lost %d Atom/Core 2 comparisons at budgets >= 2 per app", atomCore2Losses)
	}
}

// TestIllBehavedShareMatchesAkel: ~19% of NAS codelets fail the
// extraction screening on the reference.
func TestIllBehavedShareMatchesAkel(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	ill := 0
	for _, b := range prof.IllBehaved {
		if b {
			ill++
		}
	}
	frac := float64(ill) / float64(prof.N())
	if frac < 0.13 || frac > 0.25 {
		t.Errorf("ill-behaved share %.0f%%, Akel et al. report 19%%", frac*100)
	}
}

// TestClusterAB reproduces §4.4's "Capturing architecture change":
// the compute-bound pair (LU/erhs, FT/evolve) speeds up on Core 2
// while the memory-bound five-plane stencils slow down.
func TestClusterAB(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	ti, err := prof.TargetIndex("Core 2")
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(name string) float64 {
		for i, c := range prof.Codelets {
			if c.Name == name {
				return prof.RefInApp[i] / prof.TargetInApp[ti][i]
			}
		}
		t.Fatalf("codelet %s not found", name)
		return 0
	}
	for _, name := range []string{"lu_erhs", "ft_evolve"} {
		if s := speedup(name); s < 1.15 || s > 1.6 {
			t.Errorf("cluster A codelet %s Core 2 speedup %.2f, paper ~1.37", name, s)
		}
	}
	for _, name := range []string{"bt_rhs_z", "sp_rhs_z"} {
		if s := speedup(name); s > 0.9 || s < 0.5 {
			t.Errorf("cluster B codelet %s Core 2 speedup %.2f, paper ~0.75 (1.34x slower)", name, s)
		}
	}
	// And the subsetting keeps them apart.
	sub := defaultSubset(t, prof)
	label := map[string]int{}
	for i, c := range prof.Codelets {
		label[c.Name] = sub.Selection.Labels[i]
	}
	if label["lu_erhs"] == label["bt_rhs_z"] {
		t.Error("compute-bound cluster A merged with memory-bound cluster B")
	}
	if label["lu_erhs"] != label["ft_evolve"] {
		t.Error("cluster A pair (LU/erhs, FT/evolve) split")
	}
	if label["bt_rhs_z"] != label["sp_rhs_z"] {
		t.Error("cluster B pair (BT/rhs z-sweep, SP/rhs z-sweep) split")
	}
}

// TestShortCodeletsNoisier reproduces §4.4's observation that "the
// error mainly comes from short-lived codelets ... which are more
// affected by measurement errors such as instrumentation overhead":
// among well-predicted clusters, the shortest codelets carry larger
// median error than the longest.
func TestShortCodeletsNoisier(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)
	ev := targetEval(t, prof, sub, "Sandy Bridge")

	type codelet struct {
		secs float64
		err  float64
	}
	var list []codelet
	for i := range prof.Codelets {
		list = append(list, codelet{prof.RefInApp[i], ev.Errors[i]})
	}
	// Split at the median reference time.
	times := make([]float64, len(list))
	for i, c := range list {
		times[i] = c.secs
	}
	cut := medianOf(times)
	var short, long []float64
	for _, c := range list {
		if c.secs <= cut {
			short = append(short, c.err)
		} else {
			long = append(long, c.err)
		}
	}
	if medianOf(short) <= medianOf(long) {
		t.Errorf("short codelets median error %.2f%% not above long codelets %.2f%%",
			medianOf(short)*100, medianOf(long)*100)
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// TestClusteringFactorNearNOverK: §4.4 notes the clustering reduction
// "is close to the ratio between the original number of codelets and
// the number of representatives".
func TestClusteringFactorNearNOverK(t *testing.T) {
	skipIfRace(t)
	prof := nasProfile(t)
	sub := defaultSubset(t, prof)
	ratio := float64(prof.N()) / float64(sub.K())
	for _, ev := range evaluateAll(t, prof, sub) {
		cf := ev.Reduction.ClusteringFactor
		if cf < ratio*0.6 || cf > ratio*1.6 {
			t.Errorf("%s: clustering factor x%.1f far from N/K = %.1f",
				ev.Target.Name, cf, ratio)
		}
	}
}

// TestSeedRobustness: the headline shapes cannot depend on the
// particular measurement-noise and dataset seed.
func TestSeedRobustness(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("re-profiles the NAS suite")
	}
	prof, err := NewProfile(NASSuite(), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ill := 0
	for _, b := range prof.IllBehaved {
		if b {
			ill++
		}
	}
	if ill < 11 || ill > 15 {
		t.Errorf("seed 7: %d ill-behaved codelets", ill)
	}
	sub := defaultSubset(t, prof)
	if sub.K() < 14 || sub.K() > 24 {
		t.Errorf("seed 7: elbow K = %d", sub.K())
	}
	for _, ev := range evaluateAll(t, prof, sub) {
		if ev.Summary.Median > 0.06 {
			t.Errorf("seed 7: %s median error %.1f%%", ev.Target.Name, ev.Summary.Median*100)
		}
		if ev.Reduction.Total < 15 || ev.Reduction.Total > 70 {
			t.Errorf("seed 7: %s reduction x%.1f", ev.Target.Name, ev.Reduction.Total)
		}
	}
}

package stage

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// The two standard tier decorators. Every tier in a chain built by
// NewTierChain is wrapped Framed(Breakered(tier)): the breaker sits
// against the device so raw I/O outcomes drive it, and the frame layer
// sits on top so corruption is classified (quarantine) before it could
// ever be mistaken for an I/O failure.

// Framed wraps a tier with artifact integrity framing: Put prefixes
// the payload with its sha256 frame header, Get verifies and strips
// it. Bytes that claim a frame but fail verification are quarantined
// in the underlying tier and reported as a CorruptError — never
// decoded, never counted as an I/O failure. Legacy unframed bytes pass
// through unverified (no integrity claim to check) and gain a frame on
// their next write.
func Framed(b Backend) *FramedBackend { return &FramedBackend{inner: b} }

// FramedBackend is the integrity decorator; see Framed.
type FramedBackend struct {
	inner Backend

	hits        atomic.Int64
	misses      atomic.Int64
	writes      atomic.Int64
	quarantined atomic.Int64
}

// Name reports the wrapped tier's name.
func (f *FramedBackend) Name() string { return f.inner.Name() }

// Remote forwards the wrapped tier's remote marker.
func (f *FramedBackend) Remote() bool { return isRemote(f.inner) }

// Get returns ref's verified payload with the frame stripped.
func (f *FramedBackend) Get(ctx context.Context, ref Ref) ([]byte, error) {
	data, err := f.inner.Get(ctx, ref)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			f.misses.Add(1)
		}
		return nil, err
	}
	payload, _, err := unframe(data)
	if err != nil {
		return nil, f.quarantineCorrupt(ctx, ref, err)
	}
	f.hits.Add(1)
	return payload, nil
}

// GetFramed returns ref's verified bytes with the frame attached — the
// wire form the peer-fetch endpoint serves. Legacy unframed bytes are
// framed on the way out, so the wire always carries an integrity claim
// the fetching node can verify.
func (f *FramedBackend) GetFramed(ctx context.Context, ref Ref) ([]byte, error) {
	data, err := f.inner.Get(ctx, ref)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			f.misses.Add(1)
		}
		return nil, err
	}
	payload, framed, err := unframe(data)
	if err != nil {
		return nil, f.quarantineCorrupt(ctx, ref, err)
	}
	if !framed {
		data = Frame(payload)
	}
	f.hits.Add(1)
	return data, nil
}

// quarantineCorrupt counts and forwards a quarantine, returning the
// CorruptError the caller reports.
func (f *FramedBackend) quarantineCorrupt(ctx context.Context, ref Ref, err error) error {
	f.quarantined.Add(1)
	quarantineTier(ctx, f.inner, ref)
	return &CorruptError{Tier: f.Name(), Err: err}
}

// Put frames payload and stores it in the wrapped tier.
func (f *FramedBackend) Put(ctx context.Context, ref Ref, payload []byte) (bool, error) {
	written, err := f.inner.Put(ctx, ref, Frame(payload))
	if written && err == nil {
		f.writes.Add(1)
	}
	return written, err
}

// Delete forwards to the wrapped tier.
func (f *FramedBackend) Delete(ctx context.Context, ref Ref) error {
	return f.inner.Delete(ctx, ref)
}

// Quarantine counts a caller-detected corruption (a decode failure
// above the frame layer) and forwards it down the stack.
func (f *FramedBackend) Quarantine(ctx context.Context, ref Ref) {
	f.quarantined.Add(1)
	quarantineTier(ctx, f.inner, ref)
}

// Len reports the wrapped tier's artifact count.
func (f *FramedBackend) Len() int { return f.inner.Len() }

// Stats merges this decorator's traffic counters into the wrapped
// tier's row.
func (f *FramedBackend) Stats() TierStats {
	st := f.inner.Stats()
	st.Hits += f.hits.Load()
	st.Misses += f.misses.Load()
	st.Writes += f.writes.Load()
	st.Quarantined += f.quarantined.Load()
	return st
}

// Breakered wraps a tier with the count-paced degradation breaker:
// diskBreakerThreshold consecutive I/O failures open it, after which
// operations are skipped (Get reports a miss, Put reports
// not-written) except every diskProbeInterval-th, which runs for real
// as the half-open probe — one success re-closes the breaker. The
// pacing is by operation count, not wall clock, because tiers live
// inside the stage package where determinism is non-negotiable.
//
// A clean miss (ErrNotFound) and a no-op write prove nothing about the
// device: they neither reset failures nor consume a probe slot, so
// missing-artifact probes cannot starve the real ones.
func Breakered(b Backend) *BreakeredBackend { return &BreakeredBackend{inner: b} }

// BreakeredBackend is the degradation decorator; see Breakered.
type BreakeredBackend struct {
	inner Backend

	mu       sync.Mutex
	failures int   // consecutive I/O failures; guarded by mu
	degraded bool  // guarded by mu
	skipped  int   // ops skipped since the trip, paces probes; guarded by mu
	errors   int64 // cumulative I/O failures; guarded by mu
}

// Name reports the wrapped tier's name.
func (b *BreakeredBackend) Name() string { return b.inner.Name() }

// Remote forwards the wrapped tier's remote marker.
func (b *BreakeredBackend) Remote() bool { return isRemote(b.inner) }

// allowed reports whether this operation should touch the tier.
// Closed breaker: always. Open breaker: only every
// diskProbeInterval-th call, which becomes the half-open probe — the
// operation runs for real and its outcome decides whether the breaker
// closes.
func (b *BreakeredBackend) allowed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.degraded {
		return true
	}
	b.skipped++
	if b.skipped >= diskProbeInterval {
		b.skipped = 0
		return true
	}
	return false
}

// ok records a successful operation: failures reset, and an open
// breaker closes (the probe succeeded; the tier is back).
func (b *BreakeredBackend) ok() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.degraded = false
	b.skipped = 0
}

// inconclusive refunds a probe that proved nothing about the tier — a
// clean miss or a no-op write admitted through an open breaker.
// Without the refund, missing-artifact probes would starve the real
// ones and a recovered tier could stay degraded indefinitely.
func (b *BreakeredBackend) inconclusive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.degraded {
		b.skipped = diskProbeInterval - 1
	}
}

// failed records an I/O failure (ENOSPC, EIO, a peer returning 5xx —
// not corruption, which quarantines instead). Enough in a row trip the
// breaker and the tier degrades to skip-with-probes.
func (b *BreakeredBackend) failed() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.errors++
	b.failures++
	if b.failures >= diskBreakerThreshold {
		b.degraded = true
	}
}

// Get forwards to the wrapped tier, feeding the breaker. While the
// breaker is open, skipped Gets report a clean miss so the chain falls
// through to the next tier or to compute.
func (b *BreakeredBackend) Get(ctx context.Context, ref Ref) ([]byte, error) {
	if !b.allowed() {
		return nil, ErrNotFound
	}
	data, err := b.inner.Get(ctx, ref)
	switch {
	case err == nil:
		b.ok()
		return data, nil
	case errors.Is(err, ErrNotFound):
		b.inconclusive()
		return nil, err
	default:
		b.failed()
		return nil, err
	}
}

// Put forwards to the wrapped tier, feeding the breaker. While the
// breaker is open, skipped Puts report not-written — the artifact is
// already in memory upstream; the tier copy is an optimization.
func (b *BreakeredBackend) Put(ctx context.Context, ref Ref, data []byte) (bool, error) {
	if !b.allowed() {
		return false, nil
	}
	written, err := b.inner.Put(ctx, ref, data)
	switch {
	case err != nil:
		b.failed()
		return false, err
	case !written:
		b.inconclusive()
		return false, nil
	default:
		b.ok()
		return true, nil
	}
}

// Delete forwards to the wrapped tier without gating: deletes are
// rare, explicit, and their failure modes are the caller's to handle.
func (b *BreakeredBackend) Delete(ctx context.Context, ref Ref) error {
	return b.inner.Delete(ctx, ref)
}

// Quarantine forwards down the stack.
func (b *BreakeredBackend) Quarantine(ctx context.Context, ref Ref) {
	quarantineTier(ctx, b.inner, ref)
}

// Len reports the wrapped tier's artifact count.
func (b *BreakeredBackend) Len() int { return b.inner.Len() }

// Stats merges the breaker's state and error count into the wrapped
// tier's row.
func (b *BreakeredBackend) Stats() TierStats {
	st := b.inner.Stats()
	b.mu.Lock()
	defer b.mu.Unlock()
	st.Errors += b.errors
	if b.degraded {
		st.State = DiskDegraded
	} else if st.State == "" {
		st.State = DiskOK
	}
	return st
}

// Package sim executes codelets on the modeled machines and produces
// the dynamic measurements (execution time and hardware-counter-style
// statistics) that the paper obtains with Likwid probes on real
// hardware.
//
// The simulator is a performance simulator, not a functional one:
// floating-point values never influence an access stream, so they are
// not materialized. Integer array contents are materialized because
// they steer indirect addressing (gathers and scatters) — the one way
// data influences timing.
//
// An invocation is simulated by walking the codelet's loop nest,
// streaming every memory reference through the machine's cache
// hierarchy (internal/cache), and combining three cost components:
//
//	compute   = sum over innermost loops of trips x cycles/iteration
//	            (from internal/compile's port model, L1-hit assumption)
//	bandwidth = line traffic to and from DRAM divided by the machine's
//	            sustainable bandwidth
//	latency   = per-access miss penalties, scaled by how much of them
//	            the core exposes (in-order Atom exposes everything;
//	            out-of-order cores hide most, hardware prefetchers hide
//	            more on sequential streams)
//
//	cycles = max(compute, bandwidth) + exposed latency + probe overhead
//
// Two measurement modes mirror the paper's setup:
//
//   - ModeInApp: the codelet as profiled inside its application (Step
//     B). Each invocation starts from a cold cache — between two
//     invocations, the rest of the application has trashed it — and
//     dataset-varying codelets see their per-invocation trip counts
//     change.
//   - ModeStandalone: the extracted microbenchmark (Step D). The
//     wrapper loads the memory dump (warming the cache), invocations
//     run back to back, and the dataset is the one captured at the
//     application's first invocation. Context-sensitive codelets are
//     recompiled without the application context.
package sim

import (
	"fmt"

	"fgbs/internal/ir"
	"fgbs/internal/rng"
)

// datasetAlign is the base-address alignment of every array.
const datasetAlign = 64

// Dataset is the simulated memory image of one program: array base
// addresses plus the contents of integer arrays.
type Dataset struct {
	prog  *ir.Program
	bases map[string]int64
	sizes map[string]int64
	ints  map[string][]int64
	// TotalBytes is the packed footprint of all arrays.
	TotalBytes int64
}

// BuildDataset lays out the program's arrays in a flat address space
// and fills integer arrays according to their declared initializers.
// The seed makes the pseudo-random initializers reproducible.
func BuildDataset(p *ir.Program, seed uint64) (*Dataset, error) {
	ds := &Dataset{
		prog:  p,
		bases: make(map[string]int64),
		sizes: make(map[string]int64),
		ints:  make(map[string][]int64),
	}
	r := rng.New(seed)
	addr := int64(4096)
	for _, a := range p.Arrays() {
		n := a.Elems(p.Params)
		if n < 0 {
			return nil, fmt.Errorf("sim: array %q has negative size", a.Name)
		}
		bytes := n * a.DT.Size()
		ds.bases[a.Name] = addr
		ds.sizes[a.Name] = bytes
		addr += (bytes + datasetAlign) &^ (datasetAlign - 1)
		if a.DT == ir.I64 {
			data, err := initInts(a, n, p.Params, r)
			if err != nil {
				return nil, err
			}
			ds.ints[a.Name] = data
		}
	}
	ds.TotalBytes = addr - 4096
	return ds, nil
}

func initInts(a *ir.Array, n int64, params map[string]int64, r *rng.RNG) ([]int64, error) {
	data := make([]int64, n)
	switch a.Init.Kind {
	case ir.IntInitZero:
		// already zero
	case ir.IntInitUniform:
		bound := a.Init.Bound.Eval(params)
		if bound <= 0 {
			return nil, fmt.Errorf("sim: array %q: uniform init with bound %d", a.Name, bound)
		}
		for i := range data {
			data[i] = r.Int63n(bound)
		}
	case ir.IntInitMod:
		bound := a.Init.Bound.Eval(params)
		if bound <= 0 {
			return nil, fmt.Errorf("sim: array %q: mod init with bound %d", a.Name, bound)
		}
		for i := range data {
			data[i] = int64(i) % bound
		}
	default:
		return nil, fmt.Errorf("sim: array %q: unknown init kind %d", a.Name, a.Init.Kind)
	}
	return data, nil
}

// Base returns the base address of array name.
func (ds *Dataset) Base(name string) int64 { return ds.bases[name] }

// SizeBytes returns the footprint of array name.
func (ds *Dataset) SizeBytes(name string) int64 { return ds.sizes[name] }

// Ints returns the contents of integer array name (nil for FP arrays).
func (ds *Dataset) Ints(name string) []int64 { return ds.ints[name] }

// WorkingSetBytes returns the total footprint of the arrays referenced
// by codelet c — the size of the memory dump its extracted
// microbenchmark would carry.
func (ds *Dataset) WorkingSetBytes(c *ir.Codelet) int64 {
	names := referencedArrays(c)
	var total int64
	for name := range names {
		total += ds.sizes[name]
	}
	return total
}

// referencedArrays collects the arrays a codelet touches.
func referencedArrays(c *ir.Codelet) map[string]bool {
	names := make(map[string]bool)
	var walkLoop func(l *ir.Loop)
	walkLoop = func(l *ir.Loop) {
		for _, s := range l.Body {
			switch st := s.(type) {
			case *ir.Loop:
				walkLoop(st)
			case *ir.Assign:
				names[st.LHS.Array] = true
				ir.WalkExpr(st.RHS, func(e ir.Expr) {
					if ld, ok := e.(*ir.Load); ok {
						names[ld.Ref.Array] = true
					}
				})
				for _, ix := range st.LHS.Index {
					ir.WalkExpr(ix, func(e ir.Expr) {
						if ld, ok := e.(*ir.Load); ok {
							names[ld.Ref.Array] = true
						}
					})
				}
			}
		}
	}
	walkLoop(c.Loop)
	return names
}

package report

import (
	"time"

	"fgbs/internal/jobs"
	"fgbs/internal/pipeline"
)

// Wire forms of the async job engine: job snapshots for the
// /v1/jobs listing and polling endpoints, plus the result payloads of
// the three experiment kinds (sweep, randbaseline, ga). The result
// structures are what a completed job persists to disk and what
// GET /v1/jobs/{id}/result returns, so they carry enough identity
// (suite, seed, parameters) to be read standalone later.

// JobJSON is the wire form of one job's observable state.
type JobJSON struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	State    string     `json:"state"`
	Done     int64      `json:"done"`
	Total    int64      `json:"total"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Attempts counts run starts (>1 after retries or a resumed crash).
	Attempts int `json:"attempts,omitempty"`
	// Interrupted marks a job re-adopted from the journal after a
	// process restart.
	Interrupted bool `json:"interrupted,omitempty"`
}

// NewJobJSON converts a job snapshot to its wire form.
func NewJobJSON(s jobs.Snapshot) *JobJSON {
	jj := &JobJSON{
		ID: s.ID, Kind: s.Kind, State: string(s.State),
		Done: s.Done, Total: s.Total,
		Created: s.Created, Error: s.Err,
		Attempts: s.Attempts, Interrupted: s.Interrupted,
	}
	if !s.Started.IsZero() {
		t := s.Started
		jj.Started = &t
	}
	if !s.Finished.IsZero() {
		t := s.Finished
		jj.Finished = &t
	}
	return jj
}

// SweepPointJSON is one K of a sweep job's result, with the per-target
// slices aligned to the enclosing SweepJSON's Targets.
type SweepPointJSON struct {
	K           int       `json:"k"`
	FinalK      int       `json:"finalK"`
	MedianError []float64 `json:"medianError"`
	Reduction   []float64 `json:"reduction"`
}

// SweepJSON is the completed result of a sweep job (Figure 3).
type SweepJSON struct {
	Suite   string           `json:"suite"`
	Mask    string           `json:"mask"`
	KMin    int              `json:"kmin"`
	KMax    int              `json:"kmax"`
	Targets []string         `json:"targets"`
	Points  []SweepPointJSON `json:"points"`
}

// NewSweepJSON builds the wire form of a sweep result.
func NewSweepJSON(p *pipeline.Profile, pts []pipeline.SweepPoint) *SweepJSON {
	sj := &SweepJSON{}
	for _, m := range p.Targets {
		sj.Targets = append(sj.Targets, m.Name)
	}
	for _, pt := range pts {
		sj.Points = append(sj.Points, SweepPointJSON{
			K: pt.K, FinalK: pt.FinalK,
			MedianError: pt.MedianError, Reduction: pt.Reduction,
		})
	}
	return sj
}

// RandPointJSON is one K of the random-clustering baseline envelope.
type RandPointJSON struct {
	K      int     `json:"k"`
	Guided float64 `json:"guided"`
	Best   float64 `json:"best"`
	Median float64 `json:"median"`
	Worst  float64 `json:"worst"`
}

// RandBaselineJSON is the completed result of a randbaseline job
// (Figure 7): the guided clustering's median error against the
// best/median/worst of `trials` random partitions, per K.
type RandBaselineJSON struct {
	Suite  string          `json:"suite"`
	Mask   string          `json:"mask"`
	Target string          `json:"target"`
	Trials int             `json:"trials"`
	Seed   uint64          `json:"seed"`
	Points []RandPointJSON `json:"points"`
}

// NewRandBaselineJSON builds the wire form of a randbaseline result.
func NewRandBaselineJSON(stats []pipeline.RandomClusteringStats) *RandBaselineJSON {
	rj := &RandBaselineJSON{}
	for _, st := range stats {
		rj.Points = append(rj.Points, RandPointJSON{
			K: st.K, Guided: st.Guided,
			Best: st.Best, Median: st.Median, Worst: st.Worst,
		})
	}
	return rj
}

// GAJSON is the completed result of a ga job (§4.2 feature selection).
type GAJSON struct {
	Suite        string    `json:"suite"`
	Targets      []string  `json:"targets"`
	Population   int       `json:"population"`
	Generations  int       `json:"generations"`
	Seed         uint64    `json:"seed"`
	BestMask     string    `json:"bestMask"`
	BestFeatures []string  `json:"bestFeatures"`
	BestFitness  float64   `json:"bestFitness"`
	Evaluations  int       `json:"evaluations"`
	History      []float64 `json:"history"`
}

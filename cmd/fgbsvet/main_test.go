package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanTree is the end-to-end acceptance gate: fgbsvet over the
// real module exits 0 with no output. LoadModule walks up from the
// test's working directory to the repository's go.mod.
func TestRunCleanTree(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"./..."}); code != 0 {
		t.Fatalf("fgbsvet ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed:\n%s", stdout.String())
	}
}

// TestRunFindings: on a module with a violation, fgbsvet exits 1 and
// prints a file:line:col diagnostic.
func TestRunFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "clock.go:6:9:") || !strings.Contains(out, "[determinism]") {
		t.Errorf("diagnostic output missing file:line:col or check name:\n%s", out)
	}
}

// TestRunChecksFlagFilters: -checks narrows the suite, so the same
// violation passes when only an unrelated check runs.
func TestRunChecksFlagFilters(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-checks", "floatcompare,errwrap"}); code != 0 {
		t.Fatalf("exit %d, want 0 (determinism disabled)\nstdout:\n%s", code, stdout.String())
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown check", []string{"-checks", "ghost"}, "valid: determinism, ctxpropagation, floatcompare, errwrap, guardedby"},
		{"empty checks", []string{"-checks", ","}, "lists no checks"},
		{"bad flag", []string{"-bogus"}, "-bogus"},
		{"unknown package", []string{"./nonexistent"}, "no packages match"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(&stdout, &stderr, c.args); code != 2 {
				t.Fatalf("run(%v) = exit %d, want 2", c.args, code)
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q lacks %q", stderr.String(), c.want)
			}
		})
	}
}

func TestListPrintsEveryCheck(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list = exit %d", code)
	}
	for _, name := range []string{"determinism", "ctxpropagation", "floatcompare", "errwrap", "guardedby"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output lacks %s:\n%s", name, stdout.String())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatCompareCheck bans raw floating-point equality. Accumulated
// rounding differs across evaluation orders, so a bare == or != (or a
// switch on a float) silently encodes an assumption the hardware does
// not honor; comparisons belong behind the epsilon-aware helpers in
// internal/stats, which is exempt, as are *_test.go files (golden
// assertions compare exact bytes on purpose).
var floatCompareCheck = &Check{
	Name: "floatcompare",
	Doc:  "forbid ==/!=/switch on floating-point operands outside tests and internal/stats",
	run:  runFloatCompare,
}

// floatCompareExemptSuffix names the approved-helper package: the
// epsilon-aware comparison code itself.
const floatCompareExemptSuffix = "internal/stats"

func runFloatCompare(p *Pass) {
	if p.Pkg.Path == floatCompareExemptSuffix ||
		strings.HasSuffix(p.Pkg.Path, "/"+floatCompareExemptSuffix) {
		return
	}
	for _, f := range p.Pkg.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isFloat(p, n.X) || isFloat(p, n.Y) {
					p.Reportf(n.OpPos, "floating-point %s comparison; use an epsilon or an internal/stats helper", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p, n.Tag) {
					p.Reportf(n.Tag.Pos(), "switch on a floating-point value compares floats exactly; use an epsilon or an internal/stats helper")
				}
			}
			return true
		})
	}
}

// isFloat reports whether expr has (possibly untyped) floating-point
// type.
func isFloat(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

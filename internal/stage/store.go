package stage

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"fgbs/internal/fault"
)

// bufPool recycles the scratch buffers the disk layer stages artifact
// bytes in. Profile artifacts run to megabytes of JSON; without
// pooling, every persist and every disk hit allocates and grows a
// fresh buffer of that size. Codecs must not retain the readers or
// writers they are handed — the buffer behind them returns to the
// pool when the call ends.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Codec serializes one stage's artifacts for the Store's disk layer.
// Stages whose artifacts are not worth persisting (cheap to recompute,
// or referencing in-memory structures) resolve with a nil Codec and
// live only in the LRU.
type Codec interface {
	// Filename is the artifact's name inside the store directory.
	// Names should be qualified by the artifact's key (the profile
	// stage embeds a key prefix) so differently-keyed resolves never
	// share a file; a Codec may additionally implement LegacyNamer to
	// keep reading files written under an older, unqualified layout.
	Filename() string
	// Encode writes the artifact.
	Encode(w io.Writer, v any) error
	// Decode reads it back. Any error means "rebuild", never "fail".
	Decode(r io.Reader) (any, error)
	// Persist reports whether v should be written at all — the hook
	// that keeps degraded profiles off disk (a restart should retry the
	// measurements, not resurrect the outage).
	Persist(v any) bool
}

// LegacyNamer is an optional Codec extension: a second, read-only
// filename probed when Filename misses on disk. It exists for
// artifacts persisted before filenames were key-qualified (the
// registry's bare <suite>.json profiles); fresh artifacts are always
// written under Filename, never the legacy name.
type LegacyNamer interface {
	// LegacyFilename returns the fallback name, or "" when no legacy
	// layout applies to this resolve.
	LegacyFilename() string
}

// Counters is one hit/miss row, either a per-stage breakdown entry or
// the store-wide total.
type Counters struct {
	// Hits served from the in-memory LRU.
	Hits int64 `json:"hits"`
	// Joined resolves that coalesced onto another caller's in-flight
	// computation of the same key.
	Joined int64 `json:"joined"`
	// Misses that entered fill (disk probe, then compute).
	Misses int64 `json:"misses"`
	// DiskHits are misses satisfied by decoding the on-disk artifact.
	DiskHits int64 `json:"diskHits"`
	// DiskWrites are computed artifacts persisted to disk.
	DiskWrites int64 `json:"diskWrites"`
}

func (c *Counters) add(d Counters) {
	c.Hits += d.Hits
	c.Joined += d.Joined
	c.Misses += d.Misses
	c.DiskHits += d.DiskHits
	c.DiskWrites += d.DiskWrites
}

// Stats is a Store snapshot for /metricz.
type Stats struct {
	Entries  int                 `json:"entries"`
	Capacity int                 `json:"capacity"`
	Total    Counters            `json:"total"`
	Stages   map[string]Counters `json:"stages"`
	Disk     DiskStats           `json:"disk"`
}

// Disk health states reported by DiskHealth and Stats.Disk.State.
const (
	// DiskDisabled: the store has no disk layer.
	DiskDisabled = "disabled"
	// DiskOK: the disk layer is serving normally.
	DiskOK = "ok"
	// DiskDegraded: the breaker has tripped; the store serves
	// memory-only, probing the disk every diskProbeInterval-th
	// operation.
	DiskDegraded = "degraded"
)

// DiskStats is the disk layer's health row.
type DiskStats struct {
	// State is DiskDisabled, DiskOK, or DiskDegraded.
	State string `json:"state"`
	// Errors counts I/O failures against the disk layer (cumulative).
	Errors int64 `json:"errors"`
	// Quarantined counts artifacts renamed to *.corrupt after failing
	// integrity or decode checks (cumulative).
	Quarantined int64 `json:"quarantined"`
}

// Outcome reports how one Resolve was satisfied.
type Outcome struct {
	// Cached means compute did not run: the value came from the LRU,
	// from a coalesced in-flight computation, or from disk.
	Cached bool
	// Disk means the value was decoded from the on-disk artifact.
	Disk bool
}

// Store memoizes stage artifacts: an in-memory LRU over content
// addresses, with per-key singleflight coalescing (concurrent resolves
// of the same key run compute once and share the outcome) and an
// optional disk layer for stages with a Codec. Artifacts are treated
// as immutable once stored — the same contract pipeline.Profile
// already carries — so values are shared, never copied.
type Store struct {
	dir string
	cap int

	mu       sync.Mutex
	ll       *list.List            // front = most recently used; guarded by mu
	items    map[Key]*list.Element // guarded by mu
	inflight map[Key]*flight       // guarded by mu
	stages   map[string]*Counters  // guarded by mu

	// Disk-degradation breaker. The store must stay deterministic (no
	// wall clock), so the half-open state is paced by operation count
	// rather than a cooldown timer: while degraded, every
	// diskProbeInterval-th disk operation is admitted as a probe and
	// one success re-closes the breaker.
	diskFailures int   // consecutive I/O failures; guarded by mu
	diskDegraded bool  // guarded by mu
	diskSkipped  int   // ops skipped since the trip, paces probes; guarded by mu
	diskErrors   int64 // cumulative I/O failures; guarded by mu
	quarantined  int64 // cumulative quarantined artifacts; guarded by mu
}

// diskBreakerThreshold is how many consecutive I/O failures trip the
// disk breaker (mirrors the serving layer's DefaultBreakerThreshold).
const diskBreakerThreshold = 3

// diskProbeInterval is how many disk operations are skipped between
// half-open probes while the breaker is open.
const diskProbeInterval = 16

// entry is one LRU slot.
type entry struct {
	key Key
	val any
}

// flight is one in-progress computation; done is closed when val/out/
// err are final.
type flight struct {
	done chan struct{}
	val  any
	out  Outcome
	err  error
}

// NewStore builds a store holding at most capacity artifacts in
// memory, persisting Codec-bearing stages under dir ("" disables the
// disk layer).
func NewStore(capacity int, dir string) *Store {
	if capacity <= 0 {
		capacity = 1
	}
	return &Store{
		dir:      dir,
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		stages:   make(map[string]*Counters),
	}
}

// Dir returns the store's disk directory ("" when disk is disabled).
func (s *Store) Dir() string { return s.dir }

// DiskHealth reports the disk layer's state: DiskDisabled, DiskOK, or
// DiskDegraded. The serving layer surfaces it on /healthz.
func (s *Store) DiskHealth() string {
	if s.dir == "" {
		return DiskDisabled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.diskDegraded {
		return DiskDegraded
	}
	return DiskOK
}

// diskAllowed reports whether this disk operation should touch the
// device. Closed breaker: always. Open breaker: only every
// diskProbeInterval-th call, which becomes the half-open probe — the
// operation runs for real and its outcome (diskOK/diskFailed) decides
// whether the breaker closes.
func (s *Store) diskAllowed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.diskDegraded {
		return true
	}
	s.diskSkipped++
	if s.diskSkipped >= diskProbeInterval {
		s.diskSkipped = 0
		return true
	}
	return false
}

// diskOK records a successful disk operation: failures reset, and an
// open breaker closes (the probe succeeded; the disk is back).
func (s *Store) diskOK() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.diskFailures = 0
	s.diskDegraded = false
	s.diskSkipped = 0
}

// diskInconclusive refunds a probe that proved nothing about the
// device — a load admitted through an open breaker that found no file
// at all. Without the refund, missing-file probes would starve the
// real ones and a recovered disk could stay degraded indefinitely.
func (s *Store) diskInconclusive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.diskDegraded {
		s.diskSkipped = diskProbeInterval - 1
	}
}

// diskFailed records an I/O failure (ENOSPC, EIO, permission flaps —
// not corruption, which quarantines instead). Enough in a row trip the
// breaker and the store degrades to memory-only.
func (s *Store) diskFailed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.diskErrors++
	s.diskFailures++
	if s.diskFailures >= diskBreakerThreshold {
		s.diskDegraded = true
	}
}

// quarantine moves a corrupt artifact aside as <path>.corrupt — kept
// for forensics, never silently deleted, and out of the load path so
// the next resolve recomputes — and counts it.
func (s *Store) quarantine(path string) {
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	os.Rename(path, path+".corrupt")
}

// counterLocked returns stage's counter row, creating it on first use.
func (s *Store) counterLocked(stage string) *Counters {
	//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
	c := s.stages[stage]
	if c == nil {
		c = &Counters{}
		//fgbs:allow guardedby the *Locked naming contract: every caller holds s.mu
		s.stages[stage] = c
	}
	return c
}

// Resolve returns the artifact stored under key, computing and storing
// it on a miss. Exactly one caller runs compute per key at a time;
// concurrent resolves of the same key wait for that caller's outcome.
// A failed compute is not stored — the flight is dropped so a later
// Resolve retries. ctx bounds this caller's wait and is the context
// compute runs under; a caller whose ctx expires while coalesced gives
// up alone, without aborting the computing caller.
func (s *Store) Resolve(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, Outcome{}, err
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.counterLocked(stage).Hits++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, Outcome{Cached: true}, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.counterLocked(stage).Joined++
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Outcome{}, ctx.Err()
		}
		if f.err != nil {
			return nil, Outcome{}, f.err
		}
		return f.val, Outcome{Cached: true, Disk: f.out.Disk}, nil
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.counterLocked(stage).Misses++
	s.mu.Unlock()

	// finish publishes the flight's outcome exactly once: drop the
	// flight (so a failure can retry), store a success, wake waiters.
	finish := func() {
		s.mu.Lock()
		delete(s.inflight, key)
		if f.err == nil {
			if el, ok := s.items[key]; ok {
				el.Value.(*entry).val = f.val
				s.ll.MoveToFront(el)
			} else {
				s.items[key] = s.ll.PushFront(&entry{key: key, val: f.val})
				for s.ll.Len() > s.cap {
					last := s.ll.Back()
					s.ll.Remove(last)
					delete(s.items, last.Value.(*entry).key)
				}
			}
		}
		s.mu.Unlock()
		close(f.done)
	}
	// finish must run even when compute panics — otherwise the dead
	// flight stays in s.inflight and every later Resolve of the key
	// blocks on it until its own ctx expires, wedging the key for the
	// process lifetime. The panic is re-propagated after waiters are
	// handed an error, so they fail fast and can retry.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.val, f.out = nil, Outcome{}
				f.err = fmt.Errorf("stage: %s compute panicked: %v", stage, r)
				finish()
				panic(r)
			}
			finish()
		}()
		f.val, f.out, f.err = s.fill(ctx, stage, key, codec, compute)
	}()
	return f.val, f.out, f.err
}

// fill satisfies a miss: disk first (when the stage has a Codec), then
// compute, writing the fresh artifact back to disk.
func (s *Store) fill(ctx context.Context, stage string, key Key, codec Codec, compute func(context.Context) (any, error)) (any, Outcome, error) {
	if v, ok := s.loadDisk(stage, codec); ok {
		return v, Outcome{Cached: true, Disk: true}, nil
	}
	v, err := compute(ctx)
	if err != nil {
		return nil, Outcome{}, err
	}
	s.saveDisk(stage, codec, v)
	return v, Outcome{}, nil
}

// loadDisk decodes the stage's persisted artifact, probing the keyed
// name first and then the codec's legacy name, when it declares one.
// Every failure mode (no disk layer, missing file, stale or corrupt
// content) reports !ok so the caller recomputes — the artifact can
// always be regenerated.
func (s *Store) loadDisk(stage string, codec Codec) (any, bool) {
	if s.dir == "" || codec == nil {
		return nil, false
	}
	if !s.diskAllowed() {
		return nil, false
	}
	names := []string{codec.Filename()}
	if ln, ok := codec.(LegacyNamer); ok {
		if n := ln.LegacyFilename(); n != "" && n != names[0] {
			names = append(names, n)
		}
	}
	for _, name := range names {
		if v, ok := s.decodeFile(stage, codec, name); ok {
			return v, true
		}
	}
	return nil, false
}

// decodeFile decodes one candidate artifact file. The frame is
// verified before the codec runs; any integrity or decode failure
// quarantines the file (renamed to *.corrupt, counted, kept for
// forensics) and reports a miss so the caller recomputes — corruption
// can never poison the LRU or panic a resolve. A missing file is just
// a miss; I/O errors feed the disk breaker.
func (s *Store) decodeFile(stage string, codec Codec, name string) (any, bool) {
	path := filepath.Join(s.dir, name)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.diskInconclusive()
		} else {
			s.diskFailed()
		}
		return nil, false
	}
	defer f.Close()
	// Read the whole artifact into a pooled buffer first: decoders
	// (json.Decoder especially) issue many small reads, each a syscall
	// when pointed straight at the file.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(f); err != nil {
		s.diskFailed()
		return nil, false
	}
	payload, _, err := unframe(buf.Bytes())
	if err != nil {
		s.quarantine(path)
		return nil, false
	}
	v, err := codec.Decode(bytes.NewReader(payload))
	if err != nil {
		s.quarantine(path)
		return nil, false
	}
	s.diskOK()
	s.mu.Lock()
	s.counterLocked(stage).DiskHits++
	s.mu.Unlock()
	return v, true
}

// saveDisk persists a computed artifact, framed with a version and
// checksum, via tmp + fsync + rename + parent-dir fsync; failures feed
// the disk breaker but never fail the resolve (the artifact is already
// in memory, the disk copy is an optimization).
func (s *Store) saveDisk(stage string, codec Codec, v any) {
	if s.dir == "" || codec == nil || !codec.Persist(v) {
		return
	}
	if !s.diskAllowed() {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		s.diskFailed()
		return
	}
	path := filepath.Join(s.dir, codec.Filename())
	// The tmp name must be unique per writer: the documented workflows
	// share one directory between processes (fgbs -stagedir and fgbsd
	// -profiledir), and a fixed tmp path would let two concurrent
	// persists of the same filename interleave writes and rename a
	// corrupt artifact.
	// Encode into a pooled buffer, then write the file out: the
	// encoder's many small writes land in memory, a failed encode never
	// creates a partially-written tmp file at all, and the frame header
	// needs the payload's checksum before the first byte hits disk.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if err := codec.Encode(buf, v); err != nil {
		return // an unencodable artifact is not a disk failure
	}
	payload := buf.Bytes()
	f, err := os.CreateTemp(s.dir, codec.Filename()+".tmp*")
	if err != nil {
		s.diskFailed()
		return
	}
	tmp := f.Name()
	fail := func() {
		s.diskFailed()
		f.Close()
		os.Remove(tmp)
	}
	if _, err := io.WriteString(f, frameHeader(payload)); err != nil {
		fail()
		return
	}
	// The payload is written in two halves around the mid-write
	// crashpoint: a crash here leaves a torn tmp file the published
	// name never points at, which is exactly what the frame (and the
	// recovery harness) must tolerate.
	half := len(payload) / 2
	if _, err := f.Write(payload[:half]); err != nil {
		fail()
		return
	}
	fault.Crashpoint(fault.CrashMidArtifactWrite)
	if _, err := f.Write(payload[half:]); err != nil {
		fail()
		return
	}
	// fsync before rename: the published name must never point at bytes
	// that exist only in the page cache.
	if err := f.Sync(); err != nil {
		fail()
		return
	}
	if err := f.Close(); err != nil {
		s.diskFailed()
		os.Remove(tmp)
		return
	}
	fault.Crashpoint(fault.CrashBeforeRename)
	if err := os.Rename(tmp, path); err != nil {
		s.diskFailed()
		os.Remove(tmp)
		return
	}
	// The rename is only durable once the directory entry is.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.diskOK()
	s.mu.Lock()
	s.counterLocked(stage).DiskWrites++
	s.mu.Unlock()
}

// Put stores an externally produced artifact under key, replacing any
// existing value — the adoption path for artifacts loaded from legacy
// cache files, which must win over whatever a rebuild would produce.
func (s *Store) Put(key Key, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: v})
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*entry).key)
	}
}

// Delete evicts key from the memory layer; disk artifacts, when any,
// are left alone. Callers use it to serve an artifact once without
// memoizing it — a later Resolve of the same key recomputes.
func (s *Store) Delete(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.Remove(el)
		delete(s.items, key)
	}
}

// Get peeks at the LRU without counting a hit or touching recency.
func (s *Store) Get(key Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).val, true
}

// Len returns the current in-memory artifact count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries:  s.ll.Len(),
		Capacity: s.cap,
		Stages:   make(map[string]Counters, len(s.stages)),
	}
	for name, c := range s.stages {
		st.Stages[name] = *c
		st.Total.add(*c)
	}
	st.Disk = DiskStats{State: DiskOK, Errors: s.diskErrors, Quarantined: s.quarantined}
	if s.dir == "" {
		st.Disk.State = DiskDisabled
	} else if s.diskDegraded {
		st.Disk.State = DiskDegraded
	}
	return st
}

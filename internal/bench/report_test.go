package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRun() *Run {
	return &Run{
		Version: RunVersion,
		Quick:   false,
		Reps:    25,
		Results: []Result{
			{Name: "cluster/ward-distance", Reps: 25, Rejected: 2, MedianNS: 1.53e6, MADNS: 4.2e4, AllocsPerOp: 310, BytesPerOp: 81920},
			{Name: "stage/key-hash", Reps: 25, MedianNS: 875.4e3, MADNS: 1.1e3, AllocsPerOp: 12.5, BytesPerOp: 2048},
			{Name: "stats/median-mad", Reps: 25, MedianNS: 512, MADNS: 8, AllocsPerOp: 0, BytesPerOp: 0},
		},
	}
}

// TestHumanGolden pins the human table byte-for-byte: the format is the
// terminal contract and golden so drift is a deliberate edit here.
func TestHumanGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Human(&buf, sampleRun()); err != nil {
		t.Fatalf("Human: %v", err)
	}
	want := strings.Join([]string{
		"Spec                   Reps     Median   MAD     Allocs/op  B/op",
		"cluster/ward-distance  25 (-2)  1.53ms   42.0µs  310.0      81920",
		"stage/key-hash         25       875.4µs  1.1µs   12.5       2048",
		"stats/median-mad       25       512ns    8ns     0.0        0",
		"(3 specs, full mode)",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("human table drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHumanQuickFooter(t *testing.T) {
	run := sampleRun()
	run.Quick = true
	var buf bytes.Buffer
	if err := Human(&buf, run); err != nil {
		t.Fatalf("Human: %v", err)
	}
	if !strings.Contains(buf.String(), "quick mode") {
		t.Errorf("quick run footer missing 'quick mode':\n%s", buf.String())
	}
}

// TestJSONRoundTrip proves the persisted form survives encode/decode
// unchanged — the property the committed baseline depends on.
func TestJSONRoundTrip(t *testing.T) {
	run := sampleRun()
	var buf bytes.Buffer
	if err := JSON(&buf, run); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ReadRun(&buf)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if back.Version != run.Version || back.Quick != run.Quick || back.Reps != run.Reps {
		t.Fatalf("header drifted: %+v vs %+v", back, run)
	}
	if len(back.Results) != len(run.Results) {
		t.Fatalf("got %d results, want %d", len(back.Results), len(run.Results))
	}
	for i, res := range back.Results {
		if res != run.Results[i] {
			t.Errorf("result %d drifted: %+v vs %+v", i, res, run.Results[i])
		}
	}
}

func TestReadRunRejectsWrongVersion(t *testing.T) {
	if _, err := ReadRun(strings.NewReader(`{"version": 99, "results": []}`)); err == nil {
		t.Fatal("ReadRun accepted an unknown schema version")
	}
	if _, err := ReadRun(strings.NewReader(`not json`)); err == nil {
		t.Fatal("ReadRun accepted malformed JSON")
	}
}

func TestFormatRegistry(t *testing.T) {
	got := Formats()
	want := []string{"human", "json"}
	if len(got) != len(want) {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Formats() = %v, want %v", got, want)
		}
	}
	if _, ok := LookupFormat("human"); !ok {
		t.Fatal("LookupFormat(human) missed")
	}
	if _, ok := LookupFormat("yaml"); ok {
		t.Fatal("LookupFormat(yaml) hit")
	}
}

func TestFormatNS(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{3, "3ns"},
		{999, "999ns"},
		{1000, "1.0µs"},
		{875400, "875.4µs"},
		{1.53e6, "1.53ms"},
		{2.5e9, "2.50s"},
	}
	for _, tc := range cases {
		if got := formatNS(tc.ns); got != tc.want {
			t.Errorf("formatNS(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

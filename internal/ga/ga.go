// Package ga implements the genetic algorithm used to select the
// feature subset (§4.2).
//
// Individuals are 76-bit feature masks (features.Mask). The paper's
// configuration — population 1000, 100 generations, mutation
// probability 0.01, fitness max(error_atom, error_sandybridge) x K —
// maps onto Options; the fitness function itself is provided by the
// caller (internal/pipeline), keeping this package a generic bit-mask
// GA in the spirit of the GNU R genalg package the paper uses.
package ga

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"fgbs/internal/features"
	"fgbs/internal/rng"
)

// Fitness scores an individual; lower is better. Implementations must
// be safe for concurrent use: evaluations run in parallel.
type Fitness func(features.Mask) float64

// Options configures a run.
type Options struct {
	// Population size (paper: 1000).
	Population int
	// Generations to evolve (paper: 100).
	Generations int
	// MutationProb is the per-bit mutation probability (paper: 0.01).
	MutationProb float64
	// EliteFrac is the fraction of best individuals kept unchanged
	// each generation (genalg's default is 20%).
	EliteFrac float64
	// InitBitProb is the probability a bit starts set; a sparse start
	// (well below 0.5) speeds convergence toward small feature sets.
	InitBitProb float64
	// Seed makes the run reproducible.
	Seed uint64
	// Workers bounds parallel fitness evaluations (0 = GOMAXPROCS).
	Workers int
	// OnGeneration, if set, observes progress.
	OnGeneration func(gen int, bestFitness float64, best features.Mask)
}

func (o *Options) fill() error {
	if o.Population <= 1 {
		return fmt.Errorf("ga: population %d too small", o.Population)
	}
	if o.Generations < 1 {
		return fmt.Errorf("ga: need at least one generation")
	}
	if o.MutationProb < 0 || o.MutationProb > 1 {
		return fmt.Errorf("ga: mutation probability %f outside [0,1]", o.MutationProb)
	}
	if o.EliteFrac <= 0 || o.EliteFrac >= 1 {
		o.EliteFrac = 0.2
	}
	if o.InitBitProb <= 0 || o.InitBitProb >= 1 {
		o.InitBitProb = 0.25
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Best        features.Mask
	BestFitness float64
	// History records the best fitness after each generation.
	History []float64
	// Evaluations counts fitness calls.
	Evaluations int
}

type scored struct {
	mask features.Mask
	fit  float64
}

// Run evolves feature masks against the fitness function.
func Run(fitness Fitness, opts Options) (*Result, error) {
	return RunContext(context.Background(), fitness, opts)
}

// RunContext is Run with cancellation: the loop aborts between
// generations and between fitness fan-outs, returning the context's
// error. A GA run is minutes of pipeline evaluations at the paper's
// population size, so a canceled job must stop dispatching work
// promptly (pair with pipeline.FeatureFitnessContext so in-flight
// evaluations degrade to +Inf as well).
func RunContext(ctx context.Context, fitness Fitness, opts Options) (*Result, error) {
	if fitness == nil {
		return nil, fmt.Errorf("ga: nil fitness")
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)

	pop := make([]scored, opts.Population)
	for i := range pop {
		pop[i].mask = randomMask(r, opts.InitBitProb)
	}

	res := &Result{BestFitness: math.Inf(1)}
	evaluate := func(gen []scored) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Workers)
		for i := range gen {
			if ctx.Err() != nil {
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(s *scored) {
				defer wg.Done()
				defer func() { <-sem }()
				if s.mask.Count() == 0 {
					s.fit = math.Inf(1)
					return
				}
				s.fit = fitness(s.mask)
			}(&gen[i])
		}
		wg.Wait()
		res.Evaluations += len(gen)
	}

	for gen := 0; gen < opts.Generations; gen++ {
		evaluate(pop)
		// A cancellation during the fan-out leaves unevaluated
		// zero-fitness individuals; discard the generation rather than
		// let them win the sort.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fit < pop[j].fit })
		if pop[0].fit < res.BestFitness {
			res.BestFitness = pop[0].fit
			res.Best = pop[0].mask
		}
		res.History = append(res.History, res.BestFitness)
		if opts.OnGeneration != nil {
			opts.OnGeneration(gen, res.BestFitness, res.Best)
		}
		if gen == opts.Generations-1 {
			break
		}

		elite := int(float64(opts.Population) * opts.EliteFrac)
		if elite < 1 {
			elite = 1
		}
		next := make([]scored, 0, opts.Population)
		next = append(next, pop[:elite]...)
		for len(next) < opts.Population {
			a := tournament(r, pop)
			b := tournament(r, pop)
			child := crossover(r, a.mask, b.mask)
			child = mutate(r, child, opts.MutationProb)
			next = append(next, scored{mask: child})
		}
		pop = next
	}
	return res, nil
}

// randomMask draws each bit with probability p.
func randomMask(r *rng.RNG, p float64) features.Mask {
	var m features.Mask
	for i := 0; i < features.NumFeatures; i++ {
		m.Set(i, r.Bool(p))
	}
	return m
}

// tournament returns the better of two random individuals.
func tournament(r *rng.RNG, pop []scored) scored {
	a := pop[r.Intn(len(pop))]
	b := pop[r.Intn(len(pop))]
	if a.fit <= b.fit {
		return a
	}
	return b
}

// crossover performs single-point crossover (genalg's operator).
func crossover(r *rng.RNG, a, b features.Mask) features.Mask {
	point := 1 + r.Intn(features.NumFeatures-1)
	var child features.Mask
	for i := 0; i < features.NumFeatures; i++ {
		if i < point {
			child.Set(i, a.Get(i))
		} else {
			child.Set(i, b.Get(i))
		}
	}
	return child
}

// mutate flips each bit with probability p.
func mutate(r *rng.RNG, m features.Mask, p float64) features.Mask {
	if p <= 0 {
		return m
	}
	for i := 0; i < features.NumFeatures; i++ {
		if r.Bool(p) {
			m.Set(i, !m.Get(i))
		}
	}
	return m
}

package ir

import "fmt"

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
	OpMod // integer only
	OpAnd // integer only (bit mask, used by bucketing kernels)
	OpShr // integer only (shift right by constant)
)

// String returns the operator's conventional symbol.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpMod:
		return "%"
	case OpAnd:
		return "&"
	case OpShr:
		return ">>"
	default:
		return fmt.Sprintf("binop(%d)", uint8(o))
	}
}

// UnOp enumerates unary operators, including the transcendental calls
// that matter for the performance model (division-like high-latency
// operations are what isolate NR cluster 10 and NAS cluster A).
type UnOp uint8

const (
	OpNeg UnOp = iota
	OpAbs
	OpSqrt
	OpExp
	OpLog
	OpSin
	OpCos
	OpCvtIF  // int64 -> float (target dtype carried by the node)
	OpCvtFI  // float -> int64 (truncation)
	OpWiden  // f32 -> f64
	OpNarrow // f64 -> f32
)

// String returns a readable operator name.
func (o UnOp) String() string {
	switch o {
	case OpNeg:
		return "neg"
	case OpAbs:
		return "abs"
	case OpSqrt:
		return "sqrt"
	case OpExp:
		return "exp"
	case OpLog:
		return "log"
	case OpSin:
		return "sin"
	case OpCos:
		return "cos"
	case OpCvtIF:
		return "cvt.if"
	case OpCvtFI:
		return "cvt.fi"
	case OpWiden:
		return "cvt.ss2sd"
	case OpNarrow:
		return "cvt.sd2ss"
	default:
		return fmt.Sprintf("unop(%d)", uint8(o))
	}
}

// Expr is a side-effect-free expression tree. Every node knows its
// result type, fixed at construction time by the builder helpers.
type Expr interface {
	isExpr()
	// DType returns the node's result type.
	DType() DType
}

// Const is a literal. For float types F holds the value; for I64, I.
type Const struct {
	DT DType
	F  float64
	I  int64
}

func (*Const) isExpr()        {}
func (c *Const) DType() DType { return c.DT }

// Var references a loop variable or an integer program parameter.
// Variables are always I64.
type Var struct {
	Name string
}

func (*Var) isExpr()        {}
func (v *Var) DType() DType { return I64 }

// Ref denotes an array element: Array[Index...]. A Ref with an empty
// Index list denotes a scalar (0-dimensional array), which the lowering
// pass register-allocates when it is live only within one loop body.
type Ref struct {
	Array string
	Index []Expr
	// dt is resolved at construction by the builder from the array
	// declaration.
	dt DType
}

// DType returns the referenced element type.
func (r *Ref) DType() DType { return r.dt }

// Load reads a Ref as an expression.
type Load struct {
	Ref *Ref
}

func (*Load) isExpr()        {}
func (l *Load) DType() DType { return l.Ref.DType() }

// Bin applies a binary operator to two operands of identical type.
type Bin struct {
	Op   BinOp
	A, B Expr
}

func (*Bin) isExpr()        {}
func (b *Bin) DType() DType { return b.A.DType() }

// Un applies a unary operator. For conversions, To holds the result
// type; otherwise the result type is the operand's.
type Un struct {
	Op UnOp
	A  Expr
	To DType // used by OpCvtIF / OpCvtFI only
}

func (*Un) isExpr() {}

// DType returns the node's result type.
func (u *Un) DType() DType {
	switch u.Op {
	case OpCvtIF:
		return u.To
	case OpCvtFI:
		return I64
	case OpWiden:
		return F64
	case OpNarrow:
		return F32
	default:
		return u.A.DType()
	}
}

//
// Construction helpers. Kernel definitions are static program data, so
// type mismatches are programming errors; helpers panic with a precise
// message rather than returning errors that would bloat every kernel.
//

// CF returns a double-precision constant.
func CF(v float64) Expr { return &Const{DT: F64, F: v} }

// CF32 returns a single-precision constant.
func CF32(v float64) Expr { return &Const{DT: F32, F: v} }

// CI returns an integer constant.
func CI(v int64) Expr { return &Const{DT: I64, I: v} }

// V references a loop variable or parameter.
func V(name string) Expr { return &Var{Name: name} }

func binOp(op BinOp, a, b Expr) Expr {
	if a.DType() != b.DType() {
		panic(fmt.Sprintf("ir: %s applied to mismatched types %s and %s", op, a.DType(), b.DType()))
	}
	if (op == OpMod || op == OpAnd || op == OpShr) && a.DType() != I64 {
		panic(fmt.Sprintf("ir: integer operator %s applied to %s", op, a.DType()))
	}
	return &Bin{Op: op, A: a, B: b}
}

// Add returns a+b. Operand types must match.
func Add(a, b Expr) Expr { return binOp(OpAdd, a, b) }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return binOp(OpSub, a, b) }

// Mul returns a*b.
func Mul(a, b Expr) Expr { return binOp(OpMul, a, b) }

// Div returns a/b.
func Div(a, b Expr) Expr { return binOp(OpDiv, a, b) }

// MinE returns min(a,b).
func MinE(a, b Expr) Expr { return binOp(OpMin, a, b) }

// MaxE returns max(a,b).
func MaxE(a, b Expr) Expr { return binOp(OpMax, a, b) }

// Mod returns a%b (integers).
func Mod(a, b Expr) Expr { return binOp(OpMod, a, b) }

// And returns a&b (integers).
func And(a, b Expr) Expr { return binOp(OpAnd, a, b) }

// Shr returns a>>b (integers).
func Shr(a, b Expr) Expr { return binOp(OpShr, a, b) }

// Neg returns -a.
func Neg(a Expr) Expr { return &Un{Op: OpNeg, A: a} }

// Abs returns |a|.
func Abs(a Expr) Expr { return &Un{Op: OpAbs, A: a} }

func floatUn(op UnOp, a Expr) Expr {
	if !a.DType().IsFloat() {
		panic(fmt.Sprintf("ir: %s applied to non-float %s", op, a.DType()))
	}
	return &Un{Op: op, A: a}
}

// Sqrt returns sqrt(a) (floats).
func Sqrt(a Expr) Expr { return floatUn(OpSqrt, a) }

// Exp returns e**a (floats).
func Exp(a Expr) Expr { return floatUn(OpExp, a) }

// Log returns ln(a) (floats).
func Log(a Expr) Expr { return floatUn(OpLog, a) }

// Sin returns sin(a) (floats).
func Sin(a Expr) Expr { return floatUn(OpSin, a) }

// Cos returns cos(a) (floats).
func Cos(a Expr) Expr { return floatUn(OpCos, a) }

// ToF converts an integer expression to the given float type.
func ToF(a Expr, to DType) Expr {
	if a.DType() != I64 || !to.IsFloat() {
		panic(fmt.Sprintf("ir: ToF from %s to %s", a.DType(), to))
	}
	return &Un{Op: OpCvtIF, A: a, To: to}
}

// ToI truncates a float expression to int64.
func ToI(a Expr) Expr {
	if !a.DType().IsFloat() {
		panic(fmt.Sprintf("ir: ToI from %s", a.DType()))
	}
	return &Un{Op: OpCvtFI, A: a}
}

// Widen converts f32 to f64 (for mixed-precision kernels such as
// NR's mprove, which accumulates a single-precision matrix in double).
func Widen(a Expr) Expr {
	if a.DType() != F32 {
		panic(fmt.Sprintf("ir: Widen from %s", a.DType()))
	}
	return &Un{Op: OpWiden, A: a}
}

// Narrow converts f64 to f32.
func Narrow(a Expr) Expr {
	if a.DType() != F64 {
		panic(fmt.Sprintf("ir: Narrow from %s", a.DType()))
	}
	return &Un{Op: OpNarrow, A: a}
}

// WalkExpr calls fn on e and all sub-expressions (including index
// expressions inside refs), pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	fn(e)
	switch n := e.(type) {
	case *Load:
		for _, ix := range n.Ref.Index {
			WalkExpr(ix, fn)
		}
	case *Bin:
		WalkExpr(n.A, fn)
		WalkExpr(n.B, fn)
	case *Un:
		WalkExpr(n.A, fn)
	}
}

// System selection: decide, per NAS application, which machine to buy
// — using only the reduced benchmark set, then checking the decision
// against the full (simulated) ground truth.
//
// This is the paper's headline scenario (§4.4): Core 2 and the
// reference are close overall, and the best machine depends on the
// application, so the reduced set must capture per-application trends
// rather than a single average.
//
// Run with:
//
//	go run ./examples/systemselect
package main

import (
	"fmt"
	"log"

	"fgbs"
)

func main() {
	prof, err := fgbs.NewProfile(fgbs.NASSuite(), fgbs.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := prof.Subset(fgbs.DefaultFeatures(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmarking %d representatives instead of %d codelets\n\n", sub.K(), prof.N())

	// Evaluate every target; remember per-app predicted and real times.
	type appTimes struct{ pred, real map[string]float64 }
	times := map[string]appTimes{}
	var appNames []string
	for t, m := range prof.Targets {
		ev, err := prof.Evaluate(sub, t)
		if err != nil {
			log.Fatal(err)
		}
		at := appTimes{pred: map[string]float64{}, real: map[string]float64{}}
		for _, a := range ev.Apps {
			at.pred[a.Name] = a.PredSec
			at.real[a.Name] = a.ActualSec
			if t == 0 {
				appNames = append(appNames, a.Name)
			}
		}
		times[m.Name] = at
		fmt.Printf("%-13s total reduction x%.1f, median codelet error %.1f%%\n",
			m.Name, ev.Reduction.Total, ev.Summary.Median*100)
	}

	fmt.Println("\napp  predicted winner   actual winner      agree")
	agree := 0
	for _, app := range appNames {
		predBest, realBest := "", ""
		predT, realT := 0.0, 0.0
		for _, m := range prof.Targets {
			at := times[m.Name]
			if predBest == "" || at.pred[app] < predT {
				predBest, predT = m.Name, at.pred[app]
			}
			if realBest == "" || at.real[app] < realT {
				realBest, realT = m.Name, at.real[app]
			}
		}
		ok := predBest == realBest
		if ok {
			agree++
		}
		fmt.Printf("%-4s %-18s %-18s %v\n", app, predBest, realBest, ok)
	}
	fmt.Printf("\nselection agreement: %d/%d applications\n", agree, len(appNames))

	// The paper's interesting duel (§4.4): Core 2 clocks higher than
	// the reference but has a four-times-smaller last-level cache, so
	// whether to move from Nehalem to Core 2 depends on the
	// application — compute-bound apps win, memory-bound apps lose.
	refTimes := map[string]float64{}
	for t := range prof.Targets {
		ev, err := prof.Evaluate(sub, t)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range ev.Apps {
			refTimes[a.Name] = a.RefSec
		}
		break
	}
	fmt.Printf("\nmove from %s to Core 2?\n", prof.Ref.Name)
	fmt.Println("app  predicted        actual           agree")
	duelAgree := 0
	c2 := times["Core 2"]
	for _, app := range appNames {
		pred := "keep " + prof.Ref.Name
		if c2.pred[app] < refTimes[app] {
			pred = "move to Core 2"
		}
		real := "keep " + prof.Ref.Name
		if c2.real[app] < refTimes[app] {
			real = "move to Core 2"
		}
		ok := pred == real
		if ok {
			duelAgree++
		}
		fmt.Printf("%-4s %-16s %-16s %v\n", app, pred, real, ok)
	}
	fmt.Printf("\nduel agreement: %d/%d applications\n", duelAgree, len(appNames))
}

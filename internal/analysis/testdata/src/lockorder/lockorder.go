// Corpus for the lockorder check: locks must be released on every
// return path, and the package-wide lock-acquisition graph must be
// acyclic. The clean functions pin the idioms the analysis must NOT
// flag (defer release, per-branch release, unlock-then-relock,
// TryLock, panic paths).
package lockorder

import "sync"

var muA, muB sync.Mutex

// ab and ba acquire the two package mutexes in opposite orders: the
// seeded two-mutex deadlock. The cycle is reported once, at its
// lexicographically smallest edge (muA→muB, i.e. ab's inner Lock).
func ab() {
	muA.Lock()
	muB.Lock() // want "lock-order cycle: muA → muB → muA"
	muB.Unlock()
	muA.Unlock()
}

func ba() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var mu sync.Mutex
var state int

// earlyReturn leaks: the early return path exits with mu held.
func earlyReturn(cond bool) int {
	mu.Lock() // want "mu.Lock\(\) in earlyReturn is not released on every return path"
	if cond {
		return 1
	}
	mu.Unlock()
	return 0
}

// deferRelease is the canonical clean shape.
func deferRelease() int {
	mu.Lock()
	defer mu.Unlock()
	return state
}

// branchRelease unlocks on every path explicitly — clean.
func branchRelease(cond bool) int {
	mu.Lock()
	if cond {
		mu.Unlock()
		return 1
	}
	mu.Unlock()
	return 0
}

// relock unlocks and reacquires mid-body; both windows are balanced.
func relock() {
	mu.Lock()
	state++
	mu.Unlock()
	compute()
	mu.Lock()
	state++
	mu.Unlock()
}

func compute() {}

// loopLocked locks and unlocks per iteration — clean (the back edge
// carries the empty held set).
func loopLocked(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		state++
		mu.Unlock()
	}
}

var rw sync.RWMutex

// readersDone pairs RLock with RUnlock — clean.
func readersDone() int {
	rw.RLock()
	defer rw.RUnlock()
	return state
}

// wrongMode leaks: RUnlock releases the read lock, not the write lock
// taken here, so the write Lock is held at return.
func wrongMode() {
	rw.Lock() // want "rw.Lock\(\) in wrongMode is not released on every return path"
	rw.RUnlock()
}

// tryNoLeak: a failed TryLock must not count as held, so the analysis
// treats Try acquisitions as ordering-only facts.
func tryNoLeak() {
	if mu.TryLock() {
		state++
		mu.Unlock()
	}
}

// panicPath: deferred unlocks run during unwinding, so a panic with a
// defer in place is clean.
func panicPath(bad bool) {
	mu.Lock()
	defer mu.Unlock()
	if bad {
		panic("invariant violated")
	}
	state++
}

// deferInClosure releases through a deferred function literal — clean.
func deferInClosure() int {
	mu.Lock()
	defer func() { mu.Unlock() }()
	return state
}

var muC, muD sync.Mutex

// outer→helper shows the summary pass at work: helper's acquisition of
// muD happens while outer holds muC, and dc closes the cycle
// muC→muD→muC. The report lands on the call that created the
// smallest edge.
func outer() {
	muC.Lock()
	helper() // want "lock-order cycle: muC → muD → muC"
	muC.Unlock()
}

func helper() {
	muD.Lock()
	state++
	muD.Unlock()
}

func dc() {
	muD.Lock()
	muC.Lock()
	muC.Unlock()
	muD.Unlock()
}

type box struct {
	mu sync.Mutex
	n  int
}

// methodLeak: a struct-field mutex leak names the class Type.field.
func (b *box) methodLeak(cond bool) int {
	b.mu.Lock() // want "box.mu.Lock\(\) in methodLeak is not released on every return path"
	if cond {
		return b.n
	}
	b.mu.Unlock()
	return 0
}

// methodClean releases on both paths.
func (b *box) methodClean(cond bool) int {
	b.mu.Lock()
	if cond {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.mu.Unlock()
	return 0
}

// suppressed documents an intentional hand-off: the lock is released
// by the caller (a locked-suffix contract).
func (b *box) suppressed() {
	//fgbs:allow lockorder corpus: transfers the lock to the caller by contract
	b.mu.Lock()
	b.n++
}

// selectRelease exercises CFG select handling: every comm clause
// releases before returning.
func selectRelease(ch chan int) int {
	mu.Lock()
	select {
	case v := <-ch:
		mu.Unlock()
		return v
	default:
		mu.Unlock()
		return 0
	}
}

// switchLeak: one case forgets to unlock.
func switchLeak(mode int) {
	mu.Lock() // want "mu.Lock\(\) in switchLeak is not released on every return path"
	switch mode {
	case 0:
		mu.Unlock()
	case 1:
		state++ // missing unlock: held at the fall-off-end exit
	default:
		mu.Unlock()
	}
}

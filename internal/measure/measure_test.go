package measure

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fgbs/internal/arch"
	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

// instantSleep makes retry tests immediate while still honoring
// cancellation.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// scripted is a Measurer that replays a per-call script of errors
// (nil = succeed with the raw simulator).
type scripted struct {
	mu     sync.Mutex
	script []error
	calls  int
}

func (s *scripted) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	s.mu.Lock()
	i := s.calls
	s.calls++
	s.mu.Unlock()
	if i < len(s.script) && s.script[i] != nil {
		return nil, s.script[i]
	}
	return fault.Sim{}.Measure(ctx, p, c, opts)
}

func testProgram() (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("measureapp")
	p.SetParam("n", 4096)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	p.MustAddCodelet(&ir.Codelet{
		Name: "measure_copy", Invocations: 5,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
		}},
	})
	return p, p.Codelets[0]
}

func simOpts() sim.Options {
	return sim.Options{Machine: arch.Reference(), Mode: sim.ModeStandalone, Seed: 1, ProbeCycles: -1, NoiseAmp: -1}
}

func TestRetriesRideOutTransients(t *testing.T) {
	p, c := testProgram()
	base := &scripted{script: []error{
		fault.Transient(errors.New("flaky")),
		fault.Transient(errors.New("still flaky")),
		nil,
	}}
	r := New(base, Config{MaxAttempts: 4, Sleep: instantSleep})
	meas, err := r.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatalf("transient schedule should converge: %v", err)
	}
	if meas.Seconds <= 0 {
		t.Errorf("bad measurement: %g", meas.Seconds)
	}
	if len(meas.Invocations) != DefaultInvocations {
		t.Errorf("invocations = %d, want the protocol floor %d", len(meas.Invocations), DefaultInvocations)
	}
	st := r.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Transients != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPermanentFailureDoesNotRetry(t *testing.T) {
	p, c := testProgram()
	base := &scripted{script: []error{errors.New("segfault"), nil}}
	r := New(base, Config{Sleep: instantSleep})
	_, err := r.Measure(context.Background(), p, c, simOpts())
	var me *Error
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *measure.Error", err)
	}
	if me.Attempts != 1 {
		t.Errorf("permanent failure retried: %d attempts", me.Attempts)
	}
	if base.calls != 1 {
		t.Errorf("base called %d times", base.calls)
	}
	if !strings.Contains(err.Error(), "measure_copy") || !strings.Contains(err.Error(), "standalone") {
		t.Errorf("error lacks identity: %v", err)
	}
}

func TestRetryBudgetExhaustionIsLoud(t *testing.T) {
	p, c := testProgram()
	always := fault.Transient(errors.New("never recovers"))
	base := &scripted{script: []error{always, always, always, always, always, always}}
	r := New(base, Config{MaxAttempts: 3, Sleep: instantSleep})
	_, err := r.Measure(context.Background(), p, c, simOpts())
	var me *Error
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *measure.Error", err)
	}
	if me.Attempts != 3 || base.calls != 3 {
		t.Errorf("attempts = %d, base calls = %d, want 3", me.Attempts, base.calls)
	}
	if !fault.IsTransient(err) {
		t.Errorf("exhausted transient error should still classify transient for upper layers")
	}
	if st := r.Stats(); st.Exhausted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHangCutByAttemptDeadline(t *testing.T) {
	p, c := testProgram()
	inj := fault.NewInjector(&fault.Profile{Seed: 1, Rules: []fault.Rule{{HangRate: 1}}}, nil)
	r := New(inj, Config{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond, Sleep: instantSleep})
	start := time.Now()
	_, err := r.Measure(context.Background(), p, c, simOpts())
	if err == nil {
		t.Fatal("hanging target succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want the deadline surfaced", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline did not bound the hang: %v", elapsed)
	}
	if st := r.Stats(); st.Timeouts != 2 {
		t.Errorf("stats = %+v, want 2 timeouts", st)
	}
}

func TestOuterCancellationWinsOverRetry(t *testing.T) {
	p, c := testProgram()
	ctx, cancel := context.WithCancel(context.Background())
	base := &scripted{script: []error{fault.Transient(errors.New("flaky"))}}
	r := New(base, Config{MaxAttempts: 5, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}})
	_, err := r.Measure(ctx, p, c, simOpts())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestMADRejectsInjectedOutliers(t *testing.T) {
	p, c := testProgram()
	clean, err := New(nil, Config{Sleep: instantSleep}).Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ~20% wild outliers: the median alone would survive, but MAD
	// rejection should bring the summary within a tight band of clean.
	inj := fault.NewInjector(&fault.Profile{Seed: 9, Rules: []fault.Rule{{OutlierRate: 0.2, OutlierScale: 50}}}, nil)
	r := New(inj, Config{Sleep: instantSleep})
	noisy, err := r.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratio := noisy.Seconds / clean.Seconds
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("MAD-filtered median off by %gx", ratio)
	}
	if st := r.Stats(); st.Rejected == 0 {
		t.Errorf("no invocations rejected despite injected outliers: %+v", st)
	}
}

func TestBackoffIsExponentialBoundedAndDeterministic(t *testing.T) {
	r := New(nil, Config{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond})
	var prev time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := r.backoff("c", "m", sim.ModeInApp, attempt)
		if d <= 0 || d > time.Duration(1.5*float64(8*time.Millisecond)) {
			t.Errorf("attempt %d: backoff %v out of bounds", attempt, d)
		}
		if attempt <= 3 && d <= prev/4 {
			t.Errorf("attempt %d: backoff %v not growing from %v", attempt, d, prev)
		}
		prev = d
		if again := r.backoff("c", "m", sim.ModeInApp, attempt); again != d {
			t.Errorf("backoff not deterministic: %v vs %v", d, again)
		}
	}
	if r.backoff("c", "m", sim.ModeInApp, 1) == r.backoff("c2", "m", sim.ModeInApp, 1) {
		t.Errorf("jitter identical across identities")
	}
}

func TestTransparentConfigPreservesRawMeasurement(t *testing.T) {
	// The regression configuration: no extra invocations, no MAD — the
	// robust wrapper must be byte-transparent over a clean simulator.
	p, c := testProgram()
	raw, err := sim.Measure(p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := New(nil, Config{Invocations: -1, MADK: -1, Sleep: instantSleep})
	got, err := r.Measure(context.Background(), p, c, simOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != raw.Seconds || len(got.Invocations) != len(raw.Invocations) {
		t.Errorf("transparent config changed the measurement: %g/%d vs %g/%d",
			got.Seconds, len(got.Invocations), raw.Seconds, len(raw.Invocations))
	}
}

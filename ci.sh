#!/bin/sh
# ci.sh — the repository's verify command. Runs the same four gates a
# reviewer runs locally; any failure is a red build.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

# Heavy single-threaded reproduction tests in the root package skip
# themselves under -race (see skipIfRace in fixtures_test.go); all
# concurrency-bearing code runs with the detector on.
echo "== go test -race =="
go test -race -timeout 25m ./...

# Benchmarks rot silently if nothing executes them: run the fastest one
# once (no profiling fixture) so the whole bench file stays compilable
# AND runnable.
echo "== bench smoke =="
go test -run='^$' -bench='^BenchmarkTable1Architectures$' -benchtime=1x .

echo "ci.sh: all checks passed"

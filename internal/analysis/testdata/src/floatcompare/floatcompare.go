// Corpus for the floatcompare check: raw ==/!= and switch on floats
// are findings; integer comparisons and suppressed sites are not.
package floatcompare

func eq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func neq(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

type celsius float64

func named(a, b celsius) bool {
	return a == b // want "floating-point == comparison"
}

func mixed(a float64) bool {
	return a == 0 // want "floating-point == comparison"
}

func sw(x float64) int {
	switch x { // want "switch on a floating-point value"
	case 1:
		return 1
	}
	return 0
}

func ints(a, b int) bool {
	return a == b
}

func ordered(a, b float64) bool {
	return a < b // orderings are fine; only equality is banned
}

func suppressed(a, b float64) bool {
	//fgbs:allow floatcompare corpus: bit-exact guard against the sentinel value
	return a == b
}

// Corpus for the ctxpropagation check: functions holding a ctx must
// pass it on instead of minting fresh contexts or calling the
// context-free variant of a function that has a Context sibling.
package ctxpropagation

import "context"

func SweepK() int                           { return 0 }
func SweepKContext(ctx context.Context) int { return 0 }
func Standalone() int                       { return 0 }
func use(ctx context.Context, n int)        {}
func report(name string, n int)             {}
func lookup(ctx context.Context, name string) int {
	return 0
}

type Profile struct{}

func (p *Profile) Evaluate() int                           { return 0 }
func (p *Profile) EvaluateContext(ctx context.Context) int { return 0 }

func holder(ctx context.Context) {
	SweepK()                            // want "SweepK drops the in-scope ctx; call SweepKContext"
	SweepKContext(ctx)                  // propagated: no finding
	SweepKContext(context.Background()) // want "Background.. passed while a ctx is in scope"
	use(context.TODO(), 1)              // want "TODO.. passed while a ctx is in scope"
	Standalone()                        // no Context sibling: no finding
}

func methodHolder(ctx context.Context, p *Profile) {
	p.Evaluate()           // want "Evaluate drops the in-scope ctx; call EvaluateContext"
	p.EvaluateContext(ctx) // propagated: no finding
}

// closures still see ctx, so the body of a literal counts.
func litHolder() func(context.Context) {
	return func(ctx context.Context) {
		SweepK() // want "SweepK drops the in-scope ctx"
	}
}

// noCtx has no context parameter: delegation wrappers like SweepK
// calling SweepKContext with a fresh Background are the approved
// pattern and must not be flagged.
func noCtx() int {
	return SweepKContext(context.Background())
}

func suppressed(ctx context.Context) {
	//fgbs:allow ctxpropagation corpus: detached background build outlives the request
	SweepKContext(context.Background())
	//fgbs:allow ctxpropagation corpus: fire-and-forget telemetry
	SweepK()
}

// Package stage is the content-addressed artifact engine under the
// pipeline's DAG of steps (Detect → Profile → Normalize → Cluster →
// Represent → Predict). Each step resolves its output through a Store
// keyed by a Key: a SHA-256 digest over the step's encoded inputs, its
// name and version, and the Keys of its upstream artifacts. Equal keys
// mean equal inputs all the way up the graph, so a stored artifact can
// be reused — from an in-memory LRU or, for expensive roots like the
// profile, from an on-disk file — without recomputing anything that
// did not change. A parameter change (seed, feature mask, cluster
// count, target) therefore invalidates exactly its downstream stages:
// every upstream key is unchanged and keeps hitting the cache.
//
// Key derivation is pure: hashing must never consult the wall clock,
// randomness, or anything else outside the encoded inputs, or two runs
// with identical inputs would stop sharing artifacts. fgbsvet's
// determinism check enforces this package-wide — even an //fgbs:allow
// determinism suppression inside this package is itself a finding.
package stage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"
)

// Key is the content address of one stage artifact: the hex SHA-256
// digest of the stage's identity and encoded inputs. Keys are plain
// comparable strings so they index maps and serialize trivially.
type Key string

// String returns the key's canonical hex form. It is the wire
// identity of an artifact: peer-fetch request paths embed it verbatim,
// and because it is a pure function of the content address, fgbsvet's
// keypurity check treats values derived from it as deterministic.
func (k Key) String() string { return string(k) }

// KeyBuilder accumulates a stage's identity and inputs into a digest.
// Every value is written with a type tag and, for variable-length
// values, a length prefix, so adjacent fields can never collide by
// concatenation ("ab"+"c" vs "a"+"bc").
//
// Builders come from an internal pool and return to it when Key
// finalizes the digest, so the whole derivation — header tags, value
// encodings, hash state — reuses one scratch buffer instead of
// allocating per field (key derivation runs on every stage resolution,
// thousands of times per sweep). A builder is dead after Key: the only
// supported shape is the one every call site uses, a single
// NewKey(...).X(...).Y(...).Key() chain.
type KeyBuilder struct {
	buf []byte
}

// builderPool recycles KeyBuilder scratch buffers. Typical derivations
// encode a few hundred bytes; the detect key (whole-suite sources) can
// reach megabytes, and such a buffer is kept and reused too — there is
// exactly one detect derivation per resolve, so at most a handful of
// large buffers ever live in the pool.
var builderPool = sync.Pool{
	New: func() any { return &KeyBuilder{buf: make([]byte, 0, 512)} },
}

// NewKey starts a key for one stage. The stage name and version are
// the first inputs: bumping the version after a semantic change
// invalidates every stored artifact of that stage (and, through
// upstream-key chaining, everything downstream of it).
func NewKey(stage string, version int) *KeyBuilder {
	b := builderPool.Get().(*KeyBuilder)
	b.buf = b.buf[:0]
	return b.Str(stage).Int(version)
}

// header appends the 9-byte field header: type tag plus payload length.
func (b *KeyBuilder) header(t byte, n int) {
	var hdr [9]byte
	hdr[0] = t
	binary.BigEndian.PutUint64(hdr[1:], uint64(n))
	b.buf = append(b.buf, hdr[:]...)
}

// Str mixes in a string.
func (b *KeyBuilder) Str(s string) *KeyBuilder {
	b.header('s', len(s))
	b.buf = append(b.buf, s...)
	return b
}

// Strs mixes in a string slice, order-sensitively.
//
//fgbs:hot
func (b *KeyBuilder) Strs(ss []string) *KeyBuilder {
	b.Int(len(ss))
	for _, s := range ss {
		b.Str(s)
	}
	return b
}

// Int mixes in an int.
func (b *KeyBuilder) Int(v int) *KeyBuilder { return b.Uint64(uint64(int64(v))) }

// Uint64 mixes in a uint64.
func (b *KeyBuilder) Uint64(v uint64) *KeyBuilder {
	b.header('u', 8)
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
	return b
}

// Float mixes in a float64 by its exact bit pattern.
func (b *KeyBuilder) Float(v float64) *KeyBuilder {
	b.header('f', 8)
	b.buf = binary.BigEndian.AppendUint64(b.buf, math.Float64bits(v))
	return b
}

// Bool mixes in a bool.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	b.header('b', 1)
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
	return b
}

// Upstream mixes in another stage's key, chaining the DAG: any change
// upstream changes this key too.
func (b *KeyBuilder) Upstream(k Key) *KeyBuilder {
	b.header('k', len(k))
	b.buf = append(b.buf, k...)
	return b
}

// Key finalizes the digest and recycles the builder; the receiver must
// not be used again.
func (b *KeyBuilder) Key() Key {
	sum := sha256.Sum256(b.buf)
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	k := Key(hx[:])
	builderPool.Put(b)
	return k
}

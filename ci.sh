#!/bin/sh
# ci.sh — the repository's verify command. Runs the same gates a
# reviewer runs locally; any failure is a red build.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt -s =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

# fgbsvet is the repository's own invariant analyzer (determinism,
# ctxpropagation, floatcompare, errwrap, guardedby — see DESIGN.md).
# Findings are suppressed only at the site with //fgbs:allow + reason.
echo "== fgbsvet =="
go run ./cmd/fgbsvet ./...

echo "== go build =="
go build ./...

# The chaos gate drives fault-injected measurement end to end on a
# fixed seed (20140215, the reference profile): subset predictions must
# stay within 2x the clean-run error and every fault schedule must
# converge or degrade loudly (stale markers, breaker state) — never
# silently corrupt a result. -race is mandatory here: retry/backoff
# and breaker probing are where the concurrency lives.
echo "== chaos =="
go test -race -timeout 20m -run '^TestChaos' ./internal/pipeline ./internal/server

# Heavy single-threaded reproduction tests in the root package skip
# themselves under -race (see skipIfRace in fixtures_test.go); all
# concurrency-bearing code runs with the detector on.
echo "== go test -race =="
go test -race -timeout 25m ./...

# Benchmarks rot silently if nothing executes them: run the fastest one
# once (no profiling fixture) so the whole bench file stays compilable
# AND runnable, plus the Figure 7 parallel baseline so the fan-out
# path (and its byte-identical-to-serial contract) stays exercised.
echo "== bench smoke =="
go test -run='^$' -bench='^BenchmarkTable1Architectures$|^BenchmarkFigure7RandomClusteringBaselineParallel$' -benchtime=1x .

# The stage-cache gate proves the incremental pipeline actually skips
# work: BenchmarkSweepKWarm self-asserts (b.Fatalf) that a warm K sweep
# serves shared stages from the store (>1 hit) and runs strictly fewer
# simulator invocations than a cold run.
echo "== stage cache smoke =="
go test -run='^$' -bench='^BenchmarkSweepKWarm$' -benchtime=1x ./internal/pipeline

echo "ci.sh: all checks passed"

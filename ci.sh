#!/bin/sh
# ci.sh — the repository's verify command. Runs the same gates a
# reviewer runs locally; any failure is a red build.
#
#   ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt -s =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

# fgbsvet is the repository's own invariant analyzer (determinism,
# ctxpropagation, floatcompare, errwrap, guardedby, plus the
# flow-sensitive lockorder/goroutineleak/keypurity/allochot checks —
# see DESIGN.md). Findings are suppressed only at the site with
# //fgbs:allow + reason. The driver loads and analyzes packages in
# parallel (-workers 0 = GOMAXPROCS; output is byte-identical to
# serial), tees a machine-readable report with per-check timings to
# fgbsvet.json for artifact upload, and reports its own runtime on
# stderr. On failure the vet-style file:line:col lines still print.
echo "== fgbsvet =="
go run ./cmd/fgbsvet -workers 0 -json fgbsvet.json ./...

echo "== go build =="
go build ./...

# The chaos gate drives fault-injected measurement end to end on a
# fixed seed (20140215, the reference profile): subset predictions must
# stay within 2x the clean-run error and every fault schedule must
# converge or degrade loudly (stale markers, breaker state) — never
# silently corrupt a result. -race is mandatory here: retry/backoff
# and breaker probing are where the concurrency lives.
echo "== chaos =="
go test -race -timeout 20m -run '^TestChaos' ./internal/pipeline ./internal/server

# The corpus smoke gate: materialize a synthetic suite from the CLI
# (flag validation + byte-identical generation) and drive the small
# registered suite through the full Subset→Evaluate pipeline under
# -race with stable cluster membership. Generation fans out across
# workers, so the race detector is load-bearing here.
# The crash-recovery gate kills a real fgbsd mid-job at each armed
# crashpoint (journal write, artifact write, pre-rename), restarts it,
# and requires the resumed job to finish with byte-identical results on
# the reference seed (20140215) and every surviving artifact to pass
# frame verification. -race because resume re-enters the worker pool
# and the disk breaker under load.
echo "== crash recovery =="
go test -race -timeout 10m -run '^TestCrashRecovery$' ./cmd/fgbsd

# The artifact plane gate runs the two-daemon e2e on real binaries: a
# warm fgbsd serves its profile artifact over /v1/artifacts/{key} to a
# cold -peers daemon, which must finish the same sweep byte-identically
# with zero local simulator invocations and every fetched frame
# verifying. -race because the peer tier sits under the same breaker
# and promotion machinery the local tiers do.
echo "== artifact plane =="
go test -race -timeout 10m -run '^TestPeerArtifactPlane$' ./cmd/fgbsd

echo "== corpus smoke =="
go run ./cmd/fgbs corpus -family stencil2d -n 8 -seed 42 > /dev/null
go test -race -timeout 10m -run '^TestCorpusSmokeSubsetEvaluate$' ./internal/corpus

# Heavy single-threaded reproduction tests in the root package skip
# themselves under -race (see skipIfRace in fixtures_test.go); all
# concurrency-bearing code runs with the detector on.
echo "== go test -race =="
go test -race -timeout 25m ./...

# The performance trajectory gate (see README "Performance
# trajectory"): every internal/bench spec runs in quick mode and is
# diffed against the committed BENCH_10.json baseline; a median or
# allocation regression beyond the tolerance is a red build. The
# tolerance is deliberately wide — CI boxes jitter badly — so only
# order-of-magnitude mistakes (an accidental O(n²) in a hot path, a
# new allocation per element) trip it; tightening the trajectory is
# what fresh baselines are for. This gate also subsumes the old bench
# and stage-cache smokes: every spec executes end to end, and
# pipeline/ksweep-warm self-asserts in its Verify hook that a warm K
# sweep is served by the stage store without extra simulator
# invocations.
echo "== bench trajectory =="
go run ./cmd/fgbs bench -quick -compare BENCH_10.json -tolerance 200
# The go-test benchmarks still rot silently if nothing executes them:
# the Figure 7 parallel baseline carries its byte-identical-to-serial
# assertion in the bench body, so it must actually run.
go test -run='^$' -bench='^BenchmarkTable1Architectures$|^BenchmarkFigure7RandomClusteringBaselineParallel$' -benchtime=1x .

echo "ci.sh: all checks passed"

package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkRun(results ...Result) *Run {
	return &Run{Version: RunVersion, Reps: 25, Results: results}
}

func res(name string, medianNS, allocs float64) Result {
	return Result{Name: name, Reps: 25, MedianNS: medianNS, AllocsPerOp: allocs}
}

func deltaByName(t *testing.T, deltas []Delta, name string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %s", name)
	return Delta{}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := mkRun(res("a/b", 1000, 10))
	fresh := mkRun(res("a/b", 1150, 11))
	deltas := Compare(base, fresh, 20)
	d := deltaByName(t, deltas, "a/b")
	if d.Regressed {
		t.Fatalf("+15%% time within 20%% tolerance regressed: %+v", d)
	}
	if d.TimePct < 14.9 || d.TimePct > 15.1 {
		t.Fatalf("TimePct = %v, want ~15", d.TimePct)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	base := mkRun(res("a/b", 1000, 10))
	fresh := mkRun(res("a/b", 1500, 10))
	deltas := Compare(base, fresh, 20)
	if d := deltaByName(t, deltas, "a/b"); !d.Regressed {
		t.Fatalf("+50%% time did not regress: %+v", d)
	}
	msgs := Regressions(deltas)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "a/b") {
		t.Fatalf("Regressions = %v", msgs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := mkRun(res("a/b", 1000, 10))
	fresh := mkRun(res("a/b", 1000, 20))
	if d := deltaByName(t, Compare(base, fresh, 20), "a/b"); !d.Regressed {
		t.Fatalf("+100%% allocs did not regress: %+v", d)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	base := mkRun(res("a/b", 1000, 10))
	fresh := mkRun(res("a/b", 100, 1))
	if d := deltaByName(t, Compare(base, fresh, 20), "a/b"); d.Regressed {
		t.Fatalf("10x improvement regressed: %+v", d)
	}
}

// A spec present only in the baseline is a regression (silent removal);
// one present only in the fresh run is informational.
func TestCompareMembershipRules(t *testing.T) {
	base := mkRun(res("only/base", 1000, 1))
	fresh := mkRun(res("only/fresh", 500, 2))
	deltas := Compare(base, fresh, 20)

	gone := deltaByName(t, deltas, "only/base")
	if !gone.Regressed || gone.Fresh != nil {
		t.Fatalf("vanished spec not regressed: %+v", gone)
	}
	fresh1 := deltaByName(t, deltas, "only/fresh")
	if fresh1.Regressed || fresh1.Base != nil {
		t.Fatalf("new spec regressed: %+v", fresh1)
	}
	if !strings.Contains(fresh1.Note, "new spec") {
		t.Fatalf("new spec note = %q", fresh1.Note)
	}
	if msgs := Regressions(deltas); len(msgs) != 1 || !strings.Contains(msgs[0], "only/base") {
		t.Fatalf("Regressions = %v", msgs)
	}
}

// A zero-median baseline has no denominator: the time check is skipped,
// not failed, and the skip is surfaced in the note.
func TestCompareZeroMedianGuard(t *testing.T) {
	base := mkRun(res("a/b", 0, 10))
	fresh := mkRun(res("a/b", 1e9, 10))
	d := deltaByName(t, Compare(base, fresh, 20), "a/b")
	if d.Regressed {
		t.Fatalf("zero-median baseline regressed on time: %+v", d)
	}
	if !d.TimeSkipped {
		t.Fatalf("zero-median baseline did not skip the time check: %+v", d)
	}
}

// An alloc-free baseline regresses only when the fresh run allocates at
// least a whole object per op (guarding the zero denominator).
func TestCompareZeroAllocBaseline(t *testing.T) {
	base := mkRun(res("a/b", 1000, 0))
	fresh := mkRun(res("a/b", 1000, 3))
	if d := deltaByName(t, Compare(base, fresh, 20), "a/b"); !d.Regressed {
		t.Fatalf("alloc-free baseline now allocating did not regress: %+v", d)
	}
	still := mkRun(res("a/b", 1000, 0.2))
	if d := deltaByName(t, Compare(base, still, 20), "a/b"); d.Regressed {
		t.Fatalf("sub-object alloc noise regressed: %+v", d)
	}
}

// A sub-object baseline (runtime background allocations leaking into
// the ReadMemStats delta) must not turn one stray allocation into a
// huge percentage regression: 0.04 → 0.125 allocs/op is noise.
func TestCompareSubObjectAllocNoise(t *testing.T) {
	base := mkRun(res("a/b", 1000, 0.04))
	fresh := mkRun(res("a/b", 1000, 0.125))
	if d := deltaByName(t, Compare(base, fresh, 20), "a/b"); d.Regressed {
		t.Fatalf("sub-object baseline alloc noise regressed: %+v", d)
	}
	// Crossing a whole object per op is real, though.
	grew := mkRun(res("a/b", 1000, 2))
	if d := deltaByName(t, Compare(base, grew, 20), "a/b"); !d.Regressed {
		t.Fatalf("sub-object baseline growing to 2 allocs/op did not regress: %+v", d)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	var buf bytes.Buffer
	if err := JSON(&buf, mkRun(res("a/b", 1000, 1))); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	run, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if _, ok := run.Lookup("a/b"); !ok {
		t.Fatal("baseline lost its result")
	}

	_, err = LoadBaseline(filepath.Join(dir, "missing.json"))
	if err == nil || !strings.Contains(err.Error(), "regenerate with") {
		t.Fatalf("missing baseline error = %v, want recovery hint", err)
	}
}

func TestWriteComparison(t *testing.T) {
	base := mkRun(res("gone/spec", 1000, 1), res("slow/spec", 1000, 1), res("zero/median", 0, 1))
	fresh := mkRun(res("slow/spec", 2000, 1), res("new/spec", 10, 1), res("zero/median", 5, 1))
	deltas := Compare(base, fresh, 20)
	var buf bytes.Buffer
	if err := WriteComparison(&buf, deltas, 20); err != nil {
		t.Fatalf("WriteComparison: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "new", "skipped", "(tolerance 20%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

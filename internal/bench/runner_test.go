package bench

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// scriptedClock hands out timestamps advancing by a scripted step per
// call, so runner timing tests are deterministic.
type scriptedClock struct {
	t     time.Time
	steps []time.Duration
	i     int
}

func (c *scriptedClock) now() time.Time {
	out := c.t
	if len(c.steps) > 0 {
		c.t = c.t.Add(c.steps[c.i%len(c.steps)])
		c.i++
	}
	return out
}

func testSpec(name string, op func() error) Spec {
	return Spec{
		Name:  name,
		Doc:   "test spec",
		Setup: func(context.Context) (*Instance, error) { return &Instance{Op: op}, nil },
	}
}

func TestRunnerMedianFromScriptedClock(t *testing.T) {
	// Each Op brackets two clock reads; steps alternate so repetition
	// durations are 10ms, 30ms, 20ms, ... — the runner must report the
	// median, not the mean.
	clock := &scriptedClock{t: time.Unix(0, 0), steps: []time.Duration{
		10 * time.Millisecond, 0,
		30 * time.Millisecond, 0,
		20 * time.Millisecond, 0,
	}}
	r := NewRunner(Config{Reps: 3, Warmup: 0, MADK: -1, Now: clock.now})
	run, err := r.Run(context.Background(), []Spec{testSpec("t/median", func() error { return nil })})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := run.Results[0]
	if got, want := res.MedianNS, float64(20*time.Millisecond); got < want-1 || got > want+1 {
		t.Fatalf("median = %v ns, want %v", got, want)
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0 with rejection disabled", res.Rejected)
	}
}

func TestRunnerRejectsOutliers(t *testing.T) {
	// Eight jittered ~10ms repetitions and one 10s spike: the spike must
	// be MAD-rejected so the median stays at the steady value. (The
	// jitter matters: identical repetitions give a zero MAD, which
	// MADKeep treats as "no dispersion, keep everything".)
	steady := []time.Duration{
		10 * time.Millisecond, 10100 * time.Microsecond,
		9900 * time.Microsecond, 10050 * time.Microsecond,
		9950 * time.Microsecond, 10020 * time.Microsecond,
		9980 * time.Microsecond, 10010 * time.Microsecond,
	}
	steps := make([]time.Duration, 0, 18)
	for _, s := range steady {
		steps = append(steps, s, 0)
	}
	steps = append(steps, 10*time.Second, 0)
	clock := &scriptedClock{t: time.Unix(0, 0), steps: steps}
	r := NewRunner(Config{Reps: 9, Warmup: 0, Now: clock.now})
	run, err := r.Run(context.Background(), []Spec{testSpec("t/outlier", func() error { return nil })})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := run.Results[0]
	if res.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", res.Rejected)
	}
	if got := res.MedianNS; got < float64(9900*time.Microsecond) || got > float64(10100*time.Microsecond) {
		t.Fatalf("median = %v ns, want ~10ms (spike not rejected?)", got)
	}
}

func TestRunnerWarmupIsUntimed(t *testing.T) {
	calls := 0
	clock := &scriptedClock{t: time.Unix(0, 0), steps: []time.Duration{time.Millisecond}}
	r := NewRunner(Config{Reps: 2, Warmup: 3, Now: clock.now})
	_, err := r.Run(context.Background(), []Spec{testSpec("t/warm", func() error {
		calls++
		return nil
	})})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 5 {
		t.Fatalf("op ran %d times, want 3 warmup + 2 timed = 5", calls)
	}
}

func TestRunnerDefaults(t *testing.T) {
	full := NewRunner(Config{Warmup: -1})
	if full.cfg.Reps != DefaultReps || full.cfg.Warmup != DefaultWarmup {
		t.Fatalf("full defaults = %d/%d, want %d/%d", full.cfg.Reps, full.cfg.Warmup, DefaultReps, DefaultWarmup)
	}
	quick := NewRunner(Config{Quick: true, Warmup: -1})
	if quick.cfg.Reps != QuickReps || quick.cfg.Warmup != QuickWarmup {
		t.Fatalf("quick defaults = %d/%d, want %d/%d", quick.cfg.Reps, quick.cfg.Warmup, QuickReps, QuickWarmup)
	}
	// Zero warmup is an explicit choice, not a sentinel.
	none := NewRunner(Config{Warmup: 0})
	if none.cfg.Warmup != 0 {
		t.Fatalf("explicit Warmup 0 remapped to %d", none.cfg.Warmup)
	}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name string
		spec Spec
	}{
		{"setup", Spec{Name: "t/setup", Setup: func(context.Context) (*Instance, error) { return nil, boom }}},
		{"op", testSpec("t/op", func() error { return boom })},
		{"verify", Spec{Name: "t/verify", Setup: func(context.Context) (*Instance, error) {
			return &Instance{Op: func() error { return nil }, Verify: func() error { return boom }}, nil
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner(Config{Reps: 1, Warmup: 0})
			_, err := r.Run(context.Background(), []Spec{tc.spec})
			if !errors.Is(err, boom) {
				t.Fatalf("Run error = %v, want wrapped boom", err)
			}
		})
	}
}

func TestRunnerRunsCleanup(t *testing.T) {
	cleaned := false
	sp := Spec{Name: "t/clean", Setup: func(context.Context) (*Instance, error) {
		return &Instance{
			Op:      func() error { return fmt.Errorf("op fails") },
			Cleanup: func() { cleaned = true },
		}, nil
	}}
	r := NewRunner(Config{Reps: 1, Warmup: 0})
	if _, err := r.Run(context.Background(), []Spec{sp}); err == nil {
		t.Fatal("Run did not fail")
	}
	if !cleaned {
		t.Fatal("Cleanup did not run after a failing op")
	}
}

func TestRunnerHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Config{Reps: 1, Warmup: 0})
	_, err := r.Run(ctx, []Spec{testSpec("t/ctx", func() error { return nil })})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

package ir

import (
	"strings"
	"testing"
)

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{CF(1.5), "1.5"},
		{CF32(2), "2f"},
		{CI(7), "7"},
		{V("i"), "i"},
		{Add(V("i"), CI(1)), "(i + 1)"},
		{Mul(CF(2), CF(3)), "(2 * 3)"},
		{Div(CF(1), CF(2)), "(1 / 2)"},
		{MaxE(CF(1), CF(2)), "max(1, 2)"},
		{Neg(CF(1)), "(-1)"},
		{Sqrt(CF(4)), "sqrt(4)"},
		{Widen(CF32(1)), "f64(1f)"},
		{Narrow(CF(1)), "f32(1)"},
		{ToI(CF(1)), "i64(1)"},
		{ToF(CI(1), F64), "f64(1)"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestRefString(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 8)
	p.AddArray("m", F64, AV("n"), AV("n"))
	p.AddScalar("s", F64)
	if got := RefString(p.Ref("m", V("i"), Add(V("j"), CI(1)))); got != "m[i][(j + 1)]" {
		t.Errorf("RefString = %q", got)
	}
	if got := RefString(p.Ref("s")); got != "s" {
		t.Errorf("scalar RefString = %q", got)
	}
}

func TestCodeletSource(t *testing.T) {
	p, c := buildDotProduct(t)
	_ = p
	c.SourceRef = "NR/dot.f"
	c.Pattern = "DP: dot product"
	c.DatasetVariation = 0.3
	c.VaryParam = "n"
	src := c.Source()
	for _, want := range []string{
		"// dot (NR/dot.f)",
		"// DP: dot product",
		"invocations: 10",
		"dataset varies ±30% (n)",
		"for i = 0 .. n {",
		"acc = (acc + (x[i] * y[i]))",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Source missing %q:\n%s", want, src)
		}
	}
}

func TestCodeletSourceHint(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 8)
	p.AddArray("a", F64, AV("n"))
	c := &Codelet{
		Name: "set", Invocations: 1,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Assign{LHS: p.Ref("a", V("i")), RHS: CF(0), Hint: VecNever},
		}},
	}
	p.MustAddCodelet(c)
	if !strings.Contains(c.Source(), "// novector") {
		t.Error("VecNever hint not rendered")
	}
}

func TestProgramSource(t *testing.T) {
	p, _ := buildDotProduct(t)
	src := p.Source()
	for _, want := range []string{
		"program test",
		"param n = 1000",
		"array f64 x[n]",
		"scalar f64 acc",
		"// dot",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("program source missing %q:\n%s", want, src)
		}
	}
}

func TestNestedLoopSource(t *testing.T) {
	p := NewProgram("t")
	p.SetParam("n", 8)
	p.AddArray("m", F64, AV("n"), AV("n"))
	c := &Codelet{
		Name: "nest", Invocations: 1,
		Loop: &Loop{Var: "i", Lower: AC(0), Upper: AV("n"), Body: []Stmt{
			&Loop{Var: "j", Lower: AC(0), Upper: AV("i"), Body: []Stmt{
				&Assign{LHS: p.Ref("m", V("i"), V("j")), RHS: CF(1)},
			}},
		}},
	}
	p.MustAddCodelet(c)
	src := c.Source()
	if !strings.Contains(src, "for j = 0 .. i {") {
		t.Errorf("nested loop not rendered:\n%s", src)
	}
	// The inner body must be indented deeper than the inner loop.
	if !strings.Contains(src, "        m[i][j] = 1") {
		t.Errorf("indentation wrong:\n%s", src)
	}
}

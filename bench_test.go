package fgbs

// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md's per-experiment index), each printing the artifact
// it regenerates, plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Profiling (the fixtures) is excluded from the timed region; the
// benchmarks time the analysis pipeline itself (clustering, selection,
// prediction, accounting).

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/cluster"
	"fgbs/internal/extract"
	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/pipeline"
	"fgbs/internal/report"
)

// logOnce prints an artifact a single time per benchmark name even
// though the benchmark body runs many iterations.
var logged sync.Map

func logArtifact(b *testing.B, render func(buf *bytes.Buffer) error) {
	b.Helper()
	if _, dup := logged.LoadOrStore(b.Name(), true); dup {
		return
	}
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", buf.String())
}

func BenchmarkTable1Architectures(b *testing.B) {
	logArtifact(b, func(buf *bytes.Buffer) error {
		return report.Table1(buf, arch.All())
	})
	for i := 0; i < b.N; i++ {
		for _, m := range arch.All() {
			if err := m.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2FeatureGA(b *testing.B) {
	prof := nrProfile(b)
	fitness, err := prof.FeatureFitness("Atom", "Sandy Bridge")
	if err != nil {
		b.Fatal(err)
	}
	var best FeatureMask
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ga.Run(fitness, ga.Options{
			Population: 40, Generations: 10, MutationProb: 0.01, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		best = res.Best
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "GA-selected subset (%d features; benchmark-scale run, see cmd/fgbs t2 -full):\n", best.Count())
		return report.Table2(buf, best)
	})
}

func BenchmarkTable3NRClustering(b *testing.B) {
	prof := nrProfile(b)
	var sub *Subset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sub, err = prof.Subset(DefaultFeatures(), 14)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev := targetEval(b, prof, sub, "Atom")
	logArtifact(b, func(buf *bytes.Buffer) error {
		return report.Table3(buf, prof, sub, ev)
	})
}

func BenchmarkTable4NRPrediction(b *testing.B) {
	prof := nrProfile(b)
	elbow, err := prof.Elbow(DefaultFeatures())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := prof.Subset(DefaultFeatures(), 14)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prof.Evaluate(sub, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "NR prediction errors (paper: K=14 medians 1.8%%/3.2%%, elbow K=24 medians 0%%):\n")
		return report.Table4(buf, prof, DefaultFeatures(), []int{14, elbow}, []string{"Atom", "Sandy Bridge"})
	})
}

func BenchmarkTable5ReductionBreakdown(b *testing.B) {
	prof := nasProfile(b)
	sub := defaultSubset(b, prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := range prof.Targets {
			if _, err := prof.Evaluate(sub, t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Reduction breakdown (paper: Atom x44.3 = x12 x3.7; Core 2 x24.7 = x8.7 x2.8; Sandy Bridge x22.5 = x6.3 x3.6):\n")
		return report.Table5(buf, prof, sub)
	})
}

func BenchmarkFigure2ClusterPrediction(b *testing.B) {
	prof := nrProfile(b)
	sub, err := prof.Subset(DefaultFeatures(), 14)
	if err != nil {
		b.Fatal(err)
	}
	var ev *pipeline.Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev = targetEval(b, prof, sub, "Atom")
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		return report.Figure2(buf, prof, sub, ev, []int{0, 1})
	})
}

func BenchmarkFigure3TradeoffSweep(b *testing.B) {
	prof := nasProfile(b)
	var pts []pipeline.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = prof.SweepK(DefaultFeatures(), 2, 24)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elbow, err := prof.Elbow(DefaultFeatures())
	if err != nil {
		b.Fatal(err)
	}
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Trade-off sweep (paper at elbow 18: Atom 8%%/x44, Core 2 3.9%%/x25, Sandy Bridge 5.8%%/x23):\n")
		return report.Figure3(buf, prof, pts, elbow)
	})
}

func BenchmarkFigure4CodeletPrediction(b *testing.B) {
	prof := nasProfile(b)
	sub := defaultSubset(b, prof)
	var ev *pipeline.Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev = targetEval(b, prof, sub, "Sandy Bridge")
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		return report.Figure4(buf, prof, ev)
	})
}

func BenchmarkFigure5ApplicationPrediction(b *testing.B) {
	prof := nasProfile(b)
	sub := defaultSubset(b, prof)
	var evals []*Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evals = evaluateAll(b, prof, sub)
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		return report.Figure5(buf, prof, evals)
	})
}

func BenchmarkFigure6GeomeanSpeedup(b *testing.B) {
	prof := nasProfile(b)
	sub := defaultSubset(b, prof)
	var evals []*Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evals = evaluateAll(b, prof, sub)
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Geomean speedups (paper: Atom 0.15/0.19, Core 2 0.97/1.00, Sandy Bridge 1.98/1.89):\n")
		return report.Figure6(buf, evals)
	})
}

func BenchmarkFigure7RandomClusteringBaseline(b *testing.B) {
	prof := nasProfile(b)
	ti, err := prof.TargetIndex("Atom")
	if err != nil {
		b.Fatal(err)
	}
	var rows []pipeline.RandomClusteringStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, k := range []int{6, 12, 18, 24} {
			st, err := prof.RandomClusterings(DefaultFeatures(), k, 100, ti, 99)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, st)
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Guided vs 100 random clusterings on Atom (paper uses 1000; cmd/fgbs f7 for the full run):\n")
		return report.Figure7(buf, "Atom", rows)
	})
}

// BenchmarkFigure7RandomClusteringBaselineParallel is the serial
// baseline above fanned out over GOMAXPROCS workers. Every trial's
// partition is a pure function of (seed, trial index), so the rows it
// produces are asserted identical to the serial run — the speedup is
// free of any result drift.
func BenchmarkFigure7RandomClusteringBaselineParallel(b *testing.B) {
	prof := nasProfile(b)
	ti, err := prof.TargetIndex("Atom")
	if err != nil {
		b.Fatal(err)
	}
	ks := []int{6, 12, 18, 24}
	serial := make([]pipeline.RandomClusteringStats, len(ks))
	for i, k := range ks {
		if serial[i], err = prof.RandomClusterings(DefaultFeatures(), k, 100, ti, 99); err != nil {
			b.Fatal(err)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	var rows []pipeline.RandomClusteringStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, k := range ks {
			st, err := prof.RandomClusteringsParallel(context.Background(), DefaultFeatures(), k, 100, ti, 99, workers, nil)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, st)
		}
	}
	b.StopTimer()
	for i := range serial {
		if rows[i] != serial[i] {
			b.Fatalf("parallel row %d diverged from serial: %+v != %+v", i, rows[i], serial[i])
		}
	}
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Parallel (%d workers) guided vs 100 random clusterings on Atom — rows identical to the serial benchmark:\n", workers)
		return report.Figure7(buf, "Atom", rows)
	})
}

func BenchmarkFigure8CrossApplication(b *testing.B) {
	prof := nasProfile(b)
	var cross, per []pipeline.PerAppPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cross, per = cross[:0], per[:0]
		for _, reps := range []int{1, 2, 3, 4} {
			pp, err := prof.PerAppSubsetting(DefaultFeatures(), reps)
			if err != nil {
				b.Fatal(err)
			}
			per = append(per, pp)
			cp, err := prof.CrossAppPoint(DefaultFeatures(), pp.TotalReps)
			if err != nil {
				b.Fatal(err)
			}
			cross = append(cross, cp)
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Across-apps vs per-app subsetting (paper Figure 8: shared reps win at small budgets; MG excluded per-app):\n")
		return report.Figure8(buf, prof, cross, per)
	})
}

//
// Ablation benchmarks (DESIGN.md A1-A5): design-choice checks beyond
// the paper's own evaluation.
//

// BenchmarkAblationLinkage compares Ward with single/complete/average
// linkage at the elbow K (A1).
func BenchmarkAblationLinkage(b *testing.B) {
	prof := nasProfile(b)
	linkages := []cluster.Linkage{cluster.Ward, cluster.Single, cluster.Complete, cluster.Average}
	results := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range linkages {
			sub, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{Linkage: l})
			if err != nil {
				b.Fatal(err)
			}
			ev, err := prof.Evaluate(sub, 0)
			if err != nil {
				b.Fatal(err)
			}
			results[l.String()] = ev.Summary.Median
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintln(buf, "A1 linkage ablation, Atom median error at K=18:")
		for _, l := range linkages {
			fmt.Fprintf(buf, "  %-9s %.1f%%\n", l, results[l.String()]*100)
		}
		return nil
	})
}

// BenchmarkAblationNormalization toggles the z-score normalization of
// §3.3 (A2).
func BenchmarkAblationNormalization(b *testing.B) {
	prof := nasProfile(b)
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		e1, err := prof.Evaluate(s1, 0)
		if err != nil {
			b.Fatal(err)
		}
		with = e1.Summary.Median
		s2, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{NoNormalize: true})
		if err != nil {
			b.Fatal(err)
		}
		e2, err := prof.Evaluate(s2, 0)
		if err != nil {
			b.Fatal(err)
		}
		without = e2.Summary.Median
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "A2 normalization ablation (Atom median error, K=18): normalized %.1f%%, raw %.1f%%\n",
			with*100, without*100)
		return nil
	})
}

// BenchmarkAblationRepresentativeChoice compares centroid-closest
// against first-member representatives (A3).
func BenchmarkAblationRepresentativeChoice(b *testing.B) {
	prof := nasProfile(b)
	var centroid, first float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		e1, err := prof.Evaluate(s1, 0)
		if err != nil {
			b.Fatal(err)
		}
		centroid = e1.Summary.Median
		s2, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{RepStrategy: pipeline.RepFirst})
		if err != nil {
			b.Fatal(err)
		}
		e2, err := prof.Evaluate(s2, 0)
		if err != nil {
			b.Fatal(err)
		}
		first = e2.Summary.Median
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "A3 representative ablation (Atom median error, K=18): centroid %.1f%%, first member %.1f%%\n",
			centroid*100, first*100)
		return nil
	})
}

// BenchmarkAblationInvocationRule sweeps the 1 ms / 10 invocation
// thresholds of §3.4 (A4).
func BenchmarkAblationInvocationRule(b *testing.B) {
	prof := nasProfile(b)
	sub := defaultSubset(b, prof)
	type rule struct {
		name   string
		minSec float64
		minInv int
	}
	rules := []rule{
		{"paper (2ms/10)", extract.MinBenchSeconds, extract.MinInvocations},
		{"loose (0.5ms/5)", 5e-4, 5},
		{"strict (10ms/30)", 1e-2, 30},
	}
	results := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rules {
			br := prof.ReductionWithRule(sub, 0, r.minSec, r.minInv)
			results[r.name] = br.Total
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintln(buf, "A4 invocation-rule ablation (Atom total reduction):")
		for _, r := range rules {
			fmt.Fprintf(buf, "  %-17s x%.1f\n", r.name, results[r.name])
		}
		return nil
	})
}

// BenchmarkAblationIllBehavedScreening disables the §3.4 screening
// (A5): ill-behaved representatives then leak into Step E.
func BenchmarkAblationIllBehavedScreening(b *testing.B) {
	prof := nasProfile(b)
	var withScreen, withoutScreen float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{})
		if err != nil {
			b.Fatal(err)
		}
		e1, err := prof.Evaluate(s1, 0)
		if err != nil {
			b.Fatal(err)
		}
		withScreen = e1.Summary.Median
		s2, err := prof.SubsetWith(DefaultFeatures(), 18, pipeline.SubsetConfig{IgnoreScreening: true})
		if err != nil {
			b.Fatal(err)
		}
		e2, err := prof.Evaluate(s2, 0)
		if err != nil {
			b.Fatal(err)
		}
		withoutScreen = e2.Summary.Median
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "A5 screening ablation (Atom median error, K=18): screened %.1f%%, unscreened %.1f%%\n",
			withScreen*100, withoutScreen*100)
		return nil
	})
}

// BenchmarkAblationArchIndependentFeatures compares the default
// (reference-profiled) feature subset with a purely machine-
// independent characterization (A6, the generalization §5 proposes).
func BenchmarkAblationArchIndependentFeatures(b *testing.B) {
	prof := nasProfile(b)
	masks := map[string]FeatureMask{
		"default":          DefaultFeatures(),
		"arch-independent": features.ArchIndependentMask(),
		"paper table 2":    PaperFeatures(),
	}
	results := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, m := range masks {
			sub, err := prof.SubsetWith(m, 18, pipeline.SubsetConfig{})
			if err != nil {
				b.Fatal(err)
			}
			ev, err := prof.Evaluate(sub, 0)
			if err != nil {
				b.Fatal(err)
			}
			results[name] = ev.Summary.Median
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintln(buf, "A6 feature-provenance ablation (Atom median error, K=18):")
		for _, name := range []string{"default", "paper table 2", "arch-independent"} {
			fmt.Fprintf(buf, "  %-17s %.1f%%\n", name, results[name]*100)
		}
		return nil
	})
}

//
// Extension benchmarks (§5/§6 directions; see EXPERIMENTS.md
// "Extensions").
//

// BenchmarkExtensionPolySuite subsets the PolyBench-like suite with
// the NR-trained default features.
func BenchmarkExtensionPolySuite(b *testing.B) {
	prof := polyProfile(b)
	var sub *Subset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sub, err = prof.Subset(DefaultFeatures(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	evals := evaluateAll(b, prof, sub)
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "PolyBench-like suite: %d codelets -> %d representatives\n", prof.N(), sub.K())
		for _, ev := range evals {
			fmt.Fprintf(buf, "  %-13s median err %.1f%%  reduction x%.1f\n",
				ev.Target.Name, ev.Summary.Median*100, ev.Reduction.Total)
		}
		return nil
	})
}

// BenchmarkExtensionJointSuite clusters NAS and poly together,
// measuring the inter-suite redundancy.
func BenchmarkExtensionJointSuite(b *testing.B) {
	joint := jointProfile(b)
	nas := nasProfile(b)
	poly := polyProfile(b)
	mask := DefaultFeatures()
	var kJoint int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		kJoint, err = joint.Elbow(mask)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	kNAS, err := nas.Elbow(mask)
	if err != nil {
		b.Fatal(err)
	}
	kPoly, err := poly.Elbow(mask)
	if err != nil {
		b.Fatal(err)
	}
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintf(buf, "Joint-suite redundancy: NAS alone %d reps + poly alone %d reps = %d; clustered together: %d reps\n",
			kNAS, kPoly, kNAS+kPoly, kJoint)
		return nil
	})
}

// BenchmarkExtensionWideVector evaluates prediction on the wide-vector
// accelerator-like target with three feature subsets.
func BenchmarkExtensionWideVector(b *testing.B) {
	targets := append(arch.Targets(), arch.WideVec())
	prof, err := pipeline.NewProfile(NASSuite(), pipeline.Options{Seed: 1, Targets: targets})
	if err != nil {
		b.Fatal(err)
	}
	wv, err := prof.TargetIndex("WideVec")
	if err != nil {
		b.Fatal(err)
	}
	masks := []struct {
		name string
		m    FeatureMask
	}{
		{"default", DefaultFeatures()},
		{"paper table 2", PaperFeatures()},
		{"arch-independent", features.ArchIndependentMask()},
	}
	results := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mk := range masks {
			sub, err := prof.Subset(mk.m, 0)
			if err != nil {
				b.Fatal(err)
			}
			ev, err := prof.Evaluate(sub, wv)
			if err != nil {
				b.Fatal(err)
			}
			results[mk.name] = ev.Summary.Median
		}
	}
	b.StopTimer()
	logArtifact(b, func(buf *bytes.Buffer) error {
		fmt.Fprintln(buf, "WideVec (512-bit accelerator-like) median prediction error:")
		for _, mk := range masks {
			fmt.Fprintf(buf, "  %-17s %.1f%%\n", mk.name, results[mk.name]*100)
		}
		return nil
	})
}

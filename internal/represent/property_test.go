package represent

import (
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

// Property: over random inputs, every successful selection satisfies
// the §3.4 invariants — representatives are well-behaved members of
// their own cluster, labels are consecutive, and exactly the members
// of destroyed clusters were moved.
func TestSelectionInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		k := 1 + r.Intn(n)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{r.NormFloat64(), r.NormFloat64()}
		}
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(k)
		}
		for c := 0; c < k; c++ {
			labels[c%n] = c // populate every label
		}
		ill := make([]bool, n)
		healthy := 0
		for i := range ill {
			ill[i] = r.Bool(0.3)
			if !ill[i] {
				healthy++
			}
		}
		if healthy == 0 {
			ill[r.Intn(n)] = false
		}

		sel, err := Select(points, labels, ill)
		if err != nil {
			return false
		}
		// Labels consecutive in [0, K).
		seen := make([]bool, sel.K)
		for _, l := range sel.Labels {
			if l < 0 || l >= sel.K {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Representatives: well-behaved, and member of the cluster
		// they represent.
		for c, rep := range sel.Reps {
			if rep < 0 || rep >= n || ill[rep] || sel.Labels[rep] != c {
				return false
			}
		}
		// Moved codelets are exactly those whose original cluster had
		// no healthy member.
		healthyCluster := make([]bool, k)
		for i := range labels {
			if !ill[i] {
				healthyCluster[labels[i]] = true
			}
		}
		movedSet := map[int]bool{}
		for _, m := range sel.Moved {
			movedSet[m] = true
		}
		for i, l := range labels {
			if healthyCluster[l] == movedSet[i] {
				return false // healthy-cluster member moved, or orphan not moved
			}
		}
		// Destroyed count matches.
		destroyed := 0
		for _, h := range healthyCluster {
			if !h {
				destroyed++
			}
		}
		return destroyed == sel.Destroyed && sel.K == k-destroyed
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
)

// Fixture: a small heterogeneous suite profiled once per test binary.
var (
	once sync.Once
	prof *pipeline.Profile
	fail error
)

func fixtureSuite() []*ir.Program {
	p := ir.NewProgram("demo")
	p.SetParam("n", 200000)
	p.UncoveredFraction = 0.08
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	p.AddScalar("s", ir.F64)
	p.MustAddCodelet(&ir.Codelet{
		Name: "demo_copy", Invocations: 40, SourceRef: "demo.f:1", Pattern: "DP: copy",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
		}},
	})
	p.MustAddCodelet(&ir.Codelet{
		Name: "demo_div", Invocations: 20, SourceRef: "demo.f:2", Pattern: "DP: divide",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Div(p.LoadE("b", ir.V("i")), ir.Add(p.LoadE("a", ir.V("i")), ir.CF(2)))},
		}},
	})
	p.MustAddCodelet(&ir.Codelet{
		Name: "demo_sum", Invocations: 30, SourceRef: "demo.f:3", Pattern: "DP: reduction",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("s"), RHS: ir.Add(p.LoadE("s"), p.LoadE("a", ir.V("i")))},
		}},
	})
	return []*ir.Program{p}
}

func fixture(t *testing.T) (*pipeline.Profile, *pipeline.Subset, *pipeline.Eval) {
	t.Helper()
	once.Do(func() {
		prof, fail = pipeline.NewProfile(fixtureSuite(), pipeline.Options{Seed: 1})
	})
	if fail != nil {
		t.Fatal(fail)
	}
	sub, err := prof.Subset(features.DefaultMask(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := prof.Evaluate(sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	return prof, sub, ev
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, arch.All()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Nehalem", "Atom", "Core 2", "Sandy Bridge", "GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, features.PaperMask()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"likwid", "maqao", "mflops", "num_fp_div"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	// 14 feature rows plus header.
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 14 {
		t.Errorf("Table2 has %d rows, want 14", got)
	}
}

func TestTable3(t *testing.T) {
	p, sub, ev := fixture(t)
	var buf bytes.Buffer
	if err := Table3(&buf, p, sub, ev); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo_copy", "DP: divide", "Vec.%", "<"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q in:\n%s", want, out)
		}
	}
}

func TestTable4(t *testing.T) {
	p, _, _ := fixture(t)
	var buf bytes.Buffer
	err := Table4(&buf, p, features.DefaultMask(), []int{2, 3}, []string{"Atom"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Atom median") {
		t.Errorf("Table4 output:\n%s", buf.String())
	}
	if err := Table4(&buf, p, features.DefaultMask(), []int{2}, []string{"Nope"}); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestTable5(t *testing.T) {
	p, sub, _ := fixture(t)
	var buf bytes.Buffer
	if err := Table5(&buf, p, sub); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Reduction") || !strings.Contains(out, "Atom") {
		t.Errorf("Table5 output:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	p, sub, ev := fixture(t)
	var buf bytes.Buffer

	if err := Figure2(&buf, p, sub, ev, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "predicted(ms)") {
		t.Error("Figure2 header missing")
	}

	pts, err := p.SweepK(features.DefaultMask(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure3(&buf, p, pts, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2*") {
		t.Error("Figure3 elbow marker missing")
	}

	buf.Reset()
	if err := Figure4(&buf, p, ev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo_sum") {
		t.Error("Figure4 missing codelet rows")
	}

	buf.Reset()
	if err := Figure5(&buf, p, []*pipeline.Eval{ev}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") {
		t.Error("Figure5 missing app row")
	}

	buf.Reset()
	if err := Figure6(&buf, []*pipeline.Eval{ev}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Real speedup") {
		t.Error("Figure6 header missing")
	}

	st, err := p.RandomClusterings(features.DefaultMask(), 2, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure7(&buf, "Atom", []pipeline.RandomClusteringStats{st}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "random best") {
		t.Error("Figure7 header missing")
	}

	pp, err := p.PerAppSubsetting(features.DefaultMask(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.CrossAppPoint(features.DefaultMask(), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Figure8(&buf, p, []pipeline.PerAppPoint{cp}, []pipeline.PerAppPoint{pp}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "across-apps") || !strings.Contains(out, "per-app") {
		t.Errorf("Figure8 output:\n%s", out)
	}
}

func TestDendrogram(t *testing.T) {
	p, sub, _ := fixture(t)
	var buf bytes.Buffer
	if err := Dendrogram(&buf, p, sub); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "merge") || !strings.Contains(out, "demo_") {
		t.Errorf("dendrogram output:\n%s", out)
	}
	// External partitions carry no dendrogram.
	labels := make([]int, p.N())
	ext, err := p.SubsetFromLabels(features.DefaultMask(), labels)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Dendrogram(&buf, p, ext); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no dendrogram") {
		t.Error("missing no-dendrogram notice")
	}
}

func TestCSVExports(t *testing.T) {
	p, _, ev := fixture(t)
	var buf bytes.Buffer
	if err := EvalCSV(&buf, p, ev); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != p.N()+1 {
		t.Errorf("EvalCSV rows = %d, want %d", len(lines), p.N()+1)
	}
	if !strings.HasPrefix(lines[0], "app,codelet,ref_s") {
		t.Errorf("EvalCSV header = %q", lines[0])
	}

	pts, err := p.SweepK(features.DefaultMask(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SweepCSV(&buf, p, pts); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2*len(p.Targets) {
		t.Errorf("SweepCSV rows = %d", len(lines))
	}

	buf.Reset()
	if err := FeaturesCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != p.N()+1 {
		t.Errorf("FeaturesCSV rows = %d", len(lines))
	}
	if got := strings.Count(lines[0], ","); got != 2+features.NumFeatures-1 {
		t.Errorf("FeaturesCSV columns = %d", got+1)
	}
}

func TestDendrogramTree(t *testing.T) {
	p, sub, _ := fixture(t)
	var buf bytes.Buffer
	if err := DendrogramTree(&buf, p, sub); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"└──", "demo_copy", "[C", "(h="} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Every codelet appears exactly once.
	for _, c := range p.Codelets {
		if strings.Count(out, c.Name) != 1 {
			t.Errorf("codelet %s appears %d times", c.Name, strings.Count(out, c.Name))
		}
	}
	// External partition fallback.
	labels := make([]int, p.N())
	ext, err := p.SubsetFromLabels(features.DefaultMask(), labels)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := DendrogramTree(&buf, p, ext); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no dendrogram") {
		t.Error("missing fallback notice")
	}
}

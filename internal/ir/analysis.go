package ir

import (
	"fmt"
	"sort"
)

// ExprAffine attempts to express e as an integer affine form in loop
// variables and parameters. It returns ok=false when e involves a load
// (indirect indexing, e.g. CG's gather through a column-index array),
// a non-affine operator, or a product of two variables.
func ExprAffine(e Expr) (Affine, bool) {
	switch n := e.(type) {
	case *Const:
		if n.DT != I64 {
			return Affine{}, false
		}
		return AC(n.I), true
	case *Var:
		return AV(n.Name), true
	case *Bin:
		a, okA := ExprAffine(n.A)
		b, okB := ExprAffine(n.B)
		switch n.Op {
		case OpAdd:
			if okA && okB {
				return a.Plus(b), true
			}
		case OpSub:
			if okA && okB {
				return a.Minus(b), true
			}
		case OpMul:
			if okA && okB {
				if a.IsConst() {
					return b.ScaleK(a.K), true
				}
				if b.IsConst() {
					return a.ScaleK(b.K), true
				}
			}
		}
		return Affine{}, false
	default:
		return Affine{}, false
	}
}

// StrideKind classifies a memory reference's innermost-loop behavior,
// the information behind Table 3's "Stride" column.
type StrideKind uint8

const (
	// StrideConst means the innermost variable does not appear: the
	// reference hits a constant location each iteration (stride 0,
	// e.g. a reduction accumulator kept in memory).
	StrideConst StrideKind = iota
	// StrideAffine means the linearized index is affine in the
	// innermost variable; Elems holds the per-iteration distance in
	// elements (1 = sequential, -1 = descending, LDA = column walk).
	StrideAffine
	// StrideIndirect means the address depends on loaded data
	// (gather/scatter).
	StrideIndirect
)

// Stride describes one reference's access pattern with respect to an
// innermost loop.
type Stride struct {
	Kind StrideKind
	// Elems is the signed per-iteration element distance for
	// StrideAffine.
	Elems int64
	// Bytes is Elems scaled by the element size.
	Bytes int64
}

// String renders the stride the way Table 3 does.
func (s Stride) String() string {
	switch s.Kind {
	case StrideConst:
		return "0"
	case StrideIndirect:
		return "indirect"
	default:
		return fmt.Sprintf("%d", s.Elems)
	}
}

// RefStride computes the stride of reference r with respect to loop
// variable inner, under the program's array declarations and parameter
// bindings (needed to resolve symbolic leading dimensions).
func (p *Program) RefStride(r *Ref, inner string) Stride {
	a := p.arrayIdx[r.Array]
	if a == nil {
		panic(fmt.Sprintf("ir: stride of undeclared array %q", r.Array))
	}
	// Linearize row-major: lin = sum_d idx_d * prod(dims after d).
	elemStride := int64(0)
	mult := int64(1)
	for d := len(r.Index) - 1; d >= 0; d-- {
		aff, ok := ExprAffine(r.Index[d])
		if !ok {
			return Stride{Kind: StrideIndirect}
		}
		elemStride += aff.Coeff(inner) * mult
		mult *= a.Dims[d].Eval(p.Params)
	}
	if elemStride == 0 {
		return Stride{Kind: StrideConst}
	}
	return Stride{Kind: StrideAffine, Elems: elemStride, Bytes: elemStride * a.DT.Size()}
}

// AccessSummary aggregates the reference behavior of one innermost
// loop body: every distinct load/store with its stride.
type AccessSummary struct {
	Loads  []RefAccess
	Stores []RefAccess
}

// RefAccess pairs a reference with its innermost stride.
type RefAccess struct {
	Ref    *Ref
	Stride Stride
}

// Accesses summarizes the memory references of the innermost loop lc.
// Scalar references (0-dim arrays) that the lowering pass register-
// allocates are still reported here; consumers filter as needed.
func (p *Program) Accesses(lc *LoopContext) AccessSummary {
	var sum AccessSummary
	inner := lc.Loop.Var
	for _, s := range lc.Loop.Body {
		a, ok := s.(*Assign)
		if !ok {
			continue
		}
		sum.Stores = append(sum.Stores, RefAccess{Ref: a.LHS, Stride: p.RefStride(a.LHS, inner)})
		WalkExpr(a.RHS, func(e Expr) {
			if ld, ok := e.(*Load); ok {
				sum.Loads = append(sum.Loads, RefAccess{Ref: ld.Ref, Stride: p.RefStride(ld.Ref, inner)})
			}
		})
	}
	return sum
}

// StrideSet returns the distinct stride descriptions of the loop's
// references, ordered like Table 3 renders them (e.g. "0 & 1 & -1").
func (p *Program) StrideSet(lc *LoopContext) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(s Stride) {
		str := s.String()
		if !seen[str] {
			seen[str] = true
			out = append(out, str)
		}
	}
	sum := p.Accesses(lc)
	for _, a := range sum.Loads {
		add(a.Stride)
	}
	for _, a := range sum.Stores {
		add(a.Stride)
	}
	sort.Strings(out)
	return out
}

// DepClass classifies one assignment's dependence structure with
// respect to the innermost loop, which decides vectorization legality.
type DepClass uint8

const (
	// DepNone: no loop-carried dependence; freely vectorizable.
	DepNone DepClass = iota
	// DepReduction: the statement accumulates into a location that
	// does not move with the innermost variable (sum/dot patterns).
	// Vectorizable with a parallel reduction under -O3 semantics.
	DepReduction
	// DepRecurrence: the statement reads a value written by an earlier
	// iteration at a different offset (first-order recurrences such as
	// tridag). Not vectorizable.
	DepRecurrence
)

// String names the class.
func (d DepClass) String() string {
	switch d {
	case DepNone:
		return "none"
	case DepReduction:
		return "reduction"
	case DepRecurrence:
		return "recurrence"
	default:
		return fmt.Sprintf("dep(%d)", uint8(d))
	}
}

// maxVectorDepDistance is the largest forward dependence distance (in
// innermost iterations) that still inhibits vectorization: beyond it,
// a vector block never spans the dependence.
const maxVectorDepDistance = 16

// ClassifyDep analyzes one assignment inside innermost loop variable
// inner.
//
// Same-array reads are dependence-tested against the write along the
// innermost dimension only: a true dependence carried by an *outer*
// loop (e.g. row i reading row i-1 while the inner loop sweeps
// columns) does not inhibit vectorizing the inner loop. The test is
// conservative where it cannot decide (indirect indices, mismatched
// inner strides, symbolic distances).
func (p *Program) ClassifyDep(a *Assign, inner string) DepClass {
	writeStride := p.RefStride(a.LHS, inner)
	writeAff, writeAffOK := p.linearAffine(a.LHS)

	sameArrayRead := false
	conflict := false
	WalkExpr(a.RHS, func(e Expr) {
		ld, ok := e.(*Load)
		if !ok || ld.Ref.Array != a.LHS.Array {
			return
		}
		sameArrayRead = true
		readAff, readOK := p.linearAffine(ld.Ref)
		if !readOK || !writeAffOK {
			conflict = true
			return
		}
		if readAff.Equal(writeAff) {
			return // same location: in-place update
		}
		sW := writeAff.Coeff(inner)
		sR := readAff.Coeff(inner)
		if sW != sR {
			// Crossing strides (e.g. ascending write, descending
			// read): assume a carried dependence.
			conflict = true
			return
		}
		// The distance is inner-invariant; evaluate it under the
		// program parameters with outer variables at zero (outer
		// variables only shift both sides equally when they appear
		// with equal coefficients; unequal coefficients evaluate to
		// an outer-dependent distance, handled conservatively below).
		diff := writeAff.Minus(readAff)
		env := make(map[string]int64, len(p.Params)+4)
		for k, v := range p.Params {
			env[k] = v
		}
		for _, v := range diff.Vars() {
			if _, bound := env[v]; !bound {
				if v == inner {
					// Cannot happen (equal inner coefficients), but
					// stay safe.
					conflict = true
					return
				}
				env[v] = 0
			}
		}
		dist := diff.Eval(env)
		switch {
		case sW == 0:
			// Inner-invariant location read at a different
			// inner-invariant location: no inner-carried dependence.
		case dist%sW != 0:
			// The read walks a lattice the write never touches in
			// this sweep.
		case dist/sW > 0 && dist/sW <= maxVectorDepDistance:
			// True dependence within vector reach: iteration i reads
			// what iteration i - dist/sW wrote.
			conflict = true
		default:
			// Anti-dependences (negative distance) and far-away
			// forward dependences do not inhibit vectorization.
		}
	})

	switch {
	case !sameArrayRead:
		// Writes that scatter through data-dependent indices
		// (histogram updates) could collide across iterations; treat
		// indirect stores that also read other arrays as vectorizable
		// only when the write is affine.
		if writeStride.Kind == StrideIndirect {
			return DepRecurrence
		}
		return DepNone
	case writeStride.Kind == StrideConst:
		// Accumulator that does not move with the loop: reduction.
		return DepReduction
	case conflict:
		return DepRecurrence
	default:
		// Reads the same location it writes (e.g. a[i] = a[i]*2).
		return DepNone
	}
}

// LinearIndex linearizes a reference into a single affine element
// index over loop variables and parameters (row-major); ok=false for
// indirect references.
func (p *Program) LinearIndex(r *Ref) (Affine, bool) { return p.linearAffine(r) }

// linearAffine linearizes a reference into a single affine form over
// all variables; ok=false for indirect references.
func (p *Program) linearAffine(r *Ref) (Affine, bool) {
	a := p.arrayIdx[r.Array]
	if a == nil {
		return Affine{}, false
	}
	lin := AC(0)
	mult := int64(1)
	for d := len(r.Index) - 1; d >= 0; d-- {
		aff, ok := ExprAffine(r.Index[d])
		if !ok {
			return Affine{}, false
		}
		lin = lin.Plus(aff.ScaleK(mult))
		mult *= a.Dims[d].Eval(p.Params)
	}
	return lin, true
}

// TripCount evaluates the loop's iteration count under env, clamped at
// zero.
func (l *Loop) TripCount(env map[string]int64) int64 {
	n := l.Upper.Eval(env) - l.Lower.Eval(env)
	if n < 0 {
		return 0
	}
	return n
}

// OpCount tallies the operation mix of a single evaluation of e.
type OpCount struct {
	FAdd, FMul, FDiv int64 // floating-point add/sub/min/max, mul, div
	FSqrt            int64 // square roots
	FSpecial         int64 // exp/log/sin/cos
	IntOps           int64 // integer ALU operations
	Loads, Stores    int64 // memory references (before register allocation)
	F32Ops           int64 // portion of FP ops that are single precision
}

// Plus returns the element-wise sum.
func (o OpCount) Plus(b OpCount) OpCount {
	return OpCount{
		FAdd: o.FAdd + b.FAdd, FMul: o.FMul + b.FMul, FDiv: o.FDiv + b.FDiv,
		FSqrt: o.FSqrt + b.FSqrt, FSpecial: o.FSpecial + b.FSpecial,
		IntOps: o.IntOps + b.IntOps,
		Loads:  o.Loads + b.Loads, Stores: o.Stores + b.Stores, F32Ops: o.F32Ops + b.F32Ops,
	}
}

// FPOps returns the total floating-point operation count.
func (o OpCount) FPOps() int64 { return o.FAdd + o.FMul + o.FDiv + o.FSqrt + o.FSpecial }

// CountOps tallies the operation mix of one evaluation of e, including
// index arithmetic (counted as integer ops).
func CountOps(e Expr) OpCount {
	var oc OpCount
	WalkExpr(e, func(n Expr) {
		switch x := n.(type) {
		case *Bin:
			if x.DType().IsFloat() {
				switch x.Op {
				case OpAdd, OpSub, OpMin, OpMax:
					oc.FAdd++
				case OpMul:
					oc.FMul++
				case OpDiv:
					oc.FDiv++
				}
				if x.DType() == F32 {
					oc.F32Ops++
				}
			} else {
				oc.IntOps++
			}
		case *Un:
			switch x.Op {
			case OpSqrt:
				oc.FSqrt++
				if x.DType() == F32 {
					oc.F32Ops++
				}
			case OpExp, OpLog, OpSin, OpCos:
				oc.FSpecial++
				if x.DType() == F32 {
					oc.F32Ops++
				}
			case OpNeg, OpAbs:
				if x.DType().IsFloat() {
					oc.FAdd++
					if x.DType() == F32 {
						oc.F32Ops++
					}
				} else {
					oc.IntOps++
				}
			case OpCvtIF, OpCvtFI, OpWiden, OpNarrow:
				// Conversions occupy an issue slot; modeled as integer
				// ALU work.
				oc.IntOps++
			}
		case *Load:
			oc.Loads++
		}
	})
	return oc
}

// CountAssign tallies an assignment: RHS ops plus the store.
func CountAssign(a *Assign) OpCount {
	oc := CountOps(a.RHS)
	oc.Stores++
	return oc
}

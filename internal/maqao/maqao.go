// Package maqao computes static loop metrics for codelets, standing in
// for the MAQAO static loop analyzer the paper uses in Step B.
//
// MAQAO disassembles the compiled binary and reports, for each
// innermost loop, metrics such as the loop size, dispatch-port
// pressures, the instruction mix, vectorization ratios per instruction
// class, and performance lower bounds computed under the assumption
// that every memory access hits L1 (§3.2).
//
// Here the "binary" is the lowering produced by internal/compile for
// the reference architecture, so the same quantities are computed from
// the lowered loops. Metrics for codelets with several innermost loops
// are aggregated weighted by statically estimated trip counts.
package maqao

import (
	"fgbs/internal/arch"
	"fgbs/internal/compile"
	"fgbs/internal/ir"
)

// Static is the MAQAO-style static metric set for one codelet.
type Static struct {
	// LoopInstr is the estimated instruction count of one iteration
	// of the (weighted) innermost loops: the "size of the loop".
	LoopInstr float64
	// EstIPCL1 is the estimated instructions-per-cycle assuming all
	// memory accesses hit L1.
	EstIPCL1 float64
	// BytesStoredPerCycle assumes L1 hits (Table 2's "Bytes stored per
	// cycle assuming L1 hits").
	BytesStoredPerCycle float64
	// BytesLoadedPerCycle is the load-side counterpart.
	BytesLoadedPerCycle float64
	// DepStallCycles is the per-iteration stall attributable to
	// loop-carried dependence chains ("Data dependencies stalls").
	DepStallCycles float64

	// PressureP0 / PressureP1 / PressureLoad / PressureStore /
	// PressureInt are dispatch-port utilizations under the L1-hit
	// assumption (P0 = FP multiply pipe, P1 = FP add pipe, matching
	// Table 2's "Pressure in dispatch port P1").
	PressureP0, PressureP1      float64
	PressureLoad, PressureStore float64
	PressureInt                 float64

	// CyclesPerIterL1 is the static per-iteration cycle lower bound.
	CyclesPerIterL1 float64
	// ChainCyclesPerIter is the loop-carried dependence chain latency
	// per iteration.
	ChainCyclesPerIter float64
	// Per-iteration operation mix.
	LoadsPerIter, StoresPerIter float64
	FPOpsPerIter, IntOpsPerIter float64
	GatherLoadsPerIter          float64
	// AvgVecLanes is the mean SIMD lane count across statements
	// (1 = fully scalar).
	AvgVecLanes float64
	// ReductionShare / RecurrenceShare are the fractions of statements
	// with those dependence classes.
	ReductionShare, RecurrenceShare float64

	// NumFPDiv is the number of FP divides per iteration.
	NumFPDiv float64
	// NumSpecial is the number of sqrt/exp/log/sin/cos per iteration.
	NumSpecial float64
	// NumSD estimates scalar-double instructions per iteration (SD =
	// the SSE "scalar double" form; high values mean unvectorized DP
	// code).
	NumSD float64
	// AddSubMulRatio is (FP adds+subs) / FP muls, with the convention
	// that a zero mul count yields adds+subs (Table 2's "Ratio between
	// ADD+SUB/MUL").
	AddSubMulRatio float64

	// Vectorization ratios per instruction class, in [0, 1]
	// (Table 2's "Vectorization ratio for ..." features).
	VecRatioMul   float64
	VecRatioAdd   float64
	VecRatioOther float64
	VecRatioInt   float64
	VecRatioAll   float64

	// F32Share is the fraction of FP operations in single precision.
	F32Share float64
	// RegistersUsed estimates the number of architectural registers
	// the loop body needs.
	RegistersUsed float64
}

// Analyze computes static metrics for codelet c lowered on machine m
// (the paper always runs MAQAO on the reference architecture's
// binary). The lowering uses the in-application compilation context.
func Analyze(p *ir.Program, c *ir.Codelet, m *arch.Machine) Static {
	low := compile.Lower(p, c, m, true)
	var s Static

	totalW := 0.0
	var wInstr, wCycles, wStoreBytes, wLoadBytes, wStall, wChain float64
	var wP0, wP1, wPL, wPS, wPI float64
	var wDiv, wSpecial, wSD float64
	var wAddSub, wMul float64
	var wF32, wFP, wInt, wLoads, wStores, wGather float64
	var wRegs, wLanes float64
	var stmtCount, redCount, recCount float64

	for _, l := range low.Loops {
		w := estTripWeight(l.Context, p.Params)
		totalW += w
		wInstr += w * l.InstrPerIter
		wCycles += w * l.CyclesPerIter
		wStall += w * l.StallCycles
		wChain += w * l.ChainCycles
		wP0 += w * l.PortPressure.Mul
		wP1 += w * l.PortPressure.Add
		wPL += w * l.PortPressure.Load
		wPS += w * l.PortPressure.Store
		wPI += w * l.PortPressure.Int

		var storeBytes, loadBytes float64
		regs := 2.0 // induction + accumulator baseline
		for _, st := range l.Stmts {
			o := st.Ops
			wDiv += w * float64(o.FDiv)
			wSpecial += w * float64(o.FSqrt+o.FSpecial)
			wAddSub += w * float64(o.FAdd)
			wMul += w * float64(o.FMul)
			wF32 += w * float64(o.F32Ops)
			wFP += w * float64(o.FPOps())
			wInt += w * float64(o.IntOps)
			wGather += w * float64(st.GatherLoads)
			wLanes += w * float64(st.Lanes)
			stmtCount += w
			switch st.Dep {
			case ir.DepReduction:
				redCount += w
			case ir.DepRecurrence:
				recCount += w
			}
			if !st.Vectorized && st.Assign.LHS.DType() == ir.F64 {
				wSD += w * float64(o.FPOps())
			}
			for _, mr := range st.Mem {
				bytes := float64(mr.Ref.DType().Size())
				if mr.Write {
					storeBytes += bytes
					wStores += w
				} else {
					loadBytes += bytes
					wLoads += w
				}
				regs++
			}
		}
		if l.CyclesPerIter > 0 {
			wStoreBytes += w * storeBytes / l.CyclesPerIter
			wLoadBytes += w * loadBytes / l.CyclesPerIter
		}
		wRegs += w * regs
	}
	//fgbs:allow floatcompare exact-zero division guard, not a tolerance comparison
	if totalW == 0 {
		return s
	}

	s.LoopInstr = wInstr / totalW
	if wCycles > 0 {
		s.EstIPCL1 = wInstr / wCycles
	}
	s.BytesStoredPerCycle = wStoreBytes / totalW
	s.BytesLoadedPerCycle = wLoadBytes / totalW
	s.DepStallCycles = wStall / totalW
	s.ChainCyclesPerIter = wChain / totalW
	s.CyclesPerIterL1 = wCycles / totalW
	s.PressureP0 = wP0 / totalW
	s.PressureP1 = wP1 / totalW
	s.PressureLoad = wPL / totalW
	s.PressureStore = wPS / totalW
	s.PressureInt = wPI / totalW
	s.NumFPDiv = wDiv / totalW
	s.NumSpecial = wSpecial / totalW
	s.NumSD = wSD / totalW
	s.LoadsPerIter = wLoads / totalW
	s.StoresPerIter = wStores / totalW
	s.FPOpsPerIter = wFP / totalW
	s.IntOpsPerIter = wInt / totalW
	s.GatherLoadsPerIter = wGather / totalW
	if stmtCount > 0 {
		s.AvgVecLanes = wLanes / stmtCount
		s.ReductionShare = redCount / stmtCount
		s.RecurrenceShare = recCount / stmtCount
	}
	if wMul > 0 {
		s.AddSubMulRatio = wAddSub / wMul
	} else {
		s.AddSubMulRatio = wAddSub / totalW
	}
	if wFP > 0 {
		s.F32Share = wF32 / wFP
	}
	s.RegistersUsed = wRegs / totalW

	r := low.VecRatios(p.Params)
	s.VecRatioMul = r.Mul
	s.VecRatioAdd = r.Add
	s.VecRatioOther = r.Other
	s.VecRatioInt = r.Int
	s.VecRatioAll = r.All
	return s
}

// estTripWeight mirrors compile's static trip estimate to weight
// multiple innermost loops.
func estTripWeight(lc *ir.LoopContext, params map[string]int64) float64 {
	env := make(map[string]int64, len(params)+len(lc.Outer))
	for k, v := range params {
		env[k] = v
	}
	for _, v := range lc.Outer {
		env[v] = 0
	}
	trip := lc.Loop.TripCount(env)
	if len(lc.Outer) > 0 {
		for _, v := range lc.Outer {
			env[v] = trip / 2
		}
		trip = lc.Loop.TripCount(env)
	}
	if trip < 1 {
		trip = 1
	}
	return float64(trip)
}

// Package fgbs is a Go reproduction of "Fine-grained Benchmark
// Subsetting for System Selection" (de Oliveira Castro, Kashnikov,
// Akel, Popov, Jalby — CGO 2014).
//
// The method reduces the cost of system selection: instead of running
// a whole benchmark suite on every candidate machine, it breaks the
// suite into codelets (outermost loop nests), profiles them once on a
// reference machine, clusters codelets with similar performance
// signatures, and benchmarks only one well-behaved representative per
// cluster on each target — extrapolating every sibling's time through
// the cluster-speedup model.
//
// This package is the public façade. It re-exports (as type aliases)
// the pieces a downstream user needs:
//
//   - machine models standing in for the paper's four Intel systems
//     (Machines, Reference, Targets),
//   - the two benchmark suites written in the loop-nest IR
//     (NRSuite — 28 Numerical Recipes training codelets; NASSuite —
//     7 NAS-like applications, 67 codelets),
//   - the pipeline: NewProfile (Steps A-B), Profile.Subset (Steps
//     C-D), Profile.Evaluate (Step E),
//   - feature masks: PaperFeatures (the paper's Table 2 subset) and
//     DefaultFeatures (this reproduction's GA-equivalent),
//   - the genetic feature selection of §4.2 (SelectFeatures).
//
// A minimal system-selection session:
//
//	prof, err := fgbs.NewProfile(fgbs.NASSuite(), fgbs.Options{Seed: 1})
//	...
//	sub, err := prof.Subset(fgbs.DefaultFeatures(), 0) // elbow-selected K
//	...
//	for t := range prof.Targets {
//	    ev, err := prof.Evaluate(sub, t)
//	    // ev.Summary.Median, ev.Reduction.Total, ev.Apps ...
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package fgbs

import (
	"fgbs/internal/arch"
	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
	"fgbs/internal/suites/nas"
	"fgbs/internal/suites/nr"
	"fgbs/internal/suites/poly"
)

// Machine is one modeled architecture (see internal/arch).
type Machine = arch.Machine

// Program is an application decomposed into codelets.
type Program = ir.Program

// Codelet is an outlined outermost loop nest.
type Codelet = ir.Codelet

// Options configures profiling.
type Options = pipeline.Options

// Profile holds Step B's measurements for a suite.
type Profile = pipeline.Profile

// Subset is a clustering plus representative selection.
type Subset = pipeline.Subset

// Eval is a Step E evaluation on one target.
type Eval = pipeline.Eval

// FeatureMask selects a subset of the 76 features.
type FeatureMask = features.Mask

// GAOptions configures genetic feature selection.
type GAOptions = ga.Options

// GAResult is the outcome of genetic feature selection.
type GAResult = ga.Result

// Reference returns the reference machine (Nehalem).
func Reference() *Machine { return arch.Reference() }

// Targets returns the three target machines (Atom, Core 2, Sandy
// Bridge).
func Targets() []*Machine { return arch.Targets() }

// Machines returns reference plus targets, Table 1's four systems.
func Machines() []*Machine { return arch.All() }

// NRSuite returns the 28 Numerical Recipes training programs.
func NRSuite() []*Program { return nr.Suite() }

// NASSuite returns the 7 NAS-like validation applications (67
// codelets).
func NASSuite() []*Program { return nas.Suite() }

// NewProfile runs Steps A and B over suite programs.
func NewProfile(progs []*Program, opts Options) (*Profile, error) {
	return pipeline.NewProfile(progs, opts)
}

// PaperFeatures returns the paper's Table 2 feature subset.
func PaperFeatures() FeatureMask { return features.PaperMask() }

// DefaultFeatures returns this reproduction's default subset: Table 2
// plus the two features our genetic algorithm selects on the modeled
// machines (see features.DefaultMask).
func DefaultFeatures() FeatureMask { return features.DefaultMask() }

// AllFeatures returns the full 76-feature catalog mask.
func AllFeatures() FeatureMask { return features.AllMask() }

// SelectFeatures runs the §4.2 genetic algorithm on a (training)
// profile, scoring masks by max(average error across the named
// targets) x K.
func SelectFeatures(p *Profile, opts GAOptions, targetNames ...string) (*GAResult, error) {
	fitness, err := p.FeatureFitness(targetNames...)
	if err != nil {
		return nil, err
	}
	return ga.Run(fitness, opts)
}

// PolySuite returns the 18 PolyBench-like extension kernels (see
// internal/suites/poly).
func PolySuite() []*Program { return poly.Suite() }

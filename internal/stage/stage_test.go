package stage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyDeterministic(t *testing.T) {
	build := func() Key {
		return NewKey("profile", 1).
			Str("nr").Strs([]string{"a", "b"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc")).Key()
	}
	if build() != build() {
		t.Fatal("identical builder sequences produced different keys")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := func() *KeyBuilder {
		return NewKey("profile", 1).
			Str("nr").Strs([]string{"a", "b"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc"))
	}
	ref := base().Key()
	variants := map[string]Key{
		"stage name": NewKey("cluster", 1).
			Str("nr").Strs([]string{"a", "b"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc")).Key(),
		"stage version": NewKey("profile", 2).
			Str("nr").Strs([]string{"a", "b"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc")).Key(),
		"string": NewKey("profile", 1).
			Str("nas").Strs([]string{"a", "b"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc")).Key(),
		"string slice order": NewKey("profile", 1).
			Str("nr").Strs([]string{"b", "a"}).Int(-3).Uint64(7).
			Float(0.25).Bool(true).Upstream(Key("abc")).Key(),
		"int":          base().Int(4).Key(),
		"uint64":       base().Uint64(8).Key(),
		"float":        base().Float(0.5).Key(),
		"bool":         base().Bool(false).Key(),
		"upstream key": base().Upstream(Key("abd")).Key(),
	}
	seen := map[Key]string{ref: "reference"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s variant collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyBoundaryCollisions pins the length-prefix framing: adjacent
// fields must not collide by concatenation, and a string slice must not
// collide with the same bytes split differently.
func TestKeyBoundaryCollisions(t *testing.T) {
	if a, b := NewKey("s", 1).Str("ab").Str("c").Key(), NewKey("s", 1).Str("a").Str("bc").Key(); a == b {
		t.Error(`Str("ab")+Str("c") collides with Str("a")+Str("bc")`)
	}
	if a, b := NewKey("s", 1).Strs([]string{"ab", "c"}).Key(), NewKey("s", 1).Strs([]string{"a", "bc"}).Key(); a == b {
		t.Error(`Strs{"ab","c"} collides with Strs{"a","bc"}`)
	}
	if a, b := NewKey("s", 1).Strs(nil).Str("x").Key(), NewKey("s", 1).Strs([]string{"x"}).Key(); a == b {
		t.Error("empty Strs followed by Str collides with one-element Strs")
	}
	if a, b := NewKey("s", 1).Str("\x00").Key(), NewKey("s", 1).Uint64(0).Key(); a == b {
		t.Error("type tags do not separate Str from Uint64")
	}
}

func testKey(i int) Key {
	return NewKey("test", 1).Int(i).Key()
}

func TestStoreResolveMemoizes(t *testing.T) {
	s := NewStore(4, "")
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		return "artifact", nil
	}
	ctx := context.Background()
	v, out, err := s.Resolve(ctx, "test", testKey(1), nil, compute)
	if err != nil || v != "artifact" {
		t.Fatalf("first resolve: v=%v err=%v", v, err)
	}
	if out.Cached {
		t.Error("first resolve reported Cached")
	}
	v, out, err = s.Resolve(ctx, "test", testKey(1), nil, compute)
	if err != nil || v != "artifact" {
		t.Fatalf("second resolve: v=%v err=%v", v, err)
	}
	if !out.Cached || out.Disk {
		t.Errorf("second resolve outcome = %+v, want memory hit", out)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Total.Hits != 1 || st.Total.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st.Total)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2, "")
	ctx := context.Background()
	resolve := func(i int) {
		t.Helper()
		if _, _, err := s.Resolve(ctx, "test", testKey(i), nil, func(context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	resolve(1)
	resolve(2)
	resolve(1) // touch 1 so 2 is the LRU victim
	resolve(3) // evicts 2
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("key 2 survived eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Errorf("key %d missing after eviction round", i)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStorePutReplacesAndEvicts(t *testing.T) {
	s := NewStore(2, "")
	s.Put(testKey(1), "old")
	s.Put(testKey(1), "new")
	if v, _ := s.Get(testKey(1)); v != "new" {
		t.Errorf("Get after replacing Put = %v, want new", v)
	}
	s.Put(testKey(2), "b")
	s.Put(testKey(3), "c") // evicts key 1 (least recently used)
	if _, ok := s.Get(testKey(1)); ok {
		t.Error("Put did not evict beyond capacity")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore(4, "")
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		return calls, nil
	}
	if _, _, err := s.Resolve(ctx, "test", testKey(1), nil, compute); err != nil {
		t.Fatal(err)
	}
	s.Delete(testKey(1))
	s.Delete(testKey(1)) // deleting an absent key is a no-op
	v, out, err := s.Resolve(ctx, "test", testKey(1), nil, compute)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("resolve after Delete still served from cache")
	}
	if v != 2 || calls != 2 {
		t.Errorf("v=%v calls=%d, want recompute after Delete", v, calls)
	}
}

func TestStoreFailedComputeRetries(t *testing.T) {
	s := NewStore(4, "")
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	if _, _, err := s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
		calls++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, out, err := s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
		calls++
		return "ok", nil
	})
	if err != nil || v != "ok" || out.Cached {
		t.Errorf("retry after failure: v=%v out=%+v err=%v", v, out, err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
}

func TestStoreCanceledContext(t *testing.T) {
	s := NewStore(4, "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
		t.Error("compute ran under canceled context")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStoreSingleflight pins the coalescing contract under the race
// detector: many concurrent resolves of one key run compute exactly
// once and all observe the same artifact.
func TestStoreSingleflight(t *testing.T) {
	s := NewStore(4, "")
	ctx := context.Background()
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	vals := make([]any, waiters)
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], _, errs[0] = s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return "shared", nil
		})
	}()
	<-started // the flight is in progress; every later resolve must join it
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
				calls.Add(1)
				return "rogue", nil
			})
		}(i)
	}
	// Let the joiners enqueue, then finish the flight. Joiners that have
	// not reached the store yet will land as plain memory hits — either
	// way compute must run exactly once.
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || vals[i] != "shared" {
			t.Fatalf("waiter %d: v=%v err=%v", i, vals[i], errs[i])
		}
	}
	st := s.Stats()
	if st.Total.Misses != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss", st.Total)
	}
	if st.Total.Hits+st.Total.Joined != waiters-1 {
		t.Errorf("stats = %+v, want %d hits+joined", st.Total, waiters-1)
	}
}

// TestStoreCoalescedWaiterHonorsOwnContext pins that a joiner whose
// context expires gives up alone without aborting the computing caller.
func TestStoreCoalescedWaiterHonorsOwnContext(t *testing.T) {
	s := NewStore(4, "")
	started := make(chan struct{})
	release := make(chan struct{})
	computeDone := make(chan error, 1)
	go func() {
		_, _, err := s.Resolve(context.Background(), "test", testKey(1), nil, func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
		computeDone <- err
	}()
	<-started
	joinCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Resolve(joinCtx, "test", testKey(1), nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled joiner err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-computeDone; err != nil {
		t.Fatalf("computing caller failed after joiner canceled: %v", err)
	}
	if v, ok := s.Get(testKey(1)); !ok || v != "slow" {
		t.Errorf("artifact after flight = %v, %v; want slow, true", v, ok)
	}
}

// TestStoreResolvePanicSafety pins that a panicking compute does not
// wedge its key: the panic propagates to the computing caller, a
// coalesced waiter receives an error instead of blocking forever, and
// a later Resolve of the same key runs a fresh compute.
func TestStoreResolvePanicSafety(t *testing.T) {
	s := NewStore(4, "")
	ctx := context.Background()
	entered := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered

	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := s.Resolve(ctx, "test", testKey(1), nil, func(context.Context) (any, error) {
			return "rogue", nil
		})
		waiterErr <- err
	}()
	// Wait until the second resolve has actually joined the flight, so
	// it exercises the coalesced-waiter path, then let compute panic.
	for s.Stats().Total.Joined == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	if r := <-panicked; r == nil {
		t.Fatal("compute panic did not propagate to the computing caller")
	}
	if err := <-waiterErr; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("coalesced waiter err = %v, want a compute-panicked error", err)
	}

	// The key must not be wedged: a fresh Resolve computes normally.
	retryCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	v, out, err := s.Resolve(retryCtx, "test", testKey(1), nil, func(context.Context) (any, error) {
		return "recovered", nil
	})
	if err != nil || v != "recovered" || out.Cached {
		t.Fatalf("resolve after panic: v=%v out=%+v err=%v, want fresh compute", v, out, err)
	}
}

// testCodec persists string artifacts as plain text files.
type testCodec struct {
	name    string
	persist bool
}

func (c testCodec) Filename() string { return c.name }

func (c testCodec) Encode(w io.Writer, v any) error {
	_, err := fmt.Fprint(w, v)
	return err
}

func (c testCodec) Decode(r io.Reader) (any, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, errors.New("empty artifact")
	}
	return string(b), nil
}

func (c testCodec) Persist(v any) bool { return c.persist }

func TestStoreDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		return "persisted", nil
	}

	cold := NewStore(4, dir)
	if _, out, err := cold.Resolve(ctx, "test", testKey(1), codec, compute); err != nil || out.Cached {
		t.Fatalf("cold resolve: out=%+v err=%v", out, err)
	}
	if st := cold.Stats(); st.Total.DiskWrites != 1 {
		t.Errorf("cold stats = %+v, want 1 disk write", st.Total)
	}

	// A fresh store over the same directory — a process restart — must
	// satisfy the miss from disk without recomputing.
	warm := NewStore(4, dir)
	v, out, err := warm.Resolve(ctx, "test", testKey(1), codec, compute)
	if err != nil || v != "persisted" {
		t.Fatalf("warm resolve: v=%v err=%v", v, err)
	}
	if !out.Cached || !out.Disk {
		t.Errorf("warm outcome = %+v, want disk hit", out)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times across restart, want 1", calls)
	}
	if st := warm.Stats(); st.Total.DiskHits != 1 {
		t.Errorf("warm stats = %+v, want 1 disk hit", st.Total)
	}
}

func TestStoreCorruptDiskArtifactRebuilds(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: true}
	if err := os.WriteFile(filepath.Join(dir, "art.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(4, dir)
	v, out, err := s.Resolve(context.Background(), "test", testKey(1), codec, func(context.Context) (any, error) {
		return "rebuilt", nil
	})
	if err != nil || v != "rebuilt" {
		t.Fatalf("resolve over corrupt artifact: v=%v err=%v", v, err)
	}
	if out.Cached || out.Disk {
		t.Errorf("outcome = %+v, want fresh compute", out)
	}
	// The rebuild republished a good artifact, so a fresh store serves
	// it from the disk tier.
	v, out, err = NewStore(4, dir).Resolve(context.Background(), "test", testKey(1), codec, func(context.Context) (any, error) {
		return nil, errors.New("disk tier must serve the rebuilt artifact")
	})
	if err != nil || !out.Disk || v != "rebuilt" {
		t.Errorf("disk after rebuild: v=%v out=%+v err=%v; want rebuilt artifact", v, out, err)
	}
}

// legacyCodec is testCodec plus a legacy fallback name.
type legacyCodec struct {
	testCodec
	legacy string
}

func (c legacyCodec) LegacyFilename() string { return c.legacy }

// TestStoreLegacyFilenameFallback pins the compatibility contract: the
// keyed name is probed first, a declared legacy name is read as a
// fallback, and fresh artifacts are only ever written under the keyed
// name.
func TestStoreLegacyFilenameFallback(t *testing.T) {
	dir := t.TempDir()
	codec := legacyCodec{testCodec: testCodec{name: "art-keyed.txt", persist: true}, legacy: "art.txt"}
	ctx := context.Background()

	if err := os.WriteFile(filepath.Join(dir, "art.txt"), []byte("legacy"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(4, dir)
	v, out, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		t.Error("compute ran despite a readable legacy artifact")
		return nil, nil
	})
	if err != nil || v != "legacy" || !out.Disk {
		t.Fatalf("legacy fallback: v=%v out=%+v err=%v, want disk hit", v, out, err)
	}

	// With a keyed artifact present, it wins over the legacy file.
	if err := os.WriteFile(filepath.Join(dir, "art-keyed.txt"), []byte("keyed"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, out, err = NewStore(4, dir).Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return nil, errors.New("unreachable")
	})
	if err != nil || v != "keyed" || !out.Disk {
		t.Fatalf("keyed probe: v=%v out=%+v err=%v, want keyed disk hit", v, out, err)
	}

	// A fresh compute writes only the keyed name, never the legacy one.
	dir2 := t.TempDir()
	if _, _, err := NewStore(4, dir2).Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return "fresh", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "art-keyed.txt")); err != nil {
		t.Errorf("keyed artifact not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "art.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("fresh artifact written under the legacy name (stat err %v)", err)
	}
}

func TestStoreNoPersistStaysOffDisk(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "art.txt", persist: false}
	s := NewStore(4, dir)
	if _, _, err := s.Resolve(context.Background(), "test", testKey(1), codec, func(context.Context) (any, error) {
		return "degraded", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "art.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("non-persistable artifact reached disk (stat err = %v)", err)
	}
}

// TestSaveDiskBytesIdentical pins the pooled-buffer persist path
// byte-identical to encoding straight through the codec: the on-disk
// artifact is exactly what codec.Encode produces wrapped in one
// verifiable frame, no staging residue.
func TestSaveDiskBytesIdentical(t *testing.T) {
	dir := t.TempDir()
	codec := testCodec{name: "ident.txt", persist: true}
	ctx := context.Background()
	const payload = "artifact-bytes-0123456789"
	s := NewStore(4, dir)
	if _, _, err := s.Resolve(ctx, "test", testKey(1), codec, func(context.Context) (any, error) {
		return payload, nil
	}); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "ident.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := codec.Encode(&direct, payload); err != nil {
		t.Fatal(err)
	}
	got, framed, err := unframe(onDisk)
	if err != nil || !framed {
		t.Fatalf("persisted artifact not framed (framed=%v, err=%v)", framed, err)
	}
	if !bytes.Equal(got, direct.Bytes()) {
		t.Errorf("framed payload %q != direct encode %q", got, direct.Bytes())
	}
}

// TestPooledBuffersDoNotLeakAcrossArtifacts drives many differently
// sized artifacts through persist and disk-decode in sequence. A
// buffer reuse bug (missing Reset, or a codec retaining pool memory)
// would surface as one artifact's bytes bleeding into another's.
func TestPooledBuffersDoNotLeakAcrossArtifacts(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	payloads := []string{
		strings.Repeat("long-first-artifact|", 50),
		"tiny",
		strings.Repeat("x", 333),
		"another-small-one",
	}
	for i, payload := range payloads {
		codec := testCodec{name: fmt.Sprintf("leak-%d.txt", i), persist: true}
		s := NewStore(4, dir)
		p := payload
		if _, _, err := s.Resolve(ctx, "test", testKey(100+i), codec, func(context.Context) (any, error) {
			return p, nil
		}); err != nil {
			t.Fatal(err)
		}
		// A fresh store must round-trip the value through the pooled
		// decode path, not memory.
		fresh := NewStore(4, dir)
		v, out, err := fresh.Resolve(ctx, "test", testKey(100+i), codec, func(context.Context) (any, error) {
			return nil, errors.New("decode path must not recompute")
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Disk {
			t.Fatalf("artifact %d not served from disk: %+v", i, out)
		}
		if v.(string) != payload {
			t.Errorf("artifact %d decoded to %q, want %q", i, v, payload)
		}
	}
}

package predict

import (
	"math"
	"testing"
	"testing/quick"

	"fgbs/internal/rng"
)

// randomModel builds a valid model with n codelets in k clusters.
func randomModel(r *rng.RNG, n, k int) (*Model, []float64, error) {
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 0.1 + r.Float64()*10
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = r.Intn(k)
	}
	// Ensure every cluster is populated and pick its first member as
	// representative.
	for c := 0; c < k; c++ {
		labels[c%n] = c
	}
	reps := make([]int, k)
	for c := range reps {
		reps[c] = -1
		for i, l := range labels {
			if l == c {
				reps[c] = i
				break
			}
		}
	}
	m, err := NewModel(ref, labels, reps)
	return m, ref, err
}

// Property: prediction is linear in the representative measurements:
// Predict(a*x + b*y) = a*Predict(x) + b*Predict(y).
func TestPredictLinearity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(n)
		m, _, err := randomModel(r, n, k)
		if err != nil {
			return false
		}
		x := make([]float64, k)
		y := make([]float64, k)
		for i := range x {
			x[i] = 0.1 + r.Float64()
			y[i] = 0.1 + r.Float64()
		}
		a, b := 2.0, 3.0
		combo := make([]float64, k)
		for i := range combo {
			combo[i] = a*x[i] + b*y[i]
		}
		px, err1 := m.Predict(x)
		py, err2 := m.Predict(y)
		pc, err3 := m.Predict(combo)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range pc {
			if math.Abs(pc[i]-(a*px[i]+b*py[i])) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scaling every reference time by a constant leaves the
// predictions unchanged (the model depends only on reference ratios).
func TestPredictRefScaleInvariance(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(15)
		k := 1 + r.Intn(n)
		m1, ref, err := randomModel(r, n, k)
		if err != nil {
			return false
		}
		scaled := make([]float64, n)
		for i := range ref {
			scaled[i] = ref[i] * 7.5
		}
		// Recover labels/reps from the first model's matrix structure.
		m2, err := NewModel(scaled, m1.labels, m1.reps)
		if err != nil {
			return false
		}
		tar := make([]float64, k)
		for i := range tar {
			tar[i] = 0.1 + r.Float64()
		}
		p1, _ := m1.Predict(tar)
		p2, _ := m2.Predict(tar)
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-9*math.Abs(p1[i])+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: if every codelet in a cluster genuinely shares the
// representative's speedup, the prediction is exact.
func TestPredictExactUnderAssumption(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		k := 1 + r.Intn(n)
		m, ref, err := randomModel(r, n, k)
		if err != nil {
			return false
		}
		speedups := make([]float64, k)
		for c := range speedups {
			speedups[c] = 0.2 + r.Float64()*3
		}
		actual := make([]float64, n)
		for i := range actual {
			actual[i] = ref[i] / speedups[m.labels[i]]
		}
		repTar := make([]float64, k)
		for c, rep := range m.reps {
			repTar[c] = actual[rep]
		}
		pred, err := m.Predict(repTar)
		if err != nil {
			return false
		}
		errs := Errors(pred, actual)
		for _, e := range errs {
			if e > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the reduction breakdown factorizes exactly:
// Total = InvocationFactor x ClusteringFactor.
func TestReductionFactorization(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		full := 1 + r.Float64()*1000
		reduced := 0.01 + r.Float64()*full
		reps := 0.001 + r.Float64()*reduced
		b := Reduction(full, reduced, reps)
		return math.Abs(b.Total-b.InvocationFactor*b.ClusteringFactor) < 1e-9*b.Total
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: app times scale linearly with per-codelet times.
func TestAppTimesLinear(t *testing.T) {
	app := &App{Codelets: []int{0, 1, 2}, Invocations: []int{3, 5, 7}, UncoveredFraction: 0.1}
	base := []float64{1, 2, 3}
	scaled := []float64{2, 4, 6}
	if math.Abs(app.AppTimes(scaled)-2*app.AppTimes(base)) > 1e-12 {
		t.Error("AppTimes not linear")
	}
}

// Package rng provides a small, deterministic pseudo-random number
// generator used throughout fgbs.
//
// Every stochastic component of the pipeline (genetic algorithm, random
// clustering baselines, synthetic dataset initialization) draws from this
// generator so that experiments are exactly reproducible from a seed,
// mirroring the reproducible IPython notebook the paper ships.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
// statistically solid 64-bit generator with a one-word state that supports
// cheap stream splitting.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of r's
// continued output. It advances r once.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection method.
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int64(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform (polar form avoided to keep consumption deterministic at two
// uniforms per call).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	//fgbs:allow floatcompare exact-zero rejection: log(0) must be avoided, any nonzero value is fine
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

package extract

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
	"fgbs/internal/sim"
)

func triad(n int64) (*ir.Program, *ir.Codelet) {
	p := ir.NewProgram("t")
	p.SetParam("n", n)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	c := &ir.Codelet{
		Name: "copyadd", Invocations: 200,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Add(p.LoadE("b", ir.V("i")), ir.CF(1))},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		panic(err)
	}
	return p, c
}

func TestReducedInvocationsRule(t *testing.T) {
	// Long invocation: floor of 10.
	if got := ReducedInvocations(MinBenchSeconds); got != MinInvocations {
		t.Errorf("long codelet invocations = %d, want %d", got, MinInvocations)
	}
	// Short invocation: enough to fill the time floor.
	short := MinBenchSeconds / 100
	if got := ReducedInvocations(short); got != 100 {
		t.Errorf("short codelet invocations = %d, want 100", got)
	}
	// Degenerate zero time.
	if got := ReducedInvocations(0); got != MinInvocations {
		t.Errorf("zero-time invocations = %d", got)
	}
}

func TestIllBehaved(t *testing.T) {
	if IllBehaved(1.05, 1.0) {
		t.Error("5% gap flagged ill-behaved")
	}
	if !IllBehaved(1.2, 1.0) {
		t.Error("20% gap not flagged")
	}
	if !IllBehaved(0.5, 1.0) {
		t.Error("fast standalone not flagged")
	}
	if !IllBehaved(1, 0) {
		t.Error("zero in-app time not flagged")
	}
}

func TestExtractProducesMicrobenchmark(t *testing.T) {
	p, c := triad(200000)
	mb, err := Extract(p, c, arch.Reference(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Invocations < MinInvocations {
		t.Errorf("invocations = %d", mb.Invocations)
	}
	if mb.BenchSeconds < MinBenchSeconds*0.99 {
		t.Errorf("bench time %.3g below the floor", mb.BenchSeconds)
	}
	if mb.DumpBytes != 2*200000*8 {
		t.Errorf("dump bytes = %d", mb.DumpBytes)
	}
	if mb.Measurement.Mode != sim.ModeStandalone {
		t.Error("extraction did not measure standalone")
	}
}

func TestExtractionReductionVsOriginal(t *testing.T) {
	// The whole point: benchmarking the microbenchmark is much cheaper
	// than the codelet's share of the application run.
	p, c := triad(200000)
	m := arch.Reference()
	mb, err := Extract(p, c, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inApp, err := sim.Measure(p, c, sim.Options{Machine: m, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	originalCost := float64(c.Invocations) * inApp.Seconds
	if mb.BenchSeconds >= originalCost/2 {
		t.Errorf("no benchmarking reduction: micro %.3g vs original %.3g", mb.BenchSeconds, originalCost)
	}
}

func TestWellBehavedStreamingCodelet(t *testing.T) {
	p, c := triad(200000) // working set streams past every cache
	m := arch.Reference()
	mb, err := Extract(p, c, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inApp, err := sim.Measure(p, c, sim.Options{Machine: m, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	if IllBehaved(mb.Measurement.Seconds, inApp.Seconds) {
		t.Errorf("streaming codelet ill-behaved: standalone %.4g vs in-app %.4g",
			mb.Measurement.Seconds, inApp.Seconds)
	}
}

func TestContextSensitiveDetectedIllBehaved(t *testing.T) {
	p, c := triad(200000)
	c.ContextSensitive = true
	m := arch.Reference()
	mb, err := Extract(p, c, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inApp, err := sim.Measure(p, c, sim.Options{Machine: m, Mode: sim.ModeInApp, Seed: 1, ProbeCycles: -1, NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !IllBehaved(mb.Measurement.Seconds, inApp.Seconds) {
		t.Error("context-sensitive codelet passed the screening")
	}
}

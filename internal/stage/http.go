package stage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ArtifactPathPrefix is the peer-fetch endpoint's URL prefix: a peer
// fgbsd serves GET <prefix><key> with the artifact's framed bytes (404
// on miss). The server layer routes it; HTTPBackend fetches from it.
const ArtifactPathPrefix = "/v1/artifacts/"

// maxArtifactBytes bounds one fetched artifact. Profile artifacts run
// to megabytes; a peer handing back gigabytes is a malfunction, not a
// bigger artifact.
const maxArtifactBytes = 1 << 30

// HTTPBackend is the remote byte tier: it fetches artifacts from peer
// fgbsd daemons' /v1/artifacts/{key} endpoints before the chain falls
// through to recomputing. The tier is read-only (Put and Delete are
// no-ops) and carries no state of its own; in a standard chain the
// Framed decorator verifies every response's integrity frame at this
// node and the Breakered decorator degrades the tier when peers
// misbehave, so a flapping peer costs probes, not correctness.
type HTTPBackend struct {
	peers  []string
	client *http.Client
}

// NewHTTPBackend builds a peer tier fetching from peers (base URLs,
// probed in order). client nil means http.DefaultClient; callers
// cancel or bound fetches through the Get context.
func NewHTTPBackend(peers []string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = http.DefaultClient
	}
	trimmed := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
			trimmed = append(trimmed, p)
		}
	}
	return &HTTPBackend{peers: trimmed, client: client}
}

// Name identifies the tier.
func (b *HTTPBackend) Name() string { return TierPeer }

// Remote marks the tier as peer-served so FetchFramed never answers a
// peer's fetch from another peer (no fetch loops between daemons).
func (b *HTTPBackend) Remote() bool { return true }

// artifactURL builds the peer-fetch URL for key on peer. The request
// path embeds the key's canonical hex form verbatim — a pure function
// of the content address, which is what keeps peer fetches
// deterministic (fgbsvet's keypurity check treats Key.String-derived
// paths as clean and flags anything else).
func (b *HTTPBackend) artifactURL(peer string, key Key) string {
	return peer + ArtifactPathPrefix + key.String()
}

// Get fetches ref's framed bytes from the first peer that has them. A
// 404 means that peer does not hold the artifact and the next one is
// probed; transport failures and non-200 statuses are I/O errors for
// the breaker (the first such error is returned so the breaker sees
// the root cause, but later peers are still tried first).
func (b *HTTPBackend) Get(ctx context.Context, ref Ref) ([]byte, error) {
	var firstErr error
	for _, peer := range b.peers {
		data, err := b.fetch(ctx, peer, ref.Key)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, ErrNotFound
}

// fetch performs one peer request.
func (b *HTTPBackend) fetch(ctx context.Context, peer string, key Key) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.artifactURL(peer, key), nil)
	if err != nil {
		return nil, fmt.Errorf("stage: peer %s: %w", peer, err)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("stage: peer %s: %w", peer, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
		if err != nil {
			return nil, fmt.Errorf("stage: peer %s: reading artifact: %w", peer, err)
		}
		if len(data) > maxArtifactBytes {
			return nil, fmt.Errorf("stage: peer %s: artifact exceeds %d bytes", peer, maxArtifactBytes)
		}
		return data, nil
	case http.StatusNotFound:
		// Drain so the connection can be reused for the next key.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, ErrNotFound
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("stage: peer %s: status %d fetching artifact", peer, resp.StatusCode)
	}
}

// Put is a no-op: the tier is read-only (peers pull, nobody pushes).
func (b *HTTPBackend) Put(ctx context.Context, ref Ref, data []byte) (bool, error) {
	return false, nil
}

// Delete is a no-op for the same reason.
func (b *HTTPBackend) Delete(ctx context.Context, ref Ref) error { return nil }

// Len is unknowable for a remote tier.
func (b *HTTPBackend) Len() int { return 0 }

// Stats reports the tier's base row; traffic counters come from the
// decorators.
func (b *HTTPBackend) Stats() TierStats {
	return TierStats{State: DiskOK}
}

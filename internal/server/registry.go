package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fgbs/internal/ir"
	"fgbs/internal/pipeline"
	"fgbs/internal/suites"
)

// registry owns one lazily-built Profile per suite. Profiling is the
// expensive step — seconds of simulation per suite — so the registry
// coalesces concurrent demand singleflight-style: the first request
// for a suite starts exactly one build, every later request (while it
// runs) waits on the same entry, and once built the profile is shared
// read-only forever (see pipeline.Profile's immutability contract).
//
// With a cache directory configured, builds are bypassed by loading a
// previously saved profile (pipeline.ReadProfile), and fresh builds
// are saved back — the daemon's restart-survival analogue of the CLI's
// -cache flag.
type registry struct {
	programs func(string) ([]*ir.Program, error)
	seed     uint64
	workers  int
	cacheDir string

	// ctx is the registry's lifetime: builds run detached from any
	// single request (a canceled requester must not kill the build the
	// coalesced waiters share) but die with the server.
	ctx  context.Context
	stop context.CancelFunc

	mu      sync.Mutex
	entries map[string]*regEntry // guarded by mu

	builds    atomic.Int64 // profiling runs started
	coalesced atomic.Int64 // requests that joined an in-flight build
	diskLoads atomic.Int64 // builds satisfied from the cache directory
	building  atomic.Int64 // builds currently in flight
}

// regEntry is one suite's build slot. ready is closed when prof/err
// are final.
type regEntry struct {
	ready chan struct{}
	prof  *pipeline.Profile
	err   error
}

func newRegistry(cfg Config) *registry {
	programs := cfg.Programs
	if programs == nil {
		programs = suites.Programs
	}
	ctx, stop := context.WithCancel(context.Background())
	return &registry{
		programs: programs,
		seed:     cfg.Seed,
		workers:  cfg.Workers,
		cacheDir: cfg.ProfileDir,
		ctx:      ctx,
		stop:     stop,
		entries:  make(map[string]*regEntry),
	}
}

// Close cancels in-flight builds. Waiters receive the cancellation
// error.
func (r *registry) Close() { r.stop() }

// Profile returns the suite's shared profile, building it at most
// once. ctx bounds this caller's wait, not the build itself.
func (r *registry) Profile(ctx context.Context, suite string) (*pipeline.Profile, error) {
	r.mu.Lock()
	e, ok := r.entries[suite]
	if !ok {
		e = &regEntry{ready: make(chan struct{})}
		r.entries[suite] = e
		r.mu.Unlock()
		// Detached: the build must survive this requester giving up,
		// because coalesced waiters share its outcome.
		go r.build(suite, e)
	} else {
		r.mu.Unlock()
		select {
		case <-e.ready:
		default:
			r.coalesced.Add(1)
		}
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.prof, e.err
}

// build runs (or loads) the profile and publishes the outcome. On
// failure the entry is removed so a later request can retry — a
// transient error (say, an unwritable cache file) must not wedge the
// suite forever.
func (r *registry) build(suite string, e *regEntry) {
	r.builds.Add(1)
	r.building.Add(1)
	defer r.building.Add(-1)
	e.prof, e.err = r.buildProfile(suite)
	if e.err != nil {
		r.mu.Lock()
		delete(r.entries, suite)
		r.mu.Unlock()
	}
	close(e.ready)
}

func (r *registry) buildProfile(suite string) (*pipeline.Profile, error) {
	progs, err := r.programs(suite)
	if err != nil {
		return nil, err
	}
	if prof := r.loadCached(suite, progs); prof != nil {
		return prof, nil
	}
	prof, err := pipeline.NewProfileContext(r.ctx, progs, pipeline.Options{
		Seed: r.seed, Workers: r.workers,
	})
	if err != nil {
		return nil, fmt.Errorf("server: profiling %s: %w", suite, err)
	}
	r.saveCached(suite, prof)
	return prof, nil
}

func (r *registry) cachePath(suite string) string {
	return filepath.Join(r.cacheDir, suite+".json")
}

// loadCached returns the saved profile, or nil to trigger a fresh
// build (missing file, stale version, mismatched suite — all are
// rebuilt rather than surfaced, since the simulator can always
// regenerate them).
func (r *registry) loadCached(suite string, progs []*ir.Program) *pipeline.Profile {
	if r.cacheDir == "" {
		return nil
	}
	f, err := os.Open(r.cachePath(suite))
	if err != nil {
		return nil
	}
	defer f.Close()
	prof, err := pipeline.ReadProfile(f, progs)
	if err != nil {
		return nil
	}
	r.diskLoads.Add(1)
	return prof
}

// saveCached persists a freshly built profile; failures are ignored
// (the profile is already in memory, the disk copy is an optimization).
func (r *registry) saveCached(suite string, prof *pipeline.Profile) {
	if r.cacheDir == "" {
		return
	}
	if err := os.MkdirAll(r.cacheDir, 0o755); err != nil {
		return
	}
	tmp := r.cachePath(suite) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := prof.SaveJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, r.cachePath(suite))
}

// Loaded lists the suites with a ready profile (for /v1/suites).
func (r *registry) Loaded() map[string]*pipeline.Profile {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*pipeline.Profile)
	for name, e := range r.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				out[name] = e.prof
			}
		default:
		}
	}
	return out
}

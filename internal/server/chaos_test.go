package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/ir"
	"fgbs/internal/jobs"
	"fgbs/internal/measure"
	"fgbs/internal/sim"
)

// chaosSeed pins every injected fault schedule; the ci.sh chaos gate
// replays these tests with -race.
const chaosSeed = 20140215

func chaosSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// switchableMeasurer lets a test flip the measurement stack between
// faulty and clean mid-flight, the way a real lab recovers.
type switchableMeasurer struct {
	mu    sync.Mutex
	inner fault.Measurer // guarded by mu
}

func (s *switchableMeasurer) set(m fault.Measurer) {
	s.mu.Lock()
	s.inner = m
	s.mu.Unlock()
}

func (s *switchableMeasurer) Measure(ctx context.Context, p *ir.Program, c *ir.Codelet, opts sim.Options) (*sim.Measurement, error) {
	s.mu.Lock()
	m := s.inner
	s.mu.Unlock()
	return m.Measure(ctx, p, c, opts)
}

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Every chaos measurer here keeps the suite's small invocation counts
// (Invocations: -1): these tests assert breaker/staleness behavior,
// not measurement accuracy, and the 10-invocation floor would make
// each rebuild ~2.5x slower under -race on a single-core runner.

// brokenBeta injects a permanent failure for the beta_div codelet on
// every machine: the profile builds but is degraded.
func brokenBeta() fault.Measurer {
	return measure.New(fault.NewInjector(&fault.Profile{
		Seed:  chaosSeed,
		Rules: []fault.Rule{{Codelet: "beta_div", PermanentRate: 1}},
	}, nil), measure.Config{Invocations: -1, Sleep: chaosSleep})
}

// rawBody issues a POST and returns status, headers and decoded body.
func rawBody(t *testing.T, ts *httptest.Server, path, req string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("%s: decoding %q: %v", path, data, err)
	}
	return resp, m
}

// TestChaosBuildFailureOpensCircuit drives a suite whose builds fail
// outright: after BreakerThreshold consecutive failures requests fail
// fast with 503 + Retry-After instead of re-running the doomed build,
// and a half-open probe after the cooldown recovers once the fault
// clears.
func TestChaosBuildFailureOpensCircuit(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	var calls atomic.Int64
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs: func(name string) ([]*ir.Program, error) {
			calls.Add(1)
			if broken.Load() {
				return nil, fmt.Errorf("injected build outage")
			}
			return testPrograms(name)
		},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	defer s.Close()
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.breakers.now = clock.now
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const q = `{"suite":"tiny","k":2}`
	for i := 0; i < 2; i++ {
		resp, _ := rawBody(t, ts, "/v1/subset", q)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing build %d: status = %d, want 500", i, resp.StatusCode)
		}
	}
	// Threshold reached: the circuit is open, requests fail fast.
	resp, body := rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status = %d, want 503 (body %v)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open circuit response missing Retry-After")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("build attempts = %d, want 2 (fail-fast must not rebuild)", got)
	}

	var hz struct {
		OK       bool          `json:"ok"`
		Status   string        `json:"status"`
		Breakers []breakerInfo `json:"breakers"`
	}
	hresp := get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusServiceUnavailable || hz.OK || hz.Status != "degraded" {
		t.Errorf("healthz during outage = %d ok=%v status=%q, want 503 degraded", hresp.StatusCode, hz.OK, hz.Status)
	}
	foundOpen := false
	for _, bi := range hz.Breakers {
		if bi.Key == "suite:tiny" && bi.State == "open" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Errorf("healthz breakers = %+v, want suite:tiny open", hz.Breakers)
	}

	// Fix the fault and let the cooldown elapse: one probe rebuilds.
	broken.Store(false)
	clock.advance(11 * time.Second)
	resp, _ = rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery probe: status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Stale") != "" {
		t.Error("recovered response marked stale")
	}
	hresp = get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz after recovery = %d status=%q, want 200 ok", hresp.StatusCode, hz.Status)
	}
}

// TestChaosDegradedProfileServesStale breaks one codelet permanently:
// the suite still answers — degraded data beats no data — but every
// answer is marked "stale": true (plus X-Stale), is never cached, and
// healthz/metricz/suites surface the outage.
func TestChaosDegradedProfileServesStale(t *testing.T) {
	// Break beta_div on the Atom target only: the reference pipeline
	// stays intact (the codelet is clustered normally) but its Atom
	// measurements are lost, degrading the profile.
	inj := fault.NewInjector(&fault.Profile{
		Seed:  chaosSeed,
		Rules: []fault.Rule{{Machine: "Atom", Codelet: "beta_div", PermanentRate: 1}},
	}, nil)
	rob := measure.New(inj, measure.Config{Invocations: -1, Sleep: chaosSleep})
	s := New(Config{
		Seed:         1,
		SuiteNames:   []string{"tiny"},
		Programs:     testPrograms,
		Measurer:     rob,
		MeasureStats: func() measure.Stats { return rob.Stats() },
		FaultStats:   func() fault.Stats { return inj.Stats() },
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const q = `{"suite":"tiny","k":2}`
	for i := 0; i < 2; i++ {
		resp, body := rawBody(t, ts, "/v1/evaluate", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded evaluate %d: status = %d (body %v)", i, resp.StatusCode, body)
		}
		if body["stale"] != true {
			t.Errorf("degraded response %d missing \"stale\": true: %v", i, body)
		}
		if resp.Header.Get("X-Stale") != "true" {
			t.Errorf("degraded response %d missing X-Stale header", i)
		}
		// Stale answers must not be cached: recovery has to become
		// visible on the next request.
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Errorf("degraded response %d X-Cache = %q, want miss", i, got)
		}
	}
	resp, body := rawBody(t, ts, "/v1/select", q)
	if resp.StatusCode != http.StatusOK || body["stale"] != true {
		t.Errorf("select: status=%d stale=%v, want 200 true", resp.StatusCode, body["stale"])
	}

	var suites struct {
		Suites []suiteInfo `json:"suites"`
	}
	get(t, ts, "/v1/suites", &suites)
	if len(suites.Suites) != 1 || !suites.Suites[0].Degraded {
		t.Errorf("suites = %+v, want tiny degraded", suites.Suites)
	}

	var hz struct {
		Status   string        `json:"status"`
		Breakers []breakerInfo `json:"breakers"`
	}
	hresp := get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusServiceUnavailable || hz.Status != "degraded" {
		t.Errorf("healthz = %d status=%q, want 503 degraded", hresp.StatusCode, hz.Status)
	}
	keys := map[string]bool{}
	for _, bi := range hz.Breakers {
		keys[bi.Key] = bi.State != "closed"
	}
	// The whole suite plus exactly the measurement source that lost
	// data: the Atom target, nothing else.
	for _, want := range []string{"suite:tiny", "target:tiny/Atom"} {
		if !keys[want] {
			t.Errorf("breaker %q not open; have %+v", want, hz.Breakers)
		}
	}
	for _, healthy := range []string{"ref:tiny", "target:tiny/Core 2"} {
		if keys[healthy] {
			t.Errorf("breaker %q open despite healthy measurements; have %+v", healthy, hz.Breakers)
		}
	}

	var mz struct {
		Breakers struct {
			Open  int   `json:"open"`
			Trips int64 `json:"trips"`
		} `json:"breakers"`
		Registry struct {
			StaleServes int64 `json:"staleServes"`
		} `json:"registry"`
		Measure *measure.Stats `json:"measure"`
		Faults  *fault.Stats   `json:"faults"`
	}
	get(t, ts, "/metricz", &mz)
	if mz.Breakers.Open == 0 || mz.Breakers.Trips == 0 {
		t.Errorf("metricz breakers = %+v, want open circuits and trips", mz.Breakers)
	}
	if mz.Registry.StaleServes == 0 {
		t.Error("metricz staleServes = 0, want > 0")
	}
	if mz.Measure == nil || mz.Measure.Permanents == 0 {
		t.Errorf("metricz measure = %+v, want permanent failures counted", mz.Measure)
	}
	if mz.Faults == nil || mz.Faults.Permanents == 0 {
		t.Errorf("metricz faults = %+v, want injected permanents counted", mz.Faults)
	}
}

// TestChaosRecoveryProbeRestoresFreshResults heals the fault behind a
// degraded profile: before the cooldown responses stay stale without
// re-profiling; after it, one half-open probe rebuilds cleanly and the
// stale marking disappears.
func TestChaosRecoveryProbeRestoresFreshResults(t *testing.T) {
	sw := &switchableMeasurer{inner: brokenBeta()}
	s := New(Config{
		Seed:            1,
		SuiteNames:      []string{"tiny"},
		Programs:        testPrograms,
		Measurer:        sw,
		BreakerCooldown: 10 * time.Second,
	})
	defer s.Close()
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.breakers.now = clock.now
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const q = `{"suite":"tiny","k":2}`
	resp, _ := rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("degraded build: status=%d stale=%q", resp.StatusCode, resp.Header.Get("X-Stale"))
	}

	// The faults clear, but inside the cooldown nothing re-profiles.
	sw.set(measure.New(fault.Sim{}, measure.Config{Invocations: -1, Sleep: chaosSleep}))
	resp, _ = rawBody(t, ts, "/v1/subset", q)
	if resp.Header.Get("X-Stale") != "true" {
		t.Error("response inside cooldown lost its stale marking")
	}
	if got := s.registry.builds.Load(); got != 1 {
		t.Fatalf("builds inside cooldown = %d, want 1", got)
	}

	clock.advance(11 * time.Second)
	resp, body := rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe rebuild: status = %d (body %v)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Stale") != "" || body["stale"] != nil {
		t.Error("recovered response still marked stale")
	}
	if got := s.registry.builds.Load(); got != 2 {
		t.Errorf("builds after probe = %d, want 2", got)
	}
	var hz struct {
		Status string `json:"status"`
	}
	hresp := get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz after recovery = %d status=%q", hresp.StatusCode, hz.Status)
	}
}

// TestChaosFailedProbeFallsBackToLastGood makes the recovery probe
// itself fail: the retained last-good (degraded) profile keeps
// answering, marked stale, instead of turning a partial outage into a
// total one.
func TestChaosFailedProbeFallsBackToLastGood(t *testing.T) {
	sw := &switchableMeasurer{inner: brokenBeta()}
	var buildBroken atomic.Bool
	s := New(Config{
		Seed:       1,
		SuiteNames: []string{"tiny"},
		Programs: func(name string) ([]*ir.Program, error) {
			if buildBroken.Load() {
				return nil, fmt.Errorf("injected build outage")
			}
			return testPrograms(name)
		},
		Measurer:        sw,
		BreakerCooldown: 10 * time.Second,
	})
	defer s.Close()
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.breakers.now = clock.now
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const q = `{"suite":"tiny","k":2}`
	resp, _ := rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("degraded build: status=%d stale=%q", resp.StatusCode, resp.Header.Get("X-Stale"))
	}

	// The probe rebuild fails outright; the last-good degraded profile
	// still answers.
	buildBroken.Store(true)
	clock.advance(11 * time.Second)
	resp, _ = rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("failed probe fallback: status=%d stale=%q, want 200 stale", resp.StatusCode, resp.Header.Get("X-Stale"))
	}
	// And keeps answering fast while the circuit stays open.
	resp, _ = rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Stale") != "true" {
		t.Fatalf("open-circuit fallback: status=%d stale=%q, want 200 stale", resp.StatusCode, resp.Header.Get("X-Stale"))
	}

	// Everything heals: the next probe rebuilds cleanly.
	buildBroken.Store(false)
	sw.set(measure.New(fault.Sim{}, measure.Config{Invocations: -1, Sleep: chaosSleep}))
	clock.advance(11 * time.Second)
	resp, body := rawBody(t, ts, "/v1/subset", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed probe: status = %d (body %v)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Stale") != "" {
		t.Error("healed response still stale")
	}
}

// TestChaosHealthzReportsJobSaturation fills the experiment-job queue:
// healthz flips to 503/degraded with saturated=true, and recovers when
// the queue drains.
func TestChaosHealthzReportsJobSaturation(t *testing.T) {
	s := New(Config{
		Seed:          1,
		SuiteNames:    []string{"tiny"},
		Programs:      testPrograms,
		JobWorkers:    1,
		JobQueueDepth: 1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	running := make(chan struct{})
	blocker := func(ctx context.Context, pr *jobs.Progress) (any, error) {
		select {
		case running <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "done", nil
	}
	j1, err := s.jobs.Submit("sweep", blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-running // the worker is busy; the next submit stays queued
	j2, err := s.jobs.Submit("sweep", blocker)
	if err != nil {
		t.Fatal(err)
	}

	var hz struct {
		Status   string `json:"status"`
		JobQueue struct {
			Queued    int64 `json:"queued"`
			Saturated bool  `json:"saturated"`
		} `json:"jobQueue"`
	}
	hresp := get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusServiceUnavailable || hz.Status != "degraded" || !hz.JobQueue.Saturated {
		t.Errorf("saturated healthz = %d status=%q jobQueue=%+v, want 503 degraded saturated",
			hresp.StatusCode, hz.Status, hz.JobQueue)
	}

	close(release)
	<-j1.Done()
	<-j2.Done()
	hresp = get(t, ts, "/healthz", &hz)
	if hresp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.JobQueue.Saturated {
		t.Errorf("drained healthz = %d status=%q jobQueue=%+v, want 200 ok", hresp.StatusCode, hz.Status, hz.JobQueue)
	}
}

// Module loading: a stdlib-only substitute for golang.org/x/tools'
// packages.Load. The repository keeps go.mod dependency-free, so
// fgbsvet parses every package itself with go/parser and type-checks
// in dependency order with go/types. Standard-library imports are
// resolved by the go/importer source importer (which type-checks
// GOROOT sources and needs no pre-built export data); module-local
// imports are resolved from the packages already checked earlier in
// the topological order.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was read from.
	Dir string
	// Fset resolves token positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's facts about Files.
	Info *types.Info

	allows    map[allowKey][]allowDirective
	badAllows []Diagnostic

	// funcSummaries caches the flow-sensitive checks' shared
	// per-function facts (see summary.go); built lazily by the first
	// check that needs it. All checks for one package run on a single
	// goroutine, so no synchronization is required.
	funcSummaries *pkgSummary
}

// A Module is a loaded view of one Go module: every package parsed,
// type-checked, and topologically sorted by imports.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Fset resolves positions across all packages.
	Fset *token.FileSet
	// Pkgs holds every package, dependencies before dependents.
	Pkgs []*Package
}

// LoadModule loads and type-checks every package of the module that
// contains dir. Test files (*_test.go) are skipped: the invariants
// fgbsvet guards apply to shipped code, and several checks explicitly
// exempt tests. Type errors fail the load — the analyzers need sound
// type information.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*parsedPkg, len(dirs))
	for _, d := range dirs {
		importPath := modPath
		if rel, _ := filepath.Rel(root, d); rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pp, err := parseDir(fset, d, importPath)
		if err != nil {
			return nil, err
		}
		if pp != nil {
			byPath[importPath] = pp
		}
	}

	order, err := topoSort(byPath, modPath)
	if err != nil {
		return nil, err
	}

	m := &Module{Path: modPath, Dir: root, Fset: fset}
	checker := newTypeChecker(fset)
	for _, pp := range order {
		pkg, err := checker.check(pp)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// LoadModuleParallel is LoadModule with bounded parallelism: files are
// parsed concurrently, and type-checking proceeds in topological waves
// (every package whose local dependencies are already checked is in
// the current wave, and a wave's packages check concurrently). The
// resulting Module is equivalent to LoadModule's — same package order,
// same type facts — so analysis output is byte-identical; only wall
// time differs. workers <= 1 falls back to the serial loader.
func LoadModuleParallel(dir string, workers int) (*Module, error) {
	if workers <= 1 {
		return LoadModule(dir)
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// Parse phase: token.FileSet and go/parser are safe for concurrent
	// use with distinct files.
	fset := token.NewFileSet()
	parsed := make([]*parsedPkg, len(dirs))
	parseErrs := make([]error, len(dirs))
	runBounded(len(dirs), workers, func(i int) {
		d := dirs[i]
		importPath := modPath
		if rel, _ := filepath.Rel(root, d); rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[i], parseErrs[i] = parseDir(fset, d, importPath)
	})
	byPath := make(map[string]*parsedPkg, len(dirs))
	for i, pp := range parsed {
		if parseErrs[i] != nil {
			return nil, parseErrs[i]
		}
		if pp != nil {
			byPath[pp.path] = pp
		}
	}

	order, err := topoSort(byPath, modPath)
	if err != nil {
		return nil, err
	}

	// Type-check phase: waves over the dependency depth. depth(p) is
	// 1 + max(depth of local deps); packages of equal depth cannot
	// import each other, so a wave is safely concurrent.
	depth := make(map[string]int, len(order))
	for _, pp := range order { // order is deps-first, so deps are done
		d := 0
		for _, imp := range pp.imports {
			if byPath[imp] != nil && depth[imp]+1 > d {
				d = depth[imp] + 1
			}
		}
		depth[pp.path] = d
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}

	checker := newTypeChecker(fset)
	checked := make(map[string]*Package, len(order))
	for wave := 0; wave <= maxDepth; wave++ {
		var batch []*parsedPkg
		for _, pp := range order {
			if depth[pp.path] == wave {
				batch = append(batch, pp)
			}
		}
		pkgs := make([]*Package, len(batch))
		errs := make([]error, len(batch))
		runBounded(len(batch), workers, func(i int) {
			pkgs[i], errs[i] = checker.check(batch[i])
		})
		for i, err := range errs {
			if err != nil {
				return nil, err
			}
			checked[batch[i].path] = pkgs[i]
		}
	}

	m := &Module{Path: modPath, Dir: root, Fset: fset}
	for _, pp := range order {
		m.Pkgs = append(m.Pkgs, checked[pp.path])
	}
	return m, nil
}

// runBounded invokes fn(0..n-1) across at most workers goroutines and
// waits for all of them.
func runBounded(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// LoadDir loads a single directory as one standalone package under the
// synthetic import path. It is the corpus loader used by the testdata
// harness: corpus packages may import the standard library but not
// each other.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	pp, err := parseDir(fset, dir, importPath)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return newTypeChecker(fset).check(pp)
}

// Select filters the module's packages by command-line patterns:
// "./..." (everything, the default), "./dir/..." (subtree), "./dir"
// or "dir" (one package), or the same forms spelled with the module
// path prefix.
func (m *Module) Select(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range m.Pkgs {
			if m.match(pat, pkg) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}

// match reports whether pkg is named by pattern.
func (m *Module) match(pattern string, pkg *Package) bool {
	// Normalize to an import path relative to the module.
	p := strings.TrimSuffix(strings.TrimPrefix(pattern, "./"), "/")
	recursive := false
	if p == "..." {
		return true
	}
	if s, ok := strings.CutSuffix(p, "/..."); ok {
		p, recursive = s, true
	}
	if p == "." || p == "" {
		p = m.Path
	} else if !strings.HasPrefix(p, m.Path) {
		p = m.Path + "/" + p
	}
	if recursive {
		return pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/")
	}
	return pkg.Path == p
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
	}
}

// packageDirs lists every directory under root that may hold a
// package, skipping testdata, vendor, and hidden or underscore
// directories, exactly as the go tool does.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parsedPkg is a package parsed but not yet type-checked.
type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
}

// parseDir parses the non-test Go files of one directory. It returns
// nil (no error) when the directory holds no Go files.
func parseDir(fset *token.FileSet, dir, importPath string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{path: importPath, dir: dir}
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	for imp := range imports {
		pp.imports = append(pp.imports, imp)
	}
	sort.Strings(pp.imports)
	return pp, nil
}

// topoSort orders the module's packages dependencies-first so each
// package's local imports are type-checked before it is.
func topoSort(byPath map[string]*parsedPkg, modPath string) ([]*parsedPkg, error) {
	var order []*parsedPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		pp := byPath[path]
		for _, imp := range pp.imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				if byPath[imp] == nil {
					return fmt.Errorf("%s imports %s: no such package in module", path, imp)
				}
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, pp)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeChecker type-checks packages against a shared importer so the
// (expensive) source-import of the standard library happens once.
// Import and the local-package table are mutex-guarded: the parallel
// loader type-checks independent packages concurrently, and while
// token.FileSet is documented as concurrency-safe, the source
// importer is not.
type typeChecker struct {
	fset *token.FileSet
	// mu guards local and std.
	mu    sync.Mutex
	local map[string]*types.Package
	std   types.Importer
}

func newTypeChecker(fset *token.FileSet) *typeChecker {
	return &typeChecker{
		fset:  fset,
		local: make(map[string]*types.Package),
		std:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import resolves module-local packages from the already-checked set
// and everything else through the standard-library source importer.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if pkg, ok := tc.local[path]; ok {
		return pkg, nil
	}
	return tc.std.Import(path)
}

func (tc *typeChecker) check(pp *parsedPkg) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []types.Error
	cfg := &types.Config{
		Importer: tc,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				typeErrs = append(typeErrs, te)
			}
		},
	}
	tpkg, err := cfg.Check(pp.path, tc.fset, pp.files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, te := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, fmt.Sprintf("%s: %s", tc.fset.Position(te.Pos), te.Msg))
		}
		return nil, fmt.Errorf("type errors in %s:\n%s", pp.path, strings.Join(msgs, "\n"))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pp.path, err)
	}
	tc.mu.Lock()
	tc.local[pp.path] = tpkg
	tc.mu.Unlock()

	pkg := &Package{
		Path:   pp.path,
		Dir:    pp.dir,
		Fset:   tc.fset,
		Files:  pp.files,
		Types:  tpkg,
		Info:   info,
		allows: make(map[allowKey][]allowDirective),
	}
	for _, f := range pp.files {
		pkg.collectAllows(f)
	}
	return pkg, nil
}

// Package stage is the content-addressed artifact engine under the
// pipeline's DAG of steps (Detect → Profile → Normalize → Cluster →
// Represent → Predict). Each step resolves its output through a Store
// keyed by a Key: a SHA-256 digest over the step's encoded inputs, its
// name and version, and the Keys of its upstream artifacts. Equal keys
// mean equal inputs all the way up the graph, so a stored artifact can
// be reused — from an in-memory LRU or, for expensive roots like the
// profile, from an on-disk file — without recomputing anything that
// did not change. A parameter change (seed, feature mask, cluster
// count, target) therefore invalidates exactly its downstream stages:
// every upstream key is unchanged and keeps hitting the cache.
//
// Key derivation is pure: hashing must never consult the wall clock,
// randomness, or anything else outside the encoded inputs, or two runs
// with identical inputs would stop sharing artifacts. fgbsvet's
// determinism check enforces this package-wide — even an //fgbs:allow
// determinism suppression inside this package is itself a finding.
package stage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is the content address of one stage artifact: the hex SHA-256
// digest of the stage's identity and encoded inputs. Keys are plain
// comparable strings so they index maps and serialize trivially.
type Key string

// KeyBuilder accumulates a stage's identity and inputs into a digest.
// Every value is written with a type tag and, for variable-length
// values, a length prefix, so adjacent fields can never collide by
// concatenation ("ab"+"c" vs "a"+"bc").
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key for one stage. The stage name and version are
// the first inputs: bumping the version after a semantic change
// invalidates every stored artifact of that stage (and, through
// upstream-key chaining, everything downstream of it).
func NewKey(stage string, version int) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	return b.Str(stage).Int(version)
}

func (b *KeyBuilder) tag(t byte, payload []byte) *KeyBuilder {
	var n [9]byte
	n[0] = t
	binary.BigEndian.PutUint64(n[1:], uint64(len(payload)))
	b.h.Write(n[:])
	b.h.Write(payload)
	return b
}

// Str mixes in a string.
func (b *KeyBuilder) Str(s string) *KeyBuilder { return b.tag('s', []byte(s)) }

// Strs mixes in a string slice, order-sensitively.
func (b *KeyBuilder) Strs(ss []string) *KeyBuilder {
	b.Int(len(ss))
	for _, s := range ss {
		b.Str(s)
	}
	return b
}

// Int mixes in an int.
func (b *KeyBuilder) Int(v int) *KeyBuilder { return b.Uint64(uint64(int64(v))) }

// Uint64 mixes in a uint64.
func (b *KeyBuilder) Uint64(v uint64) *KeyBuilder {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], v)
	return b.tag('u', p[:])
}

// Float mixes in a float64 by its exact bit pattern.
func (b *KeyBuilder) Float(v float64) *KeyBuilder {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], math.Float64bits(v))
	return b.tag('f', p[:])
}

// Bool mixes in a bool.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		return b.tag('b', []byte{1})
	}
	return b.tag('b', []byte{0})
}

// Upstream mixes in another stage's key, chaining the DAG: any change
// upstream changes this key too.
func (b *KeyBuilder) Upstream(k Key) *KeyBuilder { return b.tag('k', []byte(k)) }

// Key finalizes the digest.
func (b *KeyBuilder) Key() Key {
	return Key(hex.EncodeToString(b.h.Sum(nil)))
}

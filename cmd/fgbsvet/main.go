// Command fgbsvet runs the repository's invariant analyzers over the
// module and reports findings in the standard file:line:col form.
//
// Usage:
//
//	fgbsvet [flags] [packages]
//
// Packages are go-tool-style patterns ("./...", "./internal/pipeline",
// "fgbs/internal/ga/..."); the default is ./... from the current
// module. Exit status is 0 when the tree is clean, 1 when any finding
// survives, and 2 on usage or load errors.
//
// Flags:
//
//	-checks list   comma-separated checks to run (default: all)
//	-list          print the available checks (sorted) and exit
//	-workers N     package-level parallelism for loading and analysis
//	               (0 = GOMAXPROCS, 1 = serial); output is
//	               byte-identical at any worker count
//	-json path     write a machine-readable report (findings plus
//	               per-check timings) to path, or to stdout with "-";
//	               vet-style lines still print unless path is "-"
//
// Findings are suppressed at the site with an inline
// //fgbs:allow <check> <reason> comment; see DESIGN.md's "Static
// analysis" section for each check's contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fgbs/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// jsonReport is the -json output: everything a CI artifact needs to
// trend analyzer health and speed without scraping vet lines.
type jsonReport struct {
	// Packages is how many packages were analyzed.
	Packages int `json:"packages"`
	// Workers is the resolved parallelism the run used.
	Workers int `json:"workers"`
	// ElapsedMS is total wall time: module load + analysis.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Checks carries the per-check cumulative analysis time, in the
	// canonical check order.
	Checks []jsonTiming `json:"checks"`
	// Findings lists every surviving diagnostic, in report order.
	Findings []jsonFinding `json:"findings"`
}

type jsonTiming struct {
	Check     string  `json:"check"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("fgbsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	list := fs.Bool("list", false, "print the available checks and exit")
	workersFlag := fs.Int("workers", 0, "package-level parallelism (0 = GOMAXPROCS, 1 = serial)")
	jsonPath := fs.String("json", "", `write a JSON report to this path ("-" = stdout)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		// Sorted, not registry order: -list is a reference listing,
		// and a stable alphabetical order is what readers (and the
		// golden test) expect.
		checks := analysis.Checks()
		sort.Slice(checks, func(i, j int) bool { return checks[i].Name < checks[j].Name })
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	opts, err := parseChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	workers := *workersFlag
	if workers < 0 {
		fmt.Fprintf(stderr, "fgbsvet: -workers must be >= 0, got %d\n", workers)
		return 2
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.Workers = workers

	// The analyzer cannot read the wall clock itself (its own
	// determinism check forbids it module-wide), so the driver injects
	// the timing source.
	//fgbs:allow determinism the vet driver times its own checks; analysis results never depend on it
	start := time.Now()
	//fgbs:allow determinism monotonic elapsed reading injected as the analyzer's clock
	opts.Clock = func() time.Duration { return time.Since(start) }
	report := jsonReport{Workers: workers}
	opts.OnTiming = func(check string, elapsed time.Duration) {
		report.Checks = append(report.Checks, jsonTiming{Check: check, ElapsedMS: ms(elapsed)})
	}

	mod, err := analysis.LoadModuleParallel(".", workers)
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	pkgs, err := mod.Select(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, opts)
	if err != nil {
		fmt.Fprintln(stderr, "fgbsvet:", err)
		return 2
	}
	report.Packages = len(pkgs)
	report.ElapsedMS = ms(opts.Clock())
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}

	// With -json -, stdout carries the report alone so it stays
	// machine-parseable; vet-style lines are for humans and CI logs.
	jsonToStdout := *jsonPath == "-"
	if !jsonToStdout {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *jsonPath != "" {
		if err := writeReport(stdout, *jsonPath, &report); err != nil {
			fmt.Fprintln(stderr, "fgbsvet:", err)
			return 2
		}
	}
	fmt.Fprintf(stderr, "fgbsvet: %d package(s) analyzed in %.0fms (workers=%d)\n",
		report.Packages, report.ElapsedMS, workers)
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fgbsvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// ms converts to milliseconds for the JSON report.
func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// writeReport marshals the report to path, or to stdout when path is
// "-".
func writeReport(stdout io.Writer, path string, report *jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// parseChecks validates the -checks flag up front, with errors that
// list the valid names (the cmd/fgbs convention).
func parseChecks(list string) (analysis.Options, error) {
	var opts analysis.Options
	if list == "" {
		return opts, nil
	}
	valid := make(map[string]bool)
	for _, name := range analysis.CheckNames() {
		valid[name] = true
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return opts, fmt.Errorf("unknown check %q (valid: %s)",
				name, strings.Join(analysis.CheckNames(), ", "))
		}
		opts.Checks = append(opts.Checks, name)
	}
	if len(opts.Checks) == 0 {
		return opts, fmt.Errorf("-checks lists no checks (valid: %s)",
			strings.Join(analysis.CheckNames(), ", "))
	}
	return opts, nil
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fgbs/internal/features"
	"fgbs/internal/pipeline"
	"fgbs/internal/report"
	"fgbs/internal/stage"
)

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// writeRaw replays pre-encoded JSON, tagging whether it came from the
// result cache (the header the cache-hit tests and curious operators
// read) and whether it was computed from degraded or last-good data.
func writeRaw(w http.ResponseWriter, body []byte, cached, stale bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if stale {
		w.Header().Set("X-Stale", "true")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// markStale decorates a JSON object body with "stale": true — the
// in-band signal (alongside the X-Stale header) that the answer was
// computed from a degraded or retained last-good profile. A body that
// is not a JSON object passes through unchanged.
func markStale(body []byte) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	m["stale"] = true
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// parseFeatureMask resolves the request's "features" field: a named
// preset or an explicit bit string.
func parseFeatureMask(s string) (features.Mask, error) {
	switch s {
	case "", "default":
		return features.DefaultMask(), nil
	case "paper":
		return features.PaperMask(), nil
	case "archindep":
		return features.ArchIndependentMask(), nil
	case "all":
		return features.AllMask(), nil
	default:
		m, err := features.ParseMask(s)
		if err != nil {
			return features.Mask{}, fmt.Errorf("features must be default, paper, archindep, all, or a %d-bit mask: %w", features.NumFeatures, err)
		}
		return m, nil
	}
}

// queryRequest is the shared body of the three POST endpoints; only
// /v1/evaluate reads Target.
type queryRequest struct {
	Suite    string `json:"suite"`
	K        int    `json:"k"`
	Features string `json:"features"`
	Target   string `json:"target"`
}

// decodeQuery parses and validates a POST body far enough to build a
// cache key. It writes the error response itself and reports ok.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (queryRequest, features.Mask, bool) {
	var req queryRequest
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return req, features.Mask{}, false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return req, features.Mask{}, false
	}
	if !s.validSuite(req.Suite) {
		writeError(w, http.StatusBadRequest, "unknown suite %q (valid: %s)", req.Suite, strings.Join(s.suiteSet, ", "))
		return req, features.Mask{}, false
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, "k must be >= 0 (0 = elbow rule), got %d", req.K)
		return req, features.Mask{}, false
	}
	mask, err := parseFeatureMask(req.Features)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return req, features.Mask{}, false
	}
	return req, mask, true
}

// answer serves the query from the result cache or computes, caches
// and serves it. compute returns the response value to encode.
//
// Graceful degradation: when the registry hands back a stale profile
// (degraded build, or last-good data behind an open circuit), the
// response is decorated with "stale": true plus an X-Stale header and
// deliberately NOT cached — a recovered rebuild must become visible on
// the next request, not hide behind a stale LRU entry. When the
// circuit is open and there is nothing to degrade onto, requests fail
// fast with 503 and a Retry-After hint instead of hammering a build
// that keeps failing.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, key string, compute func(*pipeline.Staged) (any, error), suite string) {
	if body, ok := s.results.Get(key); ok {
		writeRaw(w, body, true, false)
		return
	}
	st, stale, err := s.registry.Staged(r.Context(), suite)
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; the status is for the access log.
			writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
			return
		}
		var open *circuitOpenError
		if errors.As(err, &open) {
			w.Header().Set("Retry-After", strconv.Itoa(int(open.retryIn.Seconds())+1))
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "profiling %s: %v", suite, err)
		return
	}
	v, err := compute(st)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	if stale {
		writeRaw(w, markStale(body), false, true)
		return
	}
	s.results.Put(key, body)
	writeRaw(w, body, false, false)
}

func (s *Server) handleSubset(w http.ResponseWriter, r *http.Request) {
	req, mask, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	key := resultKey("subset", req.Suite, mask.String(), req.K, "*", s.cfg.Seed)
	s.answer(w, r, key, func(st *pipeline.Staged) (any, error) {
		sub, err := st.Subset(r.Context(), mask, req.K)
		if err != nil {
			return nil, err
		}
		sj := report.NewSubsetJSON(st.Profile(), sub)
		sj.Suite = req.Suite
		return sj, nil
	}, req.Suite)
}

// evaluateResponse wraps the per-target evaluations of one query.
type evaluateResponse struct {
	Suite string             `json:"suite"`
	K     int                `json:"k"`
	Evals []*report.EvalJSON `json:"evals"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, mask, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	target := req.Target
	if target == "" {
		target = "*"
	}
	key := resultKey("evaluate", req.Suite, mask.String(), req.K, target, s.cfg.Seed)
	s.answer(w, r, key, func(st *pipeline.Staged) (any, error) {
		prof := st.Profile()
		sub, err := st.Subset(r.Context(), mask, req.K)
		if err != nil {
			return nil, err
		}
		targets := make([]int, 0, len(prof.Targets))
		if req.Target == "" {
			for t := range prof.Targets {
				targets = append(targets, t)
			}
		} else {
			t, err := prof.TargetIndex(req.Target)
			if err != nil {
				var names []string
				for _, m := range prof.Targets {
					names = append(names, m.Name)
				}
				return nil, fmt.Errorf("unknown target %q (valid: %s)", req.Target, strings.Join(names, ", "))
			}
			targets = append(targets, t)
		}
		resp := &evaluateResponse{Suite: req.Suite, K: sub.K()}
		for _, t := range targets {
			_, ev, err := st.Evaluate(r.Context(), mask, req.K, t)
			if err != nil {
				return nil, err
			}
			resp.Evals = append(resp.Evals, report.NewEvalJSON(prof, ev))
		}
		return resp, nil
	}, req.Suite)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	req, mask, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	key := resultKey("select", req.Suite, mask.String(), req.K, "*", s.cfg.Seed)
	s.answer(w, r, key, func(st *pipeline.Staged) (any, error) {
		prof := st.Profile()
		sub, err := st.Subset(r.Context(), mask, req.K)
		if err != nil {
			return nil, err
		}
		var evals []*pipeline.Eval
		for t := range prof.Targets {
			_, ev, err := st.Evaluate(r.Context(), mask, req.K, t)
			if err != nil {
				return nil, err
			}
			evals = append(evals, ev)
		}
		sj := report.NewSelectJSON(prof, sub, evals)
		sj.Suite = req.Suite
		return sj, nil
	}, req.Suite)
}

// suiteInfo is one entry of the /v1/suites listing.
type suiteInfo struct {
	Name string `json:"name"`
	// Loaded reports whether the suite's profile is resident.
	Loaded   bool     `json:"loaded"`
	Codelets int      `json:"codelets,omitempty"`
	Targets  []string `json:"targets,omitempty"`
	// Degraded reports whether the resident profile carries failure
	// markers (measurements lost to permanent faults).
	Degraded bool `json:"degraded,omitempty"`
}

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	loaded := s.registry.Loaded()
	out := struct {
		Suites []suiteInfo `json:"suites"`
	}{}
	for _, name := range s.suiteSet {
		info := suiteInfo{Name: name}
		if prof, ok := loaded[name]; ok {
			info.Loaded = true
			info.Codelets = prof.N()
			info.Degraded = prof.Degraded()
			for _, m := range prof.Targets {
				info.Targets = append(info.Targets, m.Name)
			}
		}
		out.Suites = append(out.Suites, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports liveness plus degradation: every non-closed
// circuit breaker and the experiment-job queue's saturation. The
// status code doubles as a load-balancer signal — 503 while any
// breaker is open or the job queue is saturated, 200 otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos, _ := s.breakers.snapshot()
	anyOpen := false
	for _, bi := range infos {
		if bi.State != "closed" {
			anyOpen = true
		}
	}
	queued, depth := s.jobs.Saturation()
	saturated := queued >= int64(depth)
	// A degraded tier does NOT turn the status code: the stage store
	// keeps serving around it (memory-only in the worst case), so the
	// node stays in rotation — the fields are for operators and
	// dashboards. "tiers" names every byte tier's state; "disk" is the
	// pre-tier alias of tiers.disk, kept for one release.
	tiers := make(map[string]string)
	for name, row := range s.registry.store.Stats().Tiers {
		tiers[name] = row.State
	}
	status := "ok"
	code := http.StatusOK
	if anyOpen || saturated {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"ok":            status == "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"breakers":      infos,
		"disk":          s.registry.store.DiskHealth(),
		"tiers":         tiers,
		"jobQueue": map[string]any{
			"queued":    queued,
			"depth":     depth,
			"saturated": saturated,
		},
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	endpoints, inFlight := s.metrics.snapshot()
	hits, misses, size := s.results.Stats()
	infos, trips := s.breakers.snapshot()
	open := 0
	for _, bi := range infos {
		if bi.State != "closed" {
			open++
		}
	}
	body := map[string]any{
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"inFlight":      inFlight,
		"endpoints":     endpoints,
		"resultCache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"size":     size,
			"capacity": s.cfg.ResultCacheSize,
		},
		"registry": map[string]any{
			"builds":         s.registry.builds.Load(),
			"coalesced":      s.registry.coalesced.Load(),
			"diskLoads":      s.registry.diskLoads.Load(),
			"peerLoads":      s.registry.peerLoads.Load(),
			"inFlightBuilds": s.registry.building.Load(),
			"staleServes":    s.registry.staleHits.Load(),
		},
		"stages": s.registry.store.Stats(),
		"breakers": map[string]any{
			"open":   open,
			"trips":  trips,
			"states": infos,
		},
		"jobs": s.jobs.Stats(),
	}
	if s.cfg.MeasureStats != nil {
		body["measure"] = s.cfg.MeasureStats()
	}
	if s.cfg.FaultStats != nil {
		body["faults"] = s.cfg.FaultStats()
	}
	writeJSON(w, http.StatusOK, body)
}

// validArtifactKey reports whether key has the canonical stage.Key
// shape: 64 lowercase hex characters (a SHA-256 digest).
func validArtifactKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleArtifact serves one stage artifact's framed bytes — the
// peer-fetch endpoint a cold node's HTTPBackend calls before
// recomputing. The body is the at-rest frame (header + payload)
// verbatim, so the fetching node verifies integrity itself; the read
// runs through this node's tier decorators, so a tripped disk breaker
// degrades the endpoint to 404s instead of error storms. Keys this
// node has not resolved are plain 404s — the peer falls through to
// compute.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validArtifactKey(key) {
		writeError(w, http.StatusBadRequest, "artifact key must be 64 lowercase hex characters")
		return
	}
	data, err := s.registry.store.FetchFramed(r.Context(), stage.Key(key))
	if err != nil {
		if errors.Is(err, stage.ErrNotFound) {
			writeError(w, http.StatusNotFound, "artifact %s not available on this node", key)
			return
		}
		writeError(w, http.StatusInternalServerError, "fetching artifact %s: %v", key, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleArtifactIndex lists the artifact keys this node can serve over
// /v1/artifacts/{key} — the index a peer (or an operator) enumerates.
func (s *Server) handleArtifactIndex(w http.ResponseWriter, r *http.Request) {
	keys := s.registry.store.Keys()
	out := struct {
		Count int      `json:"count"`
		Keys  []string `json:"keys"`
	}{Count: len(keys), Keys: make([]string, 0, len(keys))}
	for _, k := range keys {
		out.Keys = append(out.Keys, k.String())
	}
	writeJSON(w, http.StatusOK, out)
}

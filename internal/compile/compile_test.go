package compile

import (
	"testing"

	"fgbs/internal/arch"
	"fgbs/internal/ir"
)

// fixture builds a program with one codelet around the given loop.
func fixture(t *testing.T, build func(p *ir.Program) *ir.Codelet) (*ir.Program, *ir.Codelet) {
	t.Helper()
	p := ir.NewProgram("t")
	p.SetParam("n", 4096)
	c := build(p)
	if c.Invocations == 0 {
		c.Invocations = 1
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatalf("AddCodelet: %v", err)
	}
	return p, c
}

// vecCopy: a[i] = b[i], trivially vectorizable.
func vecCopy(p *ir.Program) *ir.Codelet {
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	return &ir.Codelet{
		Name: "copy",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.V("i"))},
		}},
	}
}

// recurrence: a[i] = a[i-1]*0.5 + b[i], not vectorizable.
func recurrence(p *ir.Program) *ir.Codelet {
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	return &ir.Codelet{
		Name: "rec",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("a", ir.V("i")),
				RHS: ir.Add(ir.Mul(p.LoadE("a", ir.Sub(ir.V("i"), ir.CI(1))), ir.CF(0.5)), p.LoadE("b", ir.V("i"))),
			},
		}},
	}
}

// divide: a[i] = b[i] / c_[i].
func divide(p *ir.Program) *ir.Codelet {
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AV("n"))
	p.AddArray("c", ir.F64, ir.AV("n"))
	return &ir.Codelet{
		Name: "div",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.Div(p.LoadE("b", ir.V("i")), p.LoadE("c", ir.V("i")))},
		}},
	}
}

// reduction: s = s + x[i]*y[i].
func reduction(p *ir.Program) *ir.Codelet {
	p.AddArray("x", ir.F64, ir.AV("n"))
	p.AddArray("y", ir.F64, ir.AV("n"))
	p.AddScalar("s", ir.F64)
	return &ir.Codelet{
		Name: "dot",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("s"), RHS: ir.Add(p.LoadE("s"), ir.Mul(p.LoadE("x", ir.V("i")), p.LoadE("y", ir.V("i"))))},
		}},
	}
}

// gather: a[i] = v[idx[i]].
func gather(p *ir.Program) *ir.Codelet {
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("v", ir.F64, ir.AV("n"))
	p.AddArray("idx", ir.I64, ir.AV("n"))
	return &ir.Codelet{
		Name: "gather",
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("v", p.LoadE("idx", ir.V("i")))},
		}},
	}
}

func TestVectorizesIndependentLoop(t *testing.T) {
	p, c := fixture(t, vecCopy)
	lc := Lower(p, c, arch.Nehalem(), true)
	st := lc.Loops[0].Stmts[0]
	if !st.Vectorized || st.Lanes != 2 {
		t.Errorf("copy loop: vectorized=%v lanes=%d, want true/2 (SSE f64)", st.Vectorized, st.Lanes)
	}
}

func TestF32GetsMoreLanes(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 1024)
	p.AddArray("a", ir.F32, ir.AV("n"))
	c := &ir.Codelet{
		Name: "f32copy", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: ir.CF32(1)},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	lc := Lower(p, c, arch.Nehalem(), true)
	if got := lc.Loops[0].Stmts[0].Lanes; got != 4 {
		t.Errorf("f32 lanes = %d, want 4", got)
	}
}

func TestRecurrenceNotVectorized(t *testing.T) {
	p, c := fixture(t, recurrence)
	lc := Lower(p, c, arch.Nehalem(), true)
	st := lc.Loops[0].Stmts[0]
	if st.Vectorized {
		t.Error("recurrence vectorized")
	}
	if st.Dep != ir.DepRecurrence {
		t.Errorf("dep = %v", st.Dep)
	}
	l := lc.Loops[0]
	if l.ChainCycles <= 0 {
		t.Error("recurrence has no chain latency")
	}
	if l.StallCycles <= 0 {
		t.Error("recurrence shows no dependency stalls")
	}
}

func TestRecurrenceSlowerThanCopy(t *testing.T) {
	p1, c1 := fixture(t, vecCopy)
	p2, c2 := fixture(t, recurrence)
	m := arch.Nehalem()
	copyCyc := Lower(p1, c1, m, true).Loops[0].CyclesPerIter
	recCyc := Lower(p2, c2, m, true).Loops[0].CyclesPerIter
	if recCyc <= 2*copyCyc {
		t.Errorf("recurrence %.2f cyc/iter vs copy %.2f: chain not penalized", recCyc, copyCyc)
	}
}

func TestGatherNotVectorized(t *testing.T) {
	p, c := fixture(t, gather)
	lc := Lower(p, c, arch.Nehalem(), true)
	st := lc.Loops[0].Stmts[0]
	if st.Vectorized {
		t.Error("gather vectorized on SSE4 machine")
	}
	if st.GatherLoads != 1 {
		t.Errorf("GatherLoads = %d, want 1", st.GatherLoads)
	}
}

func TestReductionVectorizedAndRegisterAllocated(t *testing.T) {
	p, c := fixture(t, reduction)
	lc := Lower(p, c, arch.Nehalem(), true)
	st := lc.Loops[0].Stmts[0]
	if !st.Vectorized {
		t.Error("sum reduction not vectorized under -O3 semantics")
	}
	// The scalar accumulator must not appear in memory refs.
	for _, mr := range st.Mem {
		if mr.Ref.Array == "s" {
			t.Error("accumulator not register-allocated")
		}
	}
	if len(st.Mem) != 2 {
		t.Errorf("mem refs = %d, want 2 (x and y loads)", len(st.Mem))
	}
}

func TestVecNeverHintRespected(t *testing.T) {
	p, c := fixture(t, vecCopy)
	c.Loop.Body[0].(*ir.Assign).Hint = ir.VecNever
	lc := Lower(p, c, arch.Nehalem(), true)
	if lc.Loops[0].Stmts[0].Vectorized {
		t.Error("VecNever hint ignored")
	}
}

func TestContextSensitiveLosesVectorizationStandalone(t *testing.T) {
	p, c := fixture(t, vecCopy)
	c.ContextSensitive = true
	inApp := Lower(p, c, arch.Nehalem(), true)
	standalone := Lower(p, c, arch.Nehalem(), false)
	if !inApp.Loops[0].Stmts[0].Vectorized {
		t.Error("in-app lowering lost vectorization")
	}
	if standalone.Loops[0].Stmts[0].Vectorized {
		t.Error("standalone lowering kept vectorization for context-sensitive codelet")
	}
	if standalone.Loops[0].CyclesPerIter <= inApp.Loops[0].CyclesPerIter {
		t.Error("standalone compile not slower despite losing vectorization")
	}
}

func TestDivideCostDominates(t *testing.T) {
	p1, c1 := fixture(t, divide)
	p2, c2 := fixture(t, vecCopy)
	m := arch.Nehalem()
	divCyc := Lower(p1, c1, m, true).Loops[0].CyclesPerIter
	copyCyc := Lower(p2, c2, m, true).Loops[0].CyclesPerIter
	if divCyc < 5*copyCyc {
		t.Errorf("divide %.2f cyc/iter vs copy %.2f: divider not modeled", divCyc, copyCyc)
	}
}

func TestAtomDivideCatastrophic(t *testing.T) {
	// The paper's NR cluster 10 (vector divides) slows down ~4x more
	// on Atom than simple codelets do; the divider model must reflect
	// Atom's much slower unpipelined divide.
	p, c := fixture(t, divide)
	neh := Lower(p, c, arch.Nehalem(), true).Loops[0].CyclesPerIter
	atom := Lower(p, c, arch.Atom(), true).Loops[0].CyclesPerIter
	if atom < 4*neh {
		t.Errorf("Atom divide %.1f cyc/iter vs Nehalem %.1f: ratio too small", atom, neh)
	}
}

func TestCyclesPositiveOnAllMachines(t *testing.T) {
	builders := map[string]func(*ir.Program) *ir.Codelet{
		"copy": vecCopy, "rec": recurrence, "div": divide, "dot": reduction, "gather": gather,
	}
	for name, b := range builders {
		for _, m := range arch.All() {
			p, c := fixture(t, b)
			lc := Lower(p, c, m, true)
			l := lc.Loops[0]
			if l.CyclesPerIter <= 0 {
				t.Errorf("%s on %s: cycles/iter = %g", name, m.Name, l.CyclesPerIter)
			}
			if l.InstrPerIter <= 0 {
				t.Errorf("%s on %s: instr/iter = %g", name, m.Name, l.InstrPerIter)
			}
		}
	}
}

func TestVecRatios(t *testing.T) {
	p, c := fixture(t, reduction)
	lc := Lower(p, c, arch.Nehalem(), true)
	r := lc.VecRatios(p.Params)
	if r.Mul != 1 || r.Add != 1 {
		t.Errorf("fully vectorized reduction: ratios mul=%g add=%g", r.Mul, r.Add)
	}
	p2, c2 := fixture(t, recurrence)
	lc2 := Lower(p2, c2, arch.Nehalem(), true)
	r2 := lc2.VecRatios(p2.Params)
	if r2.All != 0 {
		t.Errorf("scalar recurrence: vec ratio = %g, want 0", r2.All)
	}
}

func TestPortPressureBounded(t *testing.T) {
	for _, b := range []func(*ir.Program) *ir.Codelet{vecCopy, recurrence, divide, reduction, gather} {
		p, c := fixture(t, b)
		for _, m := range arch.All() {
			l := Lower(p, c, m, true).Loops[0]
			pp := l.PortPressure
			for _, v := range []float64{pp.Add, pp.Mul, pp.Load, pp.Store, pp.Int} {
				if v < 0 || v > 1.0001 {
					t.Errorf("%s on %s: port pressure %g outside [0,1]", c.Name, m.Name, v)
				}
			}
		}
	}
}

func TestStridedVectorPenalty(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 4096)
	p.AddArray("a", ir.F64, ir.AV("n"))
	p.AddArray("b", ir.F64, ir.AT("n", 2))
	c := &ir.Codelet{
		Name: "strided", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("a", ir.V("i")), RHS: p.LoadE("b", ir.Mul(ir.CI(2), ir.V("i")))},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	lc := Lower(p, c, arch.Nehalem(), true)
	st := lc.Loops[0].Stmts[0]
	if !st.Vectorized || !st.StridedVector {
		t.Errorf("strided load: vectorized=%v strided=%v", st.Vectorized, st.StridedVector)
	}

	p2, c2 := fixture(t, vecCopy)
	unit := Lower(p2, c2, arch.Nehalem(), true).Loops[0].CyclesPerIter
	if lc.Loops[0].CyclesPerIter <= unit {
		t.Error("strided vector access not costed above unit stride")
	}
}

func TestMultipleInnermostLoops(t *testing.T) {
	p := ir.NewProgram("t")
	p.SetParam("n", 128)
	p.AddArray("m", ir.F64, ir.AV("n"), ir.AV("n"))
	c := &ir.Codelet{
		Name: "twoinner", Invocations: 1,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("m", ir.V("i"), ir.V("j")), RHS: ir.CF(0)},
			}},
			&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("i"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("m", ir.V("k"), ir.V("i")), RHS: ir.CF(1)},
			}},
		}},
	}
	if err := p.AddCodelet(c); err != nil {
		t.Fatal(err)
	}
	lc := Lower(p, c, arch.Core2(), true)
	if len(lc.Loops) != 2 {
		t.Fatalf("lowered %d loops, want 2", len(lc.Loops))
	}
}

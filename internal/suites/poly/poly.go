// Package poly defines a PolyBench-like suite of 18 linear-algebra,
// stencil and dynamic-programming kernels.
//
// The paper trains its feature set on Numerical Recipes and validates
// on NAS; this third suite exists for the extension experiments the
// paper's §5 and §6 sketch — checking that the trained subsetting
// generalizes to yet another benchmark family ("our method could be
// extended to other contexts such as compiler regression test-suites
// or auto-tuning") and feeding the joint-suite experiment where one
// set of representatives serves several suites at once.
//
// Like the NR suite, each kernel is one program with one codelet. The
// patterns deliberately overlap NAS/NR families (stencils, reductions,
// recurrences, divides) and add new ones (min-plus inner loops, tensor
// contraction, IIR filters), so some poly codelets should join
// existing clusters while others open new ones.
package poly

import (
	"fmt"

	"fgbs/internal/ir"
)

// Dataset dimensions (CacheScale-scaled, like the other suites).
const (
	// matN is the order of 2-D single-sweep kernels (1.2 MB per f64
	// matrix: streams past every modeled cache).
	matN = 384
	// cubeN is the order of triple-nested kernels (kept small: the
	// O(N^3) work, not the footprint, dominates them).
	cubeN = 96
	// vecN is the 1-D vector length.
	vecN = 1 << 18
)

var (
	vi = ir.V("i")
	vj = ir.V("j")
	vk = ir.V("k")
)

func oneKernel(name, pattern string, build func(p *ir.Program) *ir.Codelet) *ir.Program {
	p := ir.NewProgram(name)
	p.SetParam("n", matN)
	p.SetParam("m", cubeN)
	p.SetParam("v", vecN)
	p.UncoveredFraction = 0
	c := build(p)
	c.Name = name
	c.Pattern = pattern
	c.SourceRef = fmt.Sprintf("POLY/%s.c", name)
	if c.Invocations == 0 {
		// PolyBench kernels run inside timing/tuning harness loops;
		// repeated invocation is their normal life.
		c.Invocations = 60
	}
	p.MustAddCodelet(c)
	return p
}

// Suite returns the 18 kernels.
func Suite() []*ir.Program {
	return []*ir.Program{
		gemm(), syrk(), atax(), bicg(), mvt(), doitgen(),
		cholesky(), durbin(), gramschmidt(), trisolv(),
		jacobi2d(), seidel2d(), fdtd2d(), adi(),
		floyd(), correlation(), covariance(), deriche(),
	}
}

// Codelets flattens the suite.
func Codelets() (progs []*ir.Program, codelets []*ir.Codelet) {
	for _, p := range Suite() {
		progs = append(progs, p)
		codelets = append(codelets, p.Codelets[0])
	}
	return progs, codelets
}

// gemm: dense matrix multiplication, compute-bound triple nest in the
// interchange order (i,k,j) an optimizing compiler produces: the
// innermost loop streams rows of b and c at unit stride.
func gemm() *ir.Program {
	return oneKernel("poly_gemm", "DP: dense matrix multiplication", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("b", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("c", ir.F64, ir.AV("m"), ir.AV("m"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
						&ir.Assign{
							LHS: p.Ref("c", vi, vj),
							RHS: ir.Add(p.LoadE("c", vi, vj),
								ir.Mul(p.LoadE("a", vi, vk), p.LoadE("b", vk, vj))),
						},
					}},
				}},
			},
		}}
	})
}

// syrk: symmetric rank-k update over the lower triangle.
func syrk() *ir.Program {
	return oneKernel("poly_syrk", "DP: symmetric rank-k update", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("c", ir.F64, ir.AV("m"), ir.AV("m"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("i").PlusK(1), Body: []ir.Stmt{
					&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
						&ir.Assign{
							LHS: p.Ref("c", vi, vj),
							RHS: ir.Add(p.LoadE("c", vi, vj),
								ir.Mul(p.LoadE("a", vi, vk), p.LoadE("a", vj, vk))),
						},
					}},
				}},
			},
		}}
	})
}

// atax: y = A^T (A x), two dependent matvec sweeps.
func atax() *ir.Program {
	return oneKernel("poly_atax", "DP: A^T A x product", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("x", ir.F64, ir.AV("n"))
		p.AddArray("tmp", ir.F64, ir.AV("n"))
		p.AddArray("y", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("tmp", vi),
						RHS: ir.Add(p.LoadE("tmp", vi), ir.Mul(p.LoadE("a", vi, vj), p.LoadE("x", vj))),
					},
				}},
				&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("y", vk),
						RHS: ir.Add(p.LoadE("y", vk), ir.Mul(p.LoadE("a", vi, vk), p.LoadE("tmp", vi))),
					},
				}},
			},
		}}
	})
}

// bicg: two simultaneous matvec reductions (BiCG kernel).
func bicg() *ir.Program {
	return oneKernel("poly_bicg", "DP: BiCG dual matrix-vector products", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("pv", ir.F64, ir.AV("n"))
		p.AddArray("r", ir.F64, ir.AV("n"))
		p.AddArray("q", ir.F64, ir.AV("n"))
		p.AddArray("s", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("s", vj),
						RHS: ir.Add(p.LoadE("s", vj), ir.Mul(p.LoadE("r", vi), p.LoadE("a", vi, vj))),
					},
					&ir.Assign{
						LHS: p.Ref("q", vi),
						RHS: ir.Add(p.LoadE("q", vi), ir.Mul(p.LoadE("a", vi, vj), p.LoadE("pv", vj))),
					},
				}},
			},
		}}
	})
}

// mvt: matrix-vector product and transposed product.
func mvt() *ir.Program {
	return oneKernel("poly_mvt", "DP: matrix-vector products", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("x1", ir.F64, ir.AV("n"))
		p.AddArray("y1", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("x1", vi),
						RHS: ir.Add(p.LoadE("x1", vi), ir.Mul(p.LoadE("a", vi, vj), p.LoadE("y1", vj))),
					},
				}},
			},
		}}
	})
}

// doitgen: tensor contraction.
func doitgen() *ir.Program {
	return oneKernel("poly_doitgen", "DP: tensor contraction", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("c4", ir.F64, ir.AV("m"), ir.AV("m"))
		p.AddArray("sum", ir.F64, ir.AV("m"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
						&ir.Assign{
							LHS: p.Ref("sum", vj),
							RHS: ir.Add(p.LoadE("sum", vj), ir.Mul(p.LoadE("a", vi, vk), p.LoadE("c4", vk, vj))),
						},
					}},
				}},
			},
		}}
	})
}

// cholesky: diagonal divide + sqrt sweep (factorization inner kernel).
func cholesky() *ir.Program {
	return oneKernel("poly_cholesky", "DP: Cholesky column update (div + sqrt)", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("diag", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vj),
						RHS: ir.Div(p.LoadE("a", vi, vj),
							ir.Sqrt(ir.Add(p.LoadE("diag", vj), ir.CF(1.5)))),
					},
				}},
			},
		}}
	})
}

// durbin: Levinson-Durbin first-order recurrence with divisions.
func durbin() *ir.Program {
	return oneKernel("poly_durbin", "DP: Levinson-Durbin recurrence", func(p *ir.Program) *ir.Codelet {
		p.AddArray("y", ir.F64, ir.AT("v", 1).PlusK(2))
		p.AddArray("r", ir.F64, ir.AT("v", 1).PlusK(2))
		return &ir.Codelet{Invocations: 30, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("v"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("y", vi),
					RHS: ir.Div(
						ir.Sub(p.LoadE("r", vi), p.LoadE("y", ir.Sub(vi, ir.CI(1)))),
						ir.Add(p.LoadE("r", vi), ir.CF(2))),
				},
			},
		}}
	})
}

// gramschmidt: column norm (reduction) followed by normalization
// (divide) — two statements of opposite character.
func gramschmidt() *ir.Program {
	return oneKernel("poly_gramschmidt", "DP: norm + normalize", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("q", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddScalar("nrm", ir.F64)
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("nrm"),
						RHS: ir.Add(p.LoadE("nrm"), ir.Mul(p.LoadE("a", vi, vj), p.LoadE("a", vi, vj))),
					},
					&ir.Assign{
						LHS: p.Ref("q", vi, vj),
						RHS: ir.Div(p.LoadE("a", vi, vj), ir.Add(p.LoadE("nrm"), ir.CF(1))),
					},
				}},
			},
		}}
	})
}

// trisolv: forward substitution.
func trisolv() *ir.Program {
	return oneKernel("poly_trisolv", "DP: triangular solve recurrence", func(p *ir.Program) *ir.Codelet {
		p.AddArray("x", ir.F64, ir.AT("v", 1).PlusK(2))
		p.AddArray("b", ir.F64, ir.AT("v", 1).PlusK(2))
		p.AddArray("l", ir.F64, ir.AT("v", 1).PlusK(2))
		return &ir.Codelet{Invocations: 30, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("v"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("x", vi),
					RHS: ir.Div(
						ir.Sub(p.LoadE("b", vi),
							ir.Mul(p.LoadE("l", vi), p.LoadE("x", ir.Sub(vi, ir.CI(1))))),
						ir.Add(p.LoadE("l", vi), ir.CF(2))),
				},
			},
		}}
	})
}

// jacobi2d: five-point Jacobi stencil.
func jacobi2d() *ir.Program {
	return oneKernel("poly_jacobi2d", "DP: 5-point Jacobi stencil", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("b", ir.F64, ir.AV("n"), ir.AV("n"))
		at := func(di, dj int64) ir.Expr {
			return p.LoadE("a", ir.Add(vi, ir.CI(di)), ir.Add(vj, ir.CI(dj)))
		}
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("b", vi, vj),
						RHS: ir.Mul(ir.CF(0.2),
							ir.Add(at(0, 0),
								ir.Add(ir.Add(at(0, -1), at(0, 1)), ir.Add(at(-1, 0), at(1, 0))))),
					},
				}},
			},
		}}
	})
}

// seidel2d: Gauss-Seidel stencil — in-place, carried in both
// dimensions, strictly scalar.
func seidel2d() *ir.Program {
	return oneKernel("poly_seidel2d", "DP: Gauss-Seidel serial stencil", func(p *ir.Program) *ir.Codelet {
		p.AddArray("a", ir.F64, ir.AV("n"), ir.AV("n"))
		at := func(di, dj int64) ir.Expr {
			return p.LoadE("a", ir.Add(vi, ir.CI(di)), ir.Add(vj, ir.CI(dj)))
		}
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("a", vi, vj),
						RHS: ir.Mul(ir.CF(0.2),
							ir.Add(at(0, 0),
								ir.Add(ir.Add(at(0, -1), at(0, 1)), ir.Add(at(-1, 0), at(1, 0))))),
					},
				}},
			},
		}}
	})
}

// fdtd2d: finite-difference time domain field updates.
func fdtd2d() *ir.Program {
	return oneKernel("poly_fdtd2d", "DP: FDTD field updates", func(p *ir.Program) *ir.Codelet {
		p.AddArray("ex", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("ey", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("hz", ir.F64, ir.AV("n"), ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n").PlusK(-1), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("ey", vi, vj),
						RHS: ir.Sub(p.LoadE("ey", vi, vj),
							ir.Mul(ir.CF(0.5),
								ir.Sub(p.LoadE("hz", vi, vj), p.LoadE("hz", ir.Sub(vi, ir.CI(1)), vj)))),
					},
					&ir.Assign{
						LHS: p.Ref("ex", vi, vj),
						RHS: ir.Sub(p.LoadE("ex", vi, vj),
							ir.Mul(ir.CF(0.5),
								ir.Sub(p.LoadE("hz", vi, vj), p.LoadE("hz", vi, ir.Sub(vj, ir.CI(1)))))),
					},
				}},
			},
		}}
	})
}

// adi: alternating-direction implicit sweep (recurrence with divides).
func adi() *ir.Program {
	return oneKernel("poly_adi", "DP: ADI sweep (recurrence + div)", func(p *ir.Program) *ir.Codelet {
		p.AddArray("u", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("w", ir.F64, ir.AV("n"), ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(1), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("u", vi, vj),
						RHS: ir.Div(
							ir.Sub(p.LoadE("w", vi, vj),
								ir.Mul(ir.CF(0.3), p.LoadE("u", vi, ir.Sub(vj, ir.CI(1))))),
							ir.Add(p.LoadE("w", vi, vj), ir.CF(1.8))),
					},
				}},
			},
		}}
	})
}

// floyd: Floyd-Warshall min-plus inner loop.
func floyd() *ir.Program {
	return oneKernel("poly_floyd", "DP: min-plus relaxation", func(p *ir.Program) *ir.Codelet {
		p.AddArray("path", ir.F64, ir.AV("m"), ir.AV("m"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "k", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
					&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("m"), Body: []ir.Stmt{
						&ir.Assign{
							LHS: p.Ref("path", vi, vj),
							RHS: ir.MinE(p.LoadE("path", vi, vj),
								ir.Add(p.LoadE("path", vi, vk), p.LoadE("path", vk, vj))),
						},
					}},
				}},
			},
		}}
	})
}

// correlation: mean/stddev pass with sqrt and divide.
func correlation() *ir.Program {
	return oneKernel("poly_correlation", "DP: column statistics (sqrt + div)", func(p *ir.Program) *ir.Codelet {
		p.AddArray("data", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("mean", ir.F64, ir.AV("n"))
		p.AddArray("stddev", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("mean", vi),
						RHS: ir.Add(p.LoadE("mean", vi), p.LoadE("data", vi, vj)),
					},
					&ir.Assign{
						LHS: p.Ref("stddev", vi),
						RHS: ir.Sqrt(ir.Add(p.LoadE("stddev", vi),
							ir.Mul(p.LoadE("data", vi, vj), p.LoadE("data", vi, vj)))),
					},
				}},
			},
		}}
	})
}

// covariance: centered cross-products, reduction-heavy.
func covariance() *ir.Program {
	return oneKernel("poly_covariance", "DP: covariance accumulation", func(p *ir.Program) *ir.Codelet {
		p.AddArray("data", ir.F64, ir.AV("n"), ir.AV("n"))
		p.AddArray("cov", ir.F64, ir.AV("n"))
		return &ir.Codelet{WarmInApp: true, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("cov", vi),
						RHS: ir.Add(p.LoadE("cov", vi),
							ir.Mul(p.LoadE("data", vi, vj), p.LoadE("data", vj, vi))),
					},
				}},
			},
		}}
	})
}

// deriche: single-precision IIR filter recurrence.
func deriche() *ir.Program {
	return oneKernel("poly_deriche", "SP: IIR filter recurrence", func(p *ir.Program) *ir.Codelet {
		p.AddArray("y", ir.F32, ir.AT("v", 1).PlusK(2))
		p.AddArray("x", ir.F32, ir.AT("v", 1).PlusK(2))
		return &ir.Codelet{Invocations: 30, Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(1), Upper: ir.AV("v"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("y", vi),
					RHS: ir.Add(
						ir.Mul(ir.CF32(0.25), p.LoadE("x", vi)),
						ir.Mul(ir.CF32(0.75), p.LoadE("y", ir.Sub(vi, ir.CI(1))))),
				},
			},
		}}
	})
}

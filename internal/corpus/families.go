package corpus

import (
	"fmt"

	"fgbs/internal/ir"
)

// The family catalog. Each family's generate function draws every axis
// exactly once, in the order the Axes slice declares, from the
// codelet's private stream — the whole determinism contract rests on
// that discipline.

var (
	vi = ir.V("i")
	vj = ir.V("j")
)

// idx1 builds the 1-D index expression stride*i + off, simplified for
// the common unit cases so printed sources stay readable.
func idx1(v ir.Expr, stride, off int64) ir.Expr {
	e := v
	if stride != 1 {
		e = ir.Mul(ir.CI(stride), v)
	}
	if off != 0 {
		e = ir.Add(e, ir.CI(off))
	}
	return e
}

// dtypeOf parses the dtype axis.
func dtypeOf(v string) ir.DType {
	if v == "f32" {
		return ir.F32
	}
	return ir.F64
}

// cappedSide clamps a 2-D grid side so side² respects the footprint
// cap (smoke-sized suites).
func (b *build) cappedSide(side int64) int64 {
	for b.footCap > 0 && side*side > b.footCap && side > 16 {
		side /= 2
	}
	return side
}

func init() {
	registerFamily(stencil1d())
	registerFamily(stencil2d())
	registerFamily(reduction())
	registerFamily(matvec())
	registerFamily(spmv())
	registerFamily(butterfly())
	registerFamily(histogram())
}

// stencil1d sweeps a (2r+1)-tap filter over a vector at a constant
// stride: the footprint axis fixes the iteration count, so widening
// the stride widens the touched span — exactly the locality knob the
// stride feature family observes.
func stencil1d() *Family {
	axRadius := Axis{Name: "radius", Doc: "filter taps each side", Values: []string{"1", "2", "4"}}
	f := &Family{
		Name: "stencil1d",
		Doc:  "1-D filter sweep: (2r+1)-tap weighted sum at constant stride",
		Axes: []Axis{axRadius, axStride, axFoot1D, axDtype, axBranch},
	}
	f.generate = func(b *build) *ir.Codelet {
		radius := strideOf(b.draw(axRadius))
		stride := strideOf(b.draw(axStride))
		n := b.capped(foot1DElems(b.draw(axFoot1D)))
		dt := dtypeOf(b.draw(axDtype))
		level := branchLevel(b.draw(axBranch))

		nm := b.sizeParam(n)
		src := b.array(dt, ir.IntInit{}, ir.AT(nm, stride).PlusK(2*radius+stride))
		dst := b.array(dt, ir.IntInit{}, ir.AV(nm))
		var rhs ir.Expr
		for k := int64(0); k <= 2*radius; k++ {
			tap := ir.Mul(b.weight(dt), b.p.LoadE(src, idx1(vi, stride, k)))
			if rhs == nil {
				rhs = tap
			} else {
				rhs = ir.Add(rhs, tap)
			}
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(nm), Body: []ir.Stmt{
				&ir.Assign{LHS: b.p.Ref(dst, vi), RHS: b.clampify(dt, rhs, level)},
			},
		}}
	}
	return f
}

// stencil2d applies a cross- or box-shaped neighborhood over a square
// grid; the row dimension makes every vertical tap a long-stride
// access without any explicit stride axis.
func stencil2d() *Family {
	axRadius := Axis{Name: "radius", Doc: "neighborhood radius", Values: []string{"1", "2"}}
	axShape := Axis{Name: "shape", Doc: "neighborhood shape", Values: []string{"cross", "box"}}
	f := &Family{
		Name: "stencil2d",
		Doc:  "2-D grid relaxation: cross or box neighborhood weighted sum",
		Axes: []Axis{axRadius, axShape, axFoot2D, axDtype, axBranch},
	}
	f.generate = func(b *build) *ir.Codelet {
		radius := strideOf(b.draw(axRadius))
		shape := b.draw(axShape)
		m := b.cappedSide(foot2DSide(b.draw(axFoot2D)))
		dt := dtypeOf(b.draw(axDtype))
		level := branchLevel(b.draw(axBranch))

		mp := b.sizeParam(m)
		src := b.array(dt, ir.IntInit{}, ir.AV(mp), ir.AV(mp))
		dst := b.array(dt, ir.IntInit{}, ir.AV(mp), ir.AV(mp))
		at := func(di, dj int64) ir.Expr {
			return b.p.LoadE(src, idx1(vi, 1, di), idx1(vj, 1, dj))
		}
		var rhs ir.Expr
		tap := func(di, dj int64) {
			t := ir.Mul(b.weight(dt), at(di, dj))
			if rhs == nil {
				rhs = t
			} else {
				rhs = ir.Add(rhs, t)
			}
		}
		if shape == "box" {
			for di := -radius; di <= radius; di++ {
				for dj := -radius; dj <= radius; dj++ {
					tap(di, dj)
				}
			}
		} else {
			tap(0, 0)
			for d := int64(1); d <= radius; d++ {
				tap(-d, 0)
				tap(d, 0)
				tap(0, -d)
				tap(0, d)
			}
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(radius), Upper: ir.AV(mp).PlusK(-radius), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(radius), Upper: ir.AV(mp).PlusK(-radius), Body: []ir.Stmt{
					&ir.Assign{LHS: b.p.Ref(dst, vi, vj), RHS: b.clampify(dt, rhs, level)},
				}},
			},
		}}
	}
	return f
}

// reduction folds one or two strided streams into scalar accumulators:
// sums, dot products, sums of squares, or running maxima (the paper's
// "2 simultaneous reductions" pattern at width 2).
func reduction() *Family {
	axKind := Axis{Name: "kind", Doc: "fold operation", Values: []string{"sum", "dot", "sumsq", "max"}}
	axWidth := Axis{Name: "width", Doc: "simultaneous reductions", Values: []string{"1", "2"}}
	f := &Family{
		Name: "reduction",
		Doc:  "strided stream folded into scalar accumulators",
		Axes: []Axis{axKind, axWidth, axStride, axFoot1D, axDtype, axBranch},
	}
	f.generate = func(b *build) *ir.Codelet {
		kind := b.draw(axKind)
		width := strideOf(b.draw(axWidth))
		stride := strideOf(b.draw(axStride))
		n := b.capped(foot1DElems(b.draw(axFoot1D)))
		dt := dtypeOf(b.draw(axDtype))
		level := branchLevel(b.draw(axBranch))

		nm := b.sizeParam(n)
		var body []ir.Stmt
		for w := int64(0); w < width; w++ {
			a := b.array(dt, ir.IntInit{}, ir.AT(nm, stride))
			acc := b.scalar(dt)
			load := b.p.LoadE(a, idx1(vi, stride, 0))
			var rhs ir.Expr
			switch kind {
			case "dot":
				o := b.array(dt, ir.IntInit{}, ir.AT(nm, stride))
				rhs = ir.Add(b.p.LoadE(acc), b.clampify(dt, ir.Mul(load, b.p.LoadE(o, idx1(vi, stride, 0))), level))
			case "sumsq":
				rhs = ir.Add(b.p.LoadE(acc), b.clampify(dt, ir.Mul(load, load), level))
			case "max":
				rhs = ir.MaxE(b.p.LoadE(acc), b.clampify(dt, load, level))
			default:
				rhs = ir.Add(b.p.LoadE(acc), b.clampify(dt, load, level))
			}
			body = append(body, &ir.Assign{LHS: b.p.Ref(acc), RHS: rhs})
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(nm), Body: body,
		}}
	}
	return f
}

// matvec is a dense matrix-vector product; the layout axis flips the
// inner access between unit-stride rows and column walks of stride m,
// the precision/stride pairing that separates the paper's two "Dense
// Matrix x vector product" NR codelets into different clusters.
func matvec() *Family {
	axLayout := Axis{Name: "layout", Doc: "inner-loop matrix walk", Values: []string{"row", "col"}}
	f := &Family{
		Name: "matvec",
		Doc:  "dense matrix-vector product, row- or column-major inner walk",
		Axes: []Axis{axFoot2D, axDtype, axLayout, axBranch},
	}
	f.generate = func(b *build) *ir.Codelet {
		m := b.cappedSide(foot2DSide(b.draw(axFoot2D)))
		dt := dtypeOf(b.draw(axDtype))
		layout := b.draw(axLayout)
		level := branchLevel(b.draw(axBranch))

		mp := b.sizeParam(m)
		a := b.array(dt, ir.IntInit{}, ir.AV(mp), ir.AV(mp))
		x := b.array(dt, ir.IntInit{}, ir.AV(mp))
		y := b.array(dt, ir.IntInit{}, ir.AV(mp))
		elem := b.p.LoadE(a, vi, vj)
		if layout == "col" {
			elem = b.p.LoadE(a, vj, vi)
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(mp), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AV(mp), Body: []ir.Stmt{
					&ir.Assign{
						LHS: b.p.Ref(y, vi),
						RHS: ir.Add(b.p.LoadE(y, vi),
							b.clampify(dt, ir.Mul(elem, b.p.LoadE(x, vj)), level)),
					},
				}},
			},
		}}
	}
	return f
}

// spmv is a CSR-like sparse matrix-vector product with a fixed row
// length: the column-index gather into x is the irregular access, and
// the locality axis selects worst-case uniform columns or a banded
// cyclic pattern with reuse.
func spmv() *Family {
	axRowLen := Axis{Name: "rowlen", Doc: "nonzeros per row", Values: []string{"8", "32"}}
	axLocality := Axis{Name: "locality", Doc: "column index distribution", Values: []string{"uniform", "banded"}}
	f := &Family{
		Name: "spmv",
		Doc:  "sparse matrix-vector product: gather through a column-index array",
		Axes: []Axis{axFoot1D, axRowLen, axLocality, axDtype, axBranch},
	}
	f.generate = func(b *build) *ir.Codelet {
		nnz := b.capped(foot1DElems(b.draw(axFoot1D)))
		rowLen := strideOf(b.draw(axRowLen))
		locality := b.draw(axLocality)
		dt := dtypeOf(b.draw(axDtype))
		level := branchLevel(b.draw(axBranch))

		rows := nnz / rowLen
		rp := b.sizeParam(rows)
		init := ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV(rp)}
		if locality == "banded" {
			init = ir.IntInit{Kind: ir.IntInitMod, Bound: ir.AV(rp)}
		}
		val := b.array(dt, ir.IntInit{}, ir.AT(rp, rowLen))
		col := b.array(ir.I64, init, ir.AT(rp, rowLen))
		x := b.array(dt, ir.IntInit{}, ir.AV(rp))
		y := b.array(dt, ir.IntInit{}, ir.AV(rp))
		at := idx1(vi, rowLen, 0)
		nz := ir.Add(at, vj)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(rp), Body: []ir.Stmt{
				&ir.Loop{Var: "j", Lower: ir.AC(0), Upper: ir.AC(rowLen), Body: []ir.Stmt{
					&ir.Assign{
						LHS: b.p.Ref(y, vi),
						RHS: ir.Add(b.p.LoadE(y, vi),
							b.clampify(dt, ir.Mul(b.p.LoadE(val, nz),
								b.p.LoadE(x, b.p.LoadE(col, nz))), level)),
					},
				}},
			},
		}}
	}
	return f
}

// butterfly is the FFT inner update over split halves: every statement
// carries the VecNever hint, mirroring the paper's observation that
// icc leaves realft_4's butterfly scalar despite it being legal to
// vectorize. The twiddle axis switches between constant factors and
// per-iteration sin/cos, moving the codelet between bandwidth- and
// special-function-bound clusters.
func butterfly() *Family {
	axTwiddle := Axis{Name: "twiddle", Doc: "twiddle factors", Values: []string{"const", "trig"}}
	f := &Family{
		Name: "butterfly",
		Doc:  "FFT-style butterfly over split halves (forced scalar)",
		Axes: []Axis{axFoot1D, axDtype, axTwiddle},
	}
	f.generate = func(b *build) *ir.Codelet {
		n := b.capped(foot1DElems(b.draw(axFoot1D))) / 2
		dt := dtypeOf(b.draw(axDtype))
		twiddle := b.draw(axTwiddle)

		nm := b.sizeParam(n)
		re := b.array(dt, ir.IntInit{}, ir.AT(nm, 2))
		im := b.array(dt, ir.IntInit{}, ir.AT(nm, 2))
		tr := b.scalar(dt)
		ti := b.scalar(dt)
		hi := ir.Add(vi, ir.V(nm))

		var body []ir.Stmt
		var wr, wi ir.Expr
		if twiddle == "trig" {
			theta := ir.Mul(ir.ToF(vi, dt), b.cf(dt, 1.0/float64(n)))
			wrS, wiS := b.scalar(dt), b.scalar(dt)
			body = append(body,
				&ir.Assign{LHS: b.p.Ref(wrS), RHS: ir.Cos(theta), Hint: ir.VecNever},
				&ir.Assign{LHS: b.p.Ref(wiS), RHS: ir.Sin(theta), Hint: ir.VecNever},
			)
			wr, wi = b.p.LoadE(wrS), b.p.LoadE(wiS)
		} else {
			wr, wi = b.weight(dt), b.weight(dt)
		}
		body = append(body,
			&ir.Assign{LHS: b.p.Ref(tr), Hint: ir.VecNever,
				RHS: ir.Sub(ir.Mul(wr, b.p.LoadE(re, hi)), ir.Mul(wi, b.p.LoadE(im, hi)))},
			&ir.Assign{LHS: b.p.Ref(ti), Hint: ir.VecNever,
				RHS: ir.Add(ir.Mul(wr, b.p.LoadE(im, hi)), ir.Mul(wi, b.p.LoadE(re, hi)))},
			&ir.Assign{LHS: b.p.Ref(re, hi), Hint: ir.VecNever,
				RHS: ir.Sub(b.p.LoadE(re, vi), b.p.LoadE(tr))},
			&ir.Assign{LHS: b.p.Ref(im, hi), Hint: ir.VecNever,
				RHS: ir.Sub(b.p.LoadE(im, vi), b.p.LoadE(ti))},
			&ir.Assign{LHS: b.p.Ref(re, vi), Hint: ir.VecNever,
				RHS: ir.Add(b.p.LoadE(re, vi), b.p.LoadE(tr))},
			&ir.Assign{LHS: b.p.Ref(im, vi), Hint: ir.VecNever,
				RHS: ir.Add(b.p.LoadE(im, vi), b.p.LoadE(ti))},
		)
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(nm), Body: body,
		}}
	}
	return f
}

// histogram scatters keys into a bucket table (the NAS IS pattern):
// the buckets axis moves the table across cache levels, and the
// locality axis selects worst-case uniform keys or a banded cyclic
// pattern.
func histogram() *Family {
	axBuckets := Axis{Name: "buckets", Doc: "bucket table size", Values: []string{"256", "4096", "65536"}}
	axLocality := Axis{Name: "locality", Doc: "key distribution", Values: []string{"uniform", "banded"}}
	axKind := Axis{Name: "kind", Doc: "increment", Values: []string{"count", "weighted"}}
	f := &Family{
		Name: "histogram",
		Doc:  "histogram scatter: indirect read-modify-write of a bucket table",
		Axes: []Axis{axBuckets, axFoot1D, axLocality, axKind},
	}
	f.generate = func(b *build) *ir.Codelet {
		var buckets int64
		fmt.Sscanf(b.draw(axBuckets), "%d", &buckets)
		n := b.capped(foot1DElems(b.draw(axFoot1D)))
		locality := b.draw(axLocality)
		kind := b.draw(axKind)
		if b.footCap > 0 && buckets > b.footCap {
			buckets = b.footCap
		}

		nm := b.sizeParam(n)
		init := ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AC(buckets)}
		if locality == "banded" {
			init = ir.IntInit{Kind: ir.IntInitMod, Bound: ir.AC(buckets)}
		}
		keys := b.array(ir.I64, init, ir.AV(nm))
		key := b.p.LoadE(keys, vi)
		var stmt ir.Stmt
		if kind == "weighted" {
			hist := b.array(ir.F64, ir.IntInit{}, ir.AC(buckets))
			w := b.array(ir.F64, ir.IntInit{}, ir.AV(nm))
			stmt = &ir.Assign{
				LHS: b.p.Ref(hist, key),
				RHS: ir.Add(b.p.LoadE(hist, key), b.p.LoadE(w, vi)),
			}
		} else {
			hist := b.array(ir.I64, ir.IntInit{}, ir.AC(buckets))
			stmt = &ir.Assign{
				LHS: b.p.Ref(hist, key),
				RHS: ir.Add(b.p.LoadE(hist, key), ir.CI(1)),
			}
		}
		return &ir.Codelet{Loop: &ir.Loop{
			Var: "i", Lower: ir.AC(0), Upper: ir.AV(nm), Body: []ir.Stmt{stmt},
		}}
	}
	return f
}

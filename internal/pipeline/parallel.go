package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"fgbs/internal/features"
)

// Parallel experiment runners. The expensive experiments are
// embarrassingly parallel once their unit of work is pure: SweepK's
// unit is one K (sweepPoint), RandomClusterings' unit is one trial
// (randomTrial, seeded per trial index). Each runner fans units out
// over a bounded worker set and merges results back by index, so the
// output is identical — byte for byte — to the serial loop, whatever
// the worker count or scheduling order. Profile is immutable and
// shared read-only by every worker.

// ProgressFunc observes fan-out progress: done units completed out of
// total. It may be called concurrently from worker goroutines and the
// done values may arrive slightly out of order; treat it as a gauge,
// not a strictly monotonic counter. A nil ProgressFunc is ignored.
type ProgressFunc func(done, total int)

// SweepKParallel is SweepKContext with the K values fanned out over
// `workers` goroutines (<=1 means serial). Results are merged in K
// order and are identical to the serial sweep.
func (p *Profile) SweepKParallel(ctx context.Context, mask features.Mask, kMin, kMax, workers int, progress ProgressFunc) ([]SweepPoint, error) {
	var ks []int
	for k := kMin; k <= kMax && k <= p.N(); k++ {
		ks = append(ks, k)
	}
	out := make([]SweepPoint, len(ks))
	err := runIndexed(ctx, len(ks), workers, progress, func(i int) error {
		pt, err := p.sweepPoint(mask, ks[i])
		if err != nil {
			return err
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RandomClusteringsParallel is RandomClusteringsContext with the
// trials fanned out in chunks over `workers` goroutines (<=1 means
// serial). Trial i always runs with the same derived seed, so the
// envelope is identical to the serial run.
func (p *Profile) RandomClusteringsParallel(ctx context.Context, mask features.Mask, k, trials int, t int, seed uint64, workers int, progress ProgressFunc) (RandomClusteringStats, error) {
	res, err := p.guidedStats(mask, k, t)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	seeds := trialSeeds(seed, trials)
	errs := make([]float64, trials)
	runErr := runChunked(ctx, trials, workers, progress, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			e, err := p.randomTrial(mask, seeds[i], k, t)
			if err != nil {
				return err
			}
			errs[i] = e
		}
		return nil
	})
	if runErr != nil {
		return RandomClusteringStats{}, runErr
	}
	return finishRandomStats(res, errs), nil
}

// runIndexed executes n independent units on up to `workers`
// goroutines, reporting progress per unit. The error from the
// lowest-indexed failing unit wins, matching what the serial loop
// would have returned first.
func runIndexed(ctx context.Context, n, workers int, progress ProgressFunc, unit func(i int) error) error {
	return runChunked(ctx, n, workers, progress, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := unit(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// runChunked splits [0, n) into contiguous chunks and executes them on
// up to `workers` goroutines. Chunk boundaries affect only scheduling
// granularity, never results: every unit's outcome is a pure function
// of its index. Progress is reported once per finished chunk.
func runChunked(ctx context.Context, n, workers int, progress ProgressFunc, chunk func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path, chunked anyway so progress granularity
		// matches the parallel path.
		for lo := 0; lo < n; lo += chunkSize(n, 1) {
			hi := lo + chunkSize(n, 1)
			if hi > n {
				hi = n
			}
			if err := chunk(lo, hi); err != nil {
				return err
			}
			if progress != nil {
				progress(hi, n)
			}
		}
		return nil
	}

	size := chunkSize(n, workers)
	type chunkErr struct {
		lo  int
		err error
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  *chunkErr
		doneCnt atomic.Int64
	)
	sem := make(chan struct{}, workers)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			if err := chunk(lo, hi); err != nil {
				mu.Lock()
				// Keep the lowest-indexed failure: it is the one the
				// serial loop would have hit first, so parallel error
				// reporting is deterministic too.
				if firstE == nil || lo < firstE.lo {
					firstE = &chunkErr{lo: lo, err: err}
				}
				mu.Unlock()
				return
			}
			if progress != nil {
				progress(int(doneCnt.Add(int64(hi-lo))), n)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if firstE != nil {
		return firstE.err
	}
	return nil
}

// chunkSize picks the fan-out granularity: enough chunks to keep the
// pool busy and progress lively (4 per worker), capped so tiny inputs
// still split, floored at one unit.
func chunkSize(n, workers int) int {
	size := n / (workers * 4)
	if size > 256 {
		size = 256
	}
	if size < 1 {
		size = 1
	}
	return size
}

package report

import (
	"fmt"
	"io"

	"fgbs/internal/pipeline"
)

// DendrogramTree renders the Ward merge history as an ASCII tree, the
// way Table 3's left margin draws it: leaves are codelets (annotated
// with their final cluster), internal nodes carry the merge height.
// Reading top-down shows which codelets the clustering considers
// closest — duplicated computation patterns merge near height zero.
func DendrogramTree(w io.Writer, p *pipeline.Profile, sub *pipeline.Subset) error {
	if sub.Dendro == nil {
		_, err := fmt.Fprintln(w, "(no dendrogram: externally provided partition)")
		return err
	}
	d := sub.Dendro
	if len(d.Merges) == 0 {
		_, err := fmt.Fprintln(w, p.Codelets[0].Name)
		return err
	}

	// children[id] resolves an internal node to its two children.
	children := make(map[int][2]int, len(d.Merges))
	heights := make(map[int]float64, len(d.Merges))
	for i, m := range d.Merges {
		id := d.N + i
		children[id] = [2]int{m.A, m.B}
		heights[id] = m.Height
	}
	root := d.N + len(d.Merges) - 1

	reps := map[int]bool{}
	for _, r := range sub.Selection.Reps {
		reps[r] = true
	}

	var render func(id int, prefix string, last bool) error
	render = func(id int, prefix string, last bool) error {
		connector, childPrefix := "├── ", prefix+"│   "
		if last {
			connector, childPrefix = "└── ", prefix+"    "
		}
		if id < d.N {
			name := p.Codelets[id].Name
			if reps[id] {
				name = "<" + name + ">"
			}
			_, err := fmt.Fprintf(w, "%s%s%s  [C%d]\n", prefix, connector, name, sub.Selection.Labels[id]+1)
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s+ (h=%.2f)\n", prefix, connector, heights[id]); err != nil {
			return err
		}
		ch := children[id]
		if err := render(ch[0], childPrefix, false); err != nil {
			return err
		}
		return render(ch[1], childPrefix, true)
	}

	if _, err := fmt.Fprintf(w, "* (h=%.2f)\n", heights[root]); err != nil {
		return err
	}
	ch := children[root]
	if err := render(ch[0], "", false); err != nil {
		return err
	}
	return render(ch[1], "", true)
}

package pipeline

import (
	"context"
	"fmt"
	"math"

	"fgbs/internal/features"
	"fgbs/internal/ga"
	"fgbs/internal/rng"
	"fgbs/internal/stats"
)

// SweepPoint is one K of the accuracy/reduction trade-off (Figure 3).
type SweepPoint struct {
	K           int // requested cut
	FinalK      int // after ill-behaved dissolutions
	MedianError []float64
	Reduction   []float64
}

// SweepK evaluates cluster counts kMin..kMax on every target,
// producing Figure 3's two curves per architecture.
func (p *Profile) SweepK(mask features.Mask, kMin, kMax int) ([]SweepPoint, error) {
	return p.SweepKContext(context.Background(), mask, kMin, kMax)
}

// SweepKContext is SweepK with cancellation, checked between cluster
// counts (each K is seconds of clustering + evaluation on a full
// suite). On cancellation the context's error is returned.
func (p *Profile) SweepKContext(ctx context.Context, mask features.Mask, kMin, kMax int) ([]SweepPoint, error) {
	var out []SweepPoint
	for k := kMin; k <= kMax && k <= p.N(); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := p.sweepPoint(mask, k)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// sweepPoint computes one K of the sweep. It is pure in (mask, k), the
// property that lets SweepKParallel fan K values out and merge the
// points back in order with results identical to the serial loop.
//
//fgbs:hot
func (p *Profile) sweepPoint(mask features.Mask, k int) (SweepPoint, error) {
	sub, err := p.Subset(mask, k)
	if err != nil {
		return SweepPoint{}, fmt.Errorf("pipeline: sweep k=%d: %w", k, err)
	}
	pt := SweepPoint{K: k, FinalK: sub.K()}
	pt.MedianError = make([]float64, 0, len(p.Targets))
	pt.Reduction = make([]float64, 0, len(p.Targets))
	for t := range p.Targets {
		ev, err := p.Evaluate(sub, t)
		if err != nil {
			return SweepPoint{}, err
		}
		pt.MedianError = append(pt.MedianError, ev.Summary.Median)
		pt.Reduction = append(pt.Reduction, ev.Reduction.Total)
	}
	return pt, nil
}

// RandomClusteringStats is Figure 7's envelope for one K and one
// target: the best/median/worst median-error over random partitions,
// against the feature-guided clustering's result.
type RandomClusteringStats struct {
	K                   int
	Best, Median, Worst float64
	Guided              float64
}

// RandomClusterings compares the mask-guided Ward clustering against
// `trials` uniformly random partitions into K clusters (Figure 7).
func (p *Profile) RandomClusterings(mask features.Mask, k, trials int, t int, seed uint64) (RandomClusteringStats, error) {
	return p.RandomClusteringsContext(context.Background(), mask, k, trials, t, seed)
}

// RandomClusteringsContext is RandomClusterings with cancellation,
// checked between trials. Every trial draws from its own generator
// seeded by trialSeeds, so trial i's partition depends only on (seed,
// i) — the property that makes RandomClusteringsParallel's per-chunk
// fan-out byte-identical to this serial loop.
func (p *Profile) RandomClusteringsContext(ctx context.Context, mask features.Mask, k, trials int, t int, seed uint64) (RandomClusteringStats, error) {
	res, err := p.guidedStats(mask, k, t)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	seeds := trialSeeds(seed, trials)
	errs := make([]float64, trials)
	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return RandomClusteringStats{}, err
		}
		errs[trial], err = p.randomTrial(mask, seeds[trial], k, t)
		if err != nil {
			return RandomClusteringStats{}, err
		}
	}
	return finishRandomStats(res, errs), nil
}

// guidedStats computes the feature-guided side of the Figure 7 duel.
func (p *Profile) guidedStats(mask features.Mask, k, t int) (RandomClusteringStats, error) {
	sub, err := p.Subset(mask, k)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	ev, err := p.Evaluate(sub, t)
	if err != nil {
		return RandomClusteringStats{}, err
	}
	return RandomClusteringStats{K: k, Guided: ev.Summary.Median}, nil
}

// randomTrial runs one random partition and returns its median error.
func (p *Profile) randomTrial(mask features.Mask, seed uint64, k, t int) (float64, error) {
	labels := randomPartition(rng.New(seed), p.N(), k)
	rsub, err := p.SubsetFromLabels(mask, labels)
	if err != nil {
		// A random cluster can be entirely ill-behaved with no
		// surviving neighbor cluster only if everything is
		// ill-behaved, which Profile construction precludes; any
		// other error is fatal.
		return 0, err
	}
	rev, err := p.Evaluate(rsub, t)
	if err != nil {
		return 0, err
	}
	return rev.Summary.Median, nil
}

// trialSeeds derives one independent sub-seed per trial from the base
// seed (one SplitMix64 stream, consumed up front), so a trial's
// outcome is a pure function of (seed, trial index) regardless of
// which worker runs it.
func trialSeeds(seed uint64, trials int) []uint64 {
	r := rng.New(seed)
	s := make([]uint64, trials)
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}

// finishRandomStats folds per-trial errors into the Figure 7 envelope.
func finishRandomStats(res RandomClusteringStats, errs []float64) RandomClusteringStats {
	res.Best = stats.Min(errs)
	res.Median = stats.Median(errs)
	res.Worst = stats.Max(errs)
	return res
}

// randomPartition draws a uniform surjective assignment of n items to
// k labels (every label non-empty).
func randomPartition(r *rng.RNG, n, k int) []int {
	if k > n {
		k = n
	}
	labels := make([]int, n)
	for {
		for i := range labels {
			labels[i] = r.Intn(k)
		}
		seen := make([]bool, k)
		cnt := 0
		for _, l := range labels {
			if !seen[l] {
				seen[l] = true
				cnt++
			}
		}
		if cnt == k {
			return labels
		}
	}
}

// PerAppPoint is one budget point of Figure 8.
type PerAppPoint struct {
	// RepsPerApp is the representative budget given to each
	// application (total budget = RepsPerApp x number of predictable
	// apps for per-app subsetting).
	RepsPerApp int
	// TotalReps actually used.
	TotalReps int
	// MedianError per target.
	MedianError []float64
	// ExcludedApps lists applications that could not be predicted
	// per-app (all representatives ill-behaved — MG in the paper).
	ExcludedApps []string
}

// PerAppSubsetting runs Steps A-E separately on each application with
// repsPerApp representatives each, aggregating per-codelet errors
// (Figure 8's "Per Application" series). Applications whose clusters
// are all ill-behaved are excluded, as the paper excludes MG.
func (p *Profile) PerAppSubsetting(mask features.Mask, repsPerApp int) (PerAppPoint, error) {
	return p.PerAppSubsettingContext(context.Background(), mask, repsPerApp)
}

// PerAppSubsettingContext is PerAppSubsetting with cancellation,
// checked between applications.
func (p *Profile) PerAppSubsettingContext(ctx context.Context, mask features.Mask, repsPerApp int) (PerAppPoint, error) {
	pt := PerAppPoint{RepsPerApp: repsPerApp, MedianError: make([]float64, len(p.Targets))}
	perTargetErrs := make([][]float64, len(p.Targets))

	appIdx := p.AppIndices()
	for _, name := range sortedKeys(appIdx) {
		if err := ctx.Err(); err != nil {
			return pt, err
		}
		indices := appIdx[name]
		sp := p.SubProfile(indices)
		k := repsPerApp
		if k > len(indices) {
			k = len(indices)
		}
		sub, err := sp.Subset(mask, k)
		if err != nil {
			// Unpredictable application (every cluster ill-behaved).
			pt.ExcludedApps = append(pt.ExcludedApps, name)
			continue
		}
		pt.TotalReps += sub.K()
		for t := range p.Targets {
			ev, err := sp.Evaluate(sub, t)
			if err != nil {
				return pt, err
			}
			perTargetErrs[t] = append(perTargetErrs[t], ev.Errors...)
		}
	}
	for t := range p.Targets {
		pt.MedianError[t] = stats.Median(perTargetErrs[t])
	}
	return pt, nil
}

// CrossAppPoint evaluates shared (whole-suite) subsetting with a
// total representative budget equal to totalReps (Figure 8's "Across
// Applications" series).
func (p *Profile) CrossAppPoint(mask features.Mask, totalReps int) (PerAppPoint, error) {
	sub, err := p.Subset(mask, totalReps)
	if err != nil {
		return PerAppPoint{}, err
	}
	pt := PerAppPoint{TotalReps: sub.K(), MedianError: make([]float64, len(p.Targets))}
	for t := range p.Targets {
		ev, err := p.Evaluate(sub, t)
		if err != nil {
			return pt, err
		}
		pt.MedianError[t] = ev.Summary.Median
	}
	return pt, nil
}

func sortedKeys(m map[string][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// FeatureFitness builds the §4.2 GA fitness over this (training)
// profile: max of the two targets' average prediction errors times
// the elbow-selected cluster count. Lower is better. The returned
// function is safe for concurrent use.
func (p *Profile) FeatureFitness(targetNames ...string) (ga.Fitness, error) {
	return p.FeatureFitnessContext(context.Background(), targetNames...)
}

// FeatureFitnessContext is FeatureFitness with cancellation: once ctx
// is canceled the fitness short-circuits to +Inf, so an in-flight GA
// generation stops burning simulation time on results nobody will
// read (pair it with ga.RunContext, which aborts between
// evaluations).
func (p *Profile) FeatureFitnessContext(ctx context.Context, targetNames ...string) (ga.Fitness, error) {
	var targets []int
	for _, name := range targetNames {
		t, err := p.TargetIndex(name)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("pipeline: fitness needs at least one target")
	}
	return func(mask features.Mask) float64 {
		if ctx.Err() != nil || mask.Count() == 0 {
			return math.Inf(1)
		}
		sub, err := p.Subset(mask, 0) // elbow-selected K
		if err != nil {
			return math.Inf(1)
		}
		worst := 0.0
		for _, t := range targets {
			ev, err := p.Evaluate(sub, t)
			if err != nil {
				return math.Inf(1)
			}
			if ev.Summary.Average > worst {
				worst = ev.Summary.Average
			}
		}
		return worst * float64(sub.K())
	}, nil
}

// Corpus for the determinism wall-clock exemption. The harness loads
// this package under the import path corpus/internal/fault, so the
// pacing calls below are sanctioned — fault injection delays on the
// wall clock by design — while time.Now stays a finding even here.
package faultpkg

import "time"

func delay(d time.Duration) {
	time.Sleep(d)
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

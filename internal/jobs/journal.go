package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fgbs/internal/fault"
)

// The jobs journal: one <Dir>/<id>.json record per job, rewritten
// durably (fsync file, then parent directory) at every state
// transition of a durable job — submit (pending), each run start
// (running, attempts bumped), and the terminal states. A crash
// therefore leaves every job's last durable state on disk, and
// NewManager's recovery scan turns that state back into live jobs:
// terminal records are re-adopted for polling, pending/running records
// are re-enqueued through the Rehydrate hook (the pipeline is
// deterministic, so re-running an interrupted job reproduces the
// result byte for byte), and records a GC already dropped are
// tombstoned so they stay dead. The scan also resumes the job-%08d
// counter past the largest persisted ID — including tombstones and
// unreadable records — so a restarted manager can never hand out an ID
// that already names a file.

// jobSchemaVersion is the journal record layout version. Records from
// other versions (including the version-less result files earlier
// releases wrote) are skipped on recovery with a log line naming the
// file — mirroring the profile cache's version gate — never guessed
// at.
const jobSchemaVersion = 1

// persistedJob is the on-disk form of one job record. Result and Spec
// stay raw JSON in both directions so a re-adopted result replays the
// exact bytes the original run produced.
type persistedJob struct {
	SchemaVersion int    `json:"schemaVersion"`
	ID            string `json:"id"`
	Kind          string `json:"kind,omitempty"`
	State         State  `json:"state,omitempty"`
	// Attempts counts run starts across process lifetimes.
	Attempts int `json:"attempts,omitempty"`
	// Interrupted marks a job that lost at least one process to a
	// crash or restart mid-flight.
	Interrupted bool `json:"interrupted,omitempty"`
	// Tombstone marks a GC'd job: the ID stays reserved, the job stays
	// dead across restarts.
	Tombstone bool            `json:"tombstone,omitempty"`
	Created   time.Time       `json:"created"`
	Started   time.Time       `json:"started"`
	Finished  time.Time       `json:"finished"`
	Err       string          `json:"error,omitempty"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// journal rewrites j's record from its current state. Failures are
// deliberately swallowed: the in-memory job still serves pollers, and
// the disk layer degrades rather than failing submits (the stage
// store's disk breaker is the pattern; here a lost record only costs
// resumability).
func (m *Manager) journal(j *Job) {
	if m.cfg.Dir == "" {
		return
	}
	j.mu.Lock()
	pj := persistedJob{
		SchemaVersion: jobSchemaVersion,
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Attempts:      j.attempts,
		Interrupted:   j.interrupted,
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		Spec:          j.spec,
	}
	if j.err != nil {
		pj.Err = j.err.Error()
	}
	result := j.result
	j.mu.Unlock()
	if pj.State == StateDone && result != nil {
		data, err := json.Marshal(result)
		if err != nil {
			return
		}
		pj.Result = data
	}
	m.writeRecord(pj)
	// The record is durable; a crash from here on loses nothing but
	// progress, which recovery recomputes.
	fault.Crashpoint(fault.CrashAfterJournalWrite)
}

// tombstone replaces a dropped job's record so the ID stays dead (and
// reserved) across restarts. Callers hold m.mu; the write itself needs
// no manager state beyond the directory.
func (m *Manager) tombstone(id string) {
	m.writeRecord(persistedJob{SchemaVersion: jobSchemaVersion, ID: id, Tombstone: true})
}

// writeRecord durably writes one journal record via tmp + fsync +
// rename + parent fsync, so a crash at any instant leaves either the
// old record or the new one, never a torn file.
func (m *Manager) writeRecord(pj persistedJob) {
	if err := os.MkdirAll(m.cfg.Dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(pj)
	if err != nil {
		return
	}
	path := filepath.Join(m.cfg.Dir, pj.ID+".json")
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	// The rename is only durable once the directory entry is; fsync the
	// parent so a crash after the journal write cannot roll it back.
	if d, err := os.Open(m.cfg.Dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// discardRecord removes a job's record outright — only for jobs that
// were never acknowledged to a caller (a submit the full queue
// rejected), where a tombstone would reserve an ID nobody ever saw.
func (m *Manager) discardRecord(id string) {
	if m.cfg.Dir == "" {
		return
	}
	os.Remove(filepath.Join(m.cfg.Dir, id+".json"))
}

// parseJobID extracts the numeric counter from a journal filename
// ("job-00000042.json" → 42). ok is false for files that are not job
// records (tmp files, foreign names).
func parseJobID(name string) (uint64, bool) {
	s, found := strings.CutPrefix(name, "job-")
	if !found {
		return 0, false
	}
	s, found = strings.CutSuffix(s, ".json")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover scans the journal directory and rebuilds the manager's state
// from it. It runs from NewManager before the workers start, so no
// job can race the scan. Every parsable filename advances the ID
// counter — even records too corrupt to decode — because ID reuse
// against a surviving file is how restarts used to silently cross-wire
// old results onto new jobs.
func (m *Manager) recover() {
	if m.cfg.Dir == "" {
		return
	}
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return // nothing persisted yet
	}
	var resume []*Job
	m.mu.Lock()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		n, ok := parseJobID(e.Name())
		if !ok {
			continue
		}
		if n > m.seq {
			m.seq = n
		}
		path := filepath.Join(m.cfg.Dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			m.cfg.Logf("jobs: %s: unreadable job record (%v) — delete or regenerate it", path, err)
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(data, &pj); err != nil {
			m.cfg.Logf("jobs: %s: corrupt job record (%v) — delete or regenerate it", path, err)
			continue
		}
		if pj.SchemaVersion != jobSchemaVersion {
			m.cfg.Logf("jobs: %s has journal version %d, this build reads version %d — delete or regenerate it", path, pj.SchemaVersion, jobSchemaVersion)
			continue
		}
		if pj.Tombstone {
			continue // dead stays dead; the ID stays reserved
		}
		j := m.adopt(pj)
		if j != nil && !j.state.Terminal() {
			resume = append(resume, j)
		}
	}
	m.mu.Unlock()
	// Re-enqueue outside the lock: enqueueing is non-blocking, but the
	// journal rewrites below take j.mu and the disk.
	for _, j := range resume {
		m.resumed.Add(1)
		m.journal(j) // record the interrupted marker and any failure rewrite below
		select {
		case m.queue <- j:
			m.queued.Add(1)
		default:
			m.finalizeUnqueued(j, ErrQueueFull)
		}
	}
}

// adopt turns one journal record into a live job. Terminal records
// come back exactly as persisted (results as raw bytes, replayed
// verbatim). Pending/running records — jobs a crash interrupted — are
// rebuilt through the Rehydrate hook and marked interrupted; without a
// hook (or when it refuses the record) the job is adopted as failed,
// loudly, instead of being silently dropped. Callers hold m.mu.
func (m *Manager) adopt(pj persistedJob) *Job {
	j := &Job{
		id:       pj.ID,
		kind:     pj.Kind,
		spec:     pj.Spec,
		state:    pj.State,
		attempts: pj.Attempts,
		created:  pj.Created,
		started:  pj.Started,
		finished: pj.Finished,
		done:     make(chan struct{}),
	}
	//fgbs:allow guardedby recovery runs before the workers start; no other goroutine can see the job yet
	m.jobs[j.id] = j
	switch {
	case pj.State.Terminal():
		if pj.Err != "" {
			j.err = fmt.Errorf("%s", pj.Err)
		}
		if pj.State == StateDone && pj.Result != nil {
			j.result = pj.Result
		}
		j.interrupted = pj.Interrupted
		close(j.done)
		return j
	default:
		// The previous process died with this job pending or running.
		j.interrupted = true
		j.state = StatePending
		if m.cfg.Rehydrate == nil || len(pj.Spec) == 0 {
			m.finalizeUnqueued(j, ErrNotResumable)
			return j
		}
		fn, err := m.cfg.Rehydrate(pj.Kind, pj.Spec)
		if err != nil {
			m.finalizeUnqueued(j, fmt.Errorf("%w: %v", ErrNotResumable, err))
			return j
		}
		j.fn = fn
		return j
	}
}

// finalizeUnqueued fails a job that never made it (back) onto the
// queue.
func (m *Manager) finalizeUnqueued(j *Job, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err
	j.finished = m.cfg.now()
	j.mu.Unlock()
	m.failed.Add(1)
	m.journal(j)
	close(j.done)
}

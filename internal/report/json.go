package report

import (
	"encoding/json"
	"io"

	"fgbs/internal/pipeline"
)

// JSON encodings of the pipeline's results, shared by the CLI export
// experiment (fgbs export -what evaljson|subsetjson|select) and the
// fgbsd HTTP API: both render the same structures, so a client can
// switch between the one-shot CLI and the long-running service without
// changing its parser.

// SubsetJSON is the wire form of one Subset (Steps C and D).
type SubsetJSON struct {
	Suite      string        `json:"suite,omitempty"`
	Mask       string        `json:"mask"`
	Features   []string      `json:"features"`
	RequestedK int           `json:"requestedK"`
	K          int           `json:"k"`
	Destroyed  int           `json:"destroyedClusters"`
	Clusters   []ClusterJSON `json:"clusters"`
}

// ClusterJSON is one final cluster with its representative.
type ClusterJSON struct {
	ID             int      `json:"id"`
	Representative string   `json:"representative"`
	Members        []string `json:"members"`
}

// EvalJSON is the wire form of one Eval (Step E) on one target.
type EvalJSON struct {
	Target                  string            `json:"target"`
	MedianError             float64           `json:"medianError"`
	AverageError            float64           `json:"averageError"`
	MaxError                float64           `json:"maxError"`
	Reduction               ReductionJSON     `json:"reduction"`
	GeoMeanRealSpeedup      float64           `json:"geoMeanRealSpeedup"`
	GeoMeanPredictedSpeedup float64           `json:"geoMeanPredictedSpeedup"`
	Apps                    []AppEvalJSON     `json:"apps"`
	Codelets                []CodeletEvalJSON `json:"codelets,omitempty"`
}

// ReductionJSON is the Table 5 cost breakdown.
type ReductionJSON struct {
	Total             float64 `json:"total"`
	InvocationFactor  float64 `json:"invocationFactor"`
	ClusteringFactor  float64 `json:"clusteringFactor"`
	FullSeconds       float64 `json:"fullSeconds"`
	ReducedInvSeconds float64 `json:"reducedInvSeconds"`
	RepsSeconds       float64 `json:"repsSeconds"`
}

// AppEvalJSON is one application's measured and predicted times.
type AppEvalJSON struct {
	Name      string  `json:"name"`
	RefSec    float64 `json:"refSeconds"`
	ActualSec float64 `json:"actualSeconds"`
	PredSec   float64 `json:"predictedSeconds"`
	ErrorFrac float64 `json:"errorFraction"`
}

// CodeletEvalJSON is one codelet's per-invocation prediction.
type CodeletEvalJSON struct {
	App       string  `json:"app"`
	Name      string  `json:"codelet"`
	RefSec    float64 `json:"refSeconds"`
	ActualSec float64 `json:"actualSeconds"`
	PredSec   float64 `json:"predictedSeconds"`
	RelError  float64 `json:"relError"`
}

// SelectJSON ranks the target systems for a suite — the paper's
// headline use case: pick the machine to buy from the reduced
// benchmark set alone.
type SelectJSON struct {
	Suite string `json:"suite,omitempty"`
	K     int    `json:"k"`
	// BestPredicted is the target the reduced set recommends (highest
	// predicted geometric-mean speedup over the reference).
	BestPredicted string `json:"bestPredicted"`
	// BestMeasured is the target the full ground truth would pick.
	BestMeasured string            `json:"bestMeasured"`
	Agree        bool              `json:"agree"`
	Ranking      []SelectEntryJSON `json:"ranking"`
	Apps         []AppWinnerJSON   `json:"apps"`
}

// SelectEntryJSON is one target's standing in the ranking, ordered by
// predicted speedup (best first).
type SelectEntryJSON struct {
	Target                  string  `json:"target"`
	GeoMeanPredictedSpeedup float64 `json:"geoMeanPredictedSpeedup"`
	GeoMeanRealSpeedup      float64 `json:"geoMeanRealSpeedup"`
	MedianError             float64 `json:"medianError"`
	Reduction               float64 `json:"reduction"`
}

// AppWinnerJSON is the per-application selection duel: which target
// the prediction picks for one app vs. the ground truth (§4.4 — the
// best machine depends on the application).
type AppWinnerJSON struct {
	App             string `json:"app"`
	PredictedWinner string `json:"predictedWinner"`
	MeasuredWinner  string `json:"measuredWinner"`
	Agree           bool   `json:"agree"`
}

// codeletID qualifies a codelet name with its application, matching
// the (app, codelet) identity the profile cache uses.
func codeletID(p *pipeline.Profile, i int) string {
	return p.Progs[i].Name + "/" + p.Codelets[i].Name
}

// NewSubsetJSON builds the wire form of a subset.
func NewSubsetJSON(p *pipeline.Profile, sub *pipeline.Subset) *SubsetJSON {
	sj := &SubsetJSON{
		Mask:       sub.Mask.String(),
		Features:   sub.Mask.Names(),
		RequestedK: sub.RequestedK,
		K:          sub.K(),
		Destroyed:  sub.Selection.Destroyed,
		Clusters:   make([]ClusterJSON, sub.K()),
	}
	for c := range sj.Clusters {
		sj.Clusters[c].ID = c
		sj.Clusters[c].Representative = codeletID(p, sub.Selection.Reps[c])
	}
	for i, l := range sub.Selection.Labels {
		sj.Clusters[l].Members = append(sj.Clusters[l].Members, codeletID(p, i))
	}
	return sj
}

// NewEvalJSON builds the wire form of one evaluation.
func NewEvalJSON(p *pipeline.Profile, ev *pipeline.Eval) *EvalJSON {
	ej := &EvalJSON{
		Target:       ev.Target.Name,
		MedianError:  ev.Summary.Median,
		AverageError: ev.Summary.Average,
		MaxError:     ev.Summary.Max,
		Reduction: ReductionJSON{
			Total:             ev.Reduction.Total,
			InvocationFactor:  ev.Reduction.InvocationFactor,
			ClusteringFactor:  ev.Reduction.ClusteringFactor,
			FullSeconds:       ev.Reduction.FullSeconds,
			ReducedInvSeconds: ev.Reduction.ReducedInvSeconds,
			RepsSeconds:       ev.Reduction.RepsSeconds,
		},
		GeoMeanRealSpeedup:      ev.GeoMeanRealSpeedup,
		GeoMeanPredictedSpeedup: ev.GeoMeanPredictedSpeedup,
	}
	for _, a := range ev.Apps {
		ej.Apps = append(ej.Apps, AppEvalJSON{
			Name: a.Name, RefSec: a.RefSec, ActualSec: a.ActualSec,
			PredSec: a.PredSec, ErrorFrac: a.ErrorFrac,
		})
	}
	for i := range p.Codelets {
		ej.Codelets = append(ej.Codelets, CodeletEvalJSON{
			App:       p.Progs[i].Name,
			Name:      p.Codelets[i].Name,
			RefSec:    p.RefInApp[i],
			ActualSec: ev.Actual[i],
			PredSec:   ev.Predicted[i],
			RelError:  ev.Errors[i],
		})
	}
	return ej
}

// NewSelectJSON ranks all targets from their evaluations (aligned
// with p.Targets) and decides the per-application winners.
func NewSelectJSON(p *pipeline.Profile, sub *pipeline.Subset, evals []*pipeline.Eval) *SelectJSON {
	sj := &SelectJSON{K: sub.K()}
	for _, ev := range evals {
		sj.Ranking = append(sj.Ranking, SelectEntryJSON{
			Target:                  ev.Target.Name,
			GeoMeanPredictedSpeedup: ev.GeoMeanPredictedSpeedup,
			GeoMeanRealSpeedup:      ev.GeoMeanRealSpeedup,
			MedianError:             ev.Summary.Median,
			Reduction:               ev.Reduction.Total,
		})
	}
	// Insertion sort by predicted speedup, best first: the list is a
	// handful of machines, and stability keeps ties in target order.
	for i := 1; i < len(sj.Ranking); i++ {
		for j := i; j > 0 && sj.Ranking[j].GeoMeanPredictedSpeedup > sj.Ranking[j-1].GeoMeanPredictedSpeedup; j-- {
			sj.Ranking[j], sj.Ranking[j-1] = sj.Ranking[j-1], sj.Ranking[j]
		}
	}
	if len(sj.Ranking) > 0 {
		sj.BestPredicted = sj.Ranking[0].Target
		best := 0
		for i, e := range sj.Ranking {
			if e.GeoMeanRealSpeedup > sj.Ranking[best].GeoMeanRealSpeedup {
				best = i
			}
		}
		sj.BestMeasured = sj.Ranking[best].Target
		sj.Agree = sj.BestPredicted == sj.BestMeasured
	}

	// Per-application winners: fastest predicted vs. fastest measured
	// whole-application time across the targets.
	if len(evals) > 0 {
		for a := range evals[0].Apps {
			w := AppWinnerJSON{App: evals[0].Apps[a].Name}
			predBest, realBest := 0.0, 0.0
			for _, ev := range evals {
				ae := ev.Apps[a]
				if w.PredictedWinner == "" || ae.PredSec < predBest {
					w.PredictedWinner, predBest = ev.Target.Name, ae.PredSec
				}
				if w.MeasuredWinner == "" || ae.ActualSec < realBest {
					w.MeasuredWinner, realBest = ev.Target.Name, ae.ActualSec
				}
			}
			w.Agree = w.PredictedWinner == w.MeasuredWinner
			sj.Apps = append(sj.Apps, w)
		}
	}
	return sj
}

// WriteJSON writes v as indented JSON — the CLI export format.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fgbs/internal/fault"
	"fgbs/internal/stage"
)

// TestCrashRecovery is the kill-mid-job e2e behind ci.sh's crash
// recovery gate: it builds the real fgbsd binary, kills it at each
// named crashpoint while a sweep job is in flight, restarts it against
// the same directories, and asserts the durability contract — the
// interrupted job re-runs to completion with results byte-identical to
// an uninterrupted run, every surviving artifact verifies its
// integrity frame, a deliberately corrupted artifact is quarantined
// (kept as *.corrupt, never served), and /metricz reports the resumed
// and quarantined counters.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly restarts the daemon")
	}
	bin := buildDaemon(t)

	// Reference: an uninterrupted run of the same job on the same seed.
	ref := func() []byte {
		dir := t.TempDir()
		d := startDaemon(t, bin, dir, "")
		defer d.stop(t)
		id := d.submitSweep(t)
		d.pollDone(t, id)
		return d.result(t, id)
	}()
	if len(ref) == 0 {
		t.Fatal("reference run produced an empty result")
	}

	for _, site := range []string{
		fault.CrashAfterJournalWrite,
		fault.CrashMidArtifactWrite,
		fault.CrashBeforeRename,
	} {
		t.Run(strings.ReplaceAll(site, "/", "_"), func(t *testing.T) {
			dir := t.TempDir()
			armed := startDaemon(t, bin, dir, site)
			// The submit may fail mid-request when the crashpoint fires
			// inside the submit path itself (after-journal-write dies
			// before the 202 is written); the journal record is durable
			// either way, which is the contract under test.
			armed.trySubmitSweep()
			armed.waitCrash(t)

			clean := startDaemon(t, bin, dir, "")
			defer clean.stop(t)
			clean.pollDone(t, "job-00000001")
			if got := clean.result(t, "job-00000001"); !bytes.Equal(got, ref) {
				t.Errorf("resumed result differs from uninterrupted run:\n got %d bytes: %.120s\nwant %d bytes: %.120s", len(got), got, len(ref), ref)
			}
			if n := clean.metricInt(t, "jobs", "resumed"); n < 1 {
				t.Errorf("metricz jobs.resumed = %d, want >= 1", n)
			}
			verifyArtifacts(t, dir)
		})
	}

	t.Run("quarantine", func(t *testing.T) {
		dir := t.TempDir()
		d := startDaemon(t, bin, dir, "")
		id := d.submitSweep(t)
		d.pollDone(t, id)
		d.stop(t)

		// Corrupt the published profile artifact the way a torn write
		// would, and rewind the job's journal record to running — the
		// state a crash mid-job would have left — so the restart both
		// resumes the job and trips over the corruption.
		corruptOneArtifact(t, dir)
		rewindJobRecord(t, dir, id)

		clean := startDaemon(t, bin, dir, "")
		defer clean.stop(t)
		clean.pollDone(t, id)
		if got := clean.result(t, id); !bytes.Equal(got, ref) {
			t.Errorf("result after quarantine differs from uninterrupted run (%d vs %d bytes)", len(got), len(ref))
		}
		if n := clean.metricInt(t, "jobs", "resumed"); n < 1 {
			t.Errorf("metricz jobs.resumed = %d, want >= 1", n)
		}
		if n := clean.metricInt(t, "stages", "disk", "quarantined"); n < 1 {
			t.Errorf("metricz stages.disk.quarantined = %d, want >= 1", n)
		}
		quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
		if err != nil || len(quarantined) == 0 {
			t.Errorf("no *.corrupt file kept in %s (err %v)", dir, err)
		}
		verifyArtifacts(t, dir)
	})
}

// buildDaemon compiles fgbsd once into the test's temp space.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fgbsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building fgbsd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running fgbsd under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
	out  *lockedBuffer
	exit chan error
}

// lockedBuffer collects subprocess output across goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon launches fgbsd on an ephemeral port over dir, arming the
// given crashpoint site ("" for none), and waits until it serves.
// extra flags (say -peers for the peer-fetch e2e) are appended.
func startDaemon(t *testing.T, bin, dir, crashSite string, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-suites", "syn-smoke",
		"-profiledir", dir,
		"-seed", "20140215",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	env := make([]string, 0, len(os.Environ())+1)
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, fault.CrashEnv+"=") {
			env = append(env, kv)
		}
	}
	if crashSite != "" {
		env = append(env, fault.CrashEnv+"="+crashSite)
	}
	cmd.Env = env

	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	out := &lockedBuffer{}
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: out, exit: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.exit
	})

	// The serving line carries the kernel-chosen port.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(stdout, out))
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, " on "); ok && strings.HasPrefix(line, "fgbsd: serving") {
				select {
				case addrc <- strings.TrimSpace(addr):
				default:
				}
			}
		}
	}()
	go func() { d.exit <- cmd.Wait() }()

	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case err := <-d.exit:
		d.exit <- err
		t.Fatalf("fgbsd exited before serving: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("fgbsd did not start serving\n%s", out.String())
	}
	return d
}

// stop shuts the daemon down and waits for it to exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(os.Interrupt)
	select {
	case <-d.exit:
		d.exit <- nil // let the Cleanup's receive proceed
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("fgbsd did not shut down\n%s", d.out.String())
	}
}

// waitCrash waits for the armed crashpoint to kill the daemon and
// asserts the distinctive exit code.
func (d *daemon) waitCrash(t *testing.T) {
	t.Helper()
	select {
	case err := <-d.exit:
		d.exit <- err
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != fault.CrashExitCode {
			t.Fatalf("daemon exit = %v, want crashpoint code %d\n%s", err, fault.CrashExitCode, d.out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("armed daemon did not crash\n%s", d.out.String())
	}
}

const sweepBody = `{"kind":"sweep","suite":"syn-smoke","kmin":2,"kmax":4}`

// submitSweep submits the canonical test job and returns its ID.
func (d *daemon) submitSweep(t *testing.T) string {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var jj struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &jj); err != nil || jj.ID == "" {
		t.Fatalf("submit response %q: %v", body, err)
	}
	return jj.ID
}

// trySubmitSweep submits without asserting success — for armed daemons
// that may die mid-request.
func (d *daemon) trySubmitSweep() {
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// pollDone polls the job until it reaches done, failing on any other
// terminal state.
func (d *daemon) pollDone(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("poll %s: %v\n%s", id, err, d.out.String())
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var jj struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &jj); err != nil {
			t.Fatalf("poll %s: %v in %q", id, err, body)
		}
		switch jj.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached %s: %s\n%s", id, jj.State, jj.Error, d.out.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s not done before deadline\n%s", id, d.out.String())
}

// result fetches the completed job's result bytes.
func (d *daemon) result(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, body)
	}
	return body
}

// metricInt digs an integer out of /metricz by key path.
func (d *daemon) metricInt(t *testing.T, path ...string) int64 {
	t.Helper()
	resp, err := http.Get(d.base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	var cur any = m
	for _, k := range path {
		obj, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("metricz path %v: %T at %q", path, cur, k)
		}
		cur = obj[k]
	}
	f, ok := cur.(float64)
	if !ok {
		t.Fatalf("metricz path %v = %T(%v), want number", path, cur, cur)
	}
	return int64(f)
}

// verifyArtifacts checks every surviving stage artifact against its
// integrity frame.
func verifyArtifacts(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		framed, err := stage.VerifyFrame(data)
		if err != nil {
			t.Errorf("artifact %s fails verification: %v", e.Name(), err)
		}
		if framed {
			checked++
		}
	}
	if checked == 0 {
		t.Errorf("no framed artifacts survived in %s", dir)
	}
}

// corruptOneArtifact truncates a published framed artifact in place.
func corruptOneArtifact(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if framed, _ := stage.VerifyFrame(data); !framed {
			continue
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no framed artifact to corrupt")
}

// rewindJobRecord rewrites a done job's journal record to running —
// the state a crash mid-job leaves behind — so a restart resumes it.
func rewindJobRecord(t *testing.T, dir, id string) {
	t.Helper()
	path := filepath.Join(dir, "jobs", id+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec["state"] = "running"
	delete(rec, "result")
	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

package stage

import (
	"container/list"
	"context"
	"sync"
)

// MemoryBackend is the in-memory byte tier: an LRU over encoded
// artifact bytes, keyed by content address. It is the fast front of a
// chain whose lower tiers are slow (disk, peer) — a promotion target,
// never an authority — so eviction is silent and Len-bounded.
type MemoryBackend struct {
	cap int

	mu    sync.Mutex
	ll    *list.List            // front = most recently used; guarded by mu
	items map[Key]*list.Element // guarded by mu
}

// memEntry is one LRU slot of the byte tier.
type memEntry struct {
	key  Key
	data []byte
}

// NewMemoryBackend builds a memory tier holding at most capacity
// artifacts.
func NewMemoryBackend(capacity int) *MemoryBackend {
	if capacity <= 0 {
		capacity = 1
	}
	return &MemoryBackend{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Name identifies the tier.
func (m *MemoryBackend) Name() string { return TierMemory }

// Get returns the stored bytes for ref.Key, refreshing its recency.
func (m *MemoryBackend) Get(ctx context.Context, ref Ref) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[ref.Key]
	if !ok {
		return nil, ErrNotFound
	}
	m.ll.MoveToFront(el)
	return el.Value.(*memEntry).data, nil
}

// Put stores a copy of data under ref.Key, evicting the least recently
// used entries past capacity.
func (m *MemoryBackend) Put(ctx context.Context, ref Ref, data []byte) (bool, error) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[ref.Key]; ok {
		el.Value.(*memEntry).data = cp
		m.ll.MoveToFront(el)
		return true, nil
	}
	m.items[ref.Key] = m.ll.PushFront(&memEntry{key: ref.Key, data: cp})
	for m.ll.Len() > m.cap {
		last := m.ll.Back()
		m.ll.Remove(last)
		delete(m.items, last.Value.(*memEntry).key)
	}
	return true, nil
}

// Delete drops ref.Key from the tier.
func (m *MemoryBackend) Delete(ctx context.Context, ref Ref) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[ref.Key]; ok {
		m.ll.Remove(el)
		delete(m.items, ref.Key)
	}
	return nil
}

// Quarantine drops the corrupt entry — there is nothing on disk to
// keep for forensics, and dropping it reopens the slot for a clean
// promotion.
func (m *MemoryBackend) Quarantine(ctx context.Context, ref Ref) {
	m.Delete(ctx, ref)
}

// Len returns the current artifact count.
func (m *MemoryBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Stats reports the tier's base row; traffic counters come from the
// decorators.
func (m *MemoryBackend) Stats() TierStats {
	return TierStats{State: DiskOK, Entries: m.Len()}
}

package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fgbs/internal/arch"
	"fgbs/internal/extract"
	"fgbs/internal/features"
	"fgbs/internal/ir"
	"fgbs/internal/maqao"
	"fgbs/internal/sim"
)

// Profile holds every measurement the experiments need: Step B's
// reference profile and features, the standalone (microbenchmark)
// times, and the full-suite ground truth on each target.
//
// A Profile is immutable after NewProfile/ReadProfile returns: Subset,
// Evaluate, NormalizedPoints and the experiment helpers only read it
// (NormalizedPoints copies rows before normalizing), so one Profile
// may be shared by any number of concurrent goroutines — the property
// internal/server relies on to answer queries against a single shared
// profile per suite, and internal/stage relies on to share stored
// artifacts without copying.
type Profile struct {
	Progs    []*ir.Program
	Codelets []*ir.Codelet
	Ref      *arch.Machine
	Targets  []*arch.Machine

	// Per codelet i:
	RefInApp      []float64 // t_ref: in-app median seconds on reference
	RefStandalone []float64 // extracted microbenchmark on reference
	IllBehaved    []bool    // §3.4 screening outcome on reference
	Discarded     []bool    // below the measurement floor
	Features      [][]float64

	// Per target t, per codelet i:
	TargetInApp      [][]float64 // ground truth
	TargetStandalone [][]float64 // microbenchmark on target

	// Failure markers, set only when profiling ran under a fault-aware
	// Measurer (Options.Measurer) and a measurement failed past its
	// retry budget. Both stay nil on a clean build, keeping serialized
	// profiles byte-identical to fault-unaware ones.
	//
	// RefFailed[i] means codelet i lost a reference measurement: it is
	// also marked IllBehaved so represent.Select never picks it as a
	// representative. TargetFailed[t][i] means codelet i has no
	// trustworthy ground truth on target t; Evaluate excludes it from
	// the error statistics instead of comparing against zeros.
	RefFailed    []bool
	TargetFailed [][]bool
}

// Degraded reports whether the profile carries failure markers — i.e.
// it was built under fault escalation and at least one measurement
// exhausted its retries. Servers use this to mark derived answers as
// degraded rather than presenting them as clean results.
func (p *Profile) Degraded() bool {
	return p.RefFailed != nil || p.TargetFailed != nil
}

func (p *Profile) refFailedAt(i int) bool {
	return p.RefFailed != nil && p.RefFailed[i]
}

func (p *Profile) targetFailedAt(t, i int) bool {
	return p.TargetFailed != nil && p.TargetFailed[t][i]
}

// NewProfile runs Steps A and B over the given suite programs and
// gathers all measurements used downstream. Measurements run in
// parallel; results are deterministic.
func NewProfile(progs []*ir.Program, opts Options) (*Profile, error) {
	return NewProfileContext(context.Background(), progs, opts)
}

// NewProfileContext is NewProfile with cancellation: profiling is the
// expensive step (every codelet is simulated on every machine), and a
// server shutting down mid-build must not leave goroutines simulating
// into the void. Cancellation is checked between per-codelet
// measurement jobs; on cancellation the context's error is returned
// and the partial profile is discarded.
func NewProfileContext(ctx context.Context, progs []*ir.Program, opts Options) (*Profile, error) {
	ps, cs, err := Detect(progs)
	if err != nil {
		return nil, err
	}
	return newProfileDetected(ctx, ps, cs, opts)
}

// newProfileDetected is Step B alone: profiling over an already
// detected codelet inventory. The stage engine calls it with the
// memoized detect artifact, so Detect runs exactly once even on a
// cold run; NewProfileContext detects inline for monolithic callers.
// ps and cs are the aligned slices Detect returns and are only read.
func newProfileDetected(ctx context.Context, ps []*ir.Program, cs []*ir.Codelet, opts Options) (*Profile, error) {
	if opts.Reference == nil {
		opts.Reference = arch.Reference()
	}
	if opts.Targets == nil {
		opts.Targets = arch.Targets()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	n := len(cs)
	pr := &Profile{
		Progs: ps, Codelets: cs,
		Ref: opts.Reference, Targets: opts.Targets,
		RefInApp:      make([]float64, n),
		RefStandalone: make([]float64, n),
		IllBehaved:    make([]bool, n),
		Discarded:     make([]bool, n),
		Features:      make([][]float64, n),
	}
	for range opts.Targets {
		pr.TargetInApp = append(pr.TargetInApp, make([]float64, n))
		pr.TargetStandalone = append(pr.TargetStandalone, make([]float64, n))
	}

	// Shared datasets, one per distinct program (ps repeats a program
	// once per codelet).
	datasets := make(map[*ir.Program]*sim.Dataset)
	for _, p := range ps {
		if _, ok := datasets[p]; ok {
			continue
		}
		ds, err := sim.BuildDataset(p, opts.Seed)
		if err != nil {
			return nil, err
		}
		datasets[p] = ds
	}

	measure := func(i int, m *arch.Machine, mode sim.Mode) (*sim.Measurement, error) {
		o := sim.Options{
			Machine: m, Mode: mode, Seed: opts.Seed,
			Dataset: datasets[ps[i]], ProbeCycles: -1, NoiseAmp: -1,
		}
		if opts.Measurer != nil {
			return opts.Measurer.Measure(ctx, ps[i], cs[i], o)
		}
		return sim.Measure(ps[i], cs[i], o)
	}

	// With a fault-aware Measurer, a measurement that exhausted its
	// retries degrades the codelet instead of aborting the whole
	// profile. Cancellation still aborts: a dying server is not a
	// flaky target.
	escalate := opts.Measurer != nil
	if escalate {
		pr.RefFailed = make([]bool, n)
		for range opts.Targets {
			pr.TargetFailed = append(pr.TargetFailed, make([]bool, n))
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i := 0; i < n && ctx.Err() == nil; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			refIn, err := measure(i, pr.Ref, sim.ModeInApp)
			if err != nil {
				if escalate && ctx.Err() == nil {
					// The reference in-app time anchors everything
					// derived for this codelet (features, the model's
					// matrix row, screening); without it the codelet
					// is screened out entirely.
					pr.RefFailed[i] = true
					pr.IllBehaved[i] = true
					pr.Discarded[i] = true
					pr.Features[i] = make([]float64, features.NumFeatures)
				} else {
					errs[i] = err
				}
				return
			}
			pr.RefInApp[i] = refIn.Seconds
			pr.Discarded[i] = refIn.Counters.Cycles < MinMeasurableCycles

			st := maqao.Analyze(ps[i], cs[i], pr.Ref)
			pr.Features[i] = features.Assemble(ps[i], cs[i], refIn, st)

			refSa, err := measure(i, pr.Ref, sim.ModeStandalone)
			if err != nil {
				if escalate && ctx.Err() == nil {
					// Standalone extraction failed: mark ill-behaved
					// so represent.Select never picks this codelet,
					// but keep the in-app anchor and features.
					pr.RefFailed[i] = true
					pr.IllBehaved[i] = true
				} else {
					errs[i] = err
					return
				}
			} else {
				pr.RefStandalone[i] = refSa.Seconds
				pr.IllBehaved[i] = extract.IllBehaved(refSa.Seconds, refIn.Seconds)
			}

			for t, m := range pr.Targets {
				tin, err := measure(i, m, sim.ModeInApp)
				if err == nil {
					var tsa *sim.Measurement
					if tsa, err = measure(i, m, sim.ModeStandalone); err == nil {
						pr.TargetInApp[t][i] = tin.Seconds
						pr.TargetStandalone[t][i] = tsa.Seconds
						continue
					}
				}
				if escalate && ctx.Err() == nil {
					pr.TargetFailed[t][i] = true
					continue
				}
				errs[i] = err
				return
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	pr.trimFailureMarkers()
	return pr, nil
}

// trimFailureMarkers drops all-false failure slices so a clean build —
// even one that ran under fault escalation — serializes identically to
// a fault-unaware one.
func (p *Profile) trimFailureMarkers() {
	if !anyTrue(p.RefFailed) {
		p.RefFailed = nil
	}
	any := false
	for _, row := range p.TargetFailed {
		if anyTrue(row) {
			any = true
			break
		}
	}
	if !any {
		p.TargetFailed = nil
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// N returns the codelet count.
func (p *Profile) N() int { return len(p.Codelets) }

// TargetIndex finds a target machine by name.
func (p *Profile) TargetIndex(name string) (int, error) {
	for t, m := range p.Targets {
		if m.Name == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown target %q", name)
}

// SubProfile restricts the profile to the given codelet indices (used
// by the per-application subsetting experiment of Figure 8). The
// returned profile shares the underlying measurements.
func (p *Profile) SubProfile(indices []int) *Profile {
	sp := &Profile{Ref: p.Ref, Targets: p.Targets}
	for _, i := range indices {
		sp.Progs = append(sp.Progs, p.Progs[i])
		sp.Codelets = append(sp.Codelets, p.Codelets[i])
		sp.RefInApp = append(sp.RefInApp, p.RefInApp[i])
		sp.RefStandalone = append(sp.RefStandalone, p.RefStandalone[i])
		sp.IllBehaved = append(sp.IllBehaved, p.IllBehaved[i])
		sp.Discarded = append(sp.Discarded, p.Discarded[i])
		sp.Features = append(sp.Features, p.Features[i])
		if p.RefFailed != nil {
			sp.RefFailed = append(sp.RefFailed, p.RefFailed[i])
		}
	}
	for t := range p.Targets {
		in := make([]float64, 0, len(indices))
		sa := make([]float64, 0, len(indices))
		for _, i := range indices {
			in = append(in, p.TargetInApp[t][i])
			sa = append(sa, p.TargetStandalone[t][i])
		}
		sp.TargetInApp = append(sp.TargetInApp, in)
		sp.TargetStandalone = append(sp.TargetStandalone, sa)
		if p.TargetFailed != nil {
			fa := make([]bool, 0, len(indices))
			for _, i := range indices {
				fa = append(fa, p.TargetFailed[t][i])
			}
			sp.TargetFailed = append(sp.TargetFailed, fa)
		}
	}
	sp.trimFailureMarkers()
	return sp
}

// AppIndices groups codelet indices by application name.
func (p *Profile) AppIndices() map[string][]int {
	out := map[string][]int{}
	for i, prog := range p.Progs {
		out[prog.Name] = append(out[prog.Name], i)
	}
	return out
}

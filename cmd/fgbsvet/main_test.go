package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fgbs/internal/analysis"
)

// TestRunCleanTree is the end-to-end acceptance gate: fgbsvet over the
// real module exits 0 with no output. LoadModule walks up from the
// test's working directory to the repository's go.mod.
func TestRunCleanTree(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"./..."}); code != 0 {
		t.Fatalf("fgbsvet ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed:\n%s", stdout.String())
	}
}

// TestRunFindings: on a module with a violation, fgbsvet exits 1 and
// prints a file:line:col diagnostic.
func TestRunFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, nil); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "clock.go:6:9:") || !strings.Contains(out, "[determinism]") {
		t.Errorf("diagnostic output missing file:line:col or check name:\n%s", out)
	}
}

// TestRunChecksFlagFilters: -checks narrows the suite, so the same
// violation passes when only an unrelated check runs.
func TestRunChecksFlagFilters(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-checks", "floatcompare,errwrap"}); code != 0 {
		t.Fatalf("exit %d, want 0 (determinism disabled)\nstdout:\n%s", code, stdout.String())
	}
}

func TestRunRejectsBadInvocations(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown check", []string{"-checks", "ghost"}, "valid: determinism, ctxpropagation, floatcompare, errwrap, guardedby, lockorder, goroutineleak, keypurity, allochot"},
		{"empty checks", []string{"-checks", ","}, "lists no checks"},
		{"bad flag", []string{"-bogus"}, "-bogus"},
		{"negative workers", []string{"-workers", "-3"}, "-workers must be >= 0"},
		{"unknown package", []string{"./nonexistent"}, "no packages match"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if code := run(&stdout, &stderr, c.args); code != 2 {
				t.Fatalf("run(%v) = exit %d, want 2", c.args, code)
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q lacks %q", stderr.String(), c.want)
			}
		})
	}
}

// TestListGolden pins -list's exact output: alphabetically sorted, one
// aligned line per check. A new or renamed check must update this
// golden deliberately.
func TestListGolden(t *testing.T) {
	const golden = `allochot         loops in //fgbs:hot functions must avoid per-iteration allocation (fmt, string +, unpreallocated append, interface boxing)
ctxpropagation   in ctx-holding functions, forbid context.Background()/TODO() args and non-Context variants when a Context variant exists
determinism      forbid time.Now, wall-clock sleeps, math/rand, and os.Exit-style aborts: use internal/rng streams, injected clocks, sleep hooks, and returned errors
errwrap          forbid fmt.Errorf formatting an error operand without %w
floatcompare     forbid ==/!=/switch on floating-point operands outside tests and internal/stats
goroutineleak    goroutines launched from ctx-holding functions must observe ctx.Done() or be WaitGroup-joined
guardedby        fields annotated '// guarded by <mu>' must only be touched under <mu>: RLock suffices to read, Lock is required to write
keypurity        values reaching stage.KeyBuilder writes must not derive from map order, time, rand, or pointer formatting
lockorder        locks must be released on every return path; the package lock-acquisition graph must be acyclic
`
	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-list"}); code != 0 {
		t.Fatalf("-list = exit %d", code)
	}
	if stdout.String() != golden {
		t.Errorf("-list output diverged from golden:\n--- got ---\n%s--- want ---\n%s", stdout.String(), golden)
	}
	names := sortedListNames(t, stdout.String())
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list names are not sorted: %v", names)
	}
}

// sortedListNames extracts the first column of -list output.
func sortedListNames(t *testing.T, out string) []string {
	t.Helper()
	var names []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			t.Fatalf("blank -list line in %q", out)
		}
		names = append(names, f[0])
	}
	return names
}

// TestJSONReport: -json writes a machine-readable artifact with the
// findings and one timing entry per check, while the vet-style lines
// still print to stdout.
func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)
	artifact := filepath.Join(dir, "vet.json")

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-json", artifact}); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "clock.go:6:9:") {
		t.Errorf("-json to a file should keep vet lines on stdout, got:\n%s", stdout.String())
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if report.Packages != 1 {
		t.Errorf("report.Packages = %d, want 1", report.Packages)
	}
	if len(report.Findings) != 1 || report.Findings[0].Check != "determinism" || report.Findings[0].Line != 6 {
		t.Errorf("report.Findings = %+v, want one determinism finding at line 6", report.Findings)
	}
	if len(report.Checks) != len(analysis.CheckNames()) {
		t.Errorf("report.Checks has %d entries, want one per check (%d)", len(report.Checks), len(analysis.CheckNames()))
	}
	for _, c := range report.Checks {
		if c.ElapsedMS < 0 {
			t.Errorf("check %s has negative elapsed %v", c.Check, c.ElapsedMS)
		}
	}
}

// TestJSONToStdout: with -json -, stdout carries only the report so a
// pipe consumer can parse it without stripping vet lines.
func TestJSONToStdout(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clock.go"),
		"package scratch\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run(&stdout, &stderr, []string{"-json", "-"}); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(stdout.String()), &report); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != 1 {
		t.Errorf("report.Findings = %+v, want exactly one", report.Findings)
	}
}

// TestWorkersByteIdentical: the parallel driver must print exactly what
// the serial one does, finding for finding.
func TestWorkersByteIdentical(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a", "a.go"),
		"package a\n\nimport \"time\"\n\nfunc Stamp() time.Time {\n\treturn time.Now()\n}\n")
	writeFile(t, filepath.Join(dir, "b", "b.go"),
		"package b\n\nimport \"math/rand\"\n\nfunc Roll() int {\n\treturn rand.Int()\n}\n")
	t.Chdir(dir)

	var serial, parallel, stderr strings.Builder
	if code := run(&serial, &stderr, []string{"-workers", "1", "./..."}); code != 1 {
		t.Fatalf("serial exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if code := run(&parallel, &stderr, []string{"-workers", "8", "./..."}); code != 1 {
		t.Fatalf("parallel exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel output diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial.String(), parallel.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

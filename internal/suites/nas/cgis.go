package nas

import (
	"fgbs/internal/ir"
)

// CG proportions. The conjugate-gradient application is dominated by
// one sparse matrix-vector codelet (the paper: a single codelet is 95%
// of CG's execution time). Its working set is sized to fit Atom's L2,
// and each in-application invocation starts from a trashed cache while
// the extracted microbenchmark keeps it resident — the standalone run
// incurs substantially fewer misses, which out-of-order reference
// machines hide (it passes the 10% screening on Nehalem) but the
// in-order Atom does not: the paper's CG-on-Atom anomaly.
const (
	cgRows   = 220
	cgNNZ    = 7
	cgSweeps = 8  // inner CG repetitions folded into one invocation
	cgPasses = 90 // repetitions for the small vector kernels
)

// CG builds the conjugate-gradient proxy (7 codelets).
func CG() *ir.Program {
	p := ir.NewProgram("cg")
	p.SetParam("rows", cgRows)
	p.SetParam("nnz", cgRows*cgNNZ)
	p.SetParam("sweeps", cgSweeps)
	p.SetParam("passes", cgPasses)
	p.UncoveredFraction = 0.05

	p.AddArray("aval", ir.F64, ir.AV("nnz"))
	acol := p.AddArray("acol", ir.I64, ir.AV("nnz"))
	acol.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("rows")}
	for _, v := range []string{"x", "y", "pv", "q", "r", "z"} {
		p.AddArray(v, ir.F64, ir.AV("rows"))
	}
	p.AddScalar("rho", ir.F64)
	vk := ir.V("k")

	// The dominant codelet: sweeps x (ELL sparse matrix-vector
	// product with a gathered x).
	matvec := &ir.Codelet{
		Name:        "cg_matvec",
		Pattern:     "DP: sparse matrix-vector product (gather)",
		Invocations: 1875, // 75 outer x 25 inner CG iterations
		Loop: &ir.Loop{Var: "s", Lower: ir.AC(0), Upper: ir.AV("sweeps"), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("rows"), Body: []ir.Stmt{
				&ir.Loop{Var: "k", Lower: ir.AC(0), Upper: ir.AC(cgNNZ), Body: []ir.Stmt{
					&ir.Assign{
						LHS: p.Ref("y", vi),
						RHS: ir.Add(p.LoadE("y", vi),
							ir.Mul(
								p.LoadE("aval", ir.Add(ir.Mul(vi, ir.CI(cgNNZ)), vk)),
								p.LoadE("x", p.LoadE("acol", ir.Add(ir.Mul(vi, ir.CI(cgNNZ)), vk))))),
					},
				}},
			}},
		}},
	}
	matvec.SourceRef = "CG/cg.f:556-564"
	p.MustAddCodelet(matvec)

	small := func(name, pattern string, body func() ir.Stmt, inv int, src string) {
		c := &ir.Codelet{
			Name: name, Pattern: pattern, Invocations: inv, SourceRef: src,
			// The small vector kernels share the CG vectors, which
			// stay cache-resident between invocations.
			WarmInApp: true,
			Loop: &ir.Loop{Var: "r", Lower: ir.AC(0), Upper: ir.AV("passes"), Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("rows"), Body: []ir.Stmt{body()}},
			}},
		}
		p.MustAddCodelet(c)
	}

	small("cg_dot_pq", "DP: dot product", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("rho"),
			RHS: ir.Add(p.LoadE("rho"), ir.Mul(p.LoadE("pv", vi), p.LoadE("q", vi)))}
	}, 75, "CG/cg.f:585-590")
	small("cg_axpy_zp", "DP: axpy", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("z", vi),
			RHS: ir.Add(p.LoadE("z", vi), ir.Mul(ir.CF(0.4), p.LoadE("pv", vi)))}
	}, 75, "CG/cg.f:598-603")
	small("cg_axpy_rq", "DP: axpy (subtract)", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("r", vi),
			RHS: ir.Sub(p.LoadE("r", vi), ir.Mul(ir.CF(0.4), p.LoadE("q", vi)))}
	}, 75, "CG/cg.f:604-609")
	small("cg_norm_r", "DP: norm reduction", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("rho"),
			RHS: ir.Add(p.LoadE("rho"), ir.Mul(p.LoadE("r", vi), p.LoadE("r", vi)))}
	}, 75, "CG/cg.f:615-620")
	small("cg_update_p", "DP: vector update", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("pv", vi),
			RHS: ir.Add(p.LoadE("r", vi), ir.Mul(ir.CF(0.6), p.LoadE("pv", vi)))}
	}, 75, "CG/cg.f:626-631")
	small("cg_init_x", "DP: vector reinitialization", func() ir.Stmt {
		return &ir.Assign{LHS: p.Ref("x", vi),
			RHS: ir.Add(ir.CF(1), ir.Mul(ir.CF(0.5), ir.Mul(p.LoadE("x", vi), p.LoadE("x", vi))))}
	}, 8, "CG/cg.f:245-250")
	return p
}

// IS sizes: 256K integer keys (2 MB, streaming) histogrammed into
// 1024 buckets (8 KB, cache resident).
const (
	isBuckets = 1024
	isPasses  = 60 // repetitions for the small bucket-table kernels
)

// IS builds the integer-sort proxy (9 codelets, 10 ranking
// iterations).
func IS() *ir.Program {
	p := ir.NewProgram("is")
	p.SetParam("n", vecN)
	p.SetParam("b", isBuckets)
	p.SetParam("passes", isPasses)
	p.UncoveredFraction = 0.08

	key := p.AddArray("key", ir.I64, ir.AV("n"))
	key.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("b")}
	perm := p.AddArray("perm", ir.I64, ir.AV("n"))
	perm.Init = ir.IntInit{Kind: ir.IntInitUniform, Bound: ir.AV("n")}
	p.AddArray("kb", ir.I64, ir.AV("n"))
	p.AddArray("kb2", ir.I64, ir.AV("n"))
	p.AddArray("hist", ir.I64, ir.AV("b"))
	p.AddArray("ptr", ir.I64, ir.AT("b", 1).PlusK(1))
	p.AddArray("rank", ir.I64, ir.AV("n"))
	p.AddScalar("acc", ir.I64)

	add := func(c *ir.Codelet, src string) {
		c.SourceRef = src
		p.MustAddCodelet(c)
	}

	add(&ir.Codelet{
		Name: "is_create_seq", Pattern: "INT: pseudo-random key generation", Invocations: 2,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("kb", vi),
				RHS: ir.Mod(ir.Add(ir.Mul(vi, ir.CI(1103515245)), ir.CI(12345)), ir.CI(isBuckets)),
			},
		}},
	}, "IS/is.c:310-330")

	add(&ir.Codelet{
		Name: "is_bucket_count", Pattern: "INT: histogram scatter", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("hist", p.LoadE("key", vi)),
				RHS: ir.Add(p.LoadE("hist", p.LoadE("key", vi)), ir.CI(1)),
			},
		}},
	}, "IS/is.c:380-390")

	add(&ir.Codelet{
		Name: "is_bucket_ptr", Pattern: "INT: prefix sum recurrence", Invocations: 10,
		Loop: &ir.Loop{Var: "r", Lower: ir.AC(0), Upper: ir.AV("passes"), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(1), Upper: ir.AV("b"), Body: []ir.Stmt{
				&ir.Assign{
					LHS: p.Ref("ptr", vi),
					RHS: ir.Add(p.LoadE("ptr", ir.Sub(vi, ir.CI(1))), p.LoadE("hist", ir.Sub(vi, ir.CI(1)))),
				},
			}},
		}},
	}, "IS/is.c:394-400")

	add(&ir.Codelet{
		Name: "is_rank", Pattern: "INT: rank gather", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("rank", vi),
				RHS: p.LoadE("ptr", p.LoadE("key", vi)),
			},
		}},
	}, "IS/is.c:404-412")

	add(&ir.Codelet{
		Name: "is_partial_verify", Pattern: "INT: random gather reduction", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("acc"),
				RHS: ir.Add(p.LoadE("acc"), p.LoadE("key", p.LoadE("perm", vi))),
			},
		}},
	}, "IS/is.c:420-440")

	add(&ir.Codelet{
		Name: "is_key_shift", Pattern: "INT: shift and mask", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{
				LHS: p.Ref("kb2", vi),
				RHS: ir.And(ir.Shr(p.LoadE("key", vi), ir.CI(3)), ir.CI(511)),
			},
		}},
	}, "IS/is.c:450-458")

	add(&ir.Codelet{
		Name: "is_clear", Pattern: "INT: clear bucket table", Invocations: 10,
		Loop: &ir.Loop{Var: "r", Lower: ir.AC(0), Upper: ir.AV("passes"), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("b"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("hist", vi), RHS: ir.CI(0)},
			}},
		}},
	}, "IS/is.c:370-376")

	add(&ir.Codelet{
		Name: "is_sum_hist", Pattern: "INT: bucket table reduction", Invocations: 10,
		Loop: &ir.Loop{Var: "r", Lower: ir.AC(0), Upper: ir.AV("passes"), Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("b"), Body: []ir.Stmt{
				&ir.Assign{LHS: p.Ref("acc"), RHS: ir.Add(p.LoadE("acc"), p.LoadE("hist", vi))},
			}},
		}},
	}, "IS/is.c:460-466")

	add(&ir.Codelet{
		Name: "is_copy_keys", Pattern: "INT: key copy", Invocations: 10,
		Loop: &ir.Loop{Var: "i", Lower: ir.AC(0), Upper: ir.AV("n"), Body: []ir.Stmt{
			&ir.Assign{LHS: p.Ref("kb2", vi), RHS: p.LoadE("key", vi)},
		}},
	}, "IS/is.c:470-476")
	return p
}

// Package jobs is the asynchronous experiment-job engine: it turns
// the pipeline's minute-scale computations (the Figure 3 sweep, the
// Figure 7 random baseline, the §4.2 GA) into submit/poll/cancel jobs
// executed on a bounded worker pool, so the serving layer never blocks
// a request on a long experiment.
//
// A Manager owns a fixed pool of workers draining a bounded queue.
// Each job gets a stable ID, a state machine
// (pending → running → done|failed|canceled), a context derived from
// the manager's lifetime for cancellation, and live progress counters
// ("trials 412/1000") the job function updates as it runs. Terminal
// jobs are retained for polling and garbage-collected after a
// retention window (or beyond a retained-count cap).
//
// With a journal directory configured the manager is crash-safe: jobs
// submitted with a spec (SubmitSpec) are journaled durably at every
// state transition, and a restarted manager re-adopts the journal —
// terminal jobs come back pollable with their exact result bytes,
// interrupted pending/running jobs are rebuilt through the Rehydrate
// hook and re-enqueued (the pipeline is deterministic, so the re-run
// reproduces the lost result), GC'd jobs stay dead behind tombstones,
// and the ID counter resumes past every persisted record so restarts
// never reuse an ID. See journal.go.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fgbs/internal/fault"
)

// State is a job's lifecycle phase.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is a job's live work counter. The job function calls Set
// and SetTotal as it advances; pollers read a consistent snapshot at
// any time. All methods are safe for concurrent use.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
}

// SetTotal publishes the total number of work units.
func (p *Progress) SetTotal(n int64) { p.total.Store(n) }

// Set publishes the cumulative number of completed work units.
func (p *Progress) Set(n int64) { p.done.Store(n) }

// Add increments the completed-unit counter.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Snapshot returns (done, total).
func (p *Progress) Snapshot() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

// Fn is the work a job performs. It must honor ctx — returning
// ctx.Err() promptly once canceled — and may update pr throughout.
// The returned value becomes the job's result; it must be
// JSON-marshalable if disk persistence is enabled.
type Fn func(ctx context.Context, pr *Progress) (any, error)

// Job is one submitted experiment. All exported state is read through
// Snapshot (or Result); the struct itself is owned by the manager.
type Job struct {
	id   string
	kind string
	fn   Fn
	// spec is the durable form of the job's parameters; non-empty spec
	// makes the job journaled and resumable (see SubmitSpec).
	spec json.RawMessage

	// Progress is updated lock-free by the running fn.
	progress Progress

	mu          sync.Mutex
	state       State              // guarded by mu
	result      any                // guarded by mu
	err         error              // guarded by mu
	attempts    int                // guarded by mu
	interrupted bool               // guarded by mu; lost a process to a crash/restart
	created     time.Time          // guarded by mu
	started     time.Time          // guarded by mu
	finished    time.Time          // guarded by mu
	cancel      context.CancelFunc // guarded by mu
	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

// ID returns the job's stable identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the job's submitted kind label.
func (j *Job) Kind() string { return j.kind }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is a consistent copy of a job's observable state.
type Snapshot struct {
	ID       string
	Kind     string
	State    State
	Done     int64
	Total    int64
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      string
	// Attempts counts how many times the job has started running
	// (greater than 1 after transient-failure retries), across process
	// lifetimes for resumed jobs.
	Attempts int
	// Interrupted marks a job that lost at least one process to a
	// crash or restart mid-flight and was re-adopted from the journal.
	Interrupted bool
}

// Snapshot captures the job's current observable state.
func (j *Job) Snapshot() Snapshot {
	done, total := j.progress.Snapshot()
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: done, Total: total,
		Created: j.created, Started: j.started, Finished: j.finished,
		Attempts: j.attempts, Interrupted: j.interrupted,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Result returns the job's result value once done. ok is false while
// the job is not in StateDone (pollers should retry or give up based
// on the snapshot's state). A job re-adopted from the journal after a
// restart returns its result as json.RawMessage — the exact bytes the
// original run persisted.
func (j *Job) Result() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// Config tunes a Manager. The zero value gets GOMAXPROCS workers, a
// 64-deep queue, 15-minute retention of up to 128 terminal jobs, and
// no disk persistence.
type Config struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds pending jobs; Submit fails when full (default 64).
	QueueDepth int
	// Retention is how long terminal jobs stay queryable (default 15m).
	Retention time.Duration
	// MaxRetained caps terminal jobs kept in memory (default 128).
	MaxRetained int
	// Dir, when set, is the job journal: every durable job (SubmitSpec
	// with a non-empty spec) is persisted as <Dir>/<id>.json at each
	// state transition and recovered on the next NewManager over the
	// same directory; plain Submit jobs persist their completed result
	// only. GC replaces a dropped job's record with a tombstone so the
	// ID stays dead (and reserved) across restarts.
	Dir string
	// Rehydrate rebuilds a durable job's work function from its
	// persisted kind and spec when recovery re-adopts a job that was
	// pending or running at crash time. nil means such jobs are
	// re-adopted as failed (ErrNotResumable) instead of re-enqueued.
	Rehydrate func(kind string, spec json.RawMessage) (Fn, error)
	// Logf receives recovery diagnostics (skipped records, version
	// mismatches). nil logs to standard error.
	Logf func(format string, args ...any)
	// MaxAttempts bounds how many times a job runs before a retryable
	// failure becomes terminal (default 1: no retries). Failed attempts
	// requeue the job; it keeps its ID and progress counters.
	MaxAttempts int
	// Retryable classifies errors worth another attempt. nil uses
	// fault.IsTransient, matching the measurement layer's taxonomy.
	Retryable func(error) bool
	// now is a test hook; nil means time.Now.
	now func() time.Time
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 128
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.Retryable == nil {
		c.Retryable = fault.IsTransient
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if c.now == nil {
		c.now = time.Now //fgbs:allow determinism the injection point itself: tests swap this hook for a fake clock
	}
}

// Errors returned by Submit/Cancel/lookup and recovery.
var (
	ErrClosed    = errors.New("jobs: manager closed")
	ErrQueueFull = errors.New("jobs: queue full")
	ErrNotFound  = errors.New("jobs: no such job")
	// ErrNotResumable finalizes a journaled job that a crash
	// interrupted but recovery could not re-enqueue (no Rehydrate hook,
	// no spec, or the hook refused the record).
	ErrNotResumable = errors.New("jobs: interrupted by restart and not resumable")
)

// Stats are the /metricz gauges: queued and running are instantaneous,
// completed/failed/canceled are cumulative since the manager started
// (GC never decrements them).
type Stats struct {
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Retried counts requeues after retryable failures (cumulative).
	Retried int64 `json:"retried"`
	// Resumed counts interrupted jobs recovery re-enqueued from the
	// journal at startup.
	Resumed int64 `json:"resumed"`
}

// Manager executes jobs on a bounded worker pool. Create with
// NewManager, release with Close.
type Manager struct {
	cfg   Config
	ctx   context.Context
	stop  context.CancelFunc
	queue chan *Job
	wg    sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*Job // guarded by mu
	seq  uint64          // guarded by mu

	queued    atomic.Int64
	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	retried   atomic.Int64
	resumed   atomic.Int64
}

// NewManager recovers any persisted journal under cfg.Dir — terminal
// jobs re-adopted, interrupted jobs re-enqueued, the ID counter
// resumed past every persisted record — and then starts the worker
// pool.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		ctx:   ctx,
		stop:  stop,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	m.recover()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close cancels every pending and running job and waits for the
// workers to drain. Job functions observe cancellation through their
// contexts.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
	// Workers are gone; finalize whatever never ran so waiters on
	// Done() are released.
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateCanceled
			j.err = ErrClosed
			j.finished = m.cfg.now()
			m.canceled.Add(1)
			close(j.done)
		}
		j.mu.Unlock()
	}
}

// Submit enqueues fn under the given kind label and returns the job,
// already in StatePending. It fails fast when the queue is full or the
// manager is closed. Jobs submitted this way are not resumable — a
// crash loses them; use SubmitSpec for durable jobs.
func (m *Manager) Submit(kind string, fn Fn) (*Job, error) {
	return m.SubmitSpec(kind, nil, fn)
}

// SubmitSpec enqueues fn with a JSON spec that makes the job durable:
// the record is journaled before the job can run, rewritten at every
// state transition, and — should the process die with the job pending
// or running — recovered on the next NewManager over the same
// directory, where the Rehydrate hook turns (kind, spec) back into a
// runnable Fn. A nil spec degrades to the non-durable Submit behavior.
func (m *Manager) SubmitSpec(kind string, spec json.RawMessage, fn Fn) (*Job, error) {
	if m.ctx.Err() != nil {
		return nil, ErrClosed
	}
	m.mu.Lock()
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("job-%08d", m.seq),
		kind:    kind,
		fn:      fn,
		spec:    spec,
		state:   StatePending,
		created: m.cfg.now(),
		done:    make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.gcLocked()
	m.mu.Unlock()

	// The record must be durable before the job can run: once
	// enqueued, a worker may start (and the process may die) at any
	// instant, and an unjournaled running job is unrecoverable.
	if len(spec) > 0 {
		m.journal(j)
	}
	select {
	case m.queue <- j:
		m.queued.Add(1)
		return j, nil
	default:
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		// Never acknowledged to the caller, so no tombstone: the ID
		// was never observable.
		m.discardRecord(j.id)
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List snapshots every known job, newest first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	m.gcLocked()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Snapshot, 0, len(js))
	for _, j := range js {
		out = append(out, j.Snapshot())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Cancel requests cancellation: a pending job is finalized
// immediately, a running job's context is canceled (the job turns
// canceled when its fn returns), and a terminal job is left untouched.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StatePending:
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = m.cfg.now()
		m.canceled.Add(1)
		durable := len(j.spec) > 0
		close(j.done)
		if durable {
			// An explicit cancel is a user decision, journaled so the
			// job stays canceled across restarts (unlike a crash, which
			// leaves the pending record and resumes).
			j.mu.Unlock()
			m.journal(j)
			j.mu.Lock()
		}
	case StateRunning:
		j.cancel()
	}
	return j, nil
}

// Stats returns the gauge snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Queued:    m.queued.Load(),
		Running:   m.running.Load(),
		Completed: m.completed.Load(),
		Failed:    m.failed.Load(),
		Canceled:  m.canceled.Load(),
		Retried:   m.retried.Load(),
		Resumed:   m.resumed.Load(),
	}
}

// Saturation reports the instantaneous queue fill against its
// capacity, for health reporting: a full queue means Submit is
// rejecting work.
func (m *Manager) Saturation() (queued int64, depth int) {
	return m.queued.Load(), m.cfg.QueueDepth
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.queued.Add(-1)
			m.run(j)
		}
	}
}

// run executes one job to a terminal state.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state != StatePending { // canceled while queued
		j.mu.Unlock()
		return
	}
	// A draining worker can win the race against its own shutdown and
	// pull one more job off the queue after Close; don't start it.
	if m.ctx.Err() != nil {
		j.state = StateCanceled
		j.err = ErrClosed
		j.finished = m.cfg.now()
		m.canceled.Add(1)
		close(j.done)
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = m.cfg.now()
	j.attempts++
	attempt := j.attempts
	j.mu.Unlock()
	defer cancel()
	durable := len(j.spec) > 0
	if durable {
		// The running record (attempts bumped) must hit disk before
		// work starts: a crash mid-run then recovers a job whose
		// attempt count reflects the lost run.
		m.journal(j)
	}

	m.running.Add(1)
	res, err := j.fn(ctx, &j.progress)
	m.running.Add(-1)

	j.mu.Lock()
	j.finished = m.cfg.now()
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		j.state = StateCanceled
		j.err = context.Canceled
		m.canceled.Add(1)
	case err != nil:
		if attempt < m.cfg.MaxAttempts && m.cfg.Retryable(err) && m.ctx.Err() == nil {
			// Transient failure with budget left: back to the queue.
			// The job keeps its ID, attempt count, and progress; Done()
			// stays open so waiters keep waiting.
			j.state = StatePending
			j.err = nil
			j.cancel = nil
			j.mu.Unlock()
			if durable {
				m.journal(j)
			}
			select {
			case m.queue <- j:
				m.queued.Add(1)
				m.retried.Add(1)
				return
			default:
				// No queue slot for the retry; finalize as failed.
			}
			j.mu.Lock()
			j.finished = m.cfg.now()
		}
		j.state = StateFailed
		j.err = err
		m.failed.Add(1)
	default:
		j.state = StateDone
		j.result = res
		m.completed.Add(1)
	}
	done := j.state == StateDone
	j.mu.Unlock()
	// Journal before releasing waiters: a poller woken by Done() must
	// find the terminal record already durable on disk. Completed
	// results are persisted even for non-durable jobs (the archival
	// behavior plain Submit always had); failed and canceled records
	// only matter for durable jobs, whose pending/running record on
	// disk would otherwise resurrect them on restart.
	if done || durable {
		m.journal(j)
	}
	close(j.done)
}

// writeFileSync writes data and fsyncs before closing, so the
// subsequent rename never publishes a file whose bytes are still only
// in the page cache.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gcLocked drops terminal jobs past the retention window, then the
// oldest beyond MaxRetained. Callers hold m.mu.
func (m *Manager) gcLocked() {
	cutoff := m.cfg.now().Add(-m.cfg.Retention)
	var terminal []*Job
	//fgbs:allow guardedby the *Locked naming contract: every caller holds m.mu
	for _, j := range m.jobs {
		j.mu.Lock()
		t, fin := j.state.Terminal(), j.finished
		j.mu.Unlock()
		if !t {
			continue
		}
		if fin.Before(cutoff) {
			m.dropLocked(j)
			continue
		}
		terminal = append(terminal, j)
	}
	if len(terminal) > m.cfg.MaxRetained {
		sort.Slice(terminal, func(a, b int) bool { return terminal[a].id < terminal[b].id })
		for _, j := range terminal[:len(terminal)-m.cfg.MaxRetained] {
			m.dropLocked(j)
		}
	}
}

// dropLocked removes a job from the map and tombstones its journal
// record: the ID stays reserved and the job stays dead across
// restarts, instead of a deleted record resurrecting on recovery.
func (m *Manager) dropLocked(j *Job) {
	//fgbs:allow guardedby the *Locked naming contract: every caller holds m.mu
	delete(m.jobs, j.id)
	if m.cfg.Dir != "" {
		m.tombstone(j.id)
	}
}
